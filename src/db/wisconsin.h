// Wisconsin benchmark relation generator. unique1 is a deterministic
// pseudo-random permutation of [0, n), unique2 is sequential; derived
// attributes follow the standard definitions.
#pragma once

#include <vector>

#include "db/tuple.h"

namespace harmony::db {

// Generates n tuples; `seed` makes distinct relations (the paper joins
// two instances of the same schema).
std::vector<WisconsinTuple> generate_wisconsin(size_t n, uint64_t seed);

}  // namespace harmony::db
