#include "cluster/matcher.h"

#include <gtest/gtest.h>

#include <set>

namespace harmony::cluster {
namespace {

// 4-node cluster: two big linux nodes, one small linux, one aix server.
class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(topo_.add_node("big1", 1.0, 256, "linux").ok());
    ASSERT_TRUE(topo_.add_node("big2", 1.0, 256, "linux").ok());
    ASSERT_TRUE(topo_.add_node("small", 1.0, 32, "linux").ok());
    ASSERT_TRUE(topo_.add_node("server", 2.0, 512, "aix").ok());
    // Full mesh except small<->server (only reachable through big1).
    ASSERT_TRUE(topo_.add_link(0, 1, 100).ok());
    ASSERT_TRUE(topo_.add_link(0, 2, 100).ok());
    ASSERT_TRUE(topo_.add_link(0, 3, 100).ok());
    ASSERT_TRUE(topo_.add_link(1, 3, 100).ok());
    pool_ = std::make_unique<ResourcePool>(&topo_);
  }
  Topology topo_;
  std::unique_ptr<ResourcePool> pool_;
};

TEST_F(MatcherTest, SingleRequirementFirstFit) {
  Matcher matcher(MatchPolicy::kFirstFit);
  auto alloc = matcher.match({{"w", 0, "*", "", 16}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("w"), 0u) << "first-fit takes topology order";
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 240);
}

TEST_F(MatcherTest, BestFitPrefersTightestNode) {
  Matcher matcher(MatchPolicy::kBestFit);
  auto alloc = matcher.match({{"w", 0, "*", "linux", 16}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("w"), 2u) << "small (32 MB) is the tightest fit";
}

TEST_F(MatcherTest, WorstFitPrefersEmptiestNode) {
  Matcher matcher(MatchPolicy::kWorstFit);
  auto alloc = matcher.match({{"w", 0, "*", "", 16}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("w"), 3u) << "server has 512 MB free";
}

TEST_F(MatcherTest, HostnameGlobRestricts) {
  Matcher matcher;
  auto alloc = matcher.match({{"s", 0, "server", "", 16}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("s"), 3u);
  auto none = matcher.match({{"s", 0, "nosuch*", "", 16}}, {}, *pool_);
  EXPECT_FALSE(none.ok());
  EXPECT_EQ(none.error().code, ErrorCode::kNoMatch);
}

TEST_F(MatcherTest, OsRestricts) {
  Matcher matcher;
  auto alloc = matcher.match({{"s", 0, "*", "aix", 16}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("s"), 3u);
}

TEST_F(MatcherTest, ReplicasGetDistinctNodes) {
  Matcher matcher;
  std::vector<NodeRequirement> reqs;
  for (int i = 0; i < 4; ++i) reqs.push_back({"worker", i, "*", "", 16});
  auto alloc = matcher.match(reqs, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  auto nodes = alloc.value().nodes_for("worker");
  std::set<NodeId> distinct(nodes.begin(), nodes.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_F(MatcherTest, TooManyReplicasFail) {
  Matcher matcher;
  std::vector<NodeRequirement> reqs;
  for (int i = 0; i < 5; ++i) reqs.push_back({"worker", i, "*", "", 16});
  EXPECT_FALSE(matcher.match(reqs, {}, *pool_).ok());
  // Failure must not leak reservations.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(pool_->available_memory(n), topo_.node(n).memory_mb);
  }
}

TEST_F(MatcherTest, DifferentRolesMayShareANode) {
  Matcher matcher;
  auto alloc = matcher.match(
      {{"client", 0, "big1", "", 64}, {"server", 0, "big1", "", 64}}, {},
      *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("client"), alloc.value().find("server"));
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 128);
}

TEST_F(MatcherTest, MemoryConstraintExcludesSmallNodes) {
  Matcher matcher;
  auto alloc = matcher.match({{"w", 0, "*", "linux", 100}}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_NE(alloc.value().find("w"), 2u) << "small has only 32 MB";
}

TEST_F(MatcherTest, LinkConstraintRequiresConnectivity) {
  // Disconnect: isolated node with no links.
  Topology topo;
  ASSERT_TRUE(topo.add_node("x", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("y", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("z", 1, 64).ok());
  ASSERT_TRUE(topo.add_link(0, 1, 100).ok());
  ResourcePool pool(&topo);
  Matcher matcher;
  // Same role -> distinct nodes, plus a connectivity requirement:
  // the only valid placement is the connected pair {x, y}.
  std::vector<NodeRequirement> reqs{{"w", 0, "*", "", 8}, {"w", 1, "*", "", 8}};
  std::vector<LinkRequirement> links{{0, 1, 0.0}};
  auto alloc = matcher.match(reqs, links, pool);
  ASSERT_TRUE(alloc.ok());
  std::set<NodeId> used{alloc.value().find("w", 0), alloc.value().find("w", 1)};
  EXPECT_TRUE(used.count(0) && used.count(1))
      << "z is unreachable, so both must land on the connected pair";
}

TEST_F(MatcherTest, LinkBandwidthMinimumEnforced) {
  Topology topo;
  ASSERT_TRUE(topo.add_node("x", 1, 64).ok());
  ASSERT_TRUE(topo.add_node("y", 1, 64).ok());
  ASSERT_TRUE(topo.add_link(0, 1, 10).ok());
  ResourcePool pool(&topo);
  Matcher matcher;
  std::vector<NodeRequirement> reqs{{"a", 0, "x", "", 8}, {"b", 0, "y", "", 8}};
  EXPECT_TRUE(matcher.match(reqs, {{0, 1, 10.0}}, pool).ok());
  ResourcePool fresh(&topo);
  EXPECT_FALSE(matcher.match(reqs, {{0, 1, 11.0}}, fresh).ok());
}

TEST_F(MatcherTest, BacktrackingRecoversFromGreedyDeadEnd) {
  // Greedy would place the flexible requirement on big1, then fail to
  // place the big1-pinned one; backtracking must recover.
  Matcher matcher(MatchPolicy::kFirstFit);
  std::vector<NodeRequirement> reqs{
      {"flex", 0, "big*", "", 200},   // fits big1 or big2
      {"pinned", 0, "big1", "", 200}  // only fits big1
  };
  auto alloc = matcher.match(reqs, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc.value().find("pinned"), 0u);
  EXPECT_EQ(alloc.value().find("flex"), 1u);
}

TEST_F(MatcherTest, ReleaseRestoresPool) {
  Matcher matcher;
  auto alloc = matcher.match({{"w", 0, "*", "", 64}, {"v", 0, "*", "", 64}},
                             {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  ASSERT_TRUE(Matcher::release(alloc.value(), *pool_).ok());
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(pool_->available_memory(n), topo_.node(n).memory_mb);
  }
  EXPECT_TRUE(pool_->invariants_hold());
}

TEST_F(MatcherTest, InvalidInputsRejected) {
  Matcher matcher;
  auto bad_link = matcher.match({{"w", 0, "*", "", 8}}, {{0, 5, 0}}, *pool_);
  ASSERT_FALSE(bad_link.ok());
  EXPECT_EQ(bad_link.error().code, ErrorCode::kInvalidArgument);
  auto bad_mem = matcher.match({{"w", 0, "*", "", -8}}, {}, *pool_);
  ASSERT_FALSE(bad_mem.ok());
  EXPECT_EQ(bad_mem.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(MatcherTest, EmptyRequirementsYieldEmptyAllocation) {
  Matcher matcher;
  auto alloc = matcher.match({}, {}, *pool_);
  ASSERT_TRUE(alloc.ok());
  EXPECT_TRUE(alloc.value().empty());
}

class PolicySweep : public ::testing::TestWithParam<MatchPolicy> {};

// Property: under any policy, a successful match reserves exactly the
// requested memory and never double-books replicas.
TEST_P(PolicySweep, MatchAccountingIsExact) {
  Topology topo;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(topo.add_node("n" + std::to_string(i), 1.0,
                              64.0 * (i + 1), "linux").ok());
  }
  for (int i = 0; i < 6; ++i) {
    for (int j = i + 1; j < 6; ++j) {
      ASSERT_TRUE(topo.add_link(i, j, 100).ok());
    }
  }
  ResourcePool pool(&topo);
  Matcher matcher(GetParam());
  std::vector<NodeRequirement> reqs;
  for (int i = 0; i < 4; ++i) reqs.push_back({"w", i, "*", "", 48});
  auto alloc = matcher.match(reqs, {}, pool);
  ASSERT_TRUE(alloc.ok());
  double total_before = 0, total_after = 0;
  for (NodeId n = 0; n < 6; ++n) {
    total_before += topo.node(n).memory_mb;
    total_after += pool.available_memory(n);
  }
  EXPECT_DOUBLE_EQ(total_before - total_after, 4 * 48.0);
  auto nodes = alloc.value().nodes_for("w");
  EXPECT_EQ(std::set<NodeId>(nodes.begin(), nodes.end()).size(), 4u);
  EXPECT_TRUE(pool.invariants_hold());
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep,
                         ::testing::Values(MatchPolicy::kFirstFit,
                                           MatchPolicy::kBestFit,
                                           MatchPolicy::kWorstFit));

}  // namespace
}  // namespace harmony::cluster
