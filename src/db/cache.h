// Client-side bucket cache for data shipping. The benchmark's selection
// attribute (tenPercent) partitions each relation into ten buckets; a
// data-shipping client caches whole buckets, so repeated queries over
// the same values skip the transfer. This is the mechanism behind the
// paper's memory <-> bandwidth tradeoff: "Harmony can then decide to
// allocate additional memory resources at the client in order to reduce
// bandwidth requirements."
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <utility>

namespace harmony::db {

class BucketCache {
 public:
  explicit BucketCache(double capacity_mb) : capacity_mb_(capacity_mb) {}

  double capacity_mb() const { return capacity_mb_; }
  double used_mb() const { return used_mb_; }
  size_t buckets() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

  // Resizing (Harmony granted different memory) evicts LRU-first until
  // the new capacity fits.
  void resize(double capacity_mb);

  // Returns true on hit; on miss, inserts the bucket (evicting LRU
  // entries as needed) and returns false. Buckets larger than the whole
  // cache are never retained.
  bool lookup_or_insert(int relation, int32_t bucket, double bucket_mb);

  void clear();

 private:
  using Key = std::pair<int, int32_t>;
  void evict_until_fits(double needed_mb);

  double capacity_mb_;
  double used_mb_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<std::pair<Key, double>> lru_;           // front = most recent
  std::map<Key, std::list<std::pair<Key, double>>::iterator> entries_;
};

}  // namespace harmony::db
