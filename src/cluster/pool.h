// Resource accounting over a Topology. The paper (§4.1): "As nodes and
// links are matched, we decrease the available resources based on the
// application's RSL entries." Memory is reserved exclusively; CPU is
// time-shared, so the pool tracks per-node load (number of resident
// processes) which the performance models use for contention scaling.
#pragma once

#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"

namespace harmony::cluster {

class ResourcePool {
 public:
  explicit ResourcePool(const Topology* topology);

  const Topology& topology() const { return *topology_; }

  // --- memory ---------------------------------------------------------------
  double total_memory(NodeId node) const;
  double available_memory(NodeId node) const;
  Status reserve_memory(NodeId node, double mb);
  Status release_memory(NodeId node, double mb);

  // --- CPU load ---------------------------------------------------------------
  // Number of processes resident on the node; the default performance
  // model scales CPU time by this (processor sharing).
  int process_count(NodeId node) const;
  void add_process(NodeId node);
  Status remove_process(NodeId node);

  // Sum of processes across the cluster (diagnostics).
  int total_processes() const;

  // --- external load -------------------------------------------------------
  // Load from work outside Harmony's control (§4.3: "changes out of
  // Harmony's control (such as network traffic due to other
  // applications)"), as observed through the metric interface. It
  // contributes to contention estimates and to the matcher's
  // least-loaded ordering, but reserves nothing.
  void set_external_load(NodeId node, int tasks);
  int external_load(NodeId node) const;
  // process_count + external load: the contention the models see.
  int effective_load(NodeId node) const {
    return process_count(node) + external_load(node);
  }

  // --- availability ------------------------------------------------------
  // Nodes can leave and rejoin the pool at runtime ("the addition or
  // deletion of nodes" the paper's abstract calls out). An offline node
  // is never matched; existing reservations are the controller's job to
  // migrate.
  void set_online(NodeId node, bool online);
  bool is_online(NodeId node) const;
  size_t online_count() const;

  // Invariant check: no node over-committed, no negative counters.
  // Used by property tests and debug assertions.
  bool invariants_hold() const;

 private:
  const Topology* topology_;
  std::vector<double> reserved_memory_;
  std::vector<int> processes_;
  std::vector<int> external_load_;
  std::vector<bool> online_;
};

// RAII reservation of memory on a set of nodes. Releases on destruction
// unless committed. Keeps the matcher exception-safe: a partially
// completed match rolls back automatically.
class MemoryReservation {
 public:
  explicit MemoryReservation(ResourcePool* pool) : pool_(pool) {}
  ~MemoryReservation() { rollback(); }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  Status reserve(NodeId node, double mb);
  // Keeps the reservations; the caller owns releasing them later.
  void commit() { held_.clear(); }
  void rollback();

 private:
  ResourcePool* pool_;
  std::vector<std::pair<NodeId, double>> held_;
};

}  // namespace harmony::cluster
