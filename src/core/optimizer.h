// Option selection (paper §4.3): "we optimize one bundle at a time when
// adding new applications to the system. Bundles are evaluated in the
// same lexical order as they were defined... After defining the initial
// options for a new application, we re-evaluate the options for
// existing applications." Greedy by default; an exhaustive search over
// the joint choice space is provided as the ablation baseline.
#pragma once

#include <optional>
#include <vector>

#include "cluster/matcher.h"
#include "common/result.h"
#include "core/objective.h"
#include "core/perf_model.h"
#include "core/state.h"

namespace harmony::core {

struct OptimizerConfig {
  enum class Mode { kGreedy, kExhaustive };
  Mode mode = Mode::kGreedy;
  // How a newly arrived application is configured: kOptimize evaluates
  // every option against the objective; kFirstFeasible takes the first
  // option (definition order) that matches resources — the
  // application's declared default, as in the paper's §6 experiment
  // where clients start in query shipping and a later adaptation pass
  // reconfigures them.
  enum class InitialPolicy { kOptimize, kFirstFeasible };
  InitialPolicy initial_policy = InitialPolicy::kOptimize;
  // Re-evaluate existing applications when a new one arrives (§4.3).
  // Off, adaptation happens only at explicit/periodic reevaluate()
  // calls, reproducing the delayed trigger visible in Figure 7.
  bool reevaluate_on_arrival = true;
  // Charge the option's frictional cost when a reconfiguration would
  // change the current choice (paper §3, requirement five).
  bool respect_friction = true;
  // Refuse to switch a bundle before its granularity window elapses
  // (paper §3, requirement four).
  bool respect_granularity = true;
  cluster::MatchPolicy match_policy = cluster::MatchPolicy::kFirstFit;
  // Joint-combination cap for exhaustive mode.
  size_t exhaustive_limit = 100000;
  // Memory grant multipliers tried for options with open-ended (">=")
  // memory constraints. {1.0} reproduces minimum-only grants; adding
  // levels lets the optimizer trade memory for bandwidth as §3.5
  // describes ("Harmony can then decide to allocate additional memory
  // resources at the client").
  std::vector<double> memory_grant_levels = {1.0};
};

struct Decision {
  InstanceId instance = 0;
  std::string bundle;
  OptionChoice choice;
  bool changed = false;  // differs from the previous configuration
};

class Optimizer {
 public:
  Optimizer(const Predictor* predictor, const Objective* objective,
            OptimizerConfig config = {});

  // Namespace-backed expression context for RSL amounts.
  void set_names(rsl::ExprContext names) { names_ = std::move(names); }
  const OptimizerConfig& config() const { return config_; }
  void set_config(OptimizerConfig config) { config_ = config; }

  // Configures a newly arrived instance's bundles (definition order),
  // then re-evaluates every other application. Returns all applied
  // decisions. Fails with kNoMatch when no option of some new bundle
  // fits the remaining resources.
  Result<std::vector<Decision>> on_arrival(SystemState& state, InstanceId id,
                                           double now);

  // One re-evaluation pass over every instance and bundle (used on
  // departures and periodic timers).
  Result<std::vector<Decision>> reevaluate(SystemState& state, double now);

  // Manual steering: installs a specific choice for one bundle,
  // bypassing the objective (but not resource matching). On an
  // infeasible request the previous configuration is restored and an
  // error returned.
  Result<Decision> apply_choice(SystemState& state, InstanceId id,
                                const std::string& bundle,
                                const OptionChoice& choice, double now);

  // Predicted response time per configured instance, state order.
  Result<std::vector<std::pair<InstanceId, double>>> predict_all(
      const SystemState& state) const;
  // Objective under the current configuration.
  Result<double> objective_value(const SystemState& state) const;

  // Number of candidate configurations evaluated since construction
  // (decision-latency ablation).
  uint64_t candidates_evaluated() const { return candidates_evaluated_; }

 private:
  Result<Decision> optimize_bundle(SystemState& state, InstanceState& instance,
                                   BundleState& bundle, double now,
                                   bool require_feasible);
  Result<Decision> configure_first_feasible(SystemState& state,
                                            InstanceState& instance,
                                            BundleState& bundle, double now);
  Result<std::vector<Decision>> exhaustive(SystemState& state, double now);

  // Installs a candidate (matching + reserving); returns the allocation.
  Result<cluster::Allocation> try_install(SystemState& state,
                                          BundleState& bundle,
                                          const OptionChoice& choice) const;

  const Predictor* predictor_;
  const Objective* objective_;
  OptimizerConfig config_;
  rsl::ExprContext names_;
  mutable uint64_t candidates_evaluated_ = 0;
};

}  // namespace harmony::core
