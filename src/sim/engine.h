// Deterministic discrete-event simulation engine. All experiments run
// on virtual time so figures regenerate bit-identically on any machine.
// Events at equal times fire in schedule order (stable sequence number
// tie-break).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>

#include "common/result.h"

namespace harmony::sim {

using EventId = uint64_t;
using EventFn = std::function<void()>;

class SimEngine {
 public:
  double now() const { return now_; }

  // Schedules fn at now() + delay (delay >= 0). Returns an id usable
  // with cancel().
  EventId schedule(double delay, EventFn fn);
  EventId schedule_at(double time, EventFn fn);

  // Cancelling an already-fired or unknown event is a no-op.
  void cancel(EventId id);

  // Runs the next event; returns false when the queue is empty.
  bool step();
  // Runs events with time <= until, then advances the clock to `until`.
  void run_until(double until);
  // Runs until the queue drains.
  void run();

  size_t pending() const;
  uint64_t events_executed() const { return executed_; }

 private:
  struct Scheduled {
    double time;
    uint64_t seq;
    EventId id;
    // Ordered as a max-heap by default; invert for earliest-first.
    bool operator<(const Scheduled& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t executed_ = 0;
  std::priority_queue<Scheduled> queue_;
  std::unordered_map<EventId, EventFn> handlers_;
};

}  // namespace harmony::sim
