file(REMOVE_RECURSE
  "CMakeFiles/fig4_online_reconfig.dir/fig4_online_reconfig.cc.o"
  "CMakeFiles/fig4_online_reconfig.dir/fig4_online_reconfig.cc.o.d"
  "fig4_online_reconfig"
  "fig4_online_reconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_online_reconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
