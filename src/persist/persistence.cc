#include "persist/persistence.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.h"
#include "common/strings.h"
#include "persist/crc32c.h"
#include "rsl/value.h"

namespace harmony::persist {

namespace {

constexpr char kJournalFile[] = "journal.wal";
constexpr char kSnapshotFile[] = "snapshot.hsn";
constexpr char kSnapshotTmpFile[] = "snapshot.tmp";
constexpr int kSnapshotVersion = 1;
// Record framing header: [u32 length][u32 crc32c], matching journal.cc.
constexpr size_t kRecordHeaderBytes = 8;

uint32_t read_u32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return (static_cast<uint32_t>(bytes[0]) << 24) |
         (static_cast<uint32_t>(bytes[1]) << 16) |
         (static_cast<uint32_t>(bytes[2]) << 8) | static_cast<uint32_t>(bytes[3]);
}

using rsl::list_build;
using rsl::list_parse;

Error errno_error(const char* what, const std::string& path) {
  return Error{ErrorCode::kIo, str_format("%s %s: %s", what, path.c_str(),
                                          std::strerror(errno))};
}

Error corrupt(const std::string& detail) {
  return Error{ErrorCode::kCorruption, detail};
}

std::string format_u64(uint64_t value) {
  return str_format("%llu", static_cast<unsigned long long>(value));
}

bool parse_u64(const std::string& text, uint64_t* out) {
  long long value = 0;
  if (!parse_int64(text, &value) || value < 0) return false;
  *out = static_cast<uint64_t>(value);
  return true;
}

// OptionChoice <-> {option grant {{name value} ...}}
std::string encode_choice(const core::OptionChoice& choice) {
  std::vector<std::string> vars;
  for (const auto& [name, value] : choice.variables) {
    vars.push_back(list_build({name, format_number(value)}));
  }
  return list_build(
      {choice.option, format_number(choice.memory_grant), list_build(vars)});
}

Result<core::OptionChoice> decode_choice(const std::string& text) {
  auto fields = list_parse(text);
  if (!fields.ok() || fields->size() != 3) {
    return Err<core::OptionChoice>(ErrorCode::kCorruption,
                                   "bad choice record: " + text);
  }
  core::OptionChoice choice;
  choice.option = (*fields)[0];
  if (!parse_double((*fields)[1], &choice.memory_grant)) {
    return Err<core::OptionChoice>(ErrorCode::kCorruption,
                                   "bad memory grant: " + (*fields)[1]);
  }
  auto vars = list_parse((*fields)[2]);
  if (!vars.ok()) {
    return Err<core::OptionChoice>(ErrorCode::kCorruption,
                                   "bad choice variables: " + (*fields)[2]);
  }
  for (const auto& entry : *vars) {
    auto pair = list_parse(entry);
    double value = 0;
    if (!pair.ok() || pair->size() != 2 || !parse_double((*pair)[1], &value)) {
      return Err<core::OptionChoice>(ErrorCode::kCorruption,
                                     "bad choice variable: " + entry);
    }
    choice.variables[(*pair)[0]] = value;
  }
  return choice;
}

Status mkdir_if_missing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::Ok();
  return errno_error("mkdir", dir);
}

Status fsync_path(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_error("open", path);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return errno_error("fsync", path);
  return Status::Ok();
}

}  // namespace

Persistence::Persistence(PersistConfig config, core::Controller& controller)
    : config_(std::move(config)), controller_(&controller) {}

Persistence::~Persistence() {
  if (sync_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(sync_mutex_);
      sync_stop_ = true;
    }
    sync_cv_.notify_one();
    sync_thread_.join();
  }
  if (controller_ != nullptr) {
    controller_->set_event_sink(nullptr);
    if (standby_) {
      // open_standby installed a time source that reads replay_time_
      // through `this`; leave a by-value pin behind instead.
      const double last_time = replay_time_;
      controller_->set_time_source([last_time] { return last_time; });
    }
  }
  // Best effort: push any buffered records out before closing.
  (void)journal_.commit(/*sync=*/false);
}

void Persistence::sync_loop() {
  std::unique_lock<std::mutex> lock(sync_mutex_);
  for (;;) {
    sync_cv_.wait(lock, [this] { return sync_requested_ || sync_stop_; });
    if (sync_stop_) return;
    sync_requested_ = false;
    // fsync outside the lock: a slow disk must not block the epoch
    // commits that merely set the request flag.
    lock.unlock();
    Status status;
    {
      metric::ScopedSpan span("journal.fsync");
      const uint64_t start_us = metric::telemetry_now_us();
      status = journal_.sync();
      fsync_us_->record(metric::telemetry_now_us() - start_us);
    }
    lock.lock();
    if (!status.ok() && sync_error_.ok()) sync_error_ = status;
  }
}

std::string Persistence::journal_path() const {
  return config_.dir + "/" + kJournalFile;
}

std::string Persistence::snapshot_path() const {
  return config_.dir + "/" + kSnapshotFile;
}

Result<std::unique_ptr<Persistence>> Persistence::open(
    PersistConfig config, core::Controller& controller) {
  Status dir_status = mkdir_if_missing(config.dir);
  if (!dir_status.ok()) return dir_status.error();

  std::unique_ptr<Persistence> persistence(
      new Persistence(std::move(config), controller));
  Status recovered = persistence->recover();
  if (!recovered.ok()) return recovered.error();

  auto journal = Journal::open(persistence->journal_path());
  if (!journal.ok()) return journal.error();
  persistence->journal_ = std::move(journal).value();

  controller.set_event_sink(persistence.get());
  if (persistence->recovery_.recovered) {
    // Verification pass (journaled like any other event): with every
    // restored bundle marked never-evaluated this is a full optimizer
    // sweep, and on intact state it must be decision-free — the
    // recovered configuration is already the optimum the pre-crash
    // controller committed.
    Status verify = controller.reevaluate();
    if (!verify.ok()) return verify.error();
  }
  if (persistence->config_.fsync_every_epochs > 0) {
    persistence->sync_thread_ =
        std::thread(&Persistence::sync_loop, persistence.get());
  }
  return persistence;
}

Result<std::unique_ptr<Persistence>> Persistence::open_standby(
    PersistConfig config, core::Controller& controller) {
  Status dir_status = mkdir_if_missing(config.dir);
  if (!dir_status.ok()) return dir_status.error();

  std::unique_ptr<Persistence> persistence(
      new Persistence(std::move(config), controller));
  persistence->standby_ = true;
  Status recovered = persistence->recover();
  if (!recovered.ok()) return recovered.error();

  auto journal = Journal::open(persistence->journal_path());
  if (!journal.ok()) return journal.error();
  persistence->journal_ = std::move(journal).value();

  // No event sink, no verification pass, no sync thread: the replicated
  // stream is the only writer until promote(). Track the replayed event
  // times live (recover() left a by-value pin) so the mirrored decisions
  // see the same clock the primary's did.
  controller.set_time_source(
      [p = persistence.get()] { return p->replay_time_; });
  return persistence;
}

// --- event capture ----------------------------------------------------------

std::string Persistence::encode_event(const core::ControllerEvent& event) const {
  using Kind = core::ControllerEvent::Kind;
  const std::string time = format_number(event.time);
  switch (event.kind) {
    case Kind::kRegister:
      return list_build({"EV", "REG", time, format_u64(event.instance),
                         event.text});
    case Kind::kDepart:
      return list_build({"EV", "DEP", time, format_u64(event.instance)});
    case Kind::kExternalLoad:
      return list_build({"EV", "LOAD", time, event.text,
                         format_number(event.value)});
    case Kind::kNodeOnline:
      return list_build({"EV", "NODE", time, event.text,
                         event.value != 0 ? "1" : "0"});
    case Kind::kSetOption:
      return list_build({"EV", "OPT", time, format_u64(event.instance),
                         event.text, encode_choice(event.choice)});
    case Kind::kResize:
      return list_build({"EV", "RSZ", time, format_u64(event.instance),
                         event.text, format_number(event.value)});
    case Kind::kReevaluate:
      return list_build({"EV", "REEVAL", time});
  }
  HARMONY_ASSERT_MSG(false, "unhandled event kind");
  return {};
}

void Persistence::append_journal(const std::string& payload) {
  // Journal appends are only ordered because the controller thread is
  // the only appender: with the sharded network front end, decoded
  // messages cross the mailbox first, so journaling order equals the
  // mailbox drain order. Enforce that here — an append from an I/O
  // shard (or any other thread) would silently interleave records.
  HARMONY_ASSERT_MSG(controller_->on_owner_thread(),
                     "journal append off the controller thread");
  // Every journal opens with the generation of the snapshot it extends;
  // recovery uses it to discard a journal that predates the snapshot on
  // disk (a crash inside snapshot_now() between the rename and the
  // truncation leaves exactly that pair behind).
  if (!gen_stamped_) {
    journal_.append(list_build({"GEN", format_u64(generation_)}));
    gen_stamped_ = true;
  }
  journal_.append(payload);
}

void Persistence::on_controller_event(const core::ControllerEvent& event) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  append_journal(encode_event(event));
}

void Persistence::on_epoch_commit() {
  HARMONY_ASSERT_MSG(controller_->on_owner_thread(),
                     "epoch commit off the controller thread");
  std::lock_guard<std::mutex> lock(journal_mutex_);
  commit_epoch_locked();
}

void Persistence::on_domain_event(uint32_t domain, uint64_t dseq,
                                  const core::ControllerEvent& event) {
  // Mid-run compaction would snapshot the scratch controller, which
  // never hosts the instances the domains decided about.
  HARMONY_ASSERT_MSG(config_.snapshot_every_epochs == 0,
                     "partitioned journaling requires baseline-only "
                     "snapshots (snapshot_every_epochs = 0)");
  std::lock_guard<std::mutex> lock(journal_mutex_);
  if (!have_snapshot_) {
    // The baseline must land before the first domain record: the
    // single-controller path can let the first epoch commit snapshot
    // instead of keeping the journal (the snapshot contains that
    // epoch's effect), but the scratch controller never sees the
    // instances, so truncating here would lose the record for good.
    last_error_ = snapshot_now();
    if (!last_error_.ok()) return;
  }
  append_journal(list_build({"EVD", format_u64(domain), format_u64(dseq),
                             encode_event(event)}));
}

void Persistence::on_domain_epoch_commit(uint32_t /*domain*/) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  commit_epoch_locked();
}

void Persistence::commit_epoch_locked() {
  if (!last_error_.ok()) return;  // wedged: stop touching the disk
  ++epochs_since_snapshot_;
  const bool compact =
      !have_snapshot_ ||
      (config_.snapshot_every_epochs > 0 &&
       epochs_since_snapshot_ >= config_.snapshot_every_epochs &&
       journal_live_bytes_ + journal_.pending_bytes() >=
           config_.snapshot_min_journal_bytes);
  if (compact) {
    last_error_ = snapshot_now();
    return;
  }
  ++epochs_since_sync_;
  if (config_.fsync_every_epochs == 0) {
    metric::ScopedSpan span("journal.append");
    last_error_ = commit_pending_locked(/*sync=*/true);
    epochs_since_sync_ = 0;
    return;
  }
  bool sync = epochs_since_sync_ >= config_.fsync_every_epochs;
  if (sync && config_.fsync_min_interval_ms > 0) {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_sync_time_ <
        std::chrono::milliseconds(config_.fsync_min_interval_ms)) {
      sync = false;  // inside the rate-limit window; retry next epoch
    } else {
      last_sync_time_ = now;
    }
  }
  {
    metric::ScopedSpan span("journal.append");
    last_error_ = commit_pending_locked(/*sync=*/false);
  }
  if (sync) epochs_since_sync_ = 0;
  // Hand the due fsync to the sync thread and surface any error it hit
  // on an earlier one; the write above is the only disk wait this path
  // ever takes.
  {
    std::lock_guard<std::mutex> lock(sync_mutex_);
    if (!sync_error_.ok() && last_error_.ok()) last_error_ = sync_error_;
    if (sync) sync_requested_ = true;
  }
  if (sync) sync_cv_.notify_one();
}

Status Persistence::commit_pending_locked(bool sync) {
  const uint64_t pending_bytes = journal_.pending_bytes();
  const uint64_t start_offset = journal_live_bytes_;
  // Capture the framed bytes before commit() clears them; the streamed
  // bytes must equal the file bytes exactly so a standby's journal is a
  // byte-for-byte mirror.
  std::string streamed;
  if (tap_ != nullptr && pending_bytes > 0) streamed = journal_.pending();
  Status status = journal_.commit(sync);
  if (!status.ok()) return status;
  if (pending_bytes > 0) {
    journal_live_bytes_ += pending_bytes;
    journal_bytes_total_->add(pending_bytes);
    if (tap_ != nullptr) {
      tap_->on_journal_commit(generation_, start_offset, streamed);
    }
  }
  return status;
}

void Persistence::record_session(const std::string& token,
                                 std::vector<core::InstanceId> instances) {
  std::vector<std::string> ids;
  for (core::InstanceId id : instances) ids.push_back(format_u64(id));
  {
    std::lock_guard<std::mutex> lock(journal_mutex_);
    append_journal(list_build({"SESSION", token, list_build(ids)}));
  }
  if (instances.empty()) {
    sessions_.erase(token);
  } else {
    sessions_[token] = std::move(instances);
  }
}

void Persistence::drop_session(const std::string& token) {
  record_session(token, {});
}

Status Persistence::flush() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  // Cluster setup does not pass through epochs, so a controller that
  // has only been configured (nodes added, nothing registered) has no
  // baseline snapshot yet; "make everything durable" includes it.
  if (!have_snapshot_) {
    Status status = snapshot_now();
    if (!status.ok() && last_error_.ok()) last_error_ = status;
    return status;
  }
  Status status = commit_pending_locked(/*sync=*/true);
  if (!status.ok() && last_error_.ok()) last_error_ = status;
  epochs_since_sync_ = 0;
  return status;
}

// --- snapshot ----------------------------------------------------------------

Status Persistence::write_snapshot_file(const std::string& data) {
  const std::string tmp = config_.dir + "/" + kSnapshotTmpFile;
  int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return errno_error("open snapshot", tmp);
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Error error = errno_error("write snapshot", tmp);
      ::close(fd);
      return error;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Error error = errno_error("fsync snapshot", tmp);
    ::close(fd);
    return error;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), snapshot_path().c_str()) != 0) {
    return errno_error("rename snapshot", tmp);
  }
  return fsync_path(config_.dir);
}

Status Persistence::snapshot_now() {
  // A streaming standby must receive every record that precedes the
  // compaction marker: the journal reset below drops buffered records,
  // so push them down the stream (and into the file) first.
  if (tap_ != nullptr && journal_.pending_bytes() > 0) {
    Status committed = commit_pending_locked(/*sync=*/false);
    if (!committed.ok()) return committed;
  }
  metric::ScopedSpan span("snapshot.write");
  const uint64_t start_us = metric::telemetry_now_us();
  const core::SystemState& state = controller_->state();
  std::string data;
  uint64_t count = 0;
  auto emit = [&](const std::string& payload) {
    data.append(encode_record(payload));
    ++count;
  };

  const uint64_t next_generation = generation_ + 1;
  emit(list_build({"SNAP", str_format("%d", kSnapshotVersion),
                   format_u64(next_generation),
                   format_u64(controller_->next_instance_id()),
                   format_u64(controller_->reconfigurations()),
                   format_number(controller_->now())}));

  for (const auto& node : state.topology().nodes()) {
    emit(list_build({"NODE", node.hostname, format_number(node.speed),
                     format_number(node.memory_mb), node.os}));
  }
  for (const auto& link : state.topology().links()) {
    emit(list_build({"LINK", state.topology().node(link.a).hostname,
                     state.topology().node(link.b).hostname,
                     format_number(link.bandwidth_mbps),
                     format_number(link.latency_ms)}));
  }
  if (state.pool != nullptr) {
    for (const auto& node : state.topology().nodes()) {
      if (!state.pool->is_online(node.id)) {
        emit(list_build({"OFFLINE", node.hostname}));
      }
      if (int load = state.pool->external_load(node.id); load != 0) {
        emit(list_build({"XLOAD", node.hostname, str_format("%d", load)}));
      }
    }
  }

  for (const auto& instance : state.instances) {
    emit(list_build({"INST", format_u64(instance.id),
                     format_number(instance.arrival_time), instance.script}));
    for (const auto& bundle : instance.bundles) {
      std::vector<std::string> entries;
      for (const auto& entry : bundle.allocation.entries) {
        entries.push_back(list_build(
            {entry.requirement.role, str_format("%d", entry.requirement.index),
             entry.requirement.hostname_glob, entry.requirement.os,
             format_number(entry.requirement.memory_mb),
             state.topology().node(entry.node).hostname}));
      }
      emit(list_build({"BST", format_u64(instance.id), bundle.spec.bundle,
                       bundle.configured ? "1" : "0",
                       format_number(bundle.last_switch_time),
                       encode_choice(bundle.choice), list_build(entries)}));
    }
  }

  for (const auto& [token, ids] : sessions_) {
    std::vector<std::string> id_strings;
    for (core::InstanceId id : ids) id_strings.push_back(format_u64(id));
    emit(list_build({"SESS", token, list_build(id_strings)}));
  }

  // Completeness marker: a snapshot that does not end with a matching
  // END record is rejected at load time.
  data.append(encode_record(list_build({"END", format_u64(count)})));

  Status written = write_snapshot_file(data);
  if (!written.ok()) return written;

  // The journal's content is now redundant. If the process dies before
  // the truncation lands, the next recovery sees the old GEN record and
  // discards the journal as stale rather than replaying it.
  if (journal_.is_open()) {
    Status reset = journal_.reset();
    if (!reset.ok()) return reset;
  }
  generation_ = next_generation;
  gen_stamped_ = false;
  have_snapshot_ = true;
  epochs_since_snapshot_ = 0;
  epochs_since_sync_ = 0;
  journal_live_bytes_ = 0;
  last_sync_time_ = std::chrono::steady_clock::now();
  snapshots_total_->increment();
  snapshot_us_->record(metric::telemetry_now_us() - start_us);
  // Standbys that are caught up mirror the compaction locally (their
  // replayed state is equivalent by determinism); ones that are behind
  // fall back to a full resync when their generation no longer matches.
  if (tap_ != nullptr) tap_->on_compaction(generation_);
  return Status::Ok();
}

// --- recovery ----------------------------------------------------------------

Status Persistence::recover() {
  struct ::stat snapshot_stat {};
  const bool have_snapshot_file =
      ::stat(snapshot_path().c_str(), &snapshot_stat) == 0;
  struct ::stat journal_stat {};
  const bool have_journal_file =
      ::stat(journal_path().c_str(), &journal_stat) == 0 &&
      journal_stat.st_size > 0;
  have_snapshot_ = have_snapshot_file;
  if (!have_snapshot_file && !have_journal_file) return Status::Ok();

  HARMONY_ASSERT_MSG(
      controller_->live_instances() == 0 && !controller_->cluster_finalized(),
      "recovery requires a fresh controller");
  // The journal cannot exist without the snapshot that preceded it (the
  // baseline snapshot is written at the first epoch commit, before the
  // journal ever keeps records across a restart). A journal with no
  // snapshot means the snapshot was deleted externally.
  if (!have_snapshot_file) {
    return corrupt("journal present but snapshot missing: " + snapshot_path());
  }

  // Pin controller time to the recorded timeline. Left installed after
  // recovery (holding the last recorded time) so granularity gating
  // keeps working; callers may reinstall a forward-running source.
  controller_->set_time_source([this] { return replay_time_; });

  Status loaded = load_snapshot();
  if (!loaded.ok()) return loaded;

  bool gen_checked = false;
  bool journal_stale = false;
  auto replayed = Journal::replay(
      journal_path(),
      [this, &gen_checked, &journal_stale](const std::string& payload) {
        auto fields = list_parse(payload);
        if (!fields.ok() || fields->empty()) {
          return Status(corrupt("unparseable journal record: " + payload));
        }
        if (!gen_checked) {
          // The first record of every journal names the snapshot
          // generation it extends.
          if ((*fields)[0] != "GEN" || fields->size() != 2) {
            return Status(
                corrupt("journal missing its GEN header: " + payload));
          }
          uint64_t generation = 0;
          if (!parse_u64((*fields)[1], &generation) ||
              generation > generation_) {
            return Status(corrupt(str_format(
                "journal generation %s does not match snapshot generation "
                "%llu",
                (*fields)[1].c_str(),
                static_cast<unsigned long long>(generation_))));
          }
          gen_checked = true;
          if (generation < generation_) {
            // Compaction crashed between the snapshot rename and the
            // journal truncation: this journal predates the snapshot and
            // its content is already part of it. Stop replaying; the
            // caller discards the file. The error code is a sentinel —
            // it never escapes recover().
            journal_stale = true;
            return Status(
                Error{ErrorCode::kCorruption, "stale pre-snapshot journal"});
          }
          return Status::Ok();
        }
        if ((*fields)[0] == "SESSION") return apply_session_record(*fields);
        if ((*fields)[0] == "EV") return replay_event(*fields);
        if ((*fields)[0] == "EVD") return apply_evd_record(payload, *fields);
        return Status(corrupt("unknown journal record: " + payload));
      },
      /*repair=*/true);
  if (!replayed.ok()) {
    if (!journal_stale) {
      return Status(replayed.error().code, replayed.error().message);
    }
    // No event of the stale journal was applied: the GEN check fires on
    // its first record. Empty the file so appends restart cleanly.
    if (::truncate(journal_path().c_str(), 0) != 0) {
      return errno_error("truncate", journal_path());
    }
    recovery_.journal_discarded_stale = true;
    recovery_.recovered = true;
    journal_live_bytes_ = 0;
    gen_stamped_ = false;
  } else {
    recovery_.recovered = true;
    recovery_.journal_records = replayed->records;
    recovery_.journal_truncated = replayed->truncated;
    journal_live_bytes_ = replayed->valid_bytes;
    // A non-empty journal already carries its GEN header.
    gen_stamped_ = replayed->records > 0;
  }
  // Swap the replay-scratch time source for one that holds the final
  // recorded time by value, so it stays valid if this object dies
  // before the controller.
  const double recovered_time = replay_time_;
  controller_->set_time_source([recovered_time] { return recovered_time; });
  return Status::Ok();
}

Status Persistence::replay_event(const std::vector<std::string>& fields) {
  if (fields.size() < 3) return corrupt("short event record");
  const std::string& verb = fields[1];
  double time = 0;
  if (!parse_double(fields[2], &time)) {
    return corrupt("bad event time: " + fields[2]);
  }
  replay_time_ = time;

  if (verb == "REG") {
    if (fields.size() != 5) return corrupt("bad REG record");
    uint64_t expected_id = 0;
    if (!parse_u64(fields[3], &expected_id)) {
      return corrupt("bad REG instance id: " + fields[3]);
    }
    auto id = controller_->register_script(fields[4]);
    if (!id.ok()) {
      return Status(id.error().code,
                    "replaying registration: " + id.error().message);
    }
    if (id.value() != expected_id) {
      // Determinism is the whole contract; a diverging id means the
      // snapshot and journal disagree about history.
      return corrupt(str_format("replayed registration got id %llu, journal "
                                "recorded %llu",
                                static_cast<unsigned long long>(id.value()),
                                static_cast<unsigned long long>(expected_id)));
    }
    return Status::Ok();
  }
  if (verb == "DEP") {
    if (fields.size() != 4) return corrupt("bad DEP record");
    uint64_t id = 0;
    if (!parse_u64(fields[3], &id)) {
      return corrupt("bad DEP instance id: " + fields[3]);
    }
    return controller_->unregister(id);
  }
  if (verb == "LOAD") {
    if (fields.size() != 5) return corrupt("bad LOAD record");
    double tasks = 0;
    if (!parse_double(fields[4], &tasks)) {
      return corrupt("bad LOAD value: " + fields[4]);
    }
    return controller_->report_external_load(fields[3],
                                             static_cast<int>(tasks));
  }
  if (verb == "NODE") {
    if (fields.size() != 5) return corrupt("bad NODE record");
    return controller_->set_node_online(fields[3], fields[4] == "1");
  }
  if (verb == "OPT") {
    if (fields.size() != 6) return corrupt("bad OPT record");
    uint64_t id = 0;
    if (!parse_u64(fields[3], &id)) {
      return corrupt("bad OPT instance id: " + fields[3]);
    }
    auto choice = decode_choice(fields[5]);
    if (!choice.ok()) return Status(choice.error().code, choice.error().message);
    return controller_->set_option(id, fields[4], choice.value());
  }
  if (verb == "RSZ") {
    if (fields.size() != 6) return corrupt("bad RSZ record");
    uint64_t id = 0;
    if (!parse_u64(fields[3], &id)) {
      return corrupt("bad RSZ instance id: " + fields[3]);
    }
    double workers = 0;
    if (!parse_double(fields[5], &workers)) {
      return corrupt("bad RSZ degree: " + fields[5]);
    }
    return controller_->resize(id, fields[4], workers);
  }
  if (verb == "REEVAL") {
    return controller_->reevaluate();
  }
  return corrupt("unknown event verb: " + verb);
}

Status Persistence::apply_session_record(const std::vector<std::string>& fields) {
  if (fields.size() != 3) {
    return corrupt("bad session record: " + list_build(fields));
  }
  auto ids = list_parse(fields[2]);
  if (!ids.ok()) return corrupt("bad session ids: " + fields[2]);
  std::vector<core::InstanceId> instances;
  for (const auto& id_text : *ids) {
    uint64_t id = 0;
    if (!parse_u64(id_text, &id)) {
      return corrupt("bad session instance id: " + id_text);
    }
    instances.push_back(id);
  }
  if (instances.empty()) {
    sessions_.erase(fields[1]);
  } else {
    sessions_[fields[1]] = std::move(instances);
  }
  return Status::Ok();
}

Status Persistence::apply_evd_record(const std::string& payload,
                                     const std::vector<std::string>& fields) {
  // Domain-tagged event: (domain, dseq, nested EV record). The merged
  // commit order in the file is a valid replay order for a single
  // controller — domains are disjoint — but each domain's own stream
  // must be gap-free: a missing dseq means a worker's events were lost
  // or reordered, and the replayed decisions could silently diverge.
  if (fields.size() != 4) return corrupt("bad EVD record: " + payload);
  uint64_t domain = 0, dseq = 0;
  if (!parse_u64(fields[1], &domain) || !parse_u64(fields[2], &dseq)) {
    return corrupt("bad EVD tag: " + payload);
  }
  const uint64_t expected = ++replay_dseq_[static_cast<uint32_t>(domain)];
  if (dseq != expected) {
    return corrupt(str_format(
        "domain %llu journal gap: expected seq %llu, found %llu",
        static_cast<unsigned long long>(domain),
        static_cast<unsigned long long>(expected),
        static_cast<unsigned long long>(dseq)));
  }
  auto inner = list_parse(fields[3]);
  if (!inner.ok() || inner->empty() || (*inner)[0] != "EV") {
    return corrupt("bad EVD payload: " + fields[3]);
  }
  return replay_event(*inner);
}

Status Persistence::flush_pending_instance() {
  if (!pending_instance_.active) return Status::Ok();
  Status status = controller_->restore_instance(
      pending_instance_.script, pending_instance_.id,
      pending_instance_.arrival_time, pending_instance_.bundles);
  pending_instance_ = {};
  return status;
}

Status Persistence::load_snapshot() {
  snapshot_cluster_done_ = false;
  snapshot_end_seen_ = false;
  auto replayed = Journal::replay(
      snapshot_path(),
      [this](const std::string& payload) {
        return apply_snapshot_record(payload);
      },
      /*repair=*/false);
  if (!replayed.ok()) {
    return Status(replayed.error().code, replayed.error().message);
  }
  if (!snapshot_end_seen_ ||
      replayed->records != snapshot_expected_records_ + 1 ||
      replayed->truncated) {
    return corrupt(str_format(
        "snapshot %s is incomplete (%llu records, END %s)",
        snapshot_path().c_str(),
        static_cast<unsigned long long>(replayed->records),
        snapshot_end_seen_ ? "present" : "missing"));
  }
  recovery_.snapshot_records = replayed->records;
  controller_->restore_counters(snapshot_next_id_, snapshot_reconfigs_);
  return Status::Ok();
}

Status Persistence::apply_snapshot_record(const std::string& payload) {
  auto fields_or = list_parse(payload);
  if (!fields_or.ok() || fields_or->empty()) {
    return corrupt("unparseable snapshot record: " + payload);
  }
  const std::vector<std::string>& fields = *fields_or;
  const std::string& tag = fields[0];

  // Instance bodies (BST) must directly follow their INST record; any
  // other tag closes the open instance.
  if (tag != "BST" && tag != "INST") {
    Status flushed = flush_pending_instance();
    if (!flushed.ok()) return flushed;
  }

  if (tag == "SNAP") {
    if (fields.size() != 6) return corrupt("bad SNAP header");
    long long version = 0;
    if (!parse_int64(fields[1], &version) || version != kSnapshotVersion) {
      return corrupt("unsupported snapshot version: " + fields[1]);
    }
    if (!parse_u64(fields[2], &generation_) ||
        !parse_u64(fields[3], &snapshot_next_id_) ||
        !parse_u64(fields[4], &snapshot_reconfigs_) ||
        !parse_double(fields[5], &replay_time_)) {
      return corrupt("bad SNAP header: " + payload);
    }
    return Status::Ok();
  }
  if (tag == "NODE") {
    if (fields.size() != 5) return corrupt("bad NODE record");
    rsl::NodeAd ad;
    ad.name = fields[1];
    ad.os = fields[4];
    if (!parse_double(fields[2], &ad.speed) ||
        !parse_double(fields[3], &ad.memory_mb)) {
      return corrupt("bad NODE numbers: " + payload);
    }
    return controller_->add_node(ad);
  }
  if (tag == "LINK") {
    if (fields.size() != 5) return corrupt("bad LINK record");
    double bandwidth = 0, latency = 0;
    if (!parse_double(fields[3], &bandwidth) ||
        !parse_double(fields[4], &latency)) {
      return corrupt("bad LINK numbers: " + payload);
    }
    return controller_->link_hosts(fields[1], fields[2], bandwidth, latency);
  }

  // Every record type below needs the resource pool.
  if (!snapshot_cluster_done_) {
    Status finalized = controller_->finalize_cluster();
    if (!finalized.ok()) return finalized;
    snapshot_cluster_done_ = true;
  }

  if (tag == "OFFLINE") {
    if (fields.size() != 2) return corrupt("bad OFFLINE record");
    return controller_->restore_node_online(fields[1], false);
  }
  if (tag == "XLOAD") {
    if (fields.size() != 3) return corrupt("bad XLOAD record");
    long long tasks = 0;
    if (!parse_int64(fields[2], &tasks)) {
      return corrupt("bad XLOAD count: " + fields[2]);
    }
    return controller_->restore_external_load(fields[1],
                                              static_cast<int>(tasks));
  }
  if (tag == "INST") {
    if (fields.size() != 4) return corrupt("bad INST record");
    Status flushed = flush_pending_instance();
    if (!flushed.ok()) return flushed;
    pending_instance_.active = true;
    if (!parse_u64(fields[1], &pending_instance_.id) ||
        !parse_double(fields[2], &pending_instance_.arrival_time)) {
      return corrupt("bad INST header: " + payload);
    }
    pending_instance_.script = fields[3];
    return Status::Ok();
  }
  if (tag == "BST") {
    if (fields.size() != 7) return corrupt("bad BST record");
    uint64_t id = 0;
    if (!parse_u64(fields[1], &id) || !pending_instance_.active ||
        id != pending_instance_.id) {
      return corrupt("BST record outside its instance: " + payload);
    }
    core::Controller::RestoredBundle bundle;
    bundle.bundle = fields[2];
    bundle.configured = fields[3] == "1";
    if (!parse_double(fields[4], &bundle.last_switch_time)) {
      return corrupt("bad BST switch time: " + fields[4]);
    }
    auto choice = decode_choice(fields[5]);
    if (!choice.ok()) return Status(choice.error().code, choice.error().message);
    bundle.choice = choice.value();
    auto entries = list_parse(fields[6]);
    if (!entries.ok()) return corrupt("bad BST entries: " + fields[6]);
    for (const auto& entry_text : *entries) {
      auto parts = list_parse(entry_text);
      if (!parts.ok() || parts->size() != 6) {
        return corrupt("bad BST entry: " + entry_text);
      }
      core::Controller::RestoredAllocationEntry entry;
      entry.role = (*parts)[0];
      long long index = 0;
      if (!parse_int64((*parts)[1], &index) ||
          !parse_double((*parts)[4], &entry.memory_mb)) {
        return corrupt("bad BST entry numbers: " + entry_text);
      }
      entry.index = static_cast<int>(index);
      entry.hostname_glob = (*parts)[2];
      entry.os = (*parts)[3];
      entry.hostname = (*parts)[5];
      bundle.entries.push_back(std::move(entry));
    }
    pending_instance_.bundles.push_back(std::move(bundle));
    return Status::Ok();
  }
  if (tag == "SESS") {
    if (fields.size() != 3) return corrupt("bad SESS record");
    auto ids = list_parse(fields[2]);
    if (!ids.ok()) return corrupt("bad SESS ids: " + fields[2]);
    std::vector<core::InstanceId> instances;
    for (const auto& id_text : *ids) {
      uint64_t id = 0;
      if (!parse_u64(id_text, &id)) {
        return corrupt("bad SESS instance id: " + id_text);
      }
      instances.push_back(id);
    }
    sessions_[fields[1]] = std::move(instances);
    return Status::Ok();
  }
  if (tag == "END") {
    if (fields.size() != 2 || !parse_u64(fields[1], &snapshot_expected_records_)) {
      return corrupt("bad END record: " + payload);
    }
    snapshot_end_seen_ = true;
    return Status::Ok();
  }
  return corrupt("unknown snapshot record: " + payload);
}

// --- replication -------------------------------------------------------------

void Persistence::set_replication_tap(ReplicationTap* tap) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  tap_ = tap;
}

ReplicationPosition Persistence::replication_position() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  return ReplicationPosition{generation_, journal_live_bytes_};
}

Status Persistence::apply_stream_record(const std::string& payload) {
  auto fields_or = list_parse(payload);
  if (!fields_or.ok() || fields_or->empty()) {
    return corrupt("unparseable replicated record: " + payload);
  }
  const std::vector<std::string>& fields = *fields_or;
  const std::string& tag = fields[0];
  if (tag == "GEN") {
    // The primary's journal opens with the generation it extends; a
    // mismatch means this standby's snapshot diverged from the stream
    // (it needs a full resync, which the replicator drives).
    uint64_t generation = 0;
    if (fields.size() != 2 || !parse_u64(fields[1], &generation)) {
      return corrupt("bad replicated GEN record: " + payload);
    }
    if (generation != generation_) {
      return corrupt(str_format(
          "replicated journal opens generation %llu but standby is at %llu",
          static_cast<unsigned long long>(generation),
          static_cast<unsigned long long>(generation_)));
    }
    return Status::Ok();
  }
  if (tag == "SESSION") return apply_session_record(fields);
  if (tag == "EV") return replay_event(fields);
  if (tag == "EVD") return apply_evd_record(payload, fields);
  return corrupt("unknown replicated record: " + payload);
}

Status Persistence::apply_replicated(std::string_view bytes,
                                     uint64_t* applied_records) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  HARMONY_ASSERT_MSG(standby_, "apply_replicated on a primary");
  if (applied_records != nullptr) *applied_records = 0;
  if (!last_error_.ok()) return last_error_;
  stream_buffer_.append(bytes);

  uint64_t applied = 0;
  size_t offset = 0;
  Status status = Status::Ok();
  while (stream_buffer_.size() - offset >= kRecordHeaderBytes) {
    const uint32_t length = read_u32(stream_buffer_.data() + offset);
    const uint32_t expected_crc = read_u32(stream_buffer_.data() + offset + 4);
    if (length > kMaxRecordBytes) {
      status = corrupt(
          str_format("replicated record length %u exceeds the record bound",
                     static_cast<unsigned>(length)));
      break;
    }
    if (stream_buffer_.size() - offset - kRecordHeaderBytes < length) {
      break;  // torn tail: the rest arrives with the next batch
    }
    const std::string payload =
        stream_buffer_.substr(offset + kRecordHeaderBytes, length);
    if (crc32c(payload) != expected_crc) {
      status = corrupt("replicated record failed its checksum");
      break;
    }
    status = apply_stream_record(payload);
    if (!status.ok()) break;
    // Mirror the framed bytes verbatim: the standby's journal file is
    // byte-identical to the primary's at every applied offset, so its
    // own recovery and its stream position need no translation.
    journal_.append_raw(std::string_view(stream_buffer_)
                            .substr(offset, kRecordHeaderBytes + length));
    offset += kRecordHeaderBytes + length;
    ++applied;
    // The GEN header lands through append_raw, so the stamp that
    // append_journal would have written is already present.
    gen_stamped_ = true;
  }
  stream_buffer_.erase(0, offset);
  if (applied_records != nullptr) *applied_records = applied;
  if (status.ok() && applied > 0) {
    status = commit_pending_locked(/*sync=*/false);
  }
  if (!status.ok() && last_error_.ok()) last_error_ = status;
  return status;
}

Status Persistence::install_snapshot(const std::string& snapshot_bytes,
                                     uint64_t expected_generation) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  HARMONY_ASSERT_MSG(standby_, "install_snapshot on a primary");
  if (controller_->live_instances() != 0 || controller_->cluster_finalized()) {
    // There is no way to unwind applied controller state; the node
    // manager rebuilds the standby (fresh controller, wiped directory)
    // when it sees this.
    return Status(Error{ErrorCode::kInvalidArgument,
                        "full resync requires a fresh controller; tear down "
                        "and rebuild the standby"});
  }
  stream_buffer_.clear();
  sessions_.clear();
  replay_dseq_.clear();
  Status written = write_snapshot_file(snapshot_bytes);
  if (!written.ok()) return written;
  have_snapshot_ = true;
  Status loaded = load_snapshot();
  if (!loaded.ok()) return loaded;
  if (generation_ != expected_generation) {
    return corrupt(str_format(
        "installed snapshot carries generation %llu, primary announced %llu",
        static_cast<unsigned long long>(generation_),
        static_cast<unsigned long long>(expected_generation)));
  }
  if (journal_.is_open()) {
    Status reset = journal_.reset();
    if (!reset.ok()) return reset;
  }
  journal_live_bytes_ = 0;
  gen_stamped_ = false;
  recovery_.recovered = true;
  recovery_.snapshot_records = 0;  // resync, not a local recovery
  return Status::Ok();
}

Status Persistence::apply_compaction(uint64_t new_generation) {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  HARMONY_ASSERT_MSG(standby_, "apply_compaction on a primary");
  if (!stream_buffer_.empty()) {
    // The marker is sent in commit order, after every record of the old
    // generation; a buffered partial record means the stream skipped.
    return corrupt("compaction marker arrived over an incomplete record");
  }
  if (new_generation != generation_ + 1) {
    return corrupt(str_format(
        "compaction to generation %llu but standby is at %llu",
        static_cast<unsigned long long>(new_generation),
        static_cast<unsigned long long>(generation_)));
  }
  // Write our own snapshot of the mirrored state: deterministic replay
  // makes it equivalent to the primary's, and producing it locally
  // spares the stream the full state transfer.
  Status status = snapshot_now();
  if (!status.ok() && last_error_.ok()) last_error_ = status;
  return status;
}

void Persistence::reset_stream_tail() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  stream_buffer_.clear();
}

Status Persistence::sync_replica() {
  std::lock_guard<std::mutex> lock(journal_mutex_);
  Status status = commit_pending_locked(/*sync=*/true);
  if (!status.ok() && last_error_.ok()) last_error_ = status;
  return status;
}

Status Persistence::promote() {
  {
    std::lock_guard<std::mutex> lock(journal_mutex_);
    HARMONY_ASSERT_MSG(standby_, "promote on a node that is already primary");
    // A torn buffered tail never finished committing on the dead
    // primary — no client was acked past it — so the new history
    // legitimately ends at the last complete record.
    stream_buffer_.clear();
    standby_ = false;
    // Swap the live replay clock for a by-value pin at the last
    // replicated time; the server installs its own source afterwards.
    const double last_time = replay_time_;
    controller_->set_time_source([last_time] { return last_time; });
  }
  // Outside the journal mutex: the verification pass journals its own
  // events through the sink callbacks, which re-enter the commit path.
  controller_->set_event_sink(this);
  if (have_snapshot_) {
    Status verify = controller_->reevaluate();
    if (!verify.ok()) return verify;
  }
  if (config_.fsync_every_epochs > 0 && !sync_thread_.joinable()) {
    sync_thread_ = std::thread(&Persistence::sync_loop, this);
  }
  return flush();
}

}  // namespace harmony::persist
