// Durability for the adaptation controller: an event-sourced journal of
// controller inputs plus periodic snapshots of the full system state.
//
// Model. Every input that can change a decision (registration text,
// departures, external-load reports, node online flips, steering,
// periodic re-evaluations) flows through core::EventSink and is appended
// to a write-ahead journal, one write(2) per controller epoch. Because
// the optimizer is deterministic and the only hidden input — time — is
// recorded per event, replaying the journal into a controller restored
// from the last snapshot reproduces the pre-crash decision sequence
// bit-for-bit (persist_recovery_test asserts this with the differential
// fingerprint harness).
//
// Compaction. Every `snapshot_every_epochs` commits the full state
// (topology, pool occupancy, instances with their choices and
// placements, client sessions) is serialized to a fresh snapshot file —
// written to a temp path, fsynced, renamed — and the journal is
// truncated. Snapshots carry a generation counter in their SNAP header
// and every journal opens with a GEN record naming the generation it
// extends, so a crash between the rename and the truncation (new
// snapshot, stale journal) is recognized at recovery and the stale
// journal is discarded instead of replayed. The first commit after a
// cold start writes the baseline snapshot, which is what captures the
// cluster definition.
//
// Durability window. Journal bytes are written every epoch (they survive
// a crash of the server process immediately) and fsynced by a background
// group-commit thread every `fsync_every_epochs` epochs — the decision
// path pays one buffered write(2) and never waits on disk latency, the
// classic WAL-writer arrangement. Only an OS or power failure can lose
// the unsynced tail, and recovery handles a torn tail by truncating at
// the last valid record — never by refusing to start.
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/controller.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "persist/journal.h"

namespace harmony::persist {

struct PersistConfig {
  // Directory for journal + snapshot; created if missing.
  std::string dir;
  // Epochs between snapshot compactions; 0 = baseline snapshot only.
  uint64_t snapshot_every_epochs = 64;
  // A due compaction is deferred while the journal holds fewer bytes
  // than this: the snapshot write plus its two fsyncs dwarf the replay
  // cost of a small journal. 0 compacts on the epoch count alone.
  uint64_t snapshot_min_journal_bytes = 64 * 1024;
  // Epochs between group-commit fsyncs, handed to the background sync
  // thread so the decision path never blocks on them; 0 = synchronous
  // fsync on every epoch commit (maximum durability, pays disk latency
  // per decision, no background thread).
  uint64_t fsync_every_epochs = 32;
  // Minimum wall-clock spacing between group-commit fsyncs, bounding
  // the disk traffic of epoch bursts; a due sync inside the window is
  // retried on the next commit. Ignored when fsync_every_epochs is 0
  // (explicit maximum durability). 0 disables the rate limit.
  uint64_t fsync_min_interval_ms = 20;
};

struct RecoveryReport {
  bool recovered = false;        // prior snapshot and/or journal existed
  uint64_t snapshot_records = 0;
  uint64_t journal_records = 0;
  bool journal_truncated = false;  // a torn/corrupt tail was cut off
  // The journal predated the snapshot (crash during compaction between
  // the snapshot rename and the journal truncation) and was discarded:
  // everything in it is contained in the snapshot that replaced it.
  bool journal_discarded_stale = false;
};

// A resumable client session: the instances a connection registered,
// keyed by the server-issued token. Journaled and snapshotted alongside
// controller state so clients can RESUME across a server restart.
using SessionMap = std::map<std::string, std::vector<core::InstanceId>>;

// Observer of the durable journal byte stream, the feed a replication
// source forwards to warm standbys. on_journal_commit fires under the
// journal mutex immediately after a successful commit with exactly the
// bytes that landed in the file (framed records, so a standby can
// append them to its own journal verbatim); on_compaction fires after a
// snapshot truncated the journal and bumped the generation. Callers may
// be the controller thread or — in routed mode — any domain worker, so
// implementations must be internally synchronized and must never call
// back into Persistence.
class ReplicationTap {
 public:
  virtual ~ReplicationTap() = default;
  virtual void on_journal_commit(uint64_t generation, uint64_t start_offset,
                                 std::string_view bytes) = 0;
  virtual void on_compaction(uint64_t new_generation) = 0;
};

// A point in the replicated journal stream: byte offset within the
// journal file of `generation`. Offsets restart at 0 each compaction.
struct ReplicationPosition {
  uint64_t generation = 0;
  uint64_t offset = 0;
};

// Partitioned (DomainRouter) operation: the router's scratch controller
// never hosts instances — it carries the cluster definition for the
// baseline snapshot — and events arrive domain-tagged from worker
// threads through the core::DomainJournal interface, serialized by an
// internal mutex. Per-domain sequence numbers are validated gap-free at
// recovery; the file itself keeps the merged commit order, which is a
// valid replay order for the single recovery controller because
// domains are disjoint and the objective separable (core_domain_test
// holds the proof obligation). Partitioned journaling requires
// snapshot_every_epochs == 0: mid-run compaction would serialize the
// scratch controller, which never sees the instances.
class Persistence final : public core::EventSink, public core::DomainJournal {
 public:
  // Opens the persistence directory. When prior state exists the
  // controller — which must be fresh: no cluster, no instances — is
  // rebuilt from the snapshot plus the journal tail, the journal tail
  // is repaired (torn records truncated), one verification
  // re-evaluation pass runs, and the controller's time source is left
  // pinned at the last recorded event time (install a live source
  // afterwards if desired; it must not run backwards). Attaches as the
  // controller's event sink either way.
  static Result<std::unique_ptr<Persistence>> open(PersistConfig config,
                                                   core::Controller& controller);
  // Standby (replica) mode: recovers local state exactly like open(),
  // but attaches no event sink, runs no verification pass, and starts
  // no sync thread — the controller is advanced only by the replicated
  // stream (apply_replicated / install_snapshot / apply_compaction)
  // until promote() turns this node into a primary.
  static Result<std::unique_ptr<Persistence>> open_standby(
      PersistConfig config, core::Controller& controller);
  ~Persistence() override;

  Persistence(const Persistence&) = delete;
  Persistence& operator=(const Persistence&) = delete;

  const RecoveryReport& recovery() const { return recovery_; }

  // --- core::EventSink ----------------------------------------------------
  void on_controller_event(const core::ControllerEvent& event) override;
  void on_epoch_commit() override;

  // --- core::DomainJournal (worker threads; internally serialized) --------
  void on_domain_event(uint32_t domain, uint64_t dseq,
                       const core::ControllerEvent& event) override;
  void on_domain_epoch_commit(uint32_t domain) override;

  // --- sessions -----------------------------------------------------------
  // Registers/replaces a session's instance list; an empty list drops
  // the session. Journaled with the enclosing epoch.
  void record_session(const std::string& token,
                      std::vector<core::InstanceId> instances);
  void drop_session(const std::string& token);
  const SessionMap& sessions() const { return sessions_; }

  // --- maintenance --------------------------------------------------------
  // Serializes current state to the snapshot file (atomic rename) and
  // truncates the journal.
  Status snapshot_now();
  // Commits and fsyncs any buffered journal records immediately.
  Status flush();
  // First I/O error encountered on the commit path, sticky. The sink
  // callbacks cannot report errors, so the server polls this.
  Status io_status() const { return last_error_; }

  const Journal& journal() const { return journal_; }
  std::string journal_path() const;
  std::string snapshot_path() const;

  // --- replication (primary side) -----------------------------------------
  // Attaches the journal-stream observer. Set before traffic flows (it
  // is read under the journal mutex but installation itself is not
  // synchronized against in-flight commits).
  void set_replication_tap(ReplicationTap* tap);
  // Current durable stream position: (generation, committed bytes of
  // that generation's journal). Thread-safe.
  ReplicationPosition replication_position();
  uint64_t generation() const { return generation_; }

  // --- replication (standby side) -----------------------------------------
  bool standby() const { return standby_; }
  // Applies streamed journal bytes: every complete framed record is
  // validated (CRC), applied to the controller through the recovery
  // path, and appended verbatim to the local journal; a torn tail stays
  // buffered until the next call completes it. `applied_records` (may
  // be null) returns the records applied by this call.
  Status apply_replicated(std::string_view bytes, uint64_t* applied_records);
  // Full resync: installs the primary's snapshot file bytes (atomic
  // tmp/fsync/rename) and loads them into the controller, which must
  // still be fresh — a standby with diverged local state must be torn
  // down and rebuilt instead.
  Status install_snapshot(const std::string& snapshot_bytes,
                          uint64_t expected_generation);
  // The primary compacted: write our own snapshot of the mirrored state
  // (deterministic replay makes it equivalent), truncate the journal,
  // and advance to `new_generation`. The stream must be exactly caught
  // up (no buffered tail) — the marker arrives in commit order.
  Status apply_compaction(uint64_t new_generation);
  // Drops any buffered torn stream tail. A reconnecting standby
  // re-requests the stream from its committed offset, so the bytes of a
  // partial record buffered from the dead connection will arrive again
  // — keeping them would corrupt reassembly.
  void reset_stream_tail();
  // Durability point for the standby's mirror (commit + fsync).
  Status sync_replica();
  // Turns the standby into a primary: attaches as the controller's
  // event sink, runs the journaled verification pass, starts the group
  // commit thread, and flushes. Any torn stream tail is discarded — the
  // dead primary never durably shipped that record.
  Status promote();

 private:
  Persistence(PersistConfig config, core::Controller& controller);

  Status recover();
  Status load_snapshot();
  Status apply_snapshot_record(const std::string& payload);
  Status replay_event(const std::vector<std::string>& fields);
  // Shared journal-record appliers, used by recovery replay and by the
  // standby stream path (which sees the same record grammar).
  Status apply_session_record(const std::vector<std::string>& fields);
  Status apply_evd_record(const std::string& payload,
                          const std::vector<std::string>& fields);
  Status apply_stream_record(const std::string& payload);
  std::string encode_event(const core::ControllerEvent& event) const;
  // Appends to the journal, stamping the GEN header record first when
  // the journal is (logically) empty.
  void append_journal(const std::string& payload);
  // Body of on_epoch_commit; callers hold journal_mutex_.
  void commit_epoch_locked();
  // Commits buffered records, advances the live-byte watermark, and
  // feeds the replication tap the committed bytes. Callers hold
  // journal_mutex_.
  Status commit_pending_locked(bool sync);
  // Atomic snapshot-file write: tmp + fsync + rename + directory fsync.
  Status write_snapshot_file(const std::string& data);

  PersistConfig config_;
  core::Controller* controller_;
  // Serializes every append/commit entry point: domain workers call in
  // concurrently through DomainJournal, and the drain thread's session
  // records and flushes interleave with them. The single-controller
  // EventSink path takes it too — uncontended there, and it keeps one
  // discipline for both modes.
  std::mutex journal_mutex_;
  Journal journal_;
  SessionMap sessions_;
  RecoveryReport recovery_;
  Status last_error_;
  bool have_snapshot_ = false;
  // Generation of the snapshot on disk (0 = none yet). Each snapshot
  // carries its generation in the SNAP header, and each journal opens
  // with a GEN record naming the generation it extends, so recovery can
  // tell a live journal tail from a stale pre-compaction leftover.
  uint64_t generation_ = 0;
  // Whether the current journal already carries its GEN header record.
  bool gen_stamped_ = false;
  uint64_t epochs_since_snapshot_ = 0;
  uint64_t epochs_since_sync_ = 0;
  // Bytes committed to the journal since the last compaction (the live
  // portion a recovery would replay).
  uint64_t journal_live_bytes_ = 0;
  std::chrono::steady_clock::time_point last_sync_time_{};
  // Standby mode: no event sink, no sync thread; the controller is
  // driven by the replicated stream until promote().
  bool standby_ = false;
  // Streamed bytes not yet forming a complete framed record (a batch
  // may end mid-record; the remainder arrives with the next batch).
  std::string stream_buffer_;
  // Primary-side journal-stream observer; read under journal_mutex_.
  ReplicationTap* tap_ = nullptr;

  // Thread-safe instruments (process-global, resolved once): journal
  // volume on the commit path, fsync latency on the sync thread,
  // snapshot cost on the compaction path.
  metric::Counter* journal_bytes_total_ =
      &metric::telemetry_counter("persist.journal_bytes_total");
  metric::Counter* snapshots_total_ =
      &metric::telemetry_counter("persist.snapshots_total");
  metric::Histogram* fsync_us_ =
      &metric::telemetry_histogram("persist.fsync_us");
  metric::Histogram* snapshot_us_ =
      &metric::telemetry_histogram("persist.snapshot_us");

  // --- background group commit --------------------------------------------
  // Runs the due fsyncs so the epoch-commit (decision) path only ever
  // pays the buffered write(2). Not started when fsync_every_epochs is
  // 0 (synchronous syncs). The thread touches nothing but
  // Journal::sync() — which is safe against the appender — and the
  // three fields guarded by sync_mutex_.
  void sync_loop();
  std::thread sync_thread_;
  std::mutex sync_mutex_;
  std::condition_variable sync_cv_;
  bool sync_requested_ = false;   // guarded by sync_mutex_
  bool sync_stop_ = false;        // guarded by sync_mutex_
  Status sync_error_;             // guarded by sync_mutex_

  // --- recovery scratch ---------------------------------------------------
  double replay_time_ = 0;  // pinned controller now() during replay
  // Snapshot records arrive flat; instance restores are buffered until
  // all BST records of the instance have been seen.
  struct PendingInstance {
    bool active = false;
    core::InstanceId id = 0;
    double arrival_time = 0;
    std::string script;
    std::vector<core::Controller::RestoredBundle> bundles;
  };
  PendingInstance pending_instance_;
  Status flush_pending_instance();
  // Last replayed sequence number per domain stream; every EVD record
  // must extend its stream by exactly one.
  std::map<uint32_t, uint64_t> replay_dseq_;
  bool snapshot_cluster_done_ = false;  // finalize barrier during load
  uint64_t snapshot_expected_records_ = 0;
  bool snapshot_end_seen_ = false;
  core::InstanceId snapshot_next_id_ = 1;
  uint64_t snapshot_reconfigs_ = 0;
};

}  // namespace harmony::persist
