file(REMOVE_RECURSE
  "libharmony_db.a"
)
