// The paper's §6 demonstration as a runnable example: a hybrid
// client-server database whose clients Harmony flips from query
// shipping to data shipping as load grows. A compact version of
// bench/fig7_db_adaptation with a narrated timeline.
//
// Build & run:  ./build/examples/db_adaptation
#include <cstdio>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"

using namespace harmony;
using namespace harmony::apps;

int main() {
  std::printf("Active Harmony client-server database demo (paper §6)\n");
  std::printf("----------------------------------------------------\n");

  core::ControllerConfig config;
  config.optimizer.initial_policy =
      core::OptimizerConfig::InitialPolicy::kFirstFeasible;
  config.optimizer.reevaluate_on_arrival = false;
  SimHarness harness(config);
  if (!harness.controller().add_nodes_script(db_cluster_script(3)).ok() ||
      !harness.finalize().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }

  // Smaller relations than the full benchmark keep the demo snappy; the
  // adaptation decisions are identical.
  db::DbEngine engine(20000, 7);

  std::vector<std::unique_ptr<DbClientApp>> clients;
  for (int i = 1; i <= 3; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    client.seed = 100 + i;
    clients.push_back(
        std::make_unique<DbClientApp>(harness.context(), &engine, client));
  }

  auto& sim = harness.engine();
  auto narrate = [&](const char* what) {
    std::printf("[t=%6.0f] %s\n", sim.now(), what);
  };

  narrate("client 1 connects; Harmony configures it");
  if (!clients[0]->start().ok()) return 1;
  sim.schedule(120, [&] {
    narrate("client 2 connects");
    (void)clients[1]->start();
  });
  sim.schedule(240, [&] {
    narrate("client 3 connects — the server is now oversubscribed");
    (void)clients[2]->start();
  });
  // Periodic adaptation pass.
  std::function<void()> adapt = [&] {
    (void)harness.controller().reevaluate();
    if (sim.now() < 500) sim.schedule(60, adapt);
  };
  sim.schedule(50, adapt);

  // Narrate state every 60 s.
  std::function<void()> report = [&] {
    std::string line = "placements:";
    for (auto& client : clients) {
      if (client->queries_completed() == 0) {
        line += " -";
        continue;
      }
      line += str_format(" %s", db::placement_name(client->current_placement()));
      const auto* series = harness.metrics().find(client->metric_name());
      auto window = series->stats_window(60);
      if (window.count() > 0) line += str_format("(%.1fs)", window.mean());
    }
    narrate(line.c_str());
    if (sim.now() < 540) sim.schedule(60, report);
  };
  sim.schedule(60, report);

  sim.run_until(600);

  std::printf("\nfinal picture:\n");
  for (auto& client : clients) {
    const auto* series = harness.metrics().find(client->metric_name());
    std::printf("  %s: %llu queries, placement=%s, mean response %.2f s, "
                "cache hit rate %.0f%%\n",
                client->metric_name().c_str(),
                static_cast<unsigned long long>(client->queries_completed()),
                db::placement_name(client->current_placement()),
                series->mean(),
                100.0 * static_cast<double>(client->cache().hits()) /
                    std::max<uint64_t>(
                        1, client->cache().hits() + client->cache().misses()));
  }
  std::printf("  controller reconfigurations: %llu\n",
              static_cast<unsigned long long>(
                  harness.controller().reconfigurations()));
  for (auto& client : clients) client->stop();
  sim.run_until(700);
  return 0;
}
