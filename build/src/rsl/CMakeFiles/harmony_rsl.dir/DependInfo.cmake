
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsl/builtins.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/builtins.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/builtins.cc.o.d"
  "/root/repo/src/rsl/expr.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/expr.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/expr.cc.o.d"
  "/root/repo/src/rsl/interp.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/interp.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/interp.cc.o.d"
  "/root/repo/src/rsl/parser.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/parser.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/parser.cc.o.d"
  "/root/repo/src/rsl/rsl.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/rsl.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/rsl.cc.o.d"
  "/root/repo/src/rsl/spec.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/spec.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/spec.cc.o.d"
  "/root/repo/src/rsl/value.cc" "src/rsl/CMakeFiles/harmony_rsl.dir/value.cc.o" "gcc" "src/rsl/CMakeFiles/harmony_rsl.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
