file(REMOVE_RECURSE
  "libharmony_rsl.a"
)
