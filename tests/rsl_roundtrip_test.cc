// bundle_to_script round-trip property: parsing the emitted script
// yields a spec whose own serialization is byte-identical, and the
// re-parsed spec registers identically to the original. This is what
// lets the durability layer journal typed-API registrations as RSL
// text.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rsl/rsl.h"
#include "rsl/spec.h"
#include "test_scenarios.h"

namespace harmony::rsl {
namespace {

std::vector<BundleSpec> parse_script(const std::string& script) {
  std::vector<BundleSpec> bundles;
  RslHost host;
  host.on_bundle([&](const BundleSpec& bundle) {
    bundles.push_back(bundle);
    return Status::Ok();
  });
  Status status = host.eval_script(script);
  EXPECT_TRUE(status.ok()) << status.to_string() << "\nscript:\n" << script;
  return bundles;
}

void expect_round_trip(const std::string& script) {
  auto original = parse_script(script);
  ASSERT_FALSE(original.empty());
  for (const auto& bundle : original) {
    const std::string emitted = bundle_to_script(bundle);
    auto reparsed = parse_script(emitted);
    ASSERT_EQ(reparsed.size(), 1u) << emitted;
    // Byte-identical second serialization = the emitted form is a fixed
    // point: nothing is lost or reordered by another parse cycle.
    EXPECT_EQ(bundle_to_script(reparsed[0]), emitted);
    // Spot-check the semantic core survived.
    EXPECT_EQ(reparsed[0].application, bundle.application);
    EXPECT_EQ(reparsed[0].instance, bundle.instance);
    EXPECT_EQ(reparsed[0].bundle, bundle.bundle);
    ASSERT_EQ(reparsed[0].options.size(), bundle.options.size());
    for (size_t i = 0; i < bundle.options.size(); ++i) {
      const OptionSpec& a = bundle.options[i];
      const OptionSpec& b = reparsed[0].options[i];
      EXPECT_EQ(b.name, a.name);
      ASSERT_EQ(b.nodes.size(), a.nodes.size());
      for (size_t j = 0; j < a.nodes.size(); ++j) {
        EXPECT_EQ(b.nodes[j].role, a.nodes[j].role);
        EXPECT_EQ(b.nodes[j].hostname, a.nodes[j].hostname);
        EXPECT_EQ(b.nodes[j].os, a.nodes[j].os);
        EXPECT_EQ(b.nodes[j].seconds.text(), a.nodes[j].seconds.text());
        EXPECT_EQ(b.nodes[j].memory.to_string(), a.nodes[j].memory.to_string());
        EXPECT_EQ(b.nodes[j].replicate.text(), a.nodes[j].replicate.text());
      }
      ASSERT_EQ(b.links.size(), a.links.size());
      for (size_t j = 0; j < a.links.size(); ++j) {
        EXPECT_EQ(b.links[j].from, a.links[j].from);
        EXPECT_EQ(b.links[j].to, a.links[j].to);
        EXPECT_EQ(b.links[j].megabytes.text(), a.links[j].megabytes.text());
      }
      EXPECT_EQ(b.communication.text(), a.communication.text());
      ASSERT_EQ(b.variables.size(), a.variables.size());
      for (size_t j = 0; j < a.variables.size(); ++j) {
        EXPECT_EQ(b.variables[j].name, a.variables[j].name);
        EXPECT_EQ(b.variables[j].values, a.variables[j].values);
      }
      ASSERT_EQ(b.performance_points.size(), a.performance_points.size());
      for (size_t j = 0; j < a.performance_points.size(); ++j) {
        EXPECT_EQ(b.performance_points[j].x, a.performance_points[j].x);
        EXPECT_EQ(b.performance_points[j].y, a.performance_points[j].y);
      }
      EXPECT_EQ(b.performance_script, a.performance_script);
      EXPECT_EQ(b.performance_expr.text(), a.performance_expr.text());
      EXPECT_EQ(b.granularity_s, a.granularity_s);
      EXPECT_EQ(b.friction_s, a.friction_s);
      EXPECT_EQ(b.deadline_s, a.deadline_s);
      EXPECT_EQ(b.period_s, a.period_s);
      EXPECT_EQ(b.tardiness_weight, a.tardiness_weight);
    }
  }
}

TEST(BundleToScriptTest, SimpleBundle) {
  expect_round_trip(harmony::testing::simple_bundle());
}

TEST(BundleToScriptTest, BagBundleWithVariablesAndPerformance) {
  expect_round_trip(harmony::testing::bag_bundle("1 2 3 4", /*granularity=*/30));
}

TEST(BundleToScriptTest, DbClientBundleWithExpressionsAndConstraints) {
  expect_round_trip(harmony::testing::db_client_bundle("sp2-00", 7));
}

TEST(BundleToScriptTest, PerformanceExprAndDagSurvive) {
  expect_round_trip(
      "harmonyBundle Dag:1 pipeline {\n"
      "  {staged\n"
      "    {node worker {seconds 10} {memory 8} {replicate 2}}\n"
      "    {performance dag {{load 5 {}} {scan {3 * 2} {load}} "
      "{join 4 {load scan}}}}\n"
      "    {friction 12}}\n"
      "  {flat\n"
      "    {node worker {seconds 20} {memory 8}}\n"
      "    {performance expr {20 / worker.speed}}}\n"
      "}\n");
}

TEST(BundleToScriptTest, DeadlinePeriodAndTardinessSurvive) {
  // The deadline/period resource model must survive journaling: a
  // recovered interactive app keeps its tardiness pricing.
  expect_round_trip(
      "harmonyBundle Interactive:1 service {\n"
      "  {serve\n"
      "    {node server {seconds 20} {memory 32}}\n"
      "    {period 30}\n"
      "    {tardiness 5}}\n"
      "  {strict\n"
      "    {node server {seconds 20} {memory 32}}\n"
      "    {deadline 25}\n"
      "    {period 30}}\n"
      "}\n");
}

}  // namespace
}  // namespace harmony::rsl
