file(REMOVE_RECURSE
  "libharmony_net.a"
)
