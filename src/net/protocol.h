// Harmony wire messages, encoded as TCL lists (the same value syntax
// the RSL uses — one codec across the system):
//
//   client -> server:
//     {REGISTER <script>}          register an application; script is a
//                                  sequence of harmonyBundle commands
//     {REGISTER <script> 2}        protocol v2: same, but the reply
//                                  carries a session token making the
//                                  registration resumable
//     {RESUME <token>}             reattach a disconnected (or
//                                  recovered-from-disk) session; the
//                                  server replays each instance's
//                                  current configuration as UPDATE
//                                  frames before replying
//     {END <id>}                   harmony_end
//     {GET <id> <name>}            read a published variable
//     {LOAD <host> <tasks>}        report observed external load on a
//                                  node (harmony_report_load, §4.3)
//     {SET <id> <bundle> <option> [<var> <value>]...}
//                                  operator steering (§7): force a
//                                  bundle onto an option; not gated on
//                                  connection ownership
//     {RESIZE <id> <bundle> <workers>}
//                                  live grow/shrink: move the bundle's
//                                  parallelism variable to a new
//                                  declared degree while the app runs;
//                                  journaled and replicated like SET
//     {REEVALUATE}                 request an adaptation pass
//     {METRICS ?format?}           telemetry scrape; format is "prom"
//                                  (default), "json", or "trace"
//                                  (Chrome trace_event spans). Answered
//                                  by the owning I/O shard without
//                                  touching the controller thread.
//     {DOMAINS}                    optimization-domain introspection:
//                                  one row per live domain — id, worker
//                                  index, member instance paths, epoch
//                                  count and last-decision latency.
//                                  Answered shard-side like {METRICS}.
//     {STATUS}                     replication role probe: {OK <role>
//                                  <term> <generation> <primary_hint>}.
//                                  Answered shard-side like {METRICS},
//                                  so it works even against a standby
//                                  (whose decision verbs are refused).
//   standby -> primary (replication subprotocol, src/replica/):
//     {REPL HELLO <gen> <offset> <id>}   attach as a journal subscriber
//                                        from the given stream position
//     {REPL ACK <gen> <offset> <n>}      applied-watermark ack (no reply)
//   primary -> standby:
//     {REPL SNAP <gen>} / {REPL SNAPC <hex>} / {REPL SNAPE <gen>}
//                                  full-resync snapshot transfer:
//                                  begin, chunks, end
//     {REPL BATCH <gen> <offset> <hex>}  framed journal records
//     {REPL COMPACT <gen>}         the primary compacted to <gen>
//   server -> client:
//     {OK <args...>}               success (REGISTER returns the id,
//                                  plus the session token under v2;
//                                  RESUME returns the session's ids)
//     {ERR <code> <message>}       failure; code "not_primary" carries
//                                  the primary's host:port hint (when
//                                  known) so clients re-aim their
//                                  reconnect instead of retrying here
//     {UPDATE <name> <value>}      pushed variable update (buffered by
//                                  the client library until polled)
#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace harmony::net {

struct Message {
  std::string verb;
  std::vector<std::string> args;

  std::string encode() const;
  static Result<Message> decode(const std::string& payload);

  static Message ok(std::vector<std::string> args = {});
  static Message err(ErrorCode code, const std::string& message);
  static Message update(const std::string& name, const std::string& value);
};

// Builds the reply to a {METRICS ?format?} request from the
// process-global telemetry registry. Thread-safe: I/O shards call this
// directly so a scrape never waits on the controller thread.
Message build_metrics_reply(const Message& request);

// Builds the reply to a {DOMAINS} request from the process-global
// published DomainRouter (core::published_domains). Thread-safe for the
// same reason: the router keeps a mutex-guarded stats mirror, so shards
// answer while domain workers are mid-decision. Replies
//   {OK {{<id> <worker> {<member>...} <epochs> <last_ms>} ...}}
// or kNotFound when no router is published (single-controller server).
Message build_domains_reply(const Message& request);

// Process-global replication status, published by the HA node manager
// (src/replica/node.h) and read by the I/O shards. A process that never
// publishes runs as an ordinary primary: accepting, role "primary".
struct HaStatus {
  std::string role = "primary";  // primary | standby | candidate
  uint64_t term = 0;             // lease fencing term (0 = no lease)
  uint64_t generation = 0;       // snapshot generation of local state
  std::string primary_hint;      // host:port clients should aim at
};

// Thread-safe publication/read of the process's replication status.
// publish also maintains the harmony.role gauge (2 = primary,
// 1 = candidate, 0 = standby).
void publish_ha_status(const HaStatus& status);
HaStatus published_ha_status();
// Lock-free fast path for the shard read loop: false while the process
// is a standby/candidate, i.e. decision verbs must be refused.
bool ha_accepting();

// {OK <role> <term> <generation> <primary_hint>} for a {STATUS} probe.
// Thread-safe; shards answer it like {METRICS}.
Message build_status_reply(const Message& request);
// {ERR not_primary <primary_hint>}: the refusal a standby sends for
// decision verbs.
Message not_primary_reply();
// True for verbs that read or mutate decision-core state and therefore
// must only run on the primary.
bool is_decision_verb(const std::string& verb);

}  // namespace harmony::net
