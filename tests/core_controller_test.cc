#include "core/controller.h"

#include <gtest/gtest.h>

#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

std::string sp2_no_server(int n) {
  // Worker-only cluster (no DB server host) for the parallel-app tests.
  std::string script;
  for (int i = 0; i < n; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory 64} {os aix}", i);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d 320 0.05}", j);
    }
    script += "\n";
  }
  return script;
}

// --- cluster setup -------------------------------------------------------

TEST(ControllerSetup, EmptyClusterRejected) {
  Controller controller;
  EXPECT_FALSE(controller.finalize_cluster().ok());
}

TEST(ControllerSetup, UnknownLinkHostRejected) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script("harmonyNode a {speed 1} {memory 64}").ok());
  ASSERT_TRUE(controller.link_hosts("a", "ghost", 100).ok());
  EXPECT_FALSE(controller.finalize_cluster().ok());
}

TEST(ControllerSetup, NodesFixedAfterFinalize) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script("harmonyNode a {speed 1} {memory 64}").ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  rsl::NodeAd late;
  late.name = "late";
  EXPECT_FALSE(controller.add_node(late).ok());
  EXPECT_FALSE(controller.link_hosts("a", "a", 1).ok());
}

TEST(ControllerSetup, ClusterPublishedToNamespace) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  EXPECT_DOUBLE_EQ(controller.names().get("cluster.server.speed").value(), 2.0);
  EXPECT_DOUBLE_EQ(controller.names().get("cluster.sp2-00.memory").value(), 64);
  EXPECT_EQ(controller.topology().node_count(), 3u);
}

// --- registration & namespace --------------------------------------------

class DbFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(controller_.add_nodes_script(sp2_cluster_script(4)).ok());
    ASSERT_TRUE(controller_.finalize_cluster().ok());
  }
  Result<InstanceId> add_client(int i) {
    return controller_.register_script(
        db_client_bundle(str_format("sp2-%02d", i), i + 1));
  }
  std::string option_of(InstanceId id) {
    const BundleState* bundle = controller_.bundle_state(id, "where");
    EXPECT_NE(bundle, nullptr);
    return bundle == nullptr ? "" : bundle->choice.option;
  }
  Controller controller_;
};

TEST_F(DbFixture, RegisterAssignsSequentialIds) {
  auto a = add_client(0);
  auto b = add_client(1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(controller_.live_instances(), 2u);
}

TEST_F(DbFixture, SingleClientChoosesQueryShipping) {
  auto id = add_client(0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(option_of(id.value()), "QS");
  // Namespace reflects the decision, paper-style paths.
  std::string root = "DBclient." + std::to_string(id.value());
  EXPECT_EQ(controller_.names().get_string(root + ".where.option").value(),
            "QS");
  EXPECT_DOUBLE_EQ(
      controller_.names().get(root + ".where.QS.server.memory").value(), 20);
  EXPECT_EQ(
      controller_.names().get_string(root + ".where.QS.server.node").value(),
      "server");
  EXPECT_EQ(
      controller_.names().get_string(root + ".where.QS.client.node").value(),
      "sp2-00");
}

TEST_F(DbFixture, TwoClientsStayOnQueryShipping) {
  auto a = add_client(0);
  auto b = add_client(1);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(option_of(a.value()), "QS");
  EXPECT_EQ(option_of(b.value()), "QS");
}

// The paper's Figure 7 decision: "Harmony chooses query-shipping with
// one or two clients, but switches all clients to data-shipping when
// the third client starts."
TEST_F(DbFixture, ThirdClientSwitchesEveryoneToDataShipping) {
  auto a = add_client(0);
  auto b = add_client(1);
  auto c = add_client(2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(option_of(a.value()), "DS");
  EXPECT_EQ(option_of(b.value()), "DS");
  EXPECT_EQ(option_of(c.value()), "DS");
  EXPECT_GE(controller_.reconfigurations(), 5u)
      << "three arrivals plus two QS->DS switches";
}

TEST_F(DbFixture, DepartureSwitchesBackToQueryShipping) {
  auto a = add_client(0);
  auto b = add_client(1);
  auto c = add_client(2);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(controller_.unregister(c.value()).ok());
  EXPECT_EQ(option_of(a.value()), "QS");
  EXPECT_EQ(option_of(b.value()), "QS");
  EXPECT_EQ(controller_.live_instances(), 2u);
}

TEST_F(DbFixture, UnregisterReleasesAllResources) {
  auto a = add_client(0);
  auto b = add_client(1);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(controller_.unregister(a.value()).ok());
  ASSERT_TRUE(controller_.unregister(b.value()).ok());
  EXPECT_EQ(controller_.live_instances(), 0u);
  for (const auto& node : controller_.topology().nodes()) {
    EXPECT_DOUBLE_EQ(controller_.state().pool->available_memory(node.id),
                     node.memory_mb)
        << node.hostname;
    EXPECT_EQ(controller_.state().pool->process_count(node.id), 0);
  }
  EXPECT_FALSE(controller_.names().has("DBclient"));
  EXPECT_FALSE(controller_.unregister(a.value()).ok()) << "double unregister";
}

TEST_F(DbFixture, PredictionsAndObjectiveExposed) {
  auto a = add_client(0);
  ASSERT_TRUE(a.ok());
  auto predictions = controller_.predictions();
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions.value().size(), 1u);
  EXPECT_NEAR(predictions.value()[0].second, 4.75, 1e-9)
      << "9s/speed2 + 10MB*8/320Mbps";
  auto objective = controller_.objective_value();
  ASSERT_TRUE(objective.ok());
  EXPECT_NEAR(objective.value(), 4.75, 1e-9);
}

TEST_F(DbFixture, GetVariable) {
  auto a = add_client(0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(controller_.get_variable(a.value(), "where.option").value(), "QS");
  EXPECT_FALSE(controller_.get_variable(a.value(), "nope").ok());
  EXPECT_FALSE(controller_.get_variable(999, "where.option").ok());
}

TEST_F(DbFixture, SubscribersReceiveUpdates) {
  auto a = add_client(0);
  ASSERT_TRUE(a.ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(controller_
                  .subscribe(a.value(),
                             [&](const std::string& name,
                                 const std::string& value) { seen[name] = value; })
                  .ok());
  // Initial snapshot delivered on subscription.
  EXPECT_EQ(seen["where"], "QS");
  EXPECT_EQ(seen["where.client.node"], "sp2-00");
  EXPECT_EQ(seen["where.server.node"], "server");

  // Two more clients trigger the DS switch; subscriber hears about it.
  ASSERT_TRUE(add_client(1).ok());
  ASSERT_TRUE(add_client(2).ok());
  EXPECT_EQ(seen["where"], "DS");
}

TEST_F(DbFixture, RegisterFailsWhenNothingFits) {
  // A bundle whose only option wants more memory than any node has.
  auto r = controller_.register_script(
      "harmonyBundle Greedy:1 b {{o {node n {seconds 1} {memory 100000}}}}");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kNoMatch);
  EXPECT_EQ(controller_.live_instances(), 0u) << "failed arrival withdrawn";
}

TEST_F(DbFixture, MalformedScriptRejected) {
  EXPECT_FALSE(controller_.register_script("harmonyBundle").ok());
  EXPECT_FALSE(controller_.register_script("not-a-command").ok());
}

// --- friction & granularity ------------------------------------------------

TEST(ControllerFriction, HighFrictionPreventsSwitch) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  // DS carries a prohibitive one-time switching cost.
  auto bundle_with_friction = [](const std::string& host, int i) {
    return str_format(
        "harmonyBundle DBclient:%d where {\n"
        "  {QS {node server {hostname server} {seconds 9} {memory 20}}\n"
        "      {node client {hostname %s} {seconds 1} {memory 2}}\n"
        "      {link client server 10}}\n"
        "  {DS {node server {hostname server} {seconds 1} {memory 20}}\n"
        "      {node client {hostname %s} {memory >=17} {seconds 9}}\n"
        "      {link client server 44} {friction 10000}}\n"
        "}\n",
        i, host.c_str(), host.c_str());
  };
  std::vector<InstanceId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = controller.register_script(
        bundle_with_friction(str_format("sp2-%02d", i), i + 1));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Existing clients refuse to pay the friction...
  EXPECT_EQ(controller.bundle_state(ids[0], "where")->choice.option, "QS");
  EXPECT_EQ(controller.bundle_state(ids[1], "where")->choice.option, "QS");
  // ...and the new client has nothing to switch from, so friction does
  // not apply to its initial configuration.
  EXPECT_EQ(controller.bundle_state(ids[2], "where")->choice.option, "DS");
}

TEST(ControllerGranularity, WindowBlocksReconfiguration) {
  double now = 0.0;
  Controller controller;
  controller.set_time_source([&now] { return now; });
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto bundle_with_granularity = [](const std::string& host, int i) {
    return str_format(
        "harmonyBundle DBclient:%d where {\n"
        "  {QS {node server {hostname server} {seconds 9} {memory 20}}\n"
        "      {node client {hostname %s} {seconds 1} {memory 2}}\n"
        "      {link client server 10} {granularity 100}}\n"
        "  {DS {node server {hostname server} {seconds 1} {memory 20}}\n"
        "      {node client {hostname %s} {memory >=17} {seconds 9}}\n"
        "      {link client server 44} {granularity 100}}\n"
        "}\n",
        i, host.c_str(), host.c_str());
  };
  std::vector<InstanceId> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = controller.register_script(
        bundle_with_granularity(str_format("sp2-%02d", i), i + 1));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
    now += 1.0;  // arrivals 1 s apart, well inside the 100 s window
  }
  // Clients 1-2 are granularity-locked on QS; client 3 configures fresh.
  EXPECT_EQ(controller.bundle_state(ids[0], "where")->choice.option, "QS");
  EXPECT_EQ(controller.bundle_state(ids[1], "where")->choice.option, "QS");
  EXPECT_EQ(controller.bundle_state(ids[2], "where")->choice.option, "DS");

  // Once the window passes, periodic re-evaluation applies the switch.
  now = 1000.0;
  ASSERT_TRUE(controller.reevaluate().ok());
  EXPECT_EQ(controller.bundle_state(ids[0], "where")->choice.option, "DS");
  EXPECT_EQ(controller.bundle_state(ids[1], "where")->choice.option, "DS");
}

// --- variable parallelism (Figure 4 decision logic) -------------------------

TEST(ControllerBag, AloneGetsAllEightWorkers) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto id = controller.register_script(bag_bundle());
  ASSERT_TRUE(id.ok()) << id.ok();
  const BundleState* bundle = controller.bundle_state(id.value(), "parallelism");
  ASSERT_NE(bundle, nullptr);
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 8);
  EXPECT_EQ(bundle->allocation.entries.size(), 8u);
}

// "Note the configuration of five nodes (rather than six)": with a
// rigid 3-node job resident, the bag app takes the five free nodes
// because squeezing onto a sixth shared node hurts both applications.
TEST(ControllerBag, RigidJobLeavesFiveNodes) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto simple = controller.register_script(simple_bundle(3));
  ASSERT_TRUE(simple.ok());
  auto bag = controller.register_script(bag_bundle());
  ASSERT_TRUE(bag.ok());
  const BundleState* bundle = controller.bundle_state(bag.value(), "parallelism");
  ASSERT_NE(bundle, nullptr);
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 5);
  // And the placement is disjoint from the rigid job's nodes.
  const BundleState* rigid = controller.bundle_state(simple.value(), "config");
  std::set<cluster::NodeId> bag_nodes, simple_nodes;
  for (const auto& e : bundle->allocation.entries) bag_nodes.insert(e.node);
  for (const auto& e : rigid->allocation.entries) simple_nodes.insert(e.node);
  for (auto n : bag_nodes) EXPECT_EQ(simple_nodes.count(n), 0u);
}

// "choosing equal partitions for multiple instances of the parallel
// application, rather than some large and some small": two bag
// instances end up with equal effective shares (4 + 4).
TEST(ControllerBag, TwoInstancesGetEqualEffectiveShares) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto bag1 = controller.register_script(bag_bundle());
  auto bag2 = controller.register_script(bag_bundle());
  ASSERT_TRUE(bag1.ok() && bag2.ok());
  auto predictions = controller.predictions();
  ASSERT_TRUE(predictions.ok());
  ASSERT_EQ(predictions.value().size(), 2u);
  // Both predicted at the 4-effective-worker level (the paper's Bag
  // curve value at 4 workers is 340 s) — equal, not skewed.
  EXPECT_NEAR(predictions.value()[0].second, 340, 1);
  EXPECT_NEAR(predictions.value()[1].second, 340, 1);
  EXPECT_NEAR(predictions.value()[0].second, predictions.value()[1].second,
              1e-6);
  // After the first instance finishes, the survivor expands back.
  ASSERT_TRUE(controller.unregister(bag1.value()).ok());
  const BundleState* bundle =
      controller.bundle_state(bag2.value(), "parallelism");
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 8);
  auto after = controller.predictions();
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after.value()[0].second, 255, 1);
}

// --- memory grant policy (§3.5's memory-for-bandwidth trade) -----------------

TEST(ControllerMemoryGrant, GenerousGrantReducesPredictedBandwidth) {
  // A DS-pinned bundle whose link shrinks steeply with client memory;
  // with grant levels {1, 2} the controller should hand out 34 MB
  // instead of the 17 MB minimum because the transfer saving wins.
  const char* bundle = R"(harmonyBundle DBclient:1 where {
  {DS {node server {hostname server} {seconds 1} {memory 20}}
      {node client {hostname sp2-00} {memory >=17} {seconds 2}}
      {link client server {200 - 5 * (client.memory > 34 ? 34 : client.memory)}}}
})";
  ControllerConfig minimal_config;
  Controller minimal(minimal_config);
  ControllerConfig generous_config;
  generous_config.optimizer.memory_grant_levels = {1.0, 2.0};
  Controller generous(generous_config);
  for (Controller* controller : {&minimal, &generous}) {
    ASSERT_TRUE(controller->add_nodes_script(sp2_cluster_script(2)).ok());
    ASSERT_TRUE(controller->finalize_cluster().ok());
    ASSERT_TRUE(controller->register_script(bundle).ok());
  }
  const BundleState* min_state = minimal.bundle_state(1, "where");
  const BundleState* gen_state = generous.bundle_state(1, "where");
  EXPECT_DOUBLE_EQ(min_state->choice.memory_grant, 1.0);
  EXPECT_DOUBLE_EQ(gen_state->choice.memory_grant, 2.0);
  EXPECT_DOUBLE_EQ(gen_state->allocation.find("client") != cluster::kInvalidNode
                       ? gen_state->allocation.entries[1].requirement.memory_mb
                       : 0,
                   34.0);
  // More memory, less predicted time (link 115 MB -> 30 MB).
  auto min_predicted = minimal.predictions();
  auto gen_predicted = generous.predictions();
  ASSERT_TRUE(min_predicted.ok() && gen_predicted.ok());
  EXPECT_LT(gen_predicted.value()[0].second, min_predicted.value()[0].second);
  // The namespace and the application both see the granted amount.
  EXPECT_DOUBLE_EQ(
      generous.names().get("DBclient.1.where.DS.client.memory").value(), 34.0);
  EXPECT_EQ(generous.get_variable(1, "where.DS.client.memory").value(), "34");
}

TEST(ControllerMemoryGrant, GrantNeverExceedsCapacity) {
  // Grant levels beyond the node's memory fail to match and fall back.
  ControllerConfig config;
  config.optimizer.memory_grant_levels = {1.0, 100.0};
  Controller controller(config);
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto id = controller.register_script(db_client_bundle("sp2-00", 1));
  ASSERT_TRUE(id.ok());
  const BundleState* state = controller.bundle_state(id.value(), "where");
  ASSERT_TRUE(state->configured);
  EXPECT_DOUBLE_EQ(state->choice.memory_grant, 1.0)
      << "a 1700 MB grant cannot match a 64 MB node";
}

TEST(ControllerMemoryGrant, ExactConstraintsNeverInflated) {
  ControllerConfig config;
  config.optimizer.memory_grant_levels = {1.0, 2.0};
  Controller controller(config);
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  // QS uses exact-style memory tags; the grant must not scale them.
  auto id = controller.register_script(
      "harmonyBundle Fix:1 b {{o {node n {hostname server} {seconds 1} "
      "{memory 20}}}}");
  ASSERT_TRUE(id.ok());
  const BundleState* state = controller.bundle_state(id.value(), "b");
  EXPECT_DOUBLE_EQ(state->allocation.entries[0].requirement.memory_mb, 20.0);
}

// --- multi-bundle applications ------------------------------------------------

// §4.3: "within each application through the list of options" — an
// application may export several independent bundles; the greedy pass
// walks them in definition order.
TEST(ControllerMultiBundle, TwoBundlesConfiguredIndependently) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto id = controller.register_script(R"(
harmonyBundle Hybrid:1 placement {
  {remote {node exec {hostname server} {seconds 8} {memory 16}}}
  {local {node exec {hostname sp2-00} {seconds 20} {memory 16}}}
}
harmonyBundle Hybrid:1 buffering {
  {small {node buf {hostname sp2-00} {seconds 1} {memory 4}}}
  {large {node buf {hostname sp2-00} {seconds 0.5} {memory 40}}}
}
)");
  ASSERT_TRUE(id.ok()) << (id.ok() ? "" : id.error().message);
  const BundleState* placement = controller.bundle_state(id.value(), "placement");
  const BundleState* buffering = controller.bundle_state(id.value(), "buffering");
  ASSERT_NE(placement, nullptr);
  ASSERT_NE(buffering, nullptr);
  EXPECT_EQ(placement->choice.option, "remote") << "server is 2x faster";
  EXPECT_EQ(buffering->choice.option, "large") << "0.5s beats 1s";
  // Prediction sums the bundles.
  auto predictions = controller.predictions();
  ASSERT_TRUE(predictions.ok());
  EXPECT_NEAR(predictions.value()[0].second, 8.0 / 2.0 + 0.5, 0.01);
  // Namespace carries both.
  std::string root = "Hybrid." + std::to_string(id.value());
  EXPECT_EQ(controller.names().get_string(root + ".placement.option").value(),
            "remote");
  EXPECT_EQ(controller.names().get_string(root + ".buffering.option").value(),
            "large");
  // Both bundles' resources release together.
  ASSERT_TRUE(controller.unregister(id.value()).ok());
  for (const auto& node : controller.topology().nodes()) {
    EXPECT_DOUBLE_EQ(controller.state().pool->available_memory(node.id),
                     node.memory_mb);
  }
}

TEST(ControllerMultiBundle, DuplicateBundleNameRejected) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(1)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto id = controller.register_script(R"(
harmonyBundle Dup:1 b { {o {node n {seconds 1} {memory 1}}} }
harmonyBundle Dup:1 b { {o {node n {seconds 2} {memory 1}}} }
)");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, ErrorCode::kAlreadyExists);
}

// --- node deletion / addition ----------------------------------------------

TEST(ControllerNodes, OfflineNodeDisplacesAndShrinksBag) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto bag = controller.register_script(bag_bundle());
  ASSERT_TRUE(bag.ok());
  const BundleState* bundle = controller.bundle_state(bag.value(), "parallelism");
  ASSERT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 8);

  // One of the bag's nodes leaves the cluster.
  ASSERT_TRUE(controller.set_node_online("sp2-03", false).ok());
  bundle = controller.bundle_state(bag.value(), "parallelism");
  ASSERT_TRUE(bundle->configured);
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 7);
  for (const auto& entry : bundle->allocation.entries) {
    EXPECT_NE(controller.topology().node(entry.node).hostname, "sp2-03");
  }
  // It comes back; the next pass (run inside set_node_online) expands.
  ASSERT_TRUE(controller.set_node_online("sp2-03", true).ok());
  bundle = controller.bundle_state(bag.value(), "parallelism");
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 8);
}

TEST(ControllerNodes, StrandedBundleRecoversWhenNodeReturns) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto client = controller.register_script(db_client_bundle("sp2-00", 1));
  ASSERT_TRUE(client.ok());

  std::map<std::string, std::string> seen;
  ASSERT_TRUE(controller
                  .subscribe(client.value(),
                             [&](const std::string& name,
                                 const std::string& value) { seen[name] = value; })
                  .ok());
  ASSERT_EQ(seen["where"], "QS");

  // Both options need the server host; its departure strands the bundle.
  ASSERT_TRUE(controller.set_node_online("server", false).ok());
  const BundleState* bundle = controller.bundle_state(client.value(), "where");
  EXPECT_FALSE(bundle->configured);
  EXPECT_EQ(seen["where"], "") << "the app is told it has no configuration";
  // Predictions exclude stranded instances rather than failing.
  auto predictions = controller.predictions();
  ASSERT_TRUE(predictions.ok());
  EXPECT_TRUE(predictions.value().empty());
  // Resources fully released while stranded.
  auto server = controller.topology().find_by_hostname("server").value();
  EXPECT_DOUBLE_EQ(controller.state().pool->available_memory(server), 512);

  // The server returns; the bundle reconfigures and the app hears it.
  ASSERT_TRUE(controller.set_node_online("server", true).ok());
  bundle = controller.bundle_state(client.value(), "where");
  ASSERT_TRUE(bundle->configured);
  EXPECT_EQ(bundle->choice.option, "QS");
  EXPECT_EQ(seen["where"], "QS");
}

TEST(ControllerNodes, AvailabilityValidation) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(1)).ok());
  EXPECT_FALSE(controller.set_node_online("sp2-00", false).ok())
      << "cluster not finalized yet";
  ASSERT_TRUE(controller.finalize_cluster().ok());
  EXPECT_FALSE(controller.set_node_online("ghost", false).ok());
  ASSERT_TRUE(controller.set_node_online("sp2-00", false).ok());
  ASSERT_TRUE(controller.set_node_online("sp2-00", false).ok()) << "idempotent";
  EXPECT_EQ(controller.state().pool->online_count(), 1u);  // server remains
  ASSERT_TRUE(controller.set_node_online("sp2-00", true).ok());
  EXPECT_EQ(controller.state().pool->online_count(), 2u);
}

// --- external load (changes out of Harmony's control, §4.3) -----------------

TEST(ControllerExternalLoad, RigidJobMigratesAwayFromBusyNodes) {
  // A rigid 3-node job sits on sp2-00..02; outside load lands there.
  // Re-evaluation must migrate it to the idle nodes (same option, new
  // placement) and tell the application.
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto simple = controller.register_script(simple_bundle(3));
  ASSERT_TRUE(simple.ok());
  std::map<std::string, std::string> seen;
  ASSERT_TRUE(controller
                  .subscribe(simple.value(),
                             [&](const std::string& name,
                                 const std::string& value) { seen[name] = value; })
                  .ok());
  EXPECT_EQ(seen["config.worker.nodes"], "sp2-00 sp2-01 sp2-02");

  uint64_t reconfigs_before = controller.reconfigurations();
  for (const char* host : {"sp2-00", "sp2-01", "sp2-02"}) {
    ASSERT_TRUE(controller.report_external_load(host, 2).ok());
  }
  const BundleState* bundle = controller.bundle_state(simple.value(), "config");
  for (const auto& entry : bundle->allocation.entries) {
    const std::string& host = controller.topology().node(entry.node).hostname;
    EXPECT_NE(host, "sp2-00");
    EXPECT_NE(host, "sp2-01");
    EXPECT_NE(host, "sp2-02");
  }
  EXPECT_GT(controller.reconfigurations(), reconfigs_before)
      << "a migration counts as a reconfiguration";
  EXPECT_EQ(seen["config.worker.nodes"], "sp2-03 sp2-04 sp2-05")
      << "the application hears about its new nodes";
}

TEST(ControllerExternalLoad, BagStaysWideButSlowsUnderSharedLoad) {
  // Under pure processor sharing, extra (even contended) nodes never
  // hurt a malleable app — the model keeps the bag wide but its
  // effective share and prediction degrade.
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_no_server(8)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto bag = controller.register_script(bag_bundle());
  ASSERT_TRUE(bag.ok());
  auto before = controller.predictions();
  ASSERT_TRUE(before.ok());
  for (const char* host : {"sp2-00", "sp2-01", "sp2-02"}) {
    ASSERT_TRUE(controller.report_external_load(host, 2).ok());
  }
  const BundleState* bundle = controller.bundle_state(bag.value(), "parallelism");
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 8);
  auto after = controller.predictions();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value()[0].second, before.value()[0].second);
}

TEST(ControllerExternalLoad, PredictionsReflectReportedLoad) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto client = controller.register_script(db_client_bundle("sp2-00", 1));
  ASSERT_TRUE(client.ok());
  auto before = controller.predictions();
  ASSERT_TRUE(before.ok());
  // Outside work lands on the database server.
  ASSERT_TRUE(controller.report_external_load("server", 3).ok());
  auto after = controller.predictions();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value()[0].second, before.value()[0].second)
      << "server contention must slow the predicted response";
}

TEST(ControllerExternalLoad, Validation) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(1)).ok());
  EXPECT_FALSE(controller.report_external_load("sp2-00", 1).ok())
      << "not finalized";
  ASSERT_TRUE(controller.finalize_cluster().ok());
  EXPECT_FALSE(controller.report_external_load("ghost", 1).ok());
  EXPECT_FALSE(controller.report_external_load("sp2-00", -1).ok());
  ASSERT_TRUE(controller.report_external_load("sp2-00", 1).ok());
  ASSERT_TRUE(controller.report_external_load("sp2-00", 1).ok())
      << "idempotent report";
}

// --- optimizer modes -----------------------------------------------------------

TEST(ControllerExhaustive, MatchesGreedyOnDbScenario) {
  ControllerConfig config;
  config.optimizer.mode = OptimizerConfig::Mode::kExhaustive;
  Controller exhaustive(config);
  ASSERT_TRUE(exhaustive.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(exhaustive.finalize_cluster().ok());
  Controller greedy;
  ASSERT_TRUE(greedy.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(greedy.finalize_cluster().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(exhaustive
                    .register_script(
                        db_client_bundle(str_format("sp2-%02d", i), i + 1))
                    .ok());
    ASSERT_TRUE(greedy
                    .register_script(
                        db_client_bundle(str_format("sp2-%02d", i), i + 1))
                    .ok());
  }
  auto obj_exhaustive = exhaustive.objective_value();
  auto obj_greedy = greedy.objective_value();
  ASSERT_TRUE(obj_exhaustive.ok() && obj_greedy.ok());
  // The exhaustive optimum is never worse than greedy; on this scenario
  // they agree (all-DS).
  EXPECT_LE(obj_exhaustive.value(), obj_greedy.value() + 1e-9);
  EXPECT_NEAR(obj_exhaustive.value(), obj_greedy.value(), 1e-6);
}

}  // namespace
}  // namespace harmony::core
