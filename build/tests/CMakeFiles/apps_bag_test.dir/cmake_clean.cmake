file(REMOVE_RECURSE
  "CMakeFiles/apps_bag_test.dir/apps_bag_test.cc.o"
  "CMakeFiles/apps_bag_test.dir/apps_bag_test.cc.o.d"
  "apps_bag_test"
  "apps_bag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_bag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
