# Empty compiler generated dependencies file for rsl_expr_test.
# This may be replaced when dependencies are built.
