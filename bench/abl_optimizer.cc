// Ablation A1 — greedy one-bundle-at-a-time vs exhaustive joint search.
// The paper (§4.3) chooses greedy: "a simple form of greedy
// optimization that will not necessarily produce a globally optimal
// value, but it is simple and easy to implement." This bench quantifies
// the tradeoff: objective quality vs candidate evaluations and decision
// wall time, as database clients accumulate.
//
// A1b — incremental planning engine. Steady-state re-evaluation cost of
// the dirty-set + prediction-cache path against a forced full pass, for
// a quiet system and for localized perturbations. Results (decisions/s,
// candidates per decision, cache hit rate) also land in
// BENCH_optimizer.json for machine consumption.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "persist/persistence.h"
#include "rsl/program.h"
#include "test_scenarios.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

struct RunResult {
  double objective = 0;
  uint64_t candidates = 0;
  uint64_t truncated = 0;  // exhaustive passes capped at exhaustive_limit
  double wall_ms = 0;
  bool ok = true;
};

RunResult run_mode(core::OptimizerConfig::Mode mode, int clients) {
  core::ControllerConfig config;
  config.optimizer.mode = mode;
  // Cap, don't fail: a capped joint pass evaluates the first
  // exhaustive_limit combinations and reports itself truncated.
  config.optimizer.exhaustive_truncate = true;
  core::Controller controller(config);
  RunResult result;
  if (!controller.add_nodes_script(db_cluster_script(clients)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    auto id = controller.register_script(db_client_bundle_script(client));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.candidates = controller.optimizer().candidates_evaluated();
  result.truncated = controller.optimizer().exhaustive_truncations();
  auto objective = controller.objective_value();
  result.objective = objective.ok() ? objective.value() : -1;
  return result;
}

// --- A1b: steady-state re-evaluation --------------------------------------

struct SteadyResult {
  double wall_ms = 0;
  uint64_t decisions = 0;
  uint64_t candidates = 0;
  uint64_t predictor_calls = 0;
  uint64_t bundles_skipped = 0;
  // RSL expression evaluations (rsl::expr_evaluations() delta): the
  // per-decision expression work the prediction cache and dirty-set
  // skipping avoid.
  uint64_t expr_evals = 0;
  double cache_hit_rate = 0;
  bool ok = true;

  double decisions_per_sec() const {
    return wall_ms > 0 ? decisions / (wall_ms / 1000.0) : 0;
  }
  double candidates_per_decision() const {
    return decisions > 0 ? static_cast<double>(candidates) / decisions : 0;
  }
  double expr_evals_per_decision() const {
    return decisions > 0 ? static_cast<double>(expr_evals) / decisions : 0;
  }
};

// Perturbation applied between re-evaluation rounds.
enum class Scenario { kQuiet, kSpareNodeLoad, kClientNodeLoad };

const char* scenario_name(Scenario scenario) {
  switch (scenario) {
    case Scenario::kQuiet: return "quiet";
    case Scenario::kSpareNodeLoad: return "spare_node_load";
    case Scenario::kClientNodeLoad: return "client_node_load";
  }
  return "?";
}

std::string persist_dir() {
  return str_format("/tmp/abl_optimizer_wal_%d", static_cast<int>(::getpid()));
}

void clean_persist_dir() {
  const std::string dir = persist_dir();
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/snapshot.hsn").c_str());
  std::remove((dir + "/snapshot.tmp").c_str());
  ::rmdir(dir.c_str());
}

SteadyResult run_steady(bool incremental, Scenario scenario, int clients,
                        int rounds, bool journaled = false) {
  core::ControllerConfig config;
  config.optimizer.incremental = incremental;
  config.optimizer.memoize_predictions = incremental;
  core::Controller controller(config);
  SteadyResult result;
  double t = 0;
  controller.set_time_source([&t] { return t; });
  std::unique_ptr<persist::Persistence> persistence;
  if (journaled) {
    clean_persist_dir();  // a leftover journal would trigger recovery
    persist::PersistConfig persist_config;
    persist_config.dir = persist_dir();
    auto opened = persist::Persistence::open(persist_config, controller);
    if (!opened.ok()) {
      result.ok = false;
      return result;
    }
    persistence = std::move(opened).value();
  }
  // One spare worker beyond the clients, so kSpareNodeLoad can perturb
  // a node no application can ever be placed on.
  if (!controller.add_nodes_script(db_cluster_script(clients + 1)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    auto id = controller.register_script(db_client_bundle_script(client));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
    t += 10;
  }
  // Settle: one pass so every bundle holds its argmin configuration.
  t += 10;
  if (!controller.reevaluate().ok()) {
    result.ok = false;
    return result;
  }

  auto& optimizer = controller.optimizer();
  const uint64_t candidates0 = optimizer.candidates_evaluated();
  const uint64_t predictor0 = optimizer.predictor_calls();
  const uint64_t skipped0 = optimizer.bundles_skipped();
  const uint64_t exprs0 = rsl::expr_evaluations();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < rounds; ++round) {
    t += 10;
    Status status = Status::Ok();
    switch (scenario) {
      case Scenario::kQuiet:
        status = controller.reevaluate();
        break;
      case Scenario::kSpareNodeLoad:
        // Flip external load on the worker nobody can run on; the
        // re-evaluation it triggers finds no affected bundle.
        status = controller.report_external_load(
            str_format("sp2-%02d", clients), round % 2 ? 0 : 2);
        break;
      case Scenario::kClientNodeLoad:
        // Flip load under client 1; its bundle (and everyone coupled to
        // it through the shared server) must be re-evaluated.
        status = controller.report_external_load("sp2-00",
                                                 round % 2 ? 0 : 2);
        break;
    }
    if (!status.ok()) {
      result.ok = false;
      return result;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  // One decision per (instance, bundle) per pass, skipped or not.
  result.decisions = static_cast<uint64_t>(rounds) * clients;
  result.candidates = optimizer.candidates_evaluated() - candidates0;
  result.predictor_calls = optimizer.predictor_calls() - predictor0;
  result.bundles_skipped = optimizer.bundles_skipped() - skipped0;
  result.expr_evals = rsl::expr_evaluations() - exprs0;
  result.cache_hit_rate = optimizer.cache_stats().hit_rate();
  return result;
}

// Work reduction full/incremental. nullopt means the incremental
// engine did zero work where the full engine did some — an infinite
// reduction, not a number: the table prints "inf" and the JSON emits
// null rather than a fake sentinel magnitude.
std::optional<double> ratio(uint64_t full, uint64_t incremental) {
  if (incremental == 0) {
    if (full == 0) return 1.0;
    return std::nullopt;
  }
  return static_cast<double>(full) / static_cast<double>(incremental);
}

std::string ratio_text(const std::optional<double>& r) {
  return r ? str_format("%.1fx", *r) : std::string("inf");
}

std::string ratio_json(const std::optional<double>& r) {
  return r ? str_format("%.1f", *r) : std::string("null");
}

// An absent ratio is an infinite reduction, so any threshold is met.
bool ratio_at_least(const std::optional<double>& r, double threshold) {
  return !r || *r >= threshold;
}

// --- Partitioned decision core: multi-tenant scaling ----------------------
// kTenantGroups isolated app groups (hostname-pinned bundles, so the
// bundle/node sharing graph has one connected component per group)
// behind one decision core. Each round flips external load under one
// group, round-robin. The single-domain reference re-establishes the
// system argmin by re-deciding every bundle; the partitioned core
// routes the event to the owning domain and proves every out-of-domain
// bundle unchanged without touching it — per-event cost O(domain)
// instead of O(system). Decision identity is asserted on the final
// configuration fingerprint.

constexpr int kTenantGroups = 8;
constexpr int kTenantNodesPerGroup = 3;
constexpr int kTenantAppsPerGroup = 3;
constexpr int kTenantRounds = 200;

struct PartitionRun {
  double wall_ms = 0;
  std::string fingerprint;
  bool ok = true;
};

PartitionRun run_partition_mode(bool single_domain) {
  core::DomainRouterConfig config;
  config.single_domain = single_domain;
  // One worker for both modes: the quantity measured here is the
  // algorithmic per-event cost, not thread parallelism (on multi-core
  // hosts more workers stack a parallel speedup on top).
  config.workers = 1;
  // Full decision pass per event on BOTH sides. The dirty-set engine is
  // ablated separately (A1b above) and composes multiplicatively; this
  // section isolates what the domain decomposition alone saves.
  config.controller.optimizer.incremental = false;
  config.controller.optimizer.memoize_predictions = false;
  core::DomainRouter router(config);
  PartitionRun result;
  double t = 0;
  router.set_time_source([&t] { return t; });
  std::vector<std::string> groups;
  for (int g = 0; g < kTenantGroups; ++g) {
    groups.push_back(str_format("g%02d", g));
  }
  if (!router
           .add_nodes_script(harmony::testing::grouped_cluster_script(
               groups, kTenantNodesPerGroup))
           .ok() ||
      !router.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  int tag = 1;
  for (const auto& group : groups) {
    for (int i = 0; i < kTenantAppsPerGroup; ++i) {
      t += 10;
      if (!router.register_script(
                    harmony::testing::pinned_group_bundle(group, tag++))
               .ok()) {
        result.ok = false;
        return result;
      }
    }
  }
  router.quiesce();
  const auto t0 = std::chrono::steady_clock::now();
  for (int round = 0; round < kTenantRounds; ++round) {
    t += 10;
    const std::string host = str_format("g%02d-00", round % kTenantGroups);
    if (!router.report_external_load(host, round % 2 ? 0 : 2).ok()) {
      result.ok = false;
      return result;
    }
  }
  router.quiesce();
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.fingerprint = harmony::testing::fingerprint(router);
  return result;
}

// --- Anytime swarm-scale allocator ----------------------------------------
// 10k bundles (250 hostname-pinned groups x 40 apps) on 2250 nodes
// behind the partitioned decision core, grant levels {1, 2, 3}. The
// packing-stress variant wedges greedy (per-bundle argmin cannot trade
// two grants on a full node); the uniform variant is greedy-optimal.
// Three gates:
//   1. solver objective <= greedy everywhere, strictly better on
//      packing-stress;
//   2. p99 per-event decision latency within the wall-clock budget;
//   3. budget_ms = 0 is bit-identical to pure greedy (fingerprint).

enum class SwarmMode { kGreedy, kBudgetZero, kSolver };

struct SwarmRun {
  double objective = 0;
  double register_ms = 0;
  double p50_ms = 0, p99_ms = 0, max_ms = 0;
  uint64_t solver_passes = 0;
  uint64_t solver_moves = 0;
  double solver_improvement = 0;
  size_t domains = 0;
  std::string fingerprint;
  bool ok = true;
};

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

SwarmRun run_swarm(const harmony::testing::SwarmConfig& swarm, SwarmMode mode,
                   double budget_ms, int rounds, bool want_fingerprint) {
  core::DomainRouterConfig config;
  // One worker: the quantity gated is per-event decision latency, not
  // thread parallelism — and with one worker each domain keeps the
  // whole budget (no per-worker slice).
  config.workers = 1;
  config.controller.optimizer.incremental = true;
  config.controller.optimizer.memoize_predictions = true;
  config.controller.optimizer.memory_grant_levels = {1.0, 2.0, 3.0};
  config.controller.record_objective_metric = false;
  // Place-only on arrival (identical in all three modes, so the
  // budget_ms = 0 identity gate still compares like with like): the
  // quantity gated is decision latency on *load events*, and with
  // arrival reevaluation on, every one of the 10k registrations would
  // pay a full solver pass just to conclude the fresh domain has
  // nothing to improve yet.
  config.controller.optimizer.reevaluate_on_arrival = false;
  if (mode != SwarmMode::kGreedy) {
    // kBudgetZero sets every solver knob but leaves budget_ms at 0: the
    // identity gate proves enabled() hinges on the budget alone.
    core::SolverConfig& solver = config.controller.optimizer.solver;
    solver.budget_ms = mode == SwarmMode::kSolver ? budget_ms : 0;
    solver.seed = 0x5eed5eedULL;
    // Trimmed pair sampling: at 40 bundles per domain a converged pass
    // must still finish one full no-improvement round well inside the
    // budget. swap_choices stays at its default of 3 — the packing
    // wedge (grant 3 + grant 1 -> grant 2 + grant 2) needs the middle
    // grant in BOTH shortlists, and a 2-choice shortlist can never
    // reach it.
    solver.swap_pairs_per_round = 16;
  }
  core::DomainRouter router(config);
  SwarmRun result;
  double t = 0;
  router.set_time_source([&t] { return t; });
  if (!router.add_nodes_script(harmony::testing::swarm_cluster_script(swarm))
           .ok() ||
      !router.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& script : harmony::testing::swarm_app_scripts(swarm)) {
    t += 1;
    if (!router.register_script(script).ok()) {
      result.ok = false;
      return result;
    }
  }
  router.quiesce();
  const auto t1 = std::chrono::steady_clock::now();
  result.register_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();

  // Measurement: load/unload pairs rotating across groups, one blocking
  // decision per event.
  std::vector<double> latencies;
  latencies.reserve(rounds);
  for (int round = 0; round < rounds; ++round) {
    t += 10;
    const int group = (round / 2) % swarm.groups;
    const std::string host =
        harmony::testing::swarm_group_name(group) + "-c00";
    const auto e0 = std::chrono::steady_clock::now();
    if (!router.report_external_load(host, round % 2 == 0 ? 2 : 0).ok()) {
      result.ok = false;
      return result;
    }
    const auto e1 = std::chrono::steady_clock::now();
    latencies.push_back(
        std::chrono::duration<double, std::milli>(e1 - e0).count());
  }
  std::sort(latencies.begin(), latencies.end());
  result.p50_ms = percentile(latencies, 0.50);
  result.p99_ms = percentile(latencies, 0.99);
  result.max_ms = latencies.empty() ? 0 : latencies.back();

  auto objective = router.objective_value();
  if (!objective.ok()) {
    result.ok = false;
    return result;
  }
  result.objective = objective.value();
  result.domains = router.domain_count();
  for (const auto& info : router.snapshot()) {
    result.solver_passes += info.solver_passes;
    result.solver_moves += info.solver_moves;
    result.solver_improvement += info.solver_improvement;
  }
  if (want_fingerprint) {
    result.fingerprint = harmony::testing::fingerprint(router);
  }
  return result;
}

int run(bool smoke) {
  std::printf("=== Ablation A1: greedy vs exhaustive option search ===\n");
  std::printf("scenario: N database clients arriving on an N-client cluster; "
              "objective = mean predicted completion time\n\n");
  std::printf("clients   greedy_obj  exhaust_obj  gap%%   greedy_cands  "
              "exhaust_cands  truncated   greedy_ms  exhaust_ms\n");
  bool greedy_ever_worse = false;
  bool ok = true;
  std::string json_a1;
  const std::vector<int> a1_clients =
      smoke ? std::vector<int>{1, 2, 3} : std::vector<int>{1, 2, 3, 4, 5, 6};
  for (int clients : a1_clients) {
    auto greedy = run_mode(core::OptimizerConfig::Mode::kGreedy, clients);
    auto exhaustive =
        run_mode(core::OptimizerConfig::Mode::kExhaustive, clients);
    ok = ok && greedy.ok && exhaustive.ok;
    double gap = exhaustive.objective > 0
                     ? 100.0 * (greedy.objective - exhaustive.objective) /
                           exhaustive.objective
                     : 0;
    if (gap > 1e-6) greedy_ever_worse = true;
    std::printf(
        "%7d   %10.3f  %11.3f  %5.1f  %12llu  %13llu  %9llu  %10.2f  %10.2f\n",
        clients, greedy.objective, exhaustive.objective, gap,
        static_cast<unsigned long long>(greedy.candidates),
        static_cast<unsigned long long>(exhaustive.candidates),
        static_cast<unsigned long long>(exhaustive.truncated),
        greedy.wall_ms, exhaustive.wall_ms);
    if (!json_a1.empty()) json_a1 += ",";
    json_a1 += str_format(
        "\n    {\"clients\": %d, \"greedy_objective\": %.6g, "
        "\"exhaustive_objective\": %.6g, \"gap_percent\": %.3g, "
        "\"greedy_candidates\": %llu, \"exhaustive_candidates\": %llu, "
        "\"exhaustive_truncated_passes\": %llu, "
        "\"greedy_ms\": %.3f, \"exhaustive_ms\": %.3f}",
        clients, greedy.objective, exhaustive.objective, gap,
        static_cast<unsigned long long>(greedy.candidates),
        static_cast<unsigned long long>(exhaustive.candidates),
        static_cast<unsigned long long>(exhaustive.truncated),
        greedy.wall_ms, exhaustive.wall_ms);
  }
  std::printf("\nsummary: greedy matches the exhaustive optimum on this "
              "workload: %s\n", greedy_ever_worse ? "no (gap above)" : "yes");
  std::printf("exhaustive candidate count grows as 2^N (joint space); greedy "
              "grows linearly per pass.\n");

  const int clients = 6;
  const int rounds = smoke ? 50 : 200;
  std::printf("\n=== Ablation A1b: incremental planning engine ===\n");
  std::printf("scenario: %d settled clients, %d steady-state re-evaluation "
              "rounds per perturbation pattern\n\n", clients, rounds);
  std::printf("%-17s %-12s %10s %12s %12s %10s %12s %10s %10s\n", "scenario",
              "engine", "wall_ms", "decisions/s", "cands/dec", "cands",
              "pred_calls", "exprs/dec", "hit_rate");
  std::string json_steady;
  bool reduction_met = true;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kSpareNodeLoad,
                            Scenario::kClientNodeLoad}) {
    auto incremental = run_steady(true, scenario, clients, rounds);
    auto full = run_steady(false, scenario, clients, rounds);
    ok = ok && incremental.ok && full.ok;
    for (const auto* row : {&incremental, &full}) {
      std::printf(
          "%-17s %-12s %10.2f %12.0f %12.2f %10llu %12llu %10.2f %10.3f\n",
          scenario_name(scenario),
          row == &incremental ? "incremental" : "full",
          row->wall_ms, row->decisions_per_sec(),
          row->candidates_per_decision(),
          static_cast<unsigned long long>(row->candidates),
          static_cast<unsigned long long>(row->predictor_calls),
          row->expr_evals_per_decision(), row->cache_hit_rate);
    }
    const std::optional<double> candidate_ratio =
        ratio(full.candidates, incremental.candidates);
    const std::optional<double> predictor_ratio =
        ratio(full.predictor_calls, incremental.predictor_calls);
    std::printf("%-17s reduction: %s candidates, %s predictor calls\n", "",
                ratio_text(candidate_ratio).c_str(),
                ratio_text(predictor_ratio).c_str());
    // Acceptance: >=2x less steady-state work on candidates or
    // predictor calls.
    if (!ratio_at_least(candidate_ratio, 2.0) &&
        !ratio_at_least(predictor_ratio, 2.0)) {
      reduction_met = false;
    }
    if (!json_steady.empty()) json_steady += ",";
    auto engine_json = [](const SteadyResult& r) {
      return str_format(
          "{\"wall_ms\": %.3f, \"decisions\": %llu, "
          "\"decisions_per_sec\": %.1f, \"candidates\": %llu, "
          "\"candidates_per_decision\": %.4f, \"predictor_calls\": %llu, "
          "\"bundles_skipped\": %llu, \"expr_evaluations\": %llu, "
          "\"expr_evaluations_per_decision\": %.4f, "
          "\"cache_hit_rate\": %.4f}",
          r.wall_ms, static_cast<unsigned long long>(r.decisions),
          r.decisions_per_sec(),
          static_cast<unsigned long long>(r.candidates),
          r.candidates_per_decision(),
          static_cast<unsigned long long>(r.predictor_calls),
          static_cast<unsigned long long>(r.bundles_skipped),
          static_cast<unsigned long long>(r.expr_evals),
          r.expr_evals_per_decision(), r.cache_hit_rate);
    };
    json_steady += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d,\n"
        "     \"incremental\": %s,\n"
        "     \"full\": %s,\n"
        "     \"candidate_reduction\": %s, \"predictor_reduction\": %s}",
        scenario_name(scenario), clients, rounds,
        engine_json(incremental).c_str(), engine_json(full).c_str(),
        ratio_json(candidate_ratio).c_str(),
        ratio_json(predictor_ratio).c_str());
  }
  std::printf("\nsteady-state >=2x work reduction: %s\n",
              reduction_met ? "yes" : "NO");

  // --- Durability: journaling overhead on the decision path ---------------
  // Same steady-state loop, incremental engine, with the write-ahead
  // journal attached (default policy: one write(2) per epoch, fsync
  // every 32 epochs, snapshot every 64). Acceptance: <10% wall-time
  // regression on the steady-state decision path.
  std::string json_journal;
  double journal_regression = 0;
  bool journal_gate_met = true;
  if (!smoke) {
  std::printf("\n=== Durability: journaling overhead on the decision path "
              "===\n");
  std::printf("%-17s %12s %12s %12s\n", "scenario", "plain_ms",
              "journaled_ms", "regression");
  double plain_total = 0, journaled_total = 0;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kClientNodeLoad}) {
    // Interleaved best-of-10: multi-tenant machines throttle and steal
    // in bursts lasting several runs, so both variants need many shots
    // at a quiet window. The journal's cost is systematic and survives
    // the min; the noise is not and doesn't.
    double plain_ms = 1e18, journaled_ms = 1e18;
    for (int repeat = 0; repeat < 10; ++repeat) {
      auto plain = run_steady(true, scenario, clients, rounds);
      auto journaled = run_steady(true, scenario, clients, rounds,
                                  /*journaled=*/true);
      ok = ok && plain.ok && journaled.ok;
      plain_ms = std::min(plain_ms, plain.wall_ms);
      journaled_ms = std::min(journaled_ms, journaled.wall_ms);
    }
    const double regression =
        plain_ms > 0 ? 100.0 * (journaled_ms - plain_ms) / plain_ms : 0;
    plain_total += plain_ms;
    journaled_total += journaled_ms;
    std::printf("%-17s %12.3f %12.3f %11.1f%%\n", scenario_name(scenario),
                plain_ms, journaled_ms, regression);
    if (!json_journal.empty()) json_journal += ",";
    json_journal += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d, "
        "\"plain_ms\": %.3f, \"journaled_ms\": %.3f, "
        "\"regression_percent\": %.2f}",
        scenario_name(scenario), clients, rounds, plain_ms, journaled_ms,
        regression);
  }
  clean_persist_dir();
  journal_regression =
      plain_total > 0 ? 100.0 * (journaled_total - plain_total) / plain_total
                      : 0;
  journal_gate_met = journal_regression < 10.0;
  std::printf("aggregate steady-state regression with journaling: %.1f%% "
              "(<10%% required): %s\n",
              journal_regression, journal_gate_met ? "yes" : "NO");
  }  // !smoke

  // --- Telemetry: instrument overhead on the decision path ----------------
  // The same steady-state loop with the process-global telemetry flag on
  // vs off. Recording is a relaxed load plus (when on) relaxed atomic
  // adds into padded cells, so the systematic cost must stay under 2%.
  // Interleaved best-of-10 minima for the same noise reasons as above.
  std::string json_telemetry;
  double telemetry_overhead = 0;
  bool telemetry_gate_met = true;
  if (!smoke) {
  std::printf("\n=== Telemetry: instrument overhead on the decision path "
              "===\n");
  std::printf("%-17s %12s %12s %12s\n", "scenario", "off_ms", "on_ms",
              "overhead");
  double telemetry_off_total = 0, telemetry_on_total = 0;
  for (Scenario scenario : {Scenario::kQuiet, Scenario::kClientNodeLoad}) {
    double off_ms = 1e18, on_ms = 1e18;
    for (int repeat = 0; repeat < 10; ++repeat) {
      metric::set_telemetry_enabled(false);
      auto off = run_steady(true, scenario, clients, rounds);
      metric::set_telemetry_enabled(true);
      auto on = run_steady(true, scenario, clients, rounds);
      ok = ok && off.ok && on.ok;
      off_ms = std::min(off_ms, off.wall_ms);
      on_ms = std::min(on_ms, on.wall_ms);
    }
    const double overhead =
        off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0;
    telemetry_off_total += off_ms;
    telemetry_on_total += on_ms;
    std::printf("%-17s %12.3f %12.3f %11.1f%%\n", scenario_name(scenario),
                off_ms, on_ms, overhead);
    if (!json_telemetry.empty()) json_telemetry += ",";
    json_telemetry += str_format(
        "\n    {\"scenario\": \"%s\", \"clients\": %d, \"rounds\": %d, "
        "\"telemetry_off_ms\": %.3f, \"telemetry_on_ms\": %.3f, "
        "\"overhead_percent\": %.2f}",
        scenario_name(scenario), clients, rounds, off_ms, on_ms, overhead);
  }
  metric::set_telemetry_enabled(true);
  telemetry_overhead =
      telemetry_off_total > 0
          ? 100.0 * (telemetry_on_total - telemetry_off_total) /
                telemetry_off_total
          : 0;
  telemetry_gate_met = telemetry_overhead < 2.0;
  std::printf("aggregate decision-path overhead with telemetry on: %.2f%% "
              "(<2%% required): %s\n",
              telemetry_overhead, telemetry_gate_met ? "yes" : "NO");
  }  // !smoke

  // --- Partitioned decision core: multi-tenant scaling --------------------
  // Acceptance: >=4x equivalent decisions/s over the --single-domain
  // reference on >=8 independent app groups, with a bit-equal final
  // configuration fingerprint.
  const uint64_t tenant_instances =
      static_cast<uint64_t>(kTenantGroups) * kTenantAppsPerGroup;
  const uint64_t tenant_decisions =
      static_cast<uint64_t>(kTenantRounds) * tenant_instances;
  std::printf("\n=== Partitioned decision core: multi-tenant scaling ===\n");
  std::printf("scenario: %d hostname-pinned app groups (%d apps each, %d "
              "nodes each), %d load-flip rounds round-robin across groups\n\n",
              kTenantGroups, kTenantAppsPerGroup, kTenantNodesPerGroup,
              kTenantRounds);
  double reference_ms = 1e18, partitioned_ms = 1e18;
  bool identity_match = true;
  for (int repeat = 0; repeat < (smoke ? 1 : 5); ++repeat) {
    auto reference = run_partition_mode(/*single_domain=*/true);
    auto partitioned = run_partition_mode(/*single_domain=*/false);
    ok = ok && reference.ok && partitioned.ok;
    identity_match = identity_match && reference.ok && partitioned.ok &&
                     reference.fingerprint == partitioned.fingerprint;
    reference_ms = std::min(reference_ms, reference.wall_ms);
    partitioned_ms = std::min(partitioned_ms, partitioned.wall_ms);
  }
  const double partition_speedup =
      partitioned_ms > 0 ? reference_ms / partitioned_ms : 0;
  const double reference_dps =
      reference_ms > 0 ? tenant_decisions / (reference_ms / 1000.0) : 0;
  const double partitioned_dps =
      partitioned_ms > 0 ? tenant_decisions / (partitioned_ms / 1000.0) : 0;
  // In smoke mode only the (deterministic) identity half of the gate is
  // enforced: a single-repeat wall-clock ratio is too noisy to fail CI.
  const bool partition_gate_met =
      identity_match && (smoke || partition_speedup >= 4.0);
  std::printf("%-17s %12s %12s %12s %10s\n", "mode", "wall_ms",
              "decisions/s", "speedup", "identity");
  std::printf("%-17s %12.3f %12.0f %12s %10s\n", "single_domain",
              reference_ms, reference_dps, "1.0x", "-");
  std::printf("%-17s %12.3f %12.0f %11.1fx %10s\n", "partitioned",
              partitioned_ms, partitioned_dps, partition_speedup,
              identity_match ? "bit-equal" : "DIVERGED");
  std::printf("partitioned >=4x decisions/s with bit-equal decisions: %s\n",
              partition_gate_met ? "yes" : "NO");

  // Telemetry overhead gate re-run with domains enabled: per-domain
  // epoch counters/histograms and the domain.reevaluate span must stay
  // inside the same <2% envelope as the single-controller instruments.
  double domains_off_ms = 0, domains_on_ms = 0;
  double domains_telemetry_overhead = 0;
  bool domains_telemetry_gate_met = true;
  if (!smoke) {
  domains_off_ms = 1e18;
  domains_on_ms = 1e18;
  for (int repeat = 0; repeat < 5; ++repeat) {
    metric::set_telemetry_enabled(false);
    auto off = run_partition_mode(/*single_domain=*/false);
    metric::set_telemetry_enabled(true);
    auto on = run_partition_mode(/*single_domain=*/false);
    ok = ok && off.ok && on.ok;
    domains_off_ms = std::min(domains_off_ms, off.wall_ms);
    domains_on_ms = std::min(domains_on_ms, on.wall_ms);
  }
  metric::set_telemetry_enabled(true);
  domains_telemetry_overhead =
      domains_off_ms > 0
          ? 100.0 * (domains_on_ms - domains_off_ms) / domains_off_ms
          : 0;
  domains_telemetry_gate_met = domains_telemetry_overhead < 2.0;
  std::printf("telemetry overhead with domains enabled: %.2f%% "
              "(<2%% required): %s\n",
              domains_telemetry_overhead,
              domains_telemetry_gate_met ? "yes" : "NO");
  }  // !smoke

  // --- Anytime swarm-scale allocator --------------------------------------
  harmony::testing::SwarmConfig swarm_base;
  swarm_base.groups = smoke ? 16 : 250;
  const int swarm_rounds = smoke ? 40 : 200;
  const double swarm_budget_ms = 50;
  const int swarm_apps = swarm_base.groups * swarm_base.apps_per_group;
  const int swarm_nodes =
      swarm_base.groups * (swarm_base.clients_per_group + 1);
  std::printf("\n=== Anytime swarm-scale allocator ===\n");
  std::printf("scenario: %d bundles on %d nodes (%d groups), grant levels "
              "{1,2,3}, %d load-flip rounds, %.0f ms budget\n\n",
              swarm_apps, swarm_nodes, swarm_base.groups, swarm_rounds,
              swarm_budget_ms);
  std::printf("%-15s %-11s %12s %11s %9s %9s %9s %8s %8s\n", "scenario",
              "mode", "objective", "register_ms", "p50_ms", "p99_ms",
              "max_ms", "passes", "moves");
  bool swarm_ok = true;
  bool swarm_identity_met = true;
  bool swarm_objective_met = true;
  bool swarm_strict_met = true;
  bool swarm_latency_met = true;
  std::string json_swarm;
  for (bool packing : {true, false}) {
    harmony::testing::SwarmConfig swarm = swarm_base;
    swarm.packing_stress = packing;
    const char* scenario = packing ? "packing_stress" : "uniform";
    auto greedy = run_swarm(swarm, SwarmMode::kGreedy, 0, swarm_rounds,
                            /*want_fingerprint=*/true);
    auto budget0 = run_swarm(swarm, SwarmMode::kBudgetZero, 0, swarm_rounds,
                             /*want_fingerprint=*/true);
    auto solver = run_swarm(swarm, SwarmMode::kSolver, swarm_budget_ms,
                            swarm_rounds, /*want_fingerprint=*/false);
    swarm_ok = swarm_ok && greedy.ok && budget0.ok && solver.ok;
    const bool identity =
        greedy.ok && budget0.ok && greedy.fingerprint == budget0.fingerprint;
    swarm_identity_met = swarm_identity_met && identity;
    // Gate 1: never worse than greedy; strictly better where greedy is
    // provably wedged.
    if (solver.objective > greedy.objective + 1e-9) {
      swarm_objective_met = false;
    }
    if (packing && solver.objective >= greedy.objective - 1e-9) {
      swarm_strict_met = false;
    }
    // Gate 2: the anytime budget bounds the solver's share of a
    // decision, not the machine. A decision is greedy pass + solver;
    // greedy spends what it spends (at 250 full-cluster domains its
    // own tail is above 50 ms before any solver exists — budget_zero
    // proves it), and the solver adds at most one budget on top. So:
    // the *median* solver-mode decision lands within the budget, and
    // the solver-mode p99 stays within the worst solver-free baseline
    // tail plus one budget. Enforced on the full-size run only; a
    // smoke run's 40 samples make p99 one scheduler stall.
    if (!smoke) {
      if (solver.p50_ms > swarm_budget_ms) swarm_latency_met = false;
      const double baseline_tail_ms =
          std::max({swarm_budget_ms, greedy.p99_ms, budget0.p99_ms});
      if (solver.p99_ms > baseline_tail_ms + swarm_budget_ms) {
        swarm_latency_met = false;
      }
    }
    for (const auto* row : {&greedy, &budget0, &solver}) {
      const char* mode = row == &greedy    ? "greedy"
                         : row == &budget0 ? "budget_zero"
                                           : "solver";
      std::printf("%-15s %-11s %12.4f %11.0f %9.3f %9.3f %9.3f %8llu %8llu\n",
                  scenario, mode, row->objective, row->register_ms,
                  row->p50_ms, row->p99_ms, row->max_ms,
                  static_cast<unsigned long long>(row->solver_passes),
                  static_cast<unsigned long long>(row->solver_moves));
    }
    const double swarm_gain =
        greedy.objective > 0
            ? 100.0 * (greedy.objective - solver.objective) / greedy.objective
            : 0;
    std::printf("%-15s budget_zero identity: %s; solver vs greedy: %+.3f%% "
                "(%llu moves across %zu domains)\n",
                "", identity ? "bit-equal" : "DIVERGED", -swarm_gain,
                static_cast<unsigned long long>(solver.solver_moves),
                solver.domains);
    auto mode_json = [](const SwarmRun& r) {
      return str_format(
          "{\"objective\": %.6f, \"register_ms\": %.1f, "
          "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, "
          "\"solver_passes\": %llu, \"solver_moves\": %llu, "
          "\"solver_improvement\": %.6f}",
          r.objective, r.register_ms, r.p50_ms, r.p99_ms, r.max_ms,
          static_cast<unsigned long long>(r.solver_passes),
          static_cast<unsigned long long>(r.solver_moves),
          r.solver_improvement);
    };
    if (!json_swarm.empty()) json_swarm += ",";
    json_swarm += str_format(
        "\n    {\"scenario\": \"%s\", \"bundles\": %d, \"nodes\": %d, "
        "\"domains\": %zu, \"rounds\": %d,\n"
        "     \"greedy\": %s,\n"
        "     \"budget_zero\": %s,\n"
        "     \"solver\": %s,\n"
        "     \"budget_zero_identity\": %s, "
        "\"solver_gain_percent\": %.3f}",
        scenario, swarm_apps, swarm_nodes, solver.domains, swarm_rounds,
        mode_json(greedy).c_str(), mode_json(budget0).c_str(),
        mode_json(solver).c_str(), identity ? "true" : "false", swarm_gain);
  }
  ok = ok && swarm_ok;
  const bool swarm_gate_met = swarm_identity_met && swarm_objective_met &&
                              swarm_strict_met && swarm_latency_met;
  std::printf("\nsolver <= greedy everywhere: %s; strictly better on "
              "packing-stress: %s\n",
              swarm_objective_met ? "yes" : "NO",
              swarm_strict_met ? "yes" : "NO");
  std::printf("median decision within %.0f ms budget, p99 within solver-free "
              "tail + budget: %s\n",
              swarm_budget_ms,
              !smoke ? (swarm_latency_met ? "yes" : "NO") : "(not gated in "
              "smoke)");
  std::printf("budget_ms = 0 bit-identical to greedy: %s\n",
              swarm_identity_met ? "yes" : "NO");

  if (smoke) {
    // Smoke validates gates at reduced scale without clobbering the
    // committed full-size numbers.
    std::printf("\nsmoke mode: BENCH_optimizer.json not rewritten\n");
    return ok && reduction_met && partition_gate_met && swarm_gate_met ? 0 : 1;
  }

  FILE* out = std::fopen("BENCH_optimizer.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"abl_optimizer\",\n"
                 "  \"greedy_vs_exhaustive\": [%s\n  ],\n"
                 "  \"steady_state\": [%s\n  ],\n"
                 "  \"steady_state_reduction_met\": %s,\n"
                 "  \"journaling\": [%s\n  ],\n"
                 "  \"journaling_regression_percent\": %.2f,\n"
                 "  \"journaling_gate_met\": %s,\n"
                 "  \"telemetry\": [%s\n  ],\n"
                 "  \"telemetry_overhead_percent\": %.2f,\n"
                 "  \"telemetry_gate_met\": %s,\n"
                 "  \"partitioned\": {\n"
                 "    \"groups\": %d, \"nodes_per_group\": %d, "
                 "\"apps_per_group\": %d, \"rounds\": %d,\n"
                 "    \"decisions\": %llu,\n"
                 "    \"single_domain_ms\": %.3f, \"partitioned_ms\": %.3f,\n"
                 "    \"single_domain_decisions_per_sec\": %.1f,\n"
                 "    \"partitioned_decisions_per_sec\": %.1f,\n"
                 "    \"speedup\": %.2f, \"identity_match\": %s,\n"
                 "    \"speedup_gate_met\": %s,\n"
                 "    \"telemetry_off_ms\": %.3f, \"telemetry_on_ms\": %.3f,\n"
                 "    \"telemetry_overhead_percent\": %.2f,\n"
                 "    \"telemetry_gate_met\": %s\n  },\n"
                 "  \"swarm\": [%s\n  ],\n"
                 "  \"swarm_budget_ms\": %.0f,\n"
                 "  \"swarm_gates\": {\n"
                 "    \"objective_met\": %s, \"strict_improvement_met\": %s,\n"
                 "    \"latency_met\": %s, \"budget_zero_identity_met\": %s\n"
                 "  }\n}\n",
                 json_a1.c_str(), json_steady.c_str(),
                 reduction_met ? "true" : "false", json_journal.c_str(),
                 journal_regression, journal_gate_met ? "true" : "false",
                 json_telemetry.c_str(), telemetry_overhead,
                 telemetry_gate_met ? "true" : "false", kTenantGroups,
                 kTenantNodesPerGroup, kTenantAppsPerGroup, kTenantRounds,
                 static_cast<unsigned long long>(tenant_decisions),
                 reference_ms, partitioned_ms, reference_dps, partitioned_dps,
                 partition_speedup, identity_match ? "true" : "false",
                 partition_gate_met ? "true" : "false", domains_off_ms,
                 domains_on_ms, domains_telemetry_overhead,
                 domains_telemetry_gate_met ? "true" : "false",
                 json_swarm.c_str(), swarm_budget_ms,
                 swarm_objective_met ? "true" : "false",
                 swarm_strict_met ? "true" : "false",
                 swarm_latency_met ? "true" : "false",
                 swarm_identity_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_optimizer.json\n");
  }
  return ok && reduction_met && journal_gate_met && telemetry_gate_met &&
                 partition_gate_met && domains_telemetry_gate_met &&
                 swarm_gate_met
             ? 0
             : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return run(smoke);
}
