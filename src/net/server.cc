#include "net/server.h"

#include <poll.h>

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::net {

HarmonyTcpServer::HarmonyTcpServer(core::Controller* controller,
                                   uint16_t port)
    : controller_(controller), port_(port) {
  HARMONY_ASSERT(controller != nullptr);
}

HarmonyTcpServer::~HarmonyTcpServer() {
  // Deregister everything still connected.
  for (auto& connection : connections_) {
    for (core::InstanceId id : connection->instances) {
      (void)controller_->unregister(id);
    }
  }
}

Result<uint16_t> HarmonyTcpServer::start() {
  auto listener = listen_on(port_);
  if (!listener.ok()) {
    return Err<uint16_t>(listener.error().code, listener.error().message);
  }
  listener_ = std::move(listener).value();
  auto status = set_nonblocking(listener_, true);
  if (!status.ok()) return Err<uint16_t>(status.error().code, status.error().message);
  auto port = local_port(listener_);
  if (!port.ok()) return port;
  port_ = port.value();
  HLOG_INFO("server") << "harmony listening on 127.0.0.1:" << port_;
  return port_;
}

bool HarmonyTcpServer::run_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.push_back({listener_.get(), POLLIN, 0});
  for (auto& connection : connections_) {
    short events = POLLIN;
    if (!connection->outbound.empty()) events |= POLLOUT;
    fds.push_back({connection->fd.get(), events, 0});
  }
  int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return false;

  if (fds[0].revents & POLLIN) accept_new();
  for (size_t i = 1; i < fds.size(); ++i) {
    Connection& connection = *connections_[i - 1];
    if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      handle_readable(connection);
    }
    if (!connection.drop && (fds[i].revents & POLLOUT)) {
      flush_writable(connection);
    }
  }
  reap_dropped();
  return true;
}

void HarmonyTcpServer::run(int until_idle_ms) {
  int idle_ms = 0;
  while (!stopping_) {
    bool progress = run_once(50);
    if (progress) {
      idle_ms = 0;
    } else {
      idle_ms += 50;
      if (until_idle_ms > 0 && idle_ms >= until_idle_ms) return;
    }
  }
}

void HarmonyTcpServer::accept_new() {
  while (true) {
    auto accepted = accept_connection(listener_);
    if (!accepted.ok()) return;  // EAGAIN or real error; poll again later
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(accepted).value();
    auto status = set_nonblocking(connection->fd, true);
    if (!status.ok()) continue;
    HLOG_DEBUG("server") << "accepted connection fd="
                         << connection->fd.get();
    connections_.push_back(std::move(connection));
  }
}

void HarmonyTcpServer::handle_readable(Connection& connection) {
  char buffer[4096];
  while (true) {
    auto n = read_some(connection.fd, buffer, sizeof(buffer));
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) break;  // drained
    connection.inbound.feed(std::string_view(buffer, n.value()));
  }
  while (true) {
    auto frame = connection.inbound.next_frame();
    if (!frame.ok()) {
      HLOG_WARN("server") << "protocol violation: " << frame.error().message;
      connection.drop = true;
      return;
    }
    if (!frame.value().has_value()) break;
    auto message = Message::decode(*frame.value());
    if (!message.ok()) {
      send(connection, Message::err(message.error().code,
                                    message.error().message));
      continue;
    }
    dispatch(connection, message.value());
    if (connection.drop) return;
  }
}

void HarmonyTcpServer::dispatch(Connection& connection,
                                const Message& message) {
  if (message.verb == "REGISTER") {
    if (message.args.size() != 1) {
      send(connection, Message::err(ErrorCode::kProtocol,
                                    "REGISTER expects one argument"));
      return;
    }
    auto id = controller_->register_script(message.args[0]);
    if (!id.ok()) {
      send(connection, Message::err(id.error().code, id.error().message));
      return;
    }
    connection.instances.push_back(id.value());
    // Wire updates for this instance to this connection. The pointer is
    // stable: connections are heap-allocated and subscriptions die with
    // the instance (unregister clears them).
    Connection* conn = &connection;
    auto subscribed = controller_->subscribe(
        id.value(),
        [this, conn](const std::string& name, const std::string& value) {
          send(*conn, Message::update(name, value));
        });
    if (!subscribed.ok()) {
      send(connection,
           Message::err(subscribed.error().code, subscribed.error().message));
      return;
    }
    send(connection, Message::ok({str_format(
                         "%llu", static_cast<unsigned long long>(id.value()))}));
    return;
  }
  if (message.verb == "END" || message.verb == "GET") {
    unsigned long long raw = 0;
    if (message.args.empty() ||
        sscanf(message.args[0].c_str(), "%llu", &raw) != 1) {
      send(connection, Message::err(ErrorCode::kProtocol, "bad instance id"));
      return;
    }
    core::InstanceId id = raw;
    bool owned = std::find(connection.instances.begin(),
                           connection.instances.end(),
                           id) != connection.instances.end();
    if (!owned) {
      send(connection, Message::err(ErrorCode::kNotFound,
                                    "instance not registered here"));
      return;
    }
    if (message.verb == "END") {
      auto status = controller_->unregister(id);
      connection.instances.erase(std::remove(connection.instances.begin(),
                                             connection.instances.end(), id),
                                 connection.instances.end());
      send(connection, status.ok()
                           ? Message::ok()
                           : Message::err(status.error().code,
                                          status.error().message));
      return;
    }
    if (message.args.size() != 2) {
      send(connection, Message::err(ErrorCode::kProtocol,
                                    "GET expects id and name"));
      return;
    }
    auto value = controller_->get_variable(id, message.args[1]);
    send(connection, value.ok() ? Message::ok({value.value()})
                                : Message::err(value.error().code,
                                               value.error().message));
    return;
  }
  if (message.verb == "REEVALUATE") {
    auto status = controller_->reevaluate();
    send(connection, status.ok() ? Message::ok()
                                 : Message::err(status.error().code,
                                                status.error().message));
    return;
  }
  send(connection,
       Message::err(ErrorCode::kProtocol, "unknown verb: " + message.verb));
}

void HarmonyTcpServer::send(Connection& connection, const Message& message) {
  connection.outbound += encode_frame(message.encode());
  flush_writable(connection);
}

void HarmonyTcpServer::flush_writable(Connection& connection) {
  while (!connection.outbound.empty()) {
    auto n = write_some(connection.fd, connection.outbound.data(),
                        connection.outbound.size());
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) return;  // would block; poll will retry
    connection.outbound.erase(0, n.value());
  }
}

void HarmonyTcpServer::reap_dropped() {
  for (auto& connection : connections_) {
    if (!connection->drop) continue;
    // A vanished application is an implicit harmony_end.
    for (core::InstanceId id : connection->instances) {
      HLOG_INFO("server") << "connection dropped; ending instance " << id;
      (void)controller_->unregister(id);
    }
    connection->instances.clear();
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const auto& c) { return c->drop; }),
      connections_.end());
}

}  // namespace harmony::net
