// A sorted, duplicate-free set of node ids over which a scoped
// ResourcePool allocates its dense per-node state. Domain controllers
// share one immutable cluster Topology and keep occupancy/version
// arrays only for the nodes they own, so creating or resizing a domain
// costs O(|footprint|), never O(cluster).
//
// Slot numbering: nodes().at(slot) ascends with NodeId, i.e. slots
// preserve topology order — iterating a scope visits nodes in exactly
// the order an unscoped scan of Topology::nodes() would, which is what
// keeps scoped and full-cluster decision sequences bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/topology.h"

namespace harmony::cluster {

class NodeScope {
 public:
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  NodeScope() = default;
  // Takes any node list; sorts and de-duplicates.
  explicit NodeScope(std::vector<NodeId> nodes);

  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<NodeId>& nodes() const { return nodes_; }
  NodeId node_at(size_t slot) const { return nodes_[slot]; }

  // Dense index of `node`, or kNoSlot when outside the scope.
  size_t slot(NodeId node) const;
  bool contains(NodeId node) const { return slot(node) != kNoSlot; }

  // Union with `nodes`. Returns true when anything was added; slots of
  // pre-existing nodes may shift, so owners of slot-indexed arrays must
  // re-lay them out (ResourcePool::extend_scope does).
  bool extend(const std::vector<NodeId>& nodes);

 private:
  std::vector<NodeId> nodes_;
};

}  // namespace harmony::cluster
