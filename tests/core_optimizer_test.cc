#include "core/optimizer.h"

#include <gtest/gtest.h>

#include "core/controller.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::db_client_bundle;
using harmony::testing::sp2_cluster_script;

TEST(Optimizer, CountsCandidateEvaluations) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  EXPECT_EQ(controller.optimizer().candidates_evaluated(), 0u);
  ASSERT_TRUE(controller.register_script(db_client_bundle("sp2-00", 1)).ok());
  // Two options (QS, DS), both feasible.
  EXPECT_EQ(controller.optimizer().candidates_evaluated(), 2u);
}

TEST(Optimizer, ReevaluateOnEmptySystemIsNoop) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(1)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  ASSERT_TRUE(controller.reevaluate().ok());
  EXPECT_EQ(controller.reconfigurations(), 0u);
}

TEST(Optimizer, StableReevaluationDoesNotThrash) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(controller
                    .register_script(
                        db_client_bundle(str_format("sp2-%02d", i), i + 1))
                    .ok());
  }
  uint64_t before = controller.reconfigurations();
  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(controller.reevaluate().ok());
  }
  EXPECT_EQ(controller.reconfigurations(), before)
      << "re-evaluating an already-optimal system must change nothing";
}

TEST(Optimizer, ObjectiveNeverWorsensAcrossReevaluation) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(controller
                    .register_script(
                        db_client_bundle(str_format("sp2-%02d", i), i + 1))
                    .ok());
  }
  auto before = controller.objective_value();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(controller.reevaluate().ok());
  auto after = controller.objective_value();
  ASSERT_TRUE(after.ok());
  EXPECT_LE(after.value(), before.value() + 1e-9);
}

TEST(Optimizer, ExhaustiveRespectsComboLimit) {
  ControllerConfig config;
  config.optimizer.mode = OptimizerConfig::Mode::kExhaustive;
  config.optimizer.exhaustive_limit = 1;  // anything with >1 combo fails
  Controller controller(config);
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(2)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  auto r = controller.register_script(db_client_bundle("sp2-00", 1));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kCapacity);
}

TEST(Optimizer, MatchPolicyConfigurable) {
  for (auto policy : {cluster::MatchPolicy::kFirstFit,
                      cluster::MatchPolicy::kBestFit,
                      cluster::MatchPolicy::kWorstFit}) {
    ControllerConfig config;
    config.optimizer.match_policy = policy;
    Controller controller(config);
    ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(4)).ok());
    ASSERT_TRUE(controller.finalize_cluster().ok());
    auto id = controller.register_script(db_client_bundle("sp2-00", 1));
    ASSERT_TRUE(id.ok()) << match_policy_name(policy);
    EXPECT_EQ(controller.bundle_state(id.value(), "where")->choice.option,
              "QS");
  }
}

}  // namespace
}  // namespace harmony::core
