file(REMOVE_RECURSE
  "CMakeFiles/harmony_metric.dir/metric.cc.o"
  "CMakeFiles/harmony_metric.dir/metric.cc.o.d"
  "libharmony_metric.a"
  "libharmony_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
