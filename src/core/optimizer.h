// Option selection (paper §4.3): "we optimize one bundle at a time when
// adding new applications to the system. Bundles are evaluated in the
// same lexical order as they were defined... After defining the initial
// options for a new application, we re-evaluate the options for
// existing applications." Greedy by default; an exhaustive search over
// the joint choice space is provided as the ablation baseline.
//
// The greedy path is an *incremental planning engine*: candidates are
// evaluated against a PlanOverlay (copy-on-write view of the pool) so
// live state is only mutated when a winning plan commits; dirty-set
// tracking on SystemState lets re-evaluation passes skip bundles whose
// inputs are untouched; and a PredictionCache memoizes predictor calls
// across candidates and passes. Greedy decisions are identical to a
// full mutate-and-rollback pass — only the work done to reach them
// shrinks.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/matcher.h"
#include "common/result.h"
#include "core/objective.h"
#include "core/perf_model.h"
#include "core/solver.h"
#include "core/state.h"

namespace harmony::core {

struct OptimizerConfig {
  enum class Mode { kGreedy, kExhaustive };
  Mode mode = Mode::kGreedy;
  // How a newly arrived application is configured: kOptimize evaluates
  // every option against the objective; kFirstFeasible takes the first
  // option (definition order) that matches resources — the
  // application's declared default, as in the paper's §6 experiment
  // where clients start in query shipping and a later adaptation pass
  // reconfigures them.
  enum class InitialPolicy { kOptimize, kFirstFeasible };
  InitialPolicy initial_policy = InitialPolicy::kOptimize;
  // Re-evaluate existing applications when a new one arrives (§4.3).
  // Off, adaptation happens only at explicit/periodic reevaluate()
  // calls, reproducing the delayed trigger visible in Figure 7.
  bool reevaluate_on_arrival = true;
  // Charge the option's frictional cost when a reconfiguration would
  // change the current choice (paper §3, requirement five).
  bool respect_friction = true;
  // Refuse to switch a bundle before its granularity window elapses
  // (paper §3, requirement four).
  bool respect_granularity = true;
  cluster::MatchPolicy match_policy = cluster::MatchPolicy::kFirstFit;
  // Joint-combination cap for exhaustive mode.
  size_t exhaustive_limit = 100000;
  // When the joint space exceeds exhaustive_limit: fail with kCapacity
  // (default, the historical behavior) or evaluate a deterministic
  // prefix of exhaustive_limit combinations and count the truncation
  // (exhaustive_truncations() + optimizer.exhaustive_truncated_total).
  bool exhaustive_truncate = false;
  // Anytime plan-improvement pass run after greedy on_arrival /
  // reevaluate passes. Disabled by default (budget_ms = 0): decisions
  // are bit-identical to greedy.
  SolverConfig solver;
  // Memory grant multipliers tried for options with open-ended (">=")
  // memory constraints. {1.0} reproduces minimum-only grants; adding
  // levels lets the optimizer trade memory for bandwidth as §3.5
  // describes ("Harmony can then decide to allocate additional memory
  // resources at the client").
  std::vector<double> memory_grant_levels = {1.0};
  // Incremental re-evaluation: skip bundles whose feasible set and
  // contention inputs are untouched since their last evaluation
  // (dirty-set tracking). Decisions are provably identical to a full
  // pass for separable objectives; non-separable objectives only skip
  // when the whole system is unchanged. Off = re-walk everything
  // (the differential-test baseline).
  bool incremental = true;
  // Memoize predictor calls keyed on their full input fingerprint. Off
  // = recompute every prediction (the differential-test baseline; a
  // stale or colliding cache entry would otherwise corrupt both sides
  // of the comparison identically).
  bool memoize_predictions = true;
};

struct Decision {
  InstanceId instance = 0;
  std::string bundle;
  OptionChoice choice;
  bool changed = false;  // differs from the previous configuration
};

class Optimizer {
 public:
  Optimizer(const Predictor* predictor, const Objective* objective,
            OptimizerConfig config = {});

  // Namespace-backed expression context for RSL amounts. The context is
  // a live view; memoized predictions survive installs because cache
  // keys embed the value of every name a model's expressions read (see
  // prediction_cache_key), so entries built against content that since
  // changed simply stop hitting.
  void set_names(rsl::ExprContext names);
  const OptimizerConfig& config() const { return config_; }
  // Reconfiguring forces the next pass to re-evaluate everything.
  void set_config(OptimizerConfig config);
  // Drops memoized predictions wholesale. Read-set keying makes this
  // unnecessary for namespace churn; kept as an escape hatch for
  // callers that change predictor-visible state behind its back.
  void invalidate_predictions() { cache_.invalidate(); }

  // Configures a newly arrived instance's bundles (definition order),
  // then re-evaluates every other application. Returns all applied
  // decisions. Fails with kNoMatch when no option of some new bundle
  // fits the remaining resources.
  Result<std::vector<Decision>> on_arrival(SystemState& state, InstanceId id,
                                           double now);

  // One re-evaluation pass over every instance and bundle (used on
  // departures and periodic timers). Under incremental mode, bundles
  // whose dirty inputs are untouched are skipped and report an
  // unchanged decision.
  Result<std::vector<Decision>> reevaluate(SystemState& state, double now);

  // Manual steering: installs a specific choice for one bundle,
  // bypassing the objective (but not resource matching). On an
  // infeasible request the previous configuration is restored and an
  // error returned.
  Result<Decision> apply_choice(SystemState& state, InstanceId id,
                                const std::string& bundle,
                                const OptionChoice& choice, double now);

  // Predicted response time per configured instance, state order.
  Result<std::vector<std::pair<InstanceId, double>>> predict_all(
      const SystemState& state) const;
  // Objective under the current configuration.
  Result<double> objective_value(const SystemState& state) const;

  // --- decision-path counters (ablation / metrics) ------------------------
  // Candidate configurations evaluated since construction.
  uint64_t candidates_evaluated() const { return candidates_evaluated_; }
  // Actual predictor invocations (prediction-cache misses + uncached).
  uint64_t predictor_calls() const { return predictor_calls_; }
  // Bundle optimizations run vs skipped by dirty-set tracking.
  uint64_t bundles_evaluated() const { return bundles_evaluated_; }
  uint64_t bundles_skipped() const { return bundles_skipped_; }
  const PredictionCache::Stats& cache_stats() const { return cache_.stats(); }
  // Exhaustive searches that hit exhaustive_limit with
  // exhaustive_truncate set (capped "exhaustive" rows are not truly
  // exhaustive).
  uint64_t exhaustive_truncations() const { return exhaustive_truncations_; }
  // Solver statistics, or nullptr when the solver is disabled.
  const SolverStats* solver_stats() const {
    return solver_ ? &solver_->stats() : nullptr;
  }

 private:
  friend class Solver;
  friend class SolverPass;  // the solver's per-pass working set (solver.cc)
  Result<Decision> optimize_bundle(SystemState& state, InstanceState& instance,
                                   BundleState& bundle, double now,
                                   bool require_feasible);
  Result<Decision> configure_first_feasible(SystemState& state,
                                            InstanceState& instance,
                                            BundleState& bundle, double now);
  Result<std::vector<Decision>> exhaustive(SystemState& state, double now);
  // The shared re-evaluation sweep: every bundle of every instance
  // except `exclude`, with dirty-set skipping when allowed.
  Result<std::vector<Decision>> reevaluate_pass(SystemState& state, double now,
                                                InstanceId exclude);
  // True when re-optimizing `bundle` provably reproduces its current
  // configuration (nothing it depends on changed since its last
  // evaluation).
  bool can_skip(const SystemState& state, const BundleState& bundle) const;

  // Installs a candidate (matching + reserving) against a resource
  // view; returns the allocation.
  Result<cluster::Allocation> try_install_on(cluster::ResourceView& view,
                                             BundleState& bundle,
                                             const OptionChoice& choice) const;
  Result<cluster::Allocation> try_install(SystemState& state,
                                          BundleState& bundle,
                                          const OptionChoice& choice) const;

  // Objective of the whole system with `candidate` (placed as
  // `allocation`) speculatively standing in for `bundle`, evaluated
  // under the plan's contention view. Friction is charged against
  // `instance` when the candidate differs from `previous` (non-null).
  Result<double> plan_objective(const SystemState& state,
                                const InstanceState& instance,
                                const BundleState& bundle,
                                const OptionChoice& candidate,
                                const cluster::Allocation& allocation,
                                const PlanOverlay& plan,
                                const OptionChoice* previous) const;
  // Memoized predictor invocation for one (instance, bundle) under the
  // given contention view (live pool, plan overlay, or explicit map).
  Result<double> predict_cached(InstanceId instance,
                                const BundleState& bundle,
                                const rsl::OptionSpec& option,
                                const OptionChoice& choice,
                                const cluster::Allocation& allocation,
                                const LoadView& load,
                                const cluster::Topology& topology) const;

  // Snapshot of every bundle's configuration (indexed [instance idx]
  // [bundle idx]) for friction pricing in the solver, taken before the
  // greedy pass mutates state.
  std::vector<std::vector<Solver::Previous>> snapshot_previous(
      const SystemState& state) const;
  // Runs the solver (when enabled) after a greedy pass. Failures are
  // swallowed: the greedy plan stands.
  void run_solver(SystemState& state, double now,
                  std::chrono::steady_clock::time_point deadline,
                  const std::vector<std::vector<Solver::Previous>>& previous,
                  std::vector<Decision>& decisions);

  const Predictor* predictor_;
  const Objective* objective_;
  OptimizerConfig config_;
  rsl::ExprContext names_;
  mutable PredictionCache cache_;
  std::unique_ptr<Solver> solver_;
  mutable uint64_t candidates_evaluated_ = 0;
  mutable uint64_t predictor_calls_ = 0;
  uint64_t bundles_evaluated_ = 0;
  uint64_t bundles_skipped_ = 0;
  uint64_t exhaustive_truncations_ = 0;
  // Set by set_config / exhaustive runs: the next pass must not skip.
  bool force_full_pass_ = false;
};

// Enumerates every (option, memory-grant) candidate for a bundle spec:
// each option's variable-binding choices crossed with the grant levels
// (only options with an open-ended ">=" memory constraint get more
// than the first level). Shared by the greedy pass and the solver so
// both search the same candidate space.
std::vector<OptionChoice> expand_option_choices(
    const rsl::BundleSpec& spec, const std::vector<double>& grant_levels);

// Tightest effective deadline declared across an instance's configured
// options (with that option's tardiness weight); false when no option
// declares one. Shared by the optimizer's evaluation sites, the
// controller's tardiness metric, and the domain router's merged
// objective.
bool instance_deadline(const InstanceState& instance, double* deadline_s,
                       double* weight);

}  // namespace harmony::core
