# Empty dependencies file for policy_console.
# This may be replaced when dependencies are built.
