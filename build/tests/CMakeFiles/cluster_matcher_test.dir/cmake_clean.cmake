file(REMOVE_RECURSE
  "CMakeFiles/cluster_matcher_test.dir/cluster_matcher_test.cc.o"
  "CMakeFiles/cluster_matcher_test.dir/cluster_matcher_test.cc.o.d"
  "cluster_matcher_test"
  "cluster_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
