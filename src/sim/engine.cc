#include "sim/engine.h"

#include "common/assert.h"

namespace harmony::sim {

EventId SimEngine::schedule(double delay, EventFn fn) {
  HARMONY_ASSERT_MSG(delay >= 0, "cannot schedule into the past");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId SimEngine::schedule_at(double time, EventFn fn) {
  HARMONY_ASSERT_MSG(time >= now_ - 1e-12, "cannot schedule into the past");
  if (time < now_) time = now_;  // absorb rounding epsilon
  EventId id = next_id_++;
  handlers_[id] = std::move(fn);
  queue_.push(Scheduled{time, next_seq_++, id});
  return id;
}

void SimEngine::cancel(EventId id) { handlers_.erase(id); }

bool SimEngine::step() {
  while (!queue_.empty()) {
    Scheduled entry = queue_.top();
    queue_.pop();
    auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    EventFn fn = std::move(it->second);
    handlers_.erase(it);
    HARMONY_ASSERT(entry.time >= now_ - 1e-12);
    now_ = entry.time > now_ ? entry.time : now_;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void SimEngine::run_until(double until) {
  HARMONY_ASSERT(until >= now_);
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    Scheduled entry = queue_.top();
    if (handlers_.find(entry.id) == handlers_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.time > until) break;
    step();
  }
  now_ = until;
}

void SimEngine::run() {
  while (step()) {
  }
}

size_t SimEngine::pending() const { return handlers_.size(); }

}  // namespace harmony::sim
