// The Harmony process of §5: "a server that listens on a well-known
// port and waits for connections from application processes." Single-
// threaded poll(2) loop; every connected application gets its variable
// updates pushed as UPDATE frames. A disconnect implies harmony_end for
// every instance the connection registered — unless the client opted
// into session resumption (protocol v2), in which case its instances
// are parked for a grace period and a RESUME with the server-issued
// token reattaches them, surviving both client reconnects and (with
// persistence attached) full server restarts.
#pragma once

#include <poll.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/controller.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"
#include "persist/persistence.h"

namespace harmony::net {

class HarmonyTcpServer {
 public:
  // port 0 = pick an ephemeral port (tests).
  HarmonyTcpServer(core::Controller* controller, uint16_t port);
  ~HarmonyTcpServer();

  // Attaches the durability layer: client sessions are journaled with
  // controller state, and sessions recovered from disk become parked
  // (resumable) immediately. Call before start(); pass nullptr to run
  // without persistence.
  void set_persistence(persist::Persistence* persistence);
  // How long a resumable session survives its connection (default 30s).
  // Atomic so tests can shorten it while the poll loop runs.
  void set_session_grace_ms(int grace_ms) { session_grace_ms_ = grace_ms; }

  Result<uint16_t> start();  // bind + listen; returns the bound port
  uint16_t port() const { return port_; }

  // Runs one poll iteration (accept / read / dispatch / write).
  // Returns true if any progress was made.
  bool run_once(int timeout_ms);
  // Loops until stop() (from a dispatched handler) or `until_idle_ms`
  // of inactivity when positive.
  void run(int until_idle_ms = -1);
  void stop() { stopping_ = true; }

  size_t connection_count() const { return connections_.size(); }
  size_t parked_session_count() const { return parked_.size(); }

 private:
  struct Connection {
    Fd fd;
    FrameBuffer inbound;
    std::string outbound;
    std::vector<core::InstanceId> instances;
    // Resume token issued at the first v2 REGISTER (empty for v1
    // clients, whose disconnect is an implicit harmony_end).
    std::string session_token;
    bool drop = false;
  };
  struct ParkedSession {
    std::vector<core::InstanceId> instances;
    std::chrono::steady_clock::time_point deadline;
  };

  void accept_new();
  void handle_readable(Connection& connection);
  void dispatch(Connection& connection, const Message& message);
  Message handle_message(Connection& connection, const Message& message);
  Message handle_resume(Connection& connection, const std::string& token);
  void send(Connection& connection, const Message& message);
  void flush_writable(Connection& connection);
  void reap_dropped();
  void reap_expired_sessions();
  // Pushes the session's current instance list into the journal.
  void persist_session(const std::string& token,
                       const std::vector<core::InstanceId>& instances);
  // Draws a fresh token that collides with no parked or live session;
  // empty when no secure randomness is available (the caller then
  // answers v1-style, non-resumable).
  std::string new_session_token() const;
  Status attach_updates(Connection& connection, core::InstanceId id);

  core::Controller* controller_;
  persist::Persistence* persistence_ = nullptr;
  uint16_t port_;
  Fd listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::map<std::string, ParkedSession> parked_;
  std::atomic<int> session_grace_ms_ = 30000;
  // Reused across run_once ticks; resized only when the connection set
  // changes, so the steady-state poll loop allocates nothing.
  std::vector<pollfd> pollfds_;
  // stop() may be called from another thread (tests, signal handlers);
  // everything else is single-threaded.
  std::atomic<bool> stopping_ = false;
};

}  // namespace harmony::net
