// Failure-injection / property test: a randomized storm of arrivals,
// departures, manual steering and re-evaluations must never corrupt the
// controller's resource accounting, namespace, or predictions — and
// when everything departs, the cluster must be exactly as it started.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/console.h"
#include "core/controller.h"
#include "core/domain.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

// Exact accounting invariant: the pool's reserved memory and placement
// counts equal the sums over all configured allocations.
void expect_accounting_exact(const Controller& controller) {
  std::map<cluster::NodeId, double> reserved;
  std::map<cluster::NodeId, int> placements;
  for (const auto& instance : controller.state().instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      for (const auto& entry : bundle.allocation.entries) {
        reserved[entry.node] += entry.requirement.memory_mb;
        ++placements[entry.node];
      }
    }
  }
  const auto& pool = *controller.state().pool;
  const cluster::NodeScope* scope = pool.scope();
  for (const auto& node : controller.topology().nodes()) {
    if (scope != nullptr &&
        scope->slot(node.id) == cluster::NodeScope::kNoSlot) {
      // Scoped domain pool: nothing may ever be placed off-scope.
      EXPECT_EQ(placements.count(node.id), 0u) << node.hostname;
      continue;
    }
    double expected_free = node.memory_mb - reserved[node.id];
    EXPECT_NEAR(pool.available_memory(node.id), expected_free, 1e-6)
        << node.hostname;
    EXPECT_EQ(pool.process_count(node.id), placements[node.id])
        << node.hostname;
  }
  EXPECT_TRUE(pool.invariants_hold());
}

// Every configured bundle must be visible in the namespace with a
// valid option, and predictions must be finite.
void expect_consistent_views(const Controller& controller) {
  for (const auto& instance : controller.state().instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      auto option = controller.names().get_string(
          instance.path() + "." + bundle.spec.bundle + ".option");
      ASSERT_TRUE(option.ok()) << instance.path();
      EXPECT_EQ(option.value(), bundle.choice.option);
      EXPECT_NE(bundle.spec.find_option(bundle.choice.option), nullptr);
    }
  }
  auto predictions = controller.predictions();
  ASSERT_TRUE(predictions.ok());
  for (const auto& [id, seconds] : predictions.value()) {
    EXPECT_TRUE(std::isfinite(seconds)) << id;
    EXPECT_GE(seconds, 0.0) << id;
  }
}

class StormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StormTest, RandomLifecyclesPreserveInvariants) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(6)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  double now = 0;
  controller.set_time_source([&now] { return now; });

  Rng rng(GetParam());
  std::vector<InstanceId> live;
  int arrivals = 0, departures = 0, rejections = 0;

  for (int step = 0; step < 300; ++step) {
    now += rng.next_double(0.1, 30.0);
    double dice = rng.next_double();
    if (dice < 0.45 || live.empty()) {
      // Arrival of a random application type.
      std::string script;
      switch (rng.next_below(3)) {
        case 0:
          script = db_client_bundle(
              str_format("sp2-%02d", static_cast<int>(rng.next_below(6))),
              static_cast<int>(rng.next_int(1, 99)));
          break;
        case 1:
          script = bag_bundle("1 2 3 4", /*granularity=*/0);
          break;
        default:
          script = simple_bundle(static_cast<int>(rng.next_int(1, 3)),
                                 /*seconds=*/100, /*memory=*/16);
          break;
      }
      auto id = controller.register_application([&] {
        std::vector<rsl::BundleSpec> bundles;
        rsl::RslHost host;
        host.on_bundle([&bundles](const rsl::BundleSpec& b) {
          bundles.push_back(b);
          return Status::Ok();
        });
        EXPECT_TRUE(host.eval_script(script).ok());
        return bundles;
      }());
      if (id.ok()) {
        live.push_back(id.value());
        ++arrivals;
      } else {
        EXPECT_EQ(id.error().code, ErrorCode::kNoMatch)
            << id.error().to_string();
        ++rejections;
      }
    } else if (dice < 0.75) {
      // Departure.
      size_t pick = rng.next_below(live.size());
      ASSERT_TRUE(controller.unregister(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
      ++departures;
    } else if (dice < 0.82) {
      ASSERT_TRUE(controller.reevaluate().ok());
    } else if (dice < 0.88) {
      // Node churn: toggle a random node's availability (never let the
      // whole cluster vanish).
      std::string host = str_format("sp2-%02d",
                                    static_cast<int>(rng.next_below(6)));
      auto node = controller.topology().find_by_hostname(host).value();
      bool online = controller.state().pool->is_online(node);
      if (!online || controller.state().pool->online_count() > 2) {
        ASSERT_TRUE(controller.set_node_online(host, !online).ok());
      }
    } else if (dice < 0.93) {
      // External load comes and goes.
      std::string host = str_format("sp2-%02d",
                                    static_cast<int>(rng.next_below(6)));
      ASSERT_TRUE(controller
                      .report_external_load(
                          host, static_cast<int>(rng.next_below(4)))
                      .ok());
    } else {
      // Manual steering to a random declared option (may legitimately
      // fail if resources do not fit; must never corrupt state).
      size_t pick = rng.next_below(live.size());
      const InstanceState* instance =
          controller.state().find_instance(live[pick]);
      ASSERT_NE(instance, nullptr);
      const BundleState& bundle = instance->bundles[0];
      auto choices = enumerate_choices(bundle.spec);
      const OptionChoice& choice = choices[rng.next_below(choices.size())];
      (void)controller.set_option(live[pick], bundle.spec.bundle, choice);
    }
    expect_accounting_exact(controller);
    expect_consistent_views(controller);
  }

  EXPECT_GT(arrivals, 50);
  EXPECT_GT(departures, 20);

  // Drain: afterwards the cluster must be pristine.
  for (InstanceId id : live) {
    ASSERT_TRUE(controller.unregister(id).ok());
  }
  for (const auto& node : controller.topology().nodes()) {
    EXPECT_NEAR(controller.state().pool->available_memory(node.id),
                node.memory_mb, 1e-6);
    EXPECT_EQ(controller.state().pool->process_count(node.id), 0);
  }
  EXPECT_EQ(controller.live_instances(), 0u);
  auto final_predictions = controller.predictions();
  ASSERT_TRUE(final_predictions.ok());
  EXPECT_TRUE(final_predictions.value().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormTest,
                         ::testing::Values(1, 42, 1999, 20260707));

// --- partitioned decision core under storm ----------------------------------
// Regression for DEPART/REGISTER races across domain splits and merges:
// bursts of *asynchronous* load posts are left in flight while bridge
// registrations merge domains and departures split them. The membership
// change must first drain every queued event against its old owner and
// route later events to the new owner — an event that is dropped or
// applied against the wrong controller shows up as a fingerprint
// divergence from the synchronous reference, or as nondeterminism
// between two identical runs.

class DomainStormTest : public ::testing::TestWithParam<uint64_t> {};

std::string run_domain_storm(uint64_t seed) {
  using harmony::testing::bridge_bundle;
  using harmony::testing::fingerprint;
  using harmony::testing::grouped_cluster_script;
  using harmony::testing::pinned_group_bundle;

  const std::vector<std::string> groups = {"ga", "gb", "gc"};
  const int per_group = 3;
  const std::string cluster = grouped_cluster_script(groups, per_group);

  DomainRouterConfig router_config;
  router_config.workers = 2;
  DomainRouter router(router_config);
  Controller reference;
  double now = 0;
  auto source = [&now] { return now; };
  router.set_time_source(source);
  reference.set_time_source(source);
  EXPECT_TRUE(router.add_nodes_script(cluster).ok());
  EXPECT_TRUE(router.finalize_cluster().ok());
  EXPECT_TRUE(reference.add_nodes_script(cluster).ok());
  EXPECT_TRUE(reference.finalize_cluster().ok());

  auto host_at = [&](size_t index) {
    return str_format("%s-%02d", groups[index / per_group].c_str(),
                      static_cast<int>(index % per_group));
  };
  const size_t hosts = groups.size() * per_group;

  Rng rng(seed);
  std::vector<InstanceId> live;
  std::map<std::string, bool> offline;
  int tag = 1;

  for (int step = 0; step < 200; ++step) {
    now += rng.next_double(0.1, 30.0);
    const double dice = rng.next_double();
    if (dice < 0.30 || live.empty()) {
      // Pinned arrival — lands in (or creates) one group's domain.
      const auto& group = groups[rng.next_below(groups.size())];
      const std::string script = pinned_group_bundle(group, tag++);
      auto a = router.register_script(script);
      auto b = reference.register_script(script);
      EXPECT_EQ(a.ok(), b.ok());
      if (a.ok() && b.ok()) {
        EXPECT_EQ(a.value(), b.value());
        live.push_back(a.value());
      }
    } else if (dice < 0.42) {
      // Bridge arrival — merges two groups' domains, with any posted
      // loads from earlier this round possibly still queued.
      const size_t first = rng.next_below(groups.size());
      const size_t second = (first + 1 + rng.next_below(groups.size() - 1)) %
                            groups.size();
      const std::string script =
          bridge_bundle(groups[first], groups[second], tag++);
      auto a = router.register_script(script);
      auto b = reference.register_script(script);
      EXPECT_EQ(a.ok(), b.ok());
      if (a.ok() && b.ok()) {
        EXPECT_EQ(a.value(), b.value());
        live.push_back(a.value());
      }
    } else if (dice < 0.62) {
      // Departure — a departing bridge splits its merged domain.
      const size_t pick = rng.next_below(live.size());
      const InstanceId id = live[pick];
      live.erase(live.begin() + static_cast<long>(pick));
      EXPECT_TRUE(router.unregister(id).ok());
      EXPECT_TRUE(reference.unregister(id).ok());
    } else if (dice < 0.80) {
      // Burst of asynchronous posts, deliberately not quiesced: they
      // ride the worker queues into whatever membership change comes
      // next. The reference applies the same values synchronously.
      const int burst = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < burst; ++i) {
        const std::string host = host_at(rng.next_below(hosts));
        const int tasks = static_cast<int>(rng.next_below(4));
        EXPECT_TRUE(router.post_external_load(host, tasks).ok());
        EXPECT_TRUE(reference.report_external_load(host, tasks).ok());
      }
    } else if (dice < 0.88) {
      // Node churn inside a group; -00 stays up so every group's
      // bundles always have somewhere to land.
      const auto& group = groups[rng.next_below(groups.size())];
      const std::string host = str_format(
          "%s-%02d", group.c_str(),
          1 + static_cast<int>(rng.next_below(per_group - 1)));
      const bool online = offline[host];
      offline[host] = !online;
      EXPECT_TRUE(router.set_node_online(host, online).ok());
      EXPECT_TRUE(reference.set_node_online(host, online).ok());
    } else {
      EXPECT_TRUE(router.reevaluate().ok());
      EXPECT_TRUE(reference.reevaluate().ok());
    }

    // Periodic identity check (implicitly quiesces the workers) plus
    // the exact accounting invariants on every domain controller.
    if (step % 7 == 6) {
      EXPECT_EQ(fingerprint(router), fingerprint(reference))
          << "step " << step;
      for (const Controller* domain : router.domain_controllers()) {
        expect_accounting_exact(*domain);
        expect_consistent_views(*domain);
      }
    }
  }

  // Drain everything; the partition must end exactly where the
  // reference does: no domains, no instances, pristine pools.
  for (InstanceId id : live) {
    EXPECT_TRUE(router.unregister(id).ok());
    EXPECT_TRUE(reference.unregister(id).ok());
  }
  EXPECT_EQ(router.domain_count(), 0u);
  EXPECT_EQ(router.live_instances(), 0u);
  const std::string final_print = fingerprint(router);
  EXPECT_EQ(final_print, fingerprint(reference));
  return final_print;
}

TEST_P(DomainStormTest, SplitMergeRacesStayDeterministic) {
  const std::string first = run_domain_storm(GetParam());
  if (::testing::Test::HasFatalFailure()) return;
  // Same seed, same history: the partitioned run must be a pure
  // function of its input sequence, independent of worker scheduling.
  EXPECT_EQ(run_domain_storm(GetParam()), first);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DomainStormTest,
                         ::testing::Values(7, 1234, 20260809));

}  // namespace
}  // namespace harmony::core
