file(REMOVE_RECURSE
  "CMakeFiles/harmony_apps.dir/bag_app.cc.o"
  "CMakeFiles/harmony_apps.dir/bag_app.cc.o.d"
  "CMakeFiles/harmony_apps.dir/db_app.cc.o"
  "CMakeFiles/harmony_apps.dir/db_app.cc.o.d"
  "CMakeFiles/harmony_apps.dir/simple_app.cc.o"
  "CMakeFiles/harmony_apps.dir/simple_app.cc.o.d"
  "libharmony_apps.a"
  "libharmony_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
