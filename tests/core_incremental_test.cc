// Differential test for the incremental planning engine: drive two
// controllers through the same randomized event sequence — one with
// dirty-set skipping and prediction memoization on, one forced to
// re-evaluate and re-predict everything — and require bit-identical
// configurations, placements, reconfiguration counts, and objective
// values after every event. This is the proof obligation behind
// OptimizerConfig::incremental: skipping work must never change a
// decision.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "core/controller.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

constexpr int kWorkers = 6;

using harmony::testing::fingerprint;

struct Harness {
  std::shared_ptr<double> clock = std::make_shared<double>(0.0);
  Controller incremental;
  Controller full;

  explicit Harness(const std::string& objective)
      : incremental(make_config(objective, /*incremental=*/true)),
        full(make_config(objective, /*incremental=*/false)) {
    auto source = [clock = clock] { return *clock; };
    incremental.set_time_source(source);
    full.set_time_source(source);
  }

  void init() {
    const std::string cluster = sp2_cluster_script(kWorkers);
    ASSERT_TRUE(incremental.add_nodes_script(cluster).ok());
    ASSERT_TRUE(full.add_nodes_script(cluster).ok());
    ASSERT_TRUE(incremental.finalize_cluster().ok());
    ASSERT_TRUE(full.finalize_cluster().ok());
  }

  static ControllerConfig make_config(const std::string& objective,
                                      bool incremental) {
    ControllerConfig config;
    config.objective = objective;
    config.optimizer.incremental = incremental;
    config.optimizer.memoize_predictions = incremental;
    return config;
  }

  // Runs `op` against both controllers and checks they agree on the
  // immediate outcome and on the complete resulting state.
  template <typename Op>
  void step(const char* what, Op&& op) {
    auto a = op(incremental);
    auto b = op(full);
    ASSERT_EQ(a.ok(), b.ok()) << what << ": outcome diverged";
    if (!a.ok()) {
      ASSERT_EQ(a.error().code, b.error().code) << what;
    }
    ASSERT_EQ(fingerprint(incremental), fingerprint(full)) << what;
  }
};

void run_scenario(const std::string& objective, uint64_t seed, int events) {
  SCOPED_TRACE("objective=" + objective + str_format(" seed=%llu",
               static_cast<unsigned long long>(seed)));
  Harness h(objective);
  h.init();
  if (::testing::Test::HasFatalFailure()) return;

  Rng rng(seed);
  std::vector<InstanceId> live;
  std::vector<bool> online(kWorkers, true);
  int next_tag = 1;

  for (int i = 0; i < events; ++i) {
    *h.clock += 1.0 + static_cast<double>(rng.next_below(50));
    const uint64_t kind = rng.next_below(10);
    if (kind < 3 || live.empty()) {
      // Arrival: one of the three paper applications, random flavor.
      std::string script;
      const uint64_t flavor = rng.next_below(3);
      if (flavor == 0) {
        const int worker = static_cast<int>(rng.next_below(kWorkers));
        script = db_client_bundle(str_format("sp2-%02d", worker), next_tag++);
      } else if (flavor == 1) {
        script = bag_bundle("1 2 3 4");
      } else {
        script = simple_bundle(1 + static_cast<int>(rng.next_below(3)), 120,
                               24);
      }
      InstanceId id = 0;
      h.step("arrival", [&](Controller& c) {
        auto result = c.register_script(script);
        if (result.ok()) id = result.value();
        return result;
      });
      if (id != 0) live.push_back(id);
    } else if (kind < 5) {
      // Departure of a random live instance.
      const size_t victim = rng.next_below(live.size());
      const InstanceId id = live[victim];
      live.erase(live.begin() + victim);
      h.step("departure", [&](Controller& c) { return c.unregister(id); });
    } else if (kind < 7) {
      // External load report on a random host (workers or server).
      const uint64_t pick = rng.next_below(kWorkers + 1);
      const std::string host = pick == kWorkers
                                   ? "server"
                                   : str_format("sp2-%02llu",
                                                static_cast<unsigned long long>(
                                                    pick));
      const int load = static_cast<int>(rng.next_below(4));
      h.step("external_load", [&](Controller& c) {
        return c.report_external_load(host, load);
      });
    } else if (kind < 8) {
      // Toggle a random worker node (server stays up so displaced
      // bundles have somewhere to land).
      const int worker = static_cast<int>(rng.next_below(kWorkers));
      online[worker] = !online[worker];
      h.step("node_toggle", [&](Controller& c) {
        return c.set_node_online(str_format("sp2-%02d", worker),
                                 online[worker]);
      });
    } else {
      // Periodic re-evaluation — the steady-state path where dirty-set
      // skipping does its work.
      h.step("reevaluate", [&](Controller& c) { return c.reevaluate(); });
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  // The comparison is only meaningful if the incremental side actually
  // exercised both the skip path and the cache.
  EXPECT_GT(h.incremental.optimizer().bundles_skipped(), 0u);
  EXPECT_GT(h.incremental.optimizer().cache_stats().hits, 0u);
  EXPECT_EQ(h.full.optimizer().bundles_skipped(), 0u);
  EXPECT_EQ(h.full.optimizer().cache_stats().hits, 0u);
  // And skipping must have saved real work relative to the full pass.
  EXPECT_LT(h.incremental.optimizer().candidates_evaluated(),
            h.full.optimizer().candidates_evaluated());
}

TEST(IncrementalDifferentialTest, MeanObjective) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    run_scenario("mean", seed, 60);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalDifferentialTest, MakespanObjective) {
  for (uint64_t seed : {7ull, 8ull}) {
    run_scenario("makespan", seed, 60);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(IncrementalDifferentialTest, ThroughputObjective) {
  run_scenario("throughput", 11, 60);
}

// A quiet system must converge to zero optimization work: after the
// first settling pass, repeated re-evaluations touch nothing and skip
// every bundle.
TEST(IncrementalDifferentialTest, SteadyStateSkipsEverything) {
  Harness h("mean");
  h.init();
  if (::testing::Test::HasFatalFailure()) return;
  for (int i = 0; i < 3; ++i) {
    *h.clock += 10;
    auto id = h.incremental.register_script(
        db_client_bundle(str_format("sp2-%02d", i), i + 1));
    ASSERT_TRUE(id.ok());
  }
  *h.clock += 10;
  ASSERT_TRUE(h.incremental.reevaluate().ok());  // settle
  const uint64_t evaluated = h.incremental.optimizer().bundles_evaluated();
  const uint64_t candidates = h.incremental.optimizer().candidates_evaluated();
  for (int i = 0; i < 5; ++i) {
    *h.clock += 10;
    ASSERT_TRUE(h.incremental.reevaluate().ok());
  }
  EXPECT_EQ(h.incremental.optimizer().bundles_evaluated(), evaluated);
  EXPECT_EQ(h.incremental.optimizer().candidates_evaluated(), candidates);
}

}  // namespace
}  // namespace harmony::core
