#include "rsl/value.h"

#include <gtest/gtest.h>

namespace harmony::rsl {
namespace {

TEST(ListParse, SimpleElements) {
  auto r = list_parse("a b c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ListParse, EmptyList) {
  auto r = list_parse("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  r = list_parse("   \t  ");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(ListParse, BracedElements) {
  auto r = list_parse("{a b} c {d {e f}}");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[0], "a b");
  EXPECT_EQ(r.value()[1], "c");
  EXPECT_EQ(r.value()[2], "d {e f}");
}

TEST(ListParse, QuotedElements) {
  auto r = list_parse("\"a b\" c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0], "a b");
}

TEST(ListParse, EscapedCharacters) {
  auto r = list_parse("a\\ b c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0], "a b");
}

TEST(ListParse, UnbalancedBracesFail) {
  EXPECT_FALSE(list_parse("{a b").ok());
  EXPECT_FALSE(list_parse("{a {b}").ok());
}

TEST(ListParse, JunkAfterBraceFails) {
  EXPECT_FALSE(list_parse("{a}b").ok());
}

TEST(ListParse, UnterminatedQuoteFails) {
  EXPECT_FALSE(list_parse("\"abc").ok());
}

TEST(ListParse, PaperBundleOption) {
  // The QS option from Figure 3 of the paper.
  const char* option =
      "QS "
      "{node server {hostname harmony.cs.umd.edu} {seconds 42} {memory 20}} "
      "{node client {hostname *} {os linux} {seconds 1} {memory 2}} "
      "{link client server 10}";
  auto r = list_parse(option);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 4u);
  EXPECT_EQ(r.value()[0], "QS");
  EXPECT_EQ(r.value()[3], "link client server 10");
}

TEST(ListBuild, QuotesWhereNeeded) {
  EXPECT_EQ(list_build({"a", "b c", ""}), "a {b c} {}");
  EXPECT_EQ(list_build({}), "");
}

TEST(ListBuild, NestedStructureRoundTrips) {
  std::vector<std::string> original{"plain", "two words", "{nested list}",
                                    "", "tab\there", "dollar$sign"};
  auto parsed = list_parse(list_build(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), original);
}

class ListRoundTrip : public ::testing::TestWithParam<std::vector<std::string>> {};

TEST_P(ListRoundTrip, BuildThenParseIsIdentity) {
  auto parsed = list_parse(list_build(GetParam()));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ListRoundTrip,
    ::testing::Values(
        std::vector<std::string>{},
        std::vector<std::string>{""},
        std::vector<std::string>{"", "", ""},
        std::vector<std::string>{"a"},
        std::vector<std::string>{"with space", "with\ttab"},
        std::vector<std::string>{"{already braced}"},
        std::vector<std::string>{"semi;colon", "bracket[x]"},
        std::vector<std::string>{"node server {hostname h} {memory 20}"},
        std::vector<std::string>{"44 + (client.memory > 24 ? 24 : client.memory) - 17"}));

TEST(BracesBalanced, Detects) {
  EXPECT_TRUE(braces_balanced("{a {b} c}"));
  EXPECT_TRUE(braces_balanced("no braces"));
  EXPECT_FALSE(braces_balanced("{a"));
  EXPECT_FALSE(braces_balanced("}{"));
  EXPECT_TRUE(braces_balanced("\\{"));  // escaped brace does not count
}

TEST(ElementQuote, PlainStaysPlain) {
  EXPECT_EQ(element_quote("plain"), "plain");
  EXPECT_EQ(element_quote("a.b:c_d"), "a.b:c_d");
}

}  // namespace
}  // namespace harmony::rsl
