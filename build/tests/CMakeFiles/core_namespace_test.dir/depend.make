# Empty dependencies file for core_namespace_test.
# This may be replaced when dependencies are built.
