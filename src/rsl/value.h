// TCL value model: every value is a string; lists are strings with TCL
// quoting rules (whitespace-separated elements, braces group, backslash
// escapes). The RSL rides on these rules, so bundle specifications from
// the paper parse verbatim.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace harmony::rsl {

// Parses a TCL list into its elements. Fails on unbalanced braces or a
// quote not followed by a separator.
Result<std::vector<std::string>> list_parse(std::string_view text);

// Builds a TCL list from elements, brace-quoting where needed so that
// list_parse(list_build(x)) == x.
std::string list_build(const std::vector<std::string>& elements);

// Quotes a single element for inclusion in a list.
std::string element_quote(std::string_view element);

// True if the text is a well-formed braced group (used when deciding
// whether an element can be brace-quoted verbatim).
bool braces_balanced(std::string_view text);

}  // namespace harmony::rsl
