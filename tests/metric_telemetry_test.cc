#include "metric/telemetry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace harmony::metric {
namespace {

// The registry is process-global; each test uses distinct instrument
// names (or resets) so the suite stays order-independent.

TEST(Counter, SumsAcrossThreads) {
  Counter& c = telemetry_counter("test.counter_threads");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), uint64_t{kThreads} * kAddsPerThread);
}

TEST(Counter, AddAndReset) {
  Counter& c = telemetry_counter("test.counter_add");
  c.reset();
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddRecordMax) {
  Gauge& g = telemetry_gauge("test.gauge");
  g.reset();
  g.set(10);
  EXPECT_EQ(g.value(), 10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.record_max(5);  // below current: no change
  EXPECT_EQ(g.value(), 7);
  g.record_max(42);
  EXPECT_EQ(g.value(), 42);
}

TEST(Histogram, BucketBoundaries) {
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);   // [1,2)
  EXPECT_EQ(Histogram::bucket_index(2), 2u);   // [2,4)
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);   // [4,8)
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  // Overflow collapses into the final bucket.
  EXPECT_EQ(Histogram::bucket_index(~uint64_t{0}), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(Histogram::bucket_upper_bound(3), 7u);
}

TEST(Histogram, CountSumPercentile) {
  Histogram& h = telemetry_histogram("test.histogram");
  h.reset();
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  for (uint64_t v : {1u, 2u, 3u, 100u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1106u);
  // Nearest-rank resolves to the containing bucket's upper bound:
  // p50 -> third value (3, bucket [2,4), upper bound 3).
  EXPECT_EQ(h.percentile(0.5), 3u);
  // p100 -> 1000, bucket [512,1024), upper bound 1023.
  EXPECT_EQ(h.percentile(1.0), 1023u);
  // p0 -> smallest, bucket [1,2).
  EXPECT_EQ(h.percentile(0.0), 1u);
}

TEST(Telemetry, DisableMakesRecordingNoOp) {
  Counter& c = telemetry_counter("test.disabled_counter");
  Gauge& g = telemetry_gauge("test.disabled_gauge");
  Histogram& h = telemetry_histogram("test.disabled_histogram");
  c.reset();
  g.reset();
  h.reset();
  set_telemetry_enabled(false);
  c.increment();
  g.set(99);
  h.record(7);
  set_telemetry_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.increment();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Telemetry, InstrumentAddressesAreStable) {
  Counter& first = telemetry_counter("test.stable");
  // Force map churn with more instruments.
  for (int i = 0; i < 100; ++i) {
    telemetry_counter("test.stable_churn_" + std::to_string(i));
  }
  EXPECT_EQ(&first, &telemetry_counter("test.stable"));
}

TEST(Telemetry, PrometheusRendering) {
  telemetry_counter("render.requests_total").reset();
  telemetry_counter("render.requests_total").add(3);
  telemetry_gauge("render.depth").set(5);
  telemetry_histogram("render.latency_us").reset();
  telemetry_histogram("render.latency_us").record(6);
  const std::string text = Telemetry::instance().render_prometheus();
  // Dotted names map to underscores under the harmony_ prefix.
  EXPECT_NE(text.find("# TYPE harmony_render_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("harmony_render_requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE harmony_render_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("harmony_render_depth 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE harmony_render_latency_us histogram"),
            std::string::npos);
  // 6 lands in bucket [4,8), cumulative count visible at le="7".
  EXPECT_NE(text.find("harmony_render_latency_us_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("harmony_render_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("harmony_render_latency_us_sum 6"), std::string::npos);
  EXPECT_NE(text.find("harmony_render_latency_us_count 1"), std::string::npos);
}

TEST(Telemetry, JsonRendering) {
  telemetry_counter("json.hits_total").reset();
  telemetry_counter("json.hits_total").add(2);
  const std::string text = Telemetry::instance().render_json();
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"json.hits_total\":2"), std::string::npos);
  EXPECT_NE(text.find("\"gauges\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
}

TEST(TraceBuffer, DisabledByDefaultAndScopedSpanRespects) {
  TraceBuffer& tb = TraceBuffer::instance();
  tb.clear();
  tb.set_enabled(false);
  { ScopedSpan span("test.noop"); }
  EXPECT_EQ(tb.total_recorded(), 0u);
  tb.set_enabled(true);
  { ScopedSpan span("test.recorded"); }
  tb.set_enabled(false);
  EXPECT_EQ(tb.total_recorded(), 1u);
  auto spans = tb.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.recorded");
}

TEST(TraceBuffer, RingKeepsNewestAndRendersChromeJson) {
  TraceBuffer& tb = TraceBuffer::instance();
  tb.clear();
  tb.set_enabled(true);
  for (uint64_t i = 0; i < 20000; ++i) {
    tb.record("test.ring", i, 1);
  }
  tb.set_enabled(false);
  EXPECT_EQ(tb.total_recorded(), 20000u);
  auto spans = tb.snapshot();
  ASSERT_EQ(spans.size(), 16384u);  // ring capacity
  // Oldest-first, ending at the newest record.
  EXPECT_EQ(spans.front().ts_us, 20000u - 16384u);
  EXPECT_EQ(spans.back().ts_us, 19999u);
  tb.clear();
  tb.set_enabled(true);
  tb.record("test.json", 10, 5);
  tb.set_enabled(false);
  const std::string json = tb.render_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.json\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  tb.clear();
}

}  // namespace
}  // namespace harmony::metric
