# Empty dependencies file for harmony_metric.
# This may be replaced when dependencies are built.
