#include "core/objective.h"

#include <algorithm>

namespace harmony::core {

double tardiness_penalty(const std::vector<DeadlineTerm>& terms) {
  double penalty = 0.0;
  for (const DeadlineTerm& term : terms) {
    if (term.deadline_s <= 0) continue;
    double late = term.time - term.deadline_s;
    if (late > 0) penalty += term.weight * late;
  }
  return penalty;
}

double MeanCompletionTime::evaluate(
    const std::vector<double>& response_times) const {
  if (response_times.empty()) return 0.0;
  double sum = 0.0;
  for (double t : response_times) sum += t;
  return sum / static_cast<double>(response_times.size());
}

double MaxCompletionTime::evaluate(
    const std::vector<double>& response_times) const {
  double worst = 0.0;
  for (double t : response_times) worst = std::max(worst, t);
  return worst;
}

double NegativeThroughput::evaluate(
    const std::vector<double>& response_times) const {
  double jobs_per_second = 0.0;
  for (double t : response_times) {
    if (t > 0) jobs_per_second += 1.0 / t;
  }
  return -jobs_per_second;
}

double WeightedCompletionTime::evaluate(
    const std::vector<double>& response_times) const {
  if (response_times.empty()) return 0.0;
  double sum = 0.0;
  double weight_sum = 0.0;
  for (size_t i = 0; i < response_times.size(); ++i) {
    double w = i < weights_.size() ? weights_[i] : 1.0;
    sum += w * response_times[i];
    weight_sum += w;
  }
  return weight_sum > 0 ? sum / weight_sum : 0.0;
}

std::unique_ptr<Objective> make_objective(const std::string& name) {
  if (name == "mean-completion-time" || name == "mean" || name.empty()) {
    return std::make_unique<MeanCompletionTime>();
  }
  if (name == "max-completion-time" || name == "makespan") {
    return std::make_unique<MaxCompletionTime>();
  }
  if (name == "throughput") {
    return std::make_unique<NegativeThroughput>();
  }
  return nullptr;
}

}  // namespace harmony::core
