#include "core/binding.h"

#include <cmath>

#include "common/strings.h"

namespace harmony::core {

rsl::ExprContext choice_context(const OptionChoice& choice,
                                const rsl::ExprContext& names) {
  rsl::ExprContext ctx;
  // Copy the choice variables: the context may outlive the caller frame.
  auto variables = choice.variables;
  ctx.name_lookup = [variables, names](const std::string& name, double* out) {
    auto it = variables.find(name);
    if (it != variables.end()) {
      *out = it->second;
      return true;
    }
    return names.name_lookup ? names.name_lookup(name, out) : false;
  };
  ctx.var_lookup = [variables, names](const std::string& name,
                                      std::string* out) {
    auto it = variables.find(name);
    if (it != variables.end()) {
      *out = format_number(it->second);
      return true;
    }
    return names.var_lookup ? names.var_lookup(name, out) : false;
  };
  ctx.cmd_eval = names.cmd_eval;
  return ctx;
}

Result<BoundOption> bind_option(const rsl::OptionSpec& option,
                                const OptionChoice& choice,
                                const rsl::ExprContext& names) {
  rsl::ExprContext ctx = choice_context(choice, names);
  BoundOption bound;

  // role -> index of replica 0 in node_requirements (link endpoints).
  std::map<std::string, size_t> role_anchor;

  for (const auto& node : option.nodes) {
    double replicas = 1.0;
    if (!node.replicate.empty()) {
      auto value = node.replicate.eval(ctx);
      if (!value.ok()) {
        return Err<BoundOption>(value.error().code,
                                "replicate for role " + node.role + ": " +
                                    value.error().message);
      }
      replicas = value.value();
    }
    if (replicas < 1 || replicas != std::floor(replicas) || replicas > 4096) {
      return Err<BoundOption>(
          ErrorCode::kInvalidArgument,
          str_format("role %s: replicate must be a positive integer, got %g",
                     node.role.c_str(), replicas));
    }
    role_anchor.emplace(node.role, bound.node_requirements.size());
    // Open-ended (">=") memory constraints receive the choice's grant
    // multiplier: Harmony may hand out more than the minimum when that
    // buys something (§3.5's memory-for-bandwidth trade).
    double memory = node.memory.minimum();
    if (node.memory.op == rsl::Constraint::Op::kGe &&
        choice.memory_grant > 1.0) {
      memory *= choice.memory_grant;
    }
    for (int i = 0; i < static_cast<int>(replicas); ++i) {
      cluster::NodeRequirement req;
      req.role = node.role;
      req.index = i;
      req.hostname_glob = node.hostname;
      req.os = node.os;
      req.memory_mb = memory;
      bound.node_requirements.push_back(std::move(req));
    }
  }

  for (const auto& link : option.links) {
    auto from = role_anchor.find(link.from);
    auto to = role_anchor.find(link.to);
    if (from == role_anchor.end() || to == role_anchor.end()) {
      return Err<BoundOption>(
          ErrorCode::kInvalidArgument,
          "link references unknown role: " + link.from + "-" + link.to);
    }
    cluster::LinkRequirement req;
    req.from = from->second;
    req.to = to->second;
    req.min_bandwidth_mbps = 0.0;  // amounts are totals, not rates
    bound.link_requirements.push_back(req);
    bound.link_specs.push_back(&link);
  }
  return bound;
}

}  // namespace harmony::core
