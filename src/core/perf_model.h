// Performance prediction (paper §4.2). Four models, in precedence
// order per bundle option:
//   1. application-supplied TCL script (`performance script {...}`),
//   2. application-supplied expression (`performance expr {...}`) —
//      §3's "either an expression or a function",
//   3. piecewise-linear interpolation over supplied data points
//      (`performance {{x y} ...}`),
//   4. Harmony's default model: CPU seconds scaled by node speed and
//      processor-sharing contention, plus network transfer time —
//      "simple combinations of CPU and network requirements, suitably
//      scaled to reflect resource contention."
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/matcher.h"
#include "cluster/pool.h"
#include "cluster/topology.h"
#include "common/result.h"
#include "core/state.h"
#include "rsl/expr.h"
#include "rsl/spec.h"

namespace harmony::core {

// Read-only per-node planned-task counts for prediction, with two
// backings: a live ResourceView — pool or plan overlay, whose
// effective_load at an allocated node *is* the planned contention once
// the candidate allocation is installed, so the decision path reads it
// in place and allocates nothing — or an explicit map (tests, tools,
// offline what-if probes). Models only consult the nodes of the
// allocation under prediction and clamp absent/zero to 1, which is why
// the two backings are interchangeable.
class LoadView {
 public:
  LoadView() = default;
  LoadView(const cluster::ResourceView* view) : view_(view) {}
  LoadView(const std::map<cluster::NodeId, int>* map) : map_(map) {}

  // Planned tasks on `node`; 0 when unknown (models clamp to >= 1).
  int at(cluster::NodeId node) const {
    if (view_ != nullptr) return view_->effective_load(node);
    if (map_ != nullptr) {
      auto it = map_->find(node);
      return it == map_->end() ? 0 : it->second;
    }
    return 0;
  }
  bool valid() const { return view_ != nullptr || map_ != nullptr; }

 private:
  const cluster::ResourceView* view_ = nullptr;
  const std::map<cluster::NodeId, int>* map_ = nullptr;
};

struct PredictionInput {
  const rsl::OptionSpec* option = nullptr;
  const OptionChoice* choice = nullptr;
  const cluster::Allocation* allocation = nullptr;
  const cluster::Topology* topology = nullptr;
  // Planned tasks per node across every instance, including the
  // candidate allocation itself.
  LoadView node_load;
  // Namespace-backed resolver for names like "client.memory"
  // (allocation-derived names are layered on top automatically).
  rsl::ExprContext names;
};

class Predictor {
 public:
  // Local (same-node) transfer rate used when communicating roles share
  // a host; matches NetworkModel's default.
  explicit Predictor(double local_bandwidth_mbps = 8000.0)
      : local_mbps_(local_bandwidth_mbps) {}

  // LogP-style send/receive occupancy (§3.4: "a better way of modeling
  // communication costs is by CPU occupancy on either end (for protocol
  // processing, copying), plus wire time"). When nonzero, the default
  // model charges this many reference CPU seconds per megabyte to each
  // endpoint of every transfer, on top of the wire time. Off by
  // default, as in the paper's model.
  void set_comm_occupancy(double seconds_per_mb) {
    comm_occupancy_s_per_mb_ = seconds_per_mb;
  }
  double comm_occupancy() const { return comm_occupancy_s_per_mb_; }

  // Predicted response time in seconds; lower is better.
  Result<double> predict(const PredictionInput& input) const;

  // Which model predict() would use (diagnostics / ablation bench).
  enum class Model { kScript, kExpr, kDag, kPoints, kDefault };
  static Model model_for(const rsl::OptionSpec& option);
  static const char* model_name(Model model);

  // The default model in isolation (ablation A3 compares it against the
  // points model on the same input).
  Result<double> predict_default(const PredictionInput& input) const;

 private:
  Result<double> predict_script(const PredictionInput& input) const;
  Result<double> predict_expr(const PredictionInput& input) const;
  Result<double> predict_dag(const PredictionInput& input) const;
  Result<double> predict_points(const PredictionInput& input) const;

  // Expression context: choice variables + role-derived names
  // (role.memory, role.count) + namespace fallback.
  rsl::ExprContext full_context(const PredictionInput& input) const;

  double local_mbps_;
  double comm_occupancy_s_per_mb_ = 0.0;
};

// The inputs a bundle option's performance model can observe beyond
// (choice, allocation, topology): the RSL expressions it evaluates —
// whose compiled read sets name exactly what they pull from the
// controller namespace — and whether it feeds per-node contention into
// the prediction. Computed from the option spec by model_reads().
struct ModelReads {
  // Every expression the model evaluates at prediction time. Their
  // compiled programs (rsl::Expr::program()) report the namespace
  // names / interpreter variables read; empty and literal expressions
  // contribute nothing.
  std::vector<const rsl::Expr*> exprs;
  // True when the model consults the planned per-node load (default,
  // critical-path and points models); the expression model never does.
  bool uses_load = true;
  // False when some read set is unknowable: TCL script models, or an
  // expression the bytecode compiler rejected ([script] substitution).
  // Such predictions must not be memoized.
  bool known = true;
};

// Read set of the model predict() would choose for `option`.
ModelReads model_reads(const rsl::OptionSpec& option);

// Memoized predictions for the decision path. A prediction is a pure
// function of (option choice, allocation, per-node contention on the
// allocated nodes when the model reads it) — plus the values of the
// namespace names the option's expressions read, which the key embeds
// directly (see prediction_cache_key). Namespace churn therefore
// misses stale entries instead of requiring wholesale invalidation.
// Keys are built by prediction_cache_key(); models with unknown read
// sets (scripts, uncompilable expressions) bypass the cache.
class PredictionCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    double hit_rate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
  };

  explicit PredictionCache(size_t max_entries = 1 << 20)
      : max_entries_(max_entries) {}

  std::optional<double> lookup(const std::string& key);
  void insert(const std::string& key, double value);
  // Drops every entry (namespace changed, predictor reconfigured, ...).
  void invalidate();

  const Stats& stats() const { return stats_; }
  size_t size() const { return entries_.size(); }

 private:
  size_t max_entries_;
  std::unordered_map<std::string, double> entries_;
  Stats stats_;
};

// Cache key for predicting one bundle of one instance: identity of the
// (instance, bundle) pair, the candidate choice, the allocation
// placement, the clamped contention each allocated node would see (only
// when the model reads load), and the current value of every namespace
// name / interpreter variable in the model's read set, resolved
// through `names` — the complete input set of the model described by
// `reads`. Choice variables and allocation-derived names (role.memory,
// role.count, ...) shadow the namespace at eval time, but both are
// functions of inputs already in the key. Requires reads.known.
std::string prediction_cache_key(InstanceId instance,
                                 const std::string& bundle,
                                 const OptionChoice& choice,
                                 const cluster::Allocation& allocation,
                                 const LoadView& load,
                                 const ModelReads& reads,
                                 const rsl::ExprContext& names);

}  // namespace harmony::core
