# Empty compiler generated dependencies file for harmony_apps.
# This may be replaced when dependencies are built.
