file(REMOVE_RECURSE
  "CMakeFiles/harmony_net.dir/framing.cc.o"
  "CMakeFiles/harmony_net.dir/framing.cc.o.d"
  "CMakeFiles/harmony_net.dir/protocol.cc.o"
  "CMakeFiles/harmony_net.dir/protocol.cc.o.d"
  "CMakeFiles/harmony_net.dir/server.cc.o"
  "CMakeFiles/harmony_net.dir/server.cc.o.d"
  "CMakeFiles/harmony_net.dir/tcp.cc.o"
  "CMakeFiles/harmony_net.dir/tcp.cc.o.d"
  "CMakeFiles/harmony_net.dir/tcp_transport.cc.o"
  "CMakeFiles/harmony_net.dir/tcp_transport.cc.o.d"
  "libharmony_net.a"
  "libharmony_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
