// Controller-side state: application instances, their bundles, current
// option choices and allocations. The optimizer mutates this state
// (tentatively and finally); the controller owns it and publishes it
// into the namespace.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/matcher.h"
#include "cluster/pool.h"
#include "cluster/topology.h"
#include "rsl/spec.h"

namespace harmony::core {

using InstanceId = uint64_t;

// A concrete setting of one tuning option: the option name plus values
// for each `variable` tag it declares (e.g. workerNodes = 4), plus the
// memory grant factor the controller chose for open-ended (">=")
// memory constraints — §3.5: "Harmony can then decide to allocate
// additional memory resources at the client in order to reduce
// bandwidth requirements."
struct OptionChoice {
  std::string option;
  std::map<std::string, double> variables;
  double memory_grant = 1.0;  // multiplier on >=-constraint minimums

  bool operator==(const OptionChoice& other) const = default;
  std::string to_string() const;
};

// Enumerates every concrete choice an option spec admits (the cartesian
// product of its variable value lists; one entry when it has none).
std::vector<OptionChoice> enumerate_choices(const rsl::OptionSpec& option);
// All choices across a bundle's options, bundle definition order.
std::vector<OptionChoice> enumerate_choices(const rsl::BundleSpec& bundle);

struct BundleState {
  rsl::BundleSpec spec;
  OptionChoice choice;            // valid once `configured`
  cluster::Allocation allocation;
  double last_switch_time = -1e300;
  bool configured = false;
};

struct InstanceState {
  InstanceId id = 0;
  std::string application;
  double arrival_time = 0.0;
  std::vector<BundleState> bundles;

  BundleState* find_bundle(const std::string& name);
  const BundleState* find_bundle(const std::string& name) const;
  // Namespace root for this instance, e.g. "DBclient.66".
  std::string path() const;
};

// The world the optimizer reasons about. Topology is fixed for the run;
// the pool and instances evolve.
struct SystemState {
  cluster::Topology topology;
  std::unique_ptr<cluster::ResourcePool> pool;
  std::vector<InstanceState> instances;

  void init_pool() {
    pool = std::make_unique<cluster::ResourcePool>(&topology);
  }
  InstanceState* find_instance(InstanceId id);
  const InstanceState* find_instance(InstanceId id) const;

  // Planned tasks per node, derived from every configured allocation.
  // This is the contention input to the default performance model.
  std::map<cluster::NodeId, int> node_load() const;
};

}  // namespace harmony::core
