file(REMOVE_RECURSE
  "libharmony_metric.a"
)
