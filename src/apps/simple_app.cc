#include "apps/simple_app.h"

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::apps {

std::string simple_bundle_script(const SimpleConfig& config) {
  return str_format(
      "harmonyBundle Simple:%d config {\n"
      "  {fixed\n"
      "    {node worker {seconds %g} {memory %g} {replicate %d}}\n"
      "    {communication %g}}\n"
      "}\n",
      config.instance, config.seconds_per_worker, config.memory_mb,
      config.workers, config.exchange_mb);
}

SimpleApp::SimpleApp(SimContext ctx, SimpleConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      metric_name_(str_format("simple.%d.iteration_time", config_.instance)) {
  transport_ = std::make_unique<client::InProcTransport>(ctx_.controller);
  client_ = std::make_unique<client::HarmonyClient>(transport_.get());
}

Status SimpleApp::start() {
  auto status = client_->startup(str_format("Simple-%d", config_.instance));
  if (!status.ok()) return status;
  status = client_->bundle_setup(simple_bundle_script(config_));
  if (!status.ok()) return status;
  client_->add_variable("config.worker.nodes", "");
  status = client_->wait_for_update();
  if (!status.ok()) return status;
  client_->poll_updates();
  for (const auto& host : client_->var_list("config.worker.nodes")) {
    auto node = ctx_.node_of(host);
    if (!node.ok()) return Status(node.error().code, node.error().message);
    worker_nodes_.push_back(node.value());
  }
  if (static_cast<int>(worker_nodes_.size()) != config_.workers) {
    return Status(ErrorCode::kNoMatch, "did not receive requested workers");
  }
  begin_iteration();
  return Status::Ok();
}

void SimpleApp::stop() { stop_requested_ = true; }

void SimpleApp::begin_iteration() {
  // The job is rigid in *width* but can migrate: at each iteration
  // boundary it re-reads the node assignment Harmony last pushed.
  if (client_->poll_updates()) {
    std::vector<cluster::NodeId> nodes;
    for (const auto& host : client_->var_list("config.worker.nodes")) {
      auto node = ctx_.node_of(host);
      if (node.ok()) nodes.push_back(node.value());
    }
    if (nodes.size() == worker_nodes_.size() && nodes != worker_nodes_) {
      HLOG_INFO("simple_app") << metric_name_ << " migrated at t="
                              << ctx_.now();
      worker_nodes_ = std::move(nodes);
    }
  }
  if (stop_requested_ ||
      (config_.max_iterations > 0 &&
       iterations_completed_ >= config_.max_iterations)) {
    finished_ = true;
    if (client_->registered()) {
      auto status = client_->end();
      if (!status.ok()) {
        HLOG_WARN("simple_app") << "harmony_end failed: "
                                << status.to_string();
      }
    }
    return;
  }
  iteration_started_ = ctx_.now();
  workers_remaining_ = static_cast<int>(worker_nodes_.size());
  for (cluster::NodeId node : worker_nodes_) {
    ctx_.cpu->submit(node, config_.seconds_per_worker,
                     [this] { worker_done(); });
  }
}

void SimpleApp::worker_done() {
  if (--workers_remaining_ > 0) return;
  // Barrier reached; all-pairs exchange, modeled as one bulk transfer
  // between the first pair (the bottleneck path on a full switch).
  if (worker_nodes_.size() >= 2 && config_.exchange_mb > 0) {
    auto transfer =
        ctx_.net->transfer(worker_nodes_[0], worker_nodes_[1],
                           config_.exchange_mb, [this] {
                             ++iterations_completed_;
                             ctx_.metrics->record(
                                 metric_name_, ctx_.now(),
                                 ctx_.now() - iteration_started_);
                             begin_iteration();
                           });
    HARMONY_ASSERT(transfer.ok());
    return;
  }
  ++iterations_completed_;
  ctx_.metrics->record(metric_name_, ctx_.now(),
                       ctx_.now() - iteration_started_);
  begin_iteration();
}

}  // namespace harmony::apps
