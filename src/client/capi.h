// C-style shim with the literal signatures of the paper's Figure 5.
// A process binds to a Harmony server (in-process controller or a TCP
// transport) with harmony_connect_*, then uses the Figure 5 calls.
// Returned variable pointers stay valid until harmony_end(); typed
// values refresh at each harmony_wait_for_update().
#pragma once

#include <string>

namespace harmony::core {
class Controller;
}
namespace harmony::client {
class Transport;
}

enum HarmonyVarType {
  HARMONY_VAR_INT = 0,
  HARMONY_VAR_REAL = 1,
  HARMONY_VAR_STRING = 2,
};

// Binds the shim to an in-process controller (tests, simulator).
void harmony_connect_local(harmony::core::Controller* controller);
// Binds to an arbitrary transport (e.g. net::TcpTransport).
void harmony_connect_transport(harmony::client::Transport* transport);

// Figure 5 API. All calls return 0 on success, -1 on failure.
int harmony_startup(const char* unique_id, int use_interrupts);
int harmony_bundle_setup(const char* bundle_definition);
// Returns a pointer to the variable's storage: long* for INT, double*
// for REAL, const char* (NUL-terminated, refreshed in place) for STRING.
void* harmony_add_variable(const char* name, const char* default_value,
                           int var_type);
int harmony_wait_for_update(void);
int harmony_end(void);

// Last error message for diagnostics (empty when the last call
// succeeded).
const char* harmony_last_error(void);
