#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace harmony {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_whitespace(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

bool parse_double(std::string_view text, double* out) {
  std::string buf(trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  // strtod clamps overflow to +/-HUGE_VAL with errno == ERANGE; a wire
  // field like "1e999" must not parse "successfully" as infinity.
  // Underflow also reports ERANGE but yields a representable denormal
  // (or zero), which format_number round-trips — accept it.
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    return false;
  }
  *out = value;
  return true;
}

bool parse_int64(std::string_view text, long long* out) {
  std::string buf(trim(text));
  if (buf.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) return false;
  // strtoll clamps out-of-range input to LLONG_MIN/LLONG_MAX; reject
  // instead of handing a clamped value to the caller.
  if (errno == ERANGE) return false;
  *out = value;
  return true;
}

std::string format_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    return str_format("%lld", static_cast<long long>(value));
  }
  std::string out = str_format("%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    std::string candidate = str_format("%.*g", prec, value);
    double parsed = 0;
    if (parse_double(candidate, &parsed) && parsed == value) return candidate;
  }
  return out;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  size_t p = 0, t = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && pattern[p] == '*') {
      star_p = ++p;
      star_t = t;
      continue;
    }
    bool matched = false;
    if (p < pattern.size()) {
      if (pattern[p] == '?') {
        matched = true;
        ++p;
        ++t;
      } else if (pattern[p] == '[') {
        size_t close = pattern.find(']', p + 1);
        if (close != std::string_view::npos) {
          bool in_class = false;
          bool negate = pattern[p + 1] == '^' || pattern[p + 1] == '!';
          size_t i = p + (negate ? 2 : 1);
          while (i < close) {
            if (i + 2 < close + 1 && pattern[i + 1] == '-' && i + 2 < close) {
              if (text[t] >= pattern[i] && text[t] <= pattern[i + 2]) {
                in_class = true;
              }
              i += 3;
            } else {
              if (text[t] == pattern[i]) in_class = true;
              ++i;
            }
          }
          if (in_class != negate) {
            matched = true;
            p = close + 1;
            ++t;
          }
        } else if (pattern[p] == text[t]) {  // unterminated '[': literal
          matched = true;
          ++p;
          ++t;
        }
      } else if (pattern[p] == '\\' && p + 1 < pattern.size()) {
        if (pattern[p + 1] == text[t]) {
          matched = true;
          p += 2;
          ++t;
        }
      } else if (pattern[p] == text[t]) {
        matched = true;
        ++p;
        ++t;
      }
    }
    if (!matched) {
      if (star_p == std::string_view::npos) return false;
      p = star_p;
      t = ++star_t;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string to_hex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char byte : bytes) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0xF]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

bool from_hex(std::string_view hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  std::string decoded;
  decoded.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    decoded.push_back(static_cast<char>((hi << 4) | lo));
  }
  *out = std::move(decoded);
  return true;
}

}  // namespace harmony
