#include "core/state.h"

#include <algorithm>

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::core {

std::string OptionChoice::to_string() const {
  std::string out = option;
  for (const auto& [name, value] : variables) {
    out += str_format(" %s=%s", name.c_str(), format_number(value).c_str());
  }
  if (memory_grant != 1.0) {
    out += str_format(" mem*%s", format_number(memory_grant).c_str());
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::OptionSpec& option) {
  std::vector<OptionChoice> out;
  out.push_back(OptionChoice{option.name, {}});
  for (const auto& variable : option.variables) {
    std::vector<OptionChoice> expanded;
    expanded.reserve(out.size() * variable.values.size());
    for (const auto& base : out) {
      for (double value : variable.values) {
        OptionChoice next = base;
        next.variables[variable.name] = value;
        expanded.push_back(std::move(next));
      }
    }
    out = std::move(expanded);
  }
  return out;
}

std::vector<OptionChoice> enumerate_choices(const rsl::BundleSpec& bundle) {
  std::vector<OptionChoice> out;
  for (const auto& option : bundle.options) {
    auto choices = enumerate_choices(option);
    out.insert(out.end(), choices.begin(), choices.end());
  }
  return out;
}

BundleState* InstanceState::find_bundle(const std::string& name) {
  for (auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

const BundleState* InstanceState::find_bundle(const std::string& name) const {
  for (const auto& bundle : bundles) {
    if (bundle.spec.bundle == name) return &bundle;
  }
  return nullptr;
}

std::string InstanceState::path() const {
  return application + "." + str_format("%llu",
                                        static_cast<unsigned long long>(id));
}

cluster::Topology& SystemState::mutable_topology() {
  HARMONY_ASSERT_MSG(owned_topology_ != nullptr,
                     "adopted (shared) topologies are immutable");
  return *owned_topology_;
}

void SystemState::adopt_topology(
    std::shared_ptr<const cluster::Topology> topology) {
  HARMONY_ASSERT(topology != nullptr);
  HARMONY_ASSERT_MSG(pool == nullptr && topology_->node_count() == 0,
                     "adopt_topology must precede any cluster build");
  owned_topology_.reset();
  topology_ = std::move(topology);
}

void SystemState::init_pool(std::vector<cluster::NodeId> scope) {
  pool = scope.empty()
             ? std::make_unique<cluster::ResourcePool>(topology_.get())
             : std::make_unique<cluster::ResourcePool>(topology_.get(),
                                                       std::move(scope));
  node_version.assign(pool->slot_count(), 0);
  node_load_version.assign(pool->slot_count(), 0);
}

void SystemState::extend_scope(const std::vector<cluster::NodeId>& nodes) {
  HARMONY_ASSERT(pool != nullptr);
  if (pool->scope() == nullptr) return;  // full-cluster pool covers all
  std::vector<size_t> remap = pool->extend_scope(nodes);
  if (remap.empty()) return;
  std::vector<uint64_t> versions(pool->slot_count(), 0);
  std::vector<uint64_t> load_versions(pool->slot_count(), 0);
  for (size_t old_slot = 0; old_slot < remap.size(); ++old_slot) {
    versions[remap[old_slot]] = node_version[old_slot];
    load_versions[remap[old_slot]] = node_load_version[old_slot];
  }
  node_version = std::move(versions);
  node_load_version = std::move(load_versions);
}

InstanceState* SystemState::find_instance(InstanceId id) {
  return const_cast<InstanceState*>(
      static_cast<const SystemState*>(this)->find_instance(id));
}

const InstanceState* SystemState::find_instance(InstanceId id) const {
  // Ids are assigned monotonically and instances are appended in
  // arrival order, so the vector stays sorted by id; every GET/SET the
  // network front end dispatches lands here, which makes the lookup
  // latency-critical at swarm scale. The scan fallback covers any
  // restore path that might break the ordering.
  auto it = std::lower_bound(
      instances.begin(), instances.end(), id,
      [](const InstanceState& instance, InstanceId want) {
        return instance.id < want;
      });
  if (it != instances.end() && it->id == id) return &*it;
  for (const auto& instance : instances) {
    if (instance.id == id) return &instance;
  }
  return nullptr;
}

const std::vector<cluster::NodeId>& BundleState::admissible(
    const cluster::Topology& topology) const {
  if (admissible_cached) return admissible_nodes;
  // Union of every requirement's match set, ascending by id — the same
  // set (and order) a full node scan filtered per option would yield,
  // but prefix/exact hostname patterns use the topology's indexed path
  // instead of visiting every node.
  admissible_nodes.clear();
  for (const auto& option : spec.options) {
    for (const auto& req : option.nodes) {
      auto matches = topology.match_nodes(req.hostname, req.os);
      admissible_nodes.insert(admissible_nodes.end(), matches.begin(),
                              matches.end());
    }
  }
  std::sort(admissible_nodes.begin(), admissible_nodes.end());
  admissible_nodes.erase(
      std::unique(admissible_nodes.begin(), admissible_nodes.end()),
      admissible_nodes.end());
  admissible_cached = true;
  return admissible_nodes;
}

void SystemState::touch_node(cluster::NodeId node) {
  const size_t slot = pool ? pool->slot_of(node) : cluster::NodeScope::kNoSlot;
  if (slot >= node_version.size()) return;
  node_version[slot] = ++version;
}

void SystemState::touch_allocation(const cluster::Allocation& allocation) {
  for (const auto& entry : allocation.entries) touch_node(entry.node);
}

void SystemState::touch_all() {
  ++version;
  std::fill(node_version.begin(), node_version.end(), version);
  std::fill(node_load_version.begin(), node_load_version.end(), version);
}

void SystemState::touch_node_load(cluster::NodeId node) {
  const size_t slot = pool ? pool->slot_of(node) : cluster::NodeScope::kNoSlot;
  if (slot >= node_load_version.size()) return;
  node_load_version[slot] = ++version;
}

uint64_t SystemState::max_node_version(
    const std::vector<cluster::NodeId>& nodes) const {
  uint64_t max = 0;
  for (cluster::NodeId node : nodes) {
    const size_t slot = pool ? pool->slot_of(node) : cluster::NodeScope::kNoSlot;
    if (slot < node_version.size()) max = std::max(max, node_version[slot]);
  }
  return max;
}

uint64_t SystemState::max_node_load_version(
    const std::vector<cluster::NodeId>& nodes) const {
  uint64_t max = 0;
  for (cluster::NodeId node : nodes) {
    const size_t slot = pool ? pool->slot_of(node) : cluster::NodeScope::kNoSlot;
    if (slot < node_load_version.size()) {
      max = std::max(max, node_load_version[slot]);
    }
  }
  return max;
}

PlanOverlay::PlanOverlay(const SystemState& state, const BundleState* bundle)
    : overlay_(state.pool.get()) {
  // Release the bundle's current allocation inside the overlay only:
  // candidates are matched as if this bundle held nothing. Base
  // contention needs no materialization — the overlay's effective_load
  // already reports process count + external load per node.
  if (bundle != nullptr && bundle->configured) {
    auto released = cluster::Matcher::release(bundle->allocation, overlay_);
    HARMONY_ASSERT_MSG(released.ok(),
                       "releasing current allocation in overlay failed");
  }
}

std::map<cluster::NodeId, int> SystemState::node_load() const {
  std::map<cluster::NodeId, int> load;
  for (const auto& instance : instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      for (const auto& entry : bundle.allocation.entries) {
        ++load[entry.node];
      }
    }
  }
  // Load from outside Harmony's control, as reported through the
  // metric interface (§4.3). A scoped pool only tracks its own nodes.
  if (pool != nullptr) {
    const cluster::NodeScope* scope = pool->scope();
    const size_t limit = scope ? scope->size() : topology().node_count();
    for (size_t i = 0; i < limit; ++i) {
      cluster::NodeId id =
          scope ? scope->node_at(i) : static_cast<cluster::NodeId>(i);
      int external = pool->external_load(id);
      if (external > 0) load[id] += external;
    }
  }
  return load;
}

}  // namespace harmony::core
