// Scale ablation — does per-decision cost track the domain footprint
// or the cluster?
//
// The scoped-domain core shares one immutable topology across all
// domain controllers and allocates pool/version state per domain over
// its footprint only, so domain create, steady-state decisions and
// merge/split should all be O(|domain|). This bench holds the workload
// fixed — 16 active groups of 9 nodes, 4 applications each — and grows
// the cluster around it from ~250 to ~10k nodes. Per size it measures:
//
//   create_ms    median time of a registration that creates a domain
//   decision_ms  median steady-state decision (external-load report
//                routed into an existing domain)
//   merge_ms     median registration that merges two 9-node domains
//   split_ms     median departure that splits them again
//
// Every size also drives the identical event sequence into a
// --single-domain reference router and requires the full decision
// fingerprint to match bit-for-bit: the speed must come from scoping,
// never from deciding differently.
//
// Gate (full mode): decision_ms at the largest size <= 1.3x the
// smallest size — flat, not O(cluster). Smoke mode (CI) runs the two
// small sizes and gates only the fingerprints. Results go to
// BENCH_scale.json; exits nonzero when a gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "test_scenarios.h"

namespace {

using namespace harmony;
using Clock = std::chrono::steady_clock;

struct Options {
  bool smoke = false;
  int decision_reps = 240;
  int merge_cycles = 6;
};

struct SizeResult {
  int groups = 0;
  int nodes = 0;
  size_t domains = 0;
  double create_ms = 0;
  double decision_ms = 0;
  double merge_ms = 0;
  double split_ms = 0;
  bool fingerprint_ok = false;
  bool ok = true;
  std::string error;
};

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

double median(std::vector<double> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Spans two groups with no link requirement (swarm groups share no
// wires); registering it merges their domains, departure splits them.
std::string span_bundle(int group_a, int group_b, int tag) {
  return str_format(
      "harmonyBundle Span:%d where {\n"
      "  {pair\n"
      "    {node left {hostname %s-c*} {seconds 30} {memory 8}}\n"
      "    {node right {hostname %s-c*} {seconds 30} {memory 8}}}\n"
      "}\n",
      tag, testing::swarm_group_name(group_a).c_str(),
      testing::swarm_group_name(group_b).c_str());
}

SizeResult run_size(int groups, const Options& options) {
  using testing::swarm_db_bundle;
  using testing::swarm_group_name;
  using testing::swarm_par_bundle;

  SizeResult result;
  result.groups = groups;
  result.nodes = groups * 9;  // 1 server + 8 clients per group
  const int active_groups = 16;
  const int apps_per_group = 4;

  testing::SwarmConfig config;
  config.groups = groups;
  const std::string cluster = testing::swarm_cluster_script(config);

  core::DomainRouterConfig router_config;
  router_config.workers = 2;
  core::DomainRouter router(router_config);
  core::DomainRouterConfig reference_config;
  reference_config.single_domain = true;
  core::DomainRouter reference(reference_config);
  double now = 0;
  auto source = [&now] { return now; };
  router.set_time_source(source);
  reference.set_time_source(source);
  if (!router.add_nodes_script(cluster).ok() ||
      !router.finalize_cluster().ok() ||
      !reference.add_nodes_script(cluster).ok() ||
      !reference.finalize_cluster().ok()) {
    result.ok = false;
    result.error = "cluster setup failed";
    return result;
  }

  auto drive_both = [&](const std::string& script) {
    auto a = router.register_script(script);
    auto b = reference.register_script(script);
    if (!a.ok() || !b.ok() || a.value() != b.value()) {
      result.ok = false;
      result.error = "registration diverged: " +
                     (a.ok() ? std::string("reference failed")
                             : a.error().message);
      return core::InstanceId(0);
    }
    return a.value();
  };

  // Fixed workload: the first registration per group creates a domain
  // (timed), the rest land in it.
  std::vector<double> create_samples;
  for (int g = 0; g < active_groups && result.ok; ++g) {
    for (int a = 0; a < apps_per_group && result.ok; ++a) {
      const int tag = g * apps_per_group + a + 1;
      const std::string script = a % 2 == 0 ? swarm_db_bundle(g, tag)
                                            : swarm_par_bundle(g, tag);
      now += 5;
      if (a == 0) {
        // Time the router alone, then replay into the reference.
        const auto t0 = Clock::now();
        auto id = router.register_script(script);
        create_samples.push_back(ms_since(t0));
        auto ref = reference.register_script(script);
        if (!id.ok() || !ref.ok() || id.value() != ref.value()) {
          result.ok = false;
          result.error = "create registration diverged";
        }
      } else {
        drive_both(script);
      }
    }
  }
  if (!result.ok) return result;
  result.create_ms = median(create_samples);

  // Steady-state decisions: owner-routed external-load reports, the
  // per-epoch workhorse event. Values alternate so every report moves
  // contention and forces a real decision pass.
  std::vector<double> decision_samples;
  for (int i = 0; i < options.decision_reps; ++i) {
    const int g = i % active_groups;
    const std::string host =
        str_format("%s-c%02d", swarm_group_name(g).c_str(), i % 8);
    const int tasks = 1 + i % 3;
    now += 1;
    const auto t0 = Clock::now();
    if (!router.report_external_load(host, tasks).ok()) {
      result.ok = false;
      result.error = "load report failed";
      return result;
    }
    decision_samples.push_back(ms_since(t0));
    if (!reference.report_external_load(host, tasks).ok()) {
      result.ok = false;
      result.error = "reference load report failed";
      return result;
    }
  }
  result.decision_ms = median(decision_samples);

  // Merge/split cycles between two fixed active groups.
  std::vector<double> merge_samples, split_samples;
  int span_tag = 1000;
  for (int cycle = 0; cycle < options.merge_cycles; ++cycle) {
    now += 5;
    const std::string script = span_bundle(1, 9, span_tag++);
    const auto t0 = Clock::now();
    auto id = router.register_script(script);
    merge_samples.push_back(ms_since(t0));
    auto ref = reference.register_script(script);
    if (!id.ok() || !ref.ok() || id.value() != ref.value()) {
      result.ok = false;
      result.error = "merge registration diverged";
      return result;
    }
    now += 5;
    const auto t1 = Clock::now();
    if (!router.unregister(id.value()).ok()) {
      result.ok = false;
      result.error = "split departure failed";
      return result;
    }
    split_samples.push_back(ms_since(t1));
    if (!reference.unregister(ref.value()).ok()) {
      result.ok = false;
      result.error = "reference departure failed";
      return result;
    }
  }
  result.merge_ms = median(merge_samples);
  result.split_ms = median(split_samples);

  result.domains = router.domain_count();
  result.fingerprint_ok =
      testing::fingerprint(router) == testing::fingerprint(reference);
  if (!result.fingerprint_ok) {
    result.ok = false;
    result.error = "decision fingerprint diverged from --single-domain";
  }
  return result;
}

int run(const Options& options) {
  const std::vector<int> group_counts =
      options.smoke ? std::vector<int>{28, 112}
                    : std::vector<int>{28, 112, 445, 1112};

  std::printf(
      "=== Scoped domains: fixed 16x9-node workload, growing cluster ===\n");
  std::printf("%8s %8s %8s %11s %13s %10s %10s %6s\n", "groups", "nodes",
              "domains", "create_ms", "decision_ms", "merge_ms", "split_ms",
              "ident");

  std::vector<SizeResult> results;
  bool ok = true;
  for (int groups : group_counts) {
    SizeResult result = run_size(groups, options);
    std::printf("%8d %8d %8zu %11.3f %13.4f %10.3f %10.3f %6s\n",
                result.groups, result.nodes, result.domains, result.create_ms,
                result.decision_ms, result.merge_ms, result.split_ms,
                result.fingerprint_ok ? "yes" : "NO");
    if (!result.ok) {
      std::printf("  !! %d groups: %s\n", groups, result.error.c_str());
      ok = false;
    }
    results.push_back(result);
  }

  double decision_ratio = 0, create_ratio = 0, merge_ratio = 0,
         split_ratio = 0;
  bool gate_met = true;
  if (ok && results.size() > 1) {
    const SizeResult& small = results.front();
    const SizeResult& large = results.back();
    auto ratio = [](double a, double b) { return b > 0 ? a / b : 0.0; };
    decision_ratio = ratio(large.decision_ms, small.decision_ms);
    create_ratio = ratio(large.create_ms, small.create_ms);
    merge_ratio = ratio(large.merge_ms, small.merge_ms);
    split_ratio = ratio(large.split_ms, small.split_ms);
    if (!options.smoke) {
      // Smoke spans only 250->1k nodes; too little lever arm (and too
      // much CI noise) for a latency-ratio gate, so it gates identity
      // only. The full sweep holds the decision path flat across 40x.
      gate_met = decision_ratio <= 1.3;
      std::printf(
          "\ndecision latency %dx nodes: %.2fx (<=1.30x required): %s\n",
          large.nodes / small.nodes, decision_ratio,
          gate_met ? "PASS" : "FAIL");
      std::printf("create %.2fx  merge %.2fx  split %.2fx (reported, ungated)\n",
                  create_ratio, merge_ratio, split_ratio);
    }
  }
  ok = ok && gate_met;

  std::string sizes_json;
  for (const auto& result : results) {
    if (!sizes_json.empty()) sizes_json += ",";
    sizes_json += str_format(
        "\n    {\"groups\": %d, \"nodes\": %d, \"domains\": %zu, "
        "\"create_ms\": %.4f, \"decision_ms\": %.4f, \"merge_ms\": %.4f, "
        "\"split_ms\": %.4f, \"fingerprint_ok\": %s}",
        result.groups, result.nodes, result.domains, result.create_ms,
        result.decision_ms, result.merge_ms, result.split_ms,
        result.fingerprint_ok ? "true" : "false");
  }
  FILE* out = std::fopen("BENCH_scale.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"abl_scale\",\n  \"smoke\": %s,\n"
                 "  \"sizes\": [%s\n  ],\n"
                 "  \"decision_ratio\": %.3f,\n  \"create_ratio\": %.3f,\n"
                 "  \"merge_ratio\": %.3f,\n  \"split_ratio\": %.3f,\n"
                 "  \"decision_gate_met\": %s\n}\n",
                 options.smoke ? "true" : "false", sizes_json.c_str(),
                 decision_ratio, create_ratio, merge_ratio, split_ratio,
                 gate_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_scale.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
      options.decision_reps = 60;
      options.merge_cycles = 2;
    } else {
      std::fprintf(stderr, "usage: abl_scale [--smoke]\n");
      return 2;
    }
  }
  return run(options);
}
