// The "Simple" application of §3.3: a generic rigid parallel job on a
// fixed number of dedicated workers. Each iteration runs the same
// per-worker computation with a small all-pairs exchange; the node
// count never changes (there is exactly one option in its bundle), so
// it serves as the inflexible tenant in the Figure 4 scenario.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/sim_context.h"
#include "client/client.h"

namespace harmony::apps {

struct SimpleConfig {
  int instance = 1;
  int workers = 4;              // the paper's example uses four
  double seconds_per_worker = 300.0;
  double memory_mb = 32.0;
  double exchange_mb = 10.0;    // all-pairs per iteration, total
  int max_iterations = 0;       // 0 = run until stop()
};

std::string simple_bundle_script(const SimpleConfig& config);

class SimpleApp {
 public:
  SimpleApp(SimContext ctx, SimpleConfig config);

  Status start();
  void stop();
  bool finished() const { return finished_; }
  int iterations_completed() const { return iterations_completed_; }
  const std::vector<cluster::NodeId>& nodes() const { return worker_nodes_; }
  core::InstanceId instance_id() const { return client_->instance_id(); }

 private:
  void begin_iteration();
  void worker_done();

  SimContext ctx_;
  SimpleConfig config_;
  std::unique_ptr<client::InProcTransport> transport_;
  std::unique_ptr<client::HarmonyClient> client_;
  std::vector<cluster::NodeId> worker_nodes_;
  int workers_remaining_ = 0;
  double iteration_started_ = 0;
  int iterations_completed_ = 0;
  bool stop_requested_ = false;
  bool finished_ = false;
  std::string metric_name_;
};

}  // namespace harmony::apps
