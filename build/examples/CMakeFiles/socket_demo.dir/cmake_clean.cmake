file(REMOVE_RECURSE
  "CMakeFiles/socket_demo.dir/socket_demo.cpp.o"
  "CMakeFiles/socket_demo.dir/socket_demo.cpp.o.d"
  "socket_demo"
  "socket_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
