file(REMOVE_RECURSE
  "CMakeFiles/rsl_property_test.dir/rsl_property_test.cc.o"
  "CMakeFiles/rsl_property_test.dir/rsl_property_test.cc.o.d"
  "rsl_property_test"
  "rsl_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
