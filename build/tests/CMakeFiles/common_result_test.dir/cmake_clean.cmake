file(REMOVE_RECURSE
  "CMakeFiles/common_result_test.dir/common_result_test.cc.o"
  "CMakeFiles/common_result_test.dir/common_result_test.cc.o.d"
  "common_result_test"
  "common_result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
