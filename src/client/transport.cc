#include "client/transport.h"

#include "core/controller.h"

namespace harmony::client {

Result<core::InstanceId> InProcTransport::register_app(
    const std::string& script) {
  return controller_->register_script(script);
}

Status InProcTransport::unregister(core::InstanceId id) {
  return controller_->unregister(id);
}

Status InProcTransport::subscribe(core::InstanceId id, UpdateHandler handler) {
  return controller_->subscribe(id, std::move(handler));
}

Result<std::string> InProcTransport::get_variable(core::InstanceId id,
                                                  const std::string& name) {
  return controller_->get_variable(id, name);
}

}  // namespace harmony::client
