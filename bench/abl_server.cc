// Network front-end ablation — the sharded epoll server vs the
// single-threaded poll(2) baseline under a client swarm.
//
// Thousands of concurrent protocol clients (a small v1 cohort, the rest
// resumable v2) register against one controller, then ping it steadily
// (GET round trips, closed loop, at most one outstanding per client)
// through two measured windows:
//
//   capacity  driver connections sweep SET steering closed-loop as fast
//             as the server answers; measures fan-out throughput
//             (UPDATE frames/sec delivered to the swarm) and sweep rate
//   latency   one pipelined driver paces the same sweep at a fixed
//             rate offered identically to both modes; measures ping
//             round-trip p50/p99 under equal load
//
// Separating the windows keeps the comparison honest: closed-loop
// drivers self-throttle to whatever the server sustains, so tail
// latency is only comparable at a matched offered rate. Results go to
// BENCH_server.json; outside --smoke the run fails unless the sharded
// path shows >=5x fan-out throughput and a lower p99 at the configured
// scale.
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "metric/telemetry.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/tcp.h"
#include "net/tcp_transport.h"

namespace {

using namespace harmony;
using net::Fd;
using net::FrameBuffer;
using net::Message;
using Clock = std::chrono::steady_clock;

constexpr int kGroupNodes = 16;
constexpr int kV1Nodes = 4;

// What the swarm is currently measuring.
enum Phase : int { kIdle = 0, kCapacity = 1, kLatency = 2 };

struct Options {
  int clients = 2000;
  double window_seconds = 3.0;
  int io_shards = -1;  // server default
  int ping_interval_ms = 200;
  double paced_sets_per_sec = 20000;
  bool smoke = false;
  bool sharded_only = false;
  bool single_only = false;
};

std::string cluster_script() {
  std::string script;
  for (int i = 0; i < kGroupNodes; ++i) {
    script += str_format(
        "harmonyNode grp-%02d {speed 1.0} {memory 1024} {os linux}\n", i);
  }
  // The v1 cohort lives on its own sparse nodes so its teardown
  // departures only dirty each other.
  for (int i = 0; i < kV1Nodes; ++i) {
    script += str_format(
        "harmonyNode v1g-%d {speed 1.0} {memory 1024} {os linux}\n", i);
  }
  script += "harmonyNode scratch-0 {speed 1.0} {memory 1024} {os linux}\n";
  return script;
}

// Constant-model two-option bundle pinned to one node; steering flips
// it between `fast` and `slow`, producing a 4-frame UPDATE batch per
// flip (option, node, nodes, memory).
std::string swarm_bundle(int i, bool v1) {
  const std::string host = v1 ? str_format("v1g-%d", i % kV1Nodes)
                              : str_format("grp-%02d", i % kGroupNodes);
  return str_format(
      "harmonyBundle Swarm:%d place {\n"
      "  {fast {node work {hostname %s} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {1.0}}}\n"
      "  {slow {node work {hostname %s} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {2.0}}}\n"
      "}\n",
      i, host.c_str(), host.c_str());
}

// One swarm member: a raw protocol client (blocking during the
// registration storm, epoll-driven afterwards).
struct SwarmClient {
  Fd fd;
  FrameBuffer inbound;
  core::InstanceId id = 0;
  bool ping_outstanding = false;
  Clock::time_point ping_sent;
  Clock::time_point last_ping;
  std::string ping_request;  // pre-encoded GET frame
};

// Blocking request/response on a swarm socket; skips pushed UPDATEs.
bool blocking_call(SwarmClient& client, const Message& request,
                   Message* reply) {
  if (!net::write_all(client.fd, net::encode_frame(request.encode())).ok()) {
    return false;
  }
  while (true) {
    auto frame = client.inbound.next_frame();
    if (!frame.ok()) return false;
    if (frame.value().has_value()) {
      auto message = Message::decode(*frame.value());
      if (!message.ok()) return false;
      if (message.value().verb == "UPDATE") continue;
      *reply = std::move(message).value();
      return true;
    }
    char buffer[4096];
    auto n = net::read_some(client.fd, buffer, sizeof(buffer));
    if (!n.ok()) return false;
    if (n.value() > 0) client.inbound.feed(std::string_view(buffer, n.value()));
  }
}

// Worker threads own disjoint slices of the swarm: pace pings, read
// frames, count UPDATEs per window, sample round trips in the latency
// window.
struct Worker {
  std::vector<SwarmClient*> clients;
  std::atomic<uint64_t> capacity_updates{0};
  std::atomic<uint64_t> latency_updates{0};
  std::vector<double> rtts_ms;  // latency-window pings; read after join
  std::thread thread;
};

void worker_loop(Worker& worker, const std::atomic<bool>& running,
                 const std::atomic<int>& phase, int ping_interval_ms) {
  Fd epoll(::epoll_create1(EPOLL_CLOEXEC));
  std::vector<epoll_event> events(256);
  for (size_t i = 0; i < worker.clients.size(); ++i) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = i;
    (void)::epoll_ctl(epoll.get(), EPOLL_CTL_ADD,
                      worker.clients[i]->fd.get(), &event);
  }
  const auto interval = std::chrono::milliseconds(ping_interval_ms);
  while (running.load(std::memory_order_relaxed)) {
    int ready = ::epoll_wait(epoll.get(), events.data(),
                             static_cast<int>(events.size()), 10);
    const int window = phase.load(std::memory_order_relaxed);
    for (int i = 0; i < ready; ++i) {
      SwarmClient& client = *worker.clients[events[i].data.u64];
      char buffer[16384];
      while (true) {
        auto n = net::read_some(client.fd, buffer, sizeof(buffer));
        if (!n.ok() || n.value() == 0) break;
        client.inbound.feed(std::string_view(buffer, n.value()));
      }
      while (true) {
        auto frame = client.inbound.next_frame();
        if (!frame.ok() || !frame.value().has_value()) break;
        auto message = Message::decode(*frame.value());
        if (!message.ok()) continue;
        if (message.value().verb == "UPDATE") {
          if (window == kCapacity) {
            worker.capacity_updates.fetch_add(1, std::memory_order_relaxed);
          } else if (window == kLatency) {
            worker.latency_updates.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (client.ping_outstanding) {
          client.ping_outstanding = false;
          if (window == kLatency) {
            worker.rtts_ms.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() -
                                                          client.ping_sent)
                    .count());
          }
        }
      }
    }
    // Pacing pass: closed loop, at most one outstanding ping per client.
    const auto now = Clock::now();
    for (SwarmClient* client : worker.clients) {
      if (client->ping_outstanding || now - client->last_ping < interval) {
        continue;
      }
      if (!net::write_all(client->fd, client->ping_request).ok()) continue;
      client->ping_outstanding = true;
      client->ping_sent = now;
      client->last_ping = now;
    }
  }
}

// The latency-window driver: pipelines SET frames at a fixed rate over
// one connection regardless of how fast replies come back, so both
// server modes face the same offered load. Partial writes are carried
// in a local buffer; scheduling stops if the backlog tops out (the
// single-thread server at meltdown).
struct PacedResult {
  uint64_t scheduled = 0;
  uint64_t acked = 0;
};

void paced_driver_loop(uint16_t port, const std::vector<core::InstanceId>& ids,
                       double rate, const std::atomic<int>& phase,
                       PacedResult* out) {
  auto connected = net::connect_to("localhost", port);
  if (!connected.ok()) return;
  Fd fd = std::move(connected).value();
  (void)net::set_nonblocking(fd, true);
  FrameBuffer inbound;
  std::string outbuf;
  size_t out_head = 0;
  size_t cursor = 0;
  uint64_t round = 0;
  const auto start = Clock::now();
  while (phase.load(std::memory_order_relaxed) == kLatency) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    const uint64_t due = static_cast<uint64_t>(rate * elapsed);
    while (out->scheduled < due && outbuf.size() - out_head < (4u << 20)) {
      const core::InstanceId id = ids[cursor];
      if (++cursor == ids.size()) {
        cursor = 0;
        ++round;
      }
      const char* option = (round % 2 == 0) ? "slow" : "fast";
      outbuf += net::encode_frame(
          Message{"SET",
                  {str_format("%llu", static_cast<unsigned long long>(id)),
                   "place", option}}
              .encode());
      ++out->scheduled;
    }
    if (out_head < outbuf.size()) {
      auto n = net::write_some(fd, outbuf.data() + out_head,
                               outbuf.size() - out_head);
      if (!n.ok()) break;
      out_head += n.value();
      if (out_head == outbuf.size()) {
        outbuf.clear();
        out_head = 0;
      } else if (out_head > (1u << 20)) {
        outbuf.erase(0, out_head);
        out_head = 0;
      }
    }
    char buffer[16384];
    while (true) {
      auto n = net::read_some(fd, buffer, sizeof(buffer));
      if (!n.ok() || n.value() == 0) break;
      inbound.feed(std::string_view(buffer, n.value()));
    }
    while (true) {
      auto frame = inbound.next_frame();
      if (!frame.ok() || !frame.value().has_value()) break;
      auto message = Message::decode(*frame.value());
      if (message.ok() && message.value().verb != "UPDATE") ++out->acked;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

struct ModeResult {
  std::string mode;
  int io_shards = 0;
  double connects_per_sec = 0;
  // Capacity window (closed-loop sweep).
  double sets_per_sec = 0;
  double update_frames_per_sec = 0;
  uint64_t capacity_updates = 0;
  // Latency window (paced sweep).
  double paced_acked_per_sec = 0;
  double rtt_p50_ms = 0;
  double rtt_p99_ms = 0;
  uint64_t window_pings = 0;
  bool ok = true;
  std::string error;
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[index];
}

ModeResult run_mode(const Options& options, bool sharded) {
  ModeResult result;
  result.mode = sharded ? "sharded" : "single-thread";

  core::ControllerConfig controller_config;
  controller_config.optimizer.initial_policy =
      core::OptimizerConfig::InitialPolicy::kFirstFeasible;
  controller_config.optimizer.reevaluate_on_arrival = false;
  controller_config.record_objective_metric = false;
  auto controller = std::make_unique<core::Controller>(controller_config);
  if (!controller->add_nodes_script(cluster_script()).ok() ||
      !controller->finalize_cluster().ok()) {
    result.ok = false;
    result.error = "cluster setup failed";
    return result;
  }

  net::ServerConfig server_config;
  server_config.io_shards = sharded ? options.io_shards : 0;
  server_config.listen_backlog = 1024;
  auto server = std::make_unique<net::HarmonyTcpServer>(controller.get(),
                                                        /*port=*/0,
                                                        server_config);
  auto bound = server->start();
  if (!bound.ok()) {
    result.ok = false;
    result.error = "server start: " + bound.error().message;
    return result;
  }
  const uint16_t port = bound.value();
  result.io_shards = server->io_shards();
  std::thread serve_thread([&server] { server->run(); });

  const int v1_cohort = std::max(1, std::min(64, options.clients / 8));
  std::vector<std::unique_ptr<SwarmClient>> swarm;
  swarm.reserve(options.clients);
  for (int i = 0; i < options.clients; ++i) {
    swarm.push_back(std::make_unique<SwarmClient>());
  }

  // --- phase 1: connection + registration storm ---------------------------
  const int worker_count = 2;
  std::atomic<int> storm_failures{0};
  const auto storm_start = Clock::now();
  {
    std::vector<std::thread> storm;
    for (int w = 0; w < worker_count; ++w) {
      storm.emplace_back([&, w] {
        for (int i = w; i < options.clients; i += worker_count) {
          SwarmClient& client = *swarm[i];
          auto fd = net::connect_to("localhost", port);
          if (!fd.ok()) {
            ++storm_failures;
            continue;
          }
          client.fd = std::move(fd).value();
          const bool v1 = i < v1_cohort;
          Message request{"REGISTER", {swarm_bundle(i, v1)}};
          if (!v1) request.args.push_back("2");
          Message reply;
          if (!blocking_call(client, request, &reply) ||
              reply.verb != "OK" || reply.args.empty()) {
            ++storm_failures;
            client.fd.close();
            continue;
          }
          unsigned long long id = 0;
          std::sscanf(reply.args[0].c_str(), "%llu", &id);
          client.id = static_cast<core::InstanceId>(id);
          client.ping_request = net::encode_frame(
              Message{"GET", {str_format("%llu", id), "place.option"}}
                  .encode());
        }
      });
    }
    for (auto& thread : storm) thread.join();
  }
  const double storm_seconds =
      std::chrono::duration<double>(Clock::now() - storm_start).count();
  if (storm_failures.load() > 0) {
    result.ok = false;
    result.error =
        str_format("%d clients failed to register", storm_failures.load());
  }
  result.connects_per_sec = options.clients / storm_seconds;

  // Warm-up pass: the first re-evaluation after a registration wave is
  // a full sweep that stamps every bundle's incremental version; take
  // it outside the measured windows.
  net::TcpTransport warmup;
  if (!warmup.connect("localhost", port).ok() ||
      !warmup.report_load("scratch-0", 1).ok()) {
    result.ok = false;
    result.error = "warm-up load report failed";
  }

  // --- phase 2: steady-state pings + measured windows ---------------------
  std::atomic<bool> running{true};
  std::atomic<int> phase{kIdle};
  std::vector<std::unique_ptr<Worker>> workers;
  for (int w = 0; w < worker_count; ++w) {
    workers.push_back(std::make_unique<Worker>());
  }
  std::vector<core::InstanceId> v2_ids;
  for (int i = 0; i < options.clients; ++i) {
    if (!swarm[i]->fd.valid()) continue;
    (void)net::set_nonblocking(swarm[i]->fd, true);
    workers[i % worker_count]->clients.push_back(swarm[i].get());
    if (i >= v1_cohort && swarm[i]->id != 0) v2_ids.push_back(swarm[i]->id);
  }
  for (int w = 0; w < worker_count; ++w) {
    Worker* worker = workers[w].get();
    worker->thread = std::thread([worker, &running, &phase, &options] {
      worker_loop(*worker, running, phase, options.ping_interval_ms);
    });
  }
  // Let the ping load settle before measuring.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Capacity window: closed-loop SET sweep from driver transports.
  const int driver_count = 2;
  std::atomic<uint64_t> sets_done{0};
  std::vector<std::thread> drivers;
  phase.store(kCapacity);
  const auto capacity_start = Clock::now();
  for (int d = 0; d < driver_count; ++d) {
    drivers.emplace_back([&, d] {
      net::TcpTransport driver;
      if (!driver.connect("localhost", port).ok()) return;
      uint64_t round = 0;
      while (phase.load(std::memory_order_relaxed) == kCapacity) {
        for (size_t i = d; i < v2_ids.size(); i += driver_count) {
          if (phase.load(std::memory_order_relaxed) != kCapacity) break;
          const char* option = (round % 2 == 0) ? "slow" : "fast";
          if (driver.set_option(v2_ids[i], "place", option).ok()) {
            sets_done.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++round;
      }
    });
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(options.window_seconds));
  phase.store(kIdle);
  const double capacity_seconds =
      std::chrono::duration<double>(Clock::now() - capacity_start).count();
  for (auto& driver : drivers) driver.join();
  for (auto& worker : workers) {
    result.capacity_updates += worker->capacity_updates.load();
  }
  result.sets_per_sec = sets_done.load() / capacity_seconds;
  result.update_frames_per_sec = result.capacity_updates / capacity_seconds;

  // Latency window: the same sweep paced at a fixed offered rate.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  PacedResult paced;
  phase.store(kLatency);
  const auto latency_start = Clock::now();
  std::thread paced_thread([&] {
    paced_driver_loop(port, v2_ids, options.paced_sets_per_sec, phase,
                      &paced);
  });
  std::this_thread::sleep_for(
      std::chrono::duration<double>(options.window_seconds));
  phase.store(kIdle);
  const double latency_seconds =
      std::chrono::duration<double>(Clock::now() - latency_start).count();
  paced_thread.join();
  running.store(false);
  std::vector<double> rtts;
  for (auto& worker : workers) {
    worker->thread.join();
    rtts.insert(rtts.end(), worker->rtts_ms.begin(), worker->rtts_ms.end());
  }
  std::sort(rtts.begin(), rtts.end());
  result.window_pings = rtts.size();
  result.paced_acked_per_sec = paced.acked / latency_seconds;
  result.rtt_p50_ms = percentile(rtts, 0.50);
  result.rtt_p99_ms = percentile(rtts, 0.99);
  if (result.capacity_updates == 0 || rtts.empty()) {
    result.ok = false;
    if (result.error.empty()) result.error = "no traffic measured in window";
  }

  // --- teardown: server first, so closing the swarm costs nothing ---------
  server->stop();
  serve_thread.join();
  server.reset();  // parks v2 sessions, departs the v1 cohort
  return result;
}

// --- telemetry overhead on the wire path ----------------------------------
// A fixed quantum of SET round trips through the sharded server with the
// process-global telemetry flag on vs off, interleaved best-of-N minima.
// The driver owns the instances it steers, so the UPDATE fan-out drains
// through its own call() loop — one connection, no extra threads, and
// every instrumented layer (shard framing, mailbox, controller epoch,
// UPDATE ship) sits on the measured path.
struct TelemetryOverheadResult {
  double off_ms = 0;
  double on_ms = 0;
  double overhead_percent = 0;
  bool gate_met = false;
  bool ok = true;
  std::string error;
};

TelemetryOverheadResult run_telemetry_overhead(const Options& options) {
  TelemetryOverheadResult result;
  core::ControllerConfig controller_config;
  controller_config.optimizer.initial_policy =
      core::OptimizerConfig::InitialPolicy::kFirstFeasible;
  controller_config.optimizer.reevaluate_on_arrival = false;
  controller_config.record_objective_metric = false;
  auto controller = std::make_unique<core::Controller>(controller_config);
  if (!controller->add_nodes_script(cluster_script()).ok() ||
      !controller->finalize_cluster().ok()) {
    result.ok = false;
    result.error = "cluster setup failed";
    return result;
  }
  net::ServerConfig server_config;
  server_config.io_shards = 2;
  auto server = std::make_unique<net::HarmonyTcpServer>(controller.get(),
                                                        /*port=*/0,
                                                        server_config);
  auto bound = server->start();
  if (!bound.ok()) {
    result.ok = false;
    result.error = "server start: " + bound.error().message;
    return result;
  }
  std::thread serve_thread([&server] { server->run(); });

  net::TcpTransport driver;
  std::vector<core::InstanceId> ids;
  bool setup_ok = driver.connect("localhost", bound.value()).ok();
  for (int i = 0; setup_ok && i < 4; ++i) {
    auto id = driver.register_app(swarm_bundle(i, /*v1=*/false));
    if (id.ok()) {
      ids.push_back(id.value());
    } else {
      setup_ok = false;
    }
  }
  if (setup_ok) {
    const int sets_per_pass = options.smoke ? 300 : 2000;
    const int repeats = options.smoke ? 5 : 10;
    double off_ms = 1e18, on_ms = 1e18;
    for (int repeat = 0; repeat < repeats && setup_ok; ++repeat) {
      for (bool enabled : {false, true}) {
        metric::set_telemetry_enabled(enabled);
        uint64_t round = 0;
        const auto t0 = Clock::now();
        for (int i = 0; i < sets_per_pass; ++i) {
          const core::InstanceId id = ids[i % ids.size()];
          if (i % ids.size() == ids.size() - 1) ++round;
          const char* option = (round % 2 == 0) ? "slow" : "fast";
          if (!driver.set_option(id, "place", option).ok()) {
            setup_ok = false;
            break;
          }
        }
        const double wall_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        if (enabled) {
          on_ms = std::min(on_ms, wall_ms);
        } else {
          off_ms = std::min(off_ms, wall_ms);
        }
      }
    }
    metric::set_telemetry_enabled(true);
    result.off_ms = off_ms;
    result.on_ms = on_ms;
    result.overhead_percent =
        off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0;
    result.gate_met = result.overhead_percent < 2.0;
  }
  if (!setup_ok && result.error.empty()) {
    result.ok = false;
    result.error = "telemetry overhead drive failed";
  }
  server->stop();
  serve_thread.join();
  server.reset();
  return result;
}

int run(const Options& options) {
  // The swarm needs one fd per client plus headroom for the server side.
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) == 0) {
    const rlim_t wanted = static_cast<rlim_t>(options.clients) * 2 + 512;
    if (limit.rlim_cur < wanted && wanted <= limit.rlim_max) {
      limit.rlim_cur = wanted;
      (void)::setrlimit(RLIMIT_NOFILE, &limit);
    }
  }

  std::printf("=== Network front end: epoll shards vs single-thread poll ===\n");
  std::printf(
      "scenario: %d clients ping every %d ms; capacity window = closed-loop "
      "SET sweep, latency window = sweep paced at %.0f sets/s, %.1fs each\n\n",
      options.clients, options.ping_interval_ms, options.paced_sets_per_sec,
      options.window_seconds);
  std::printf("%14s %7s %10s %10s %12s %12s %10s %10s\n", "mode", "shards",
              "conn/s", "sets/s", "frames/s", "paced_ack/s", "p50_ms",
              "p99_ms");

  std::vector<ModeResult> results;
  if (!options.single_only) results.push_back(run_mode(options, true));
  if (!options.sharded_only) results.push_back(run_mode(options, false));
  bool ok = true;
  std::string json;
  for (const auto& result : results) {
    ok = ok && result.ok;
    std::printf("%14s %7d %10.0f %10.0f %12.0f %12.0f %10.2f %10.2f\n",
                result.mode.c_str(), result.io_shards,
                result.connects_per_sec, result.sets_per_sec,
                result.update_frames_per_sec, result.paced_acked_per_sec,
                result.rtt_p50_ms, result.rtt_p99_ms);
    if (!result.ok) {
      std::printf("  !! %s: %s\n", result.mode.c_str(), result.error.c_str());
    }
    if (!json.empty()) json += ",";
    json += str_format(
        "\n    {\"mode\": \"%s\", \"io_shards\": %d, "
        "\"connects_per_sec\": %.1f, \"sets_per_sec\": %.1f, "
        "\"update_frames_per_sec\": %.1f, \"paced_acked_per_sec\": %.1f, "
        "\"ping_rtt_p50_ms\": %.3f, \"ping_rtt_p99_ms\": %.3f, "
        "\"window_pings\": %llu}",
        result.mode.c_str(), result.io_shards, result.connects_per_sec,
        result.sets_per_sec, result.update_frames_per_sec,
        result.paced_acked_per_sec, result.rtt_p50_ms, result.rtt_p99_ms,
        static_cast<unsigned long long>(result.window_pings));
  }

  double speedup = 0;
  bool p99_improved = false;
  bool gated = false;
  bool gate_passed = true;
  if (results.size() == 2) {
    const ModeResult& sharded = results[0];
    const ModeResult& single = results[1];
    if (single.update_frames_per_sec > 0) {
      speedup = sharded.update_frames_per_sec / single.update_frames_per_sec;
    }
    p99_improved = sharded.rtt_p99_ms < single.rtt_p99_ms;
    std::printf(
        "\nfan-out speedup (frames/s): %.2fx; p99 at %.0f offered sets/s: "
        "%.2f ms vs %.2f ms (improved: %s)\n",
        speedup, options.paced_sets_per_sec, sharded.rtt_p99_ms,
        single.rtt_p99_ms, p99_improved ? "yes" : "NO");
    gated = !options.smoke && options.clients >= 1000;
    if (gated) {
      gate_passed = speedup >= 5.0 && p99_improved;
      std::printf("gate (>=5x fan-out, lower p99 at %d clients): %s\n",
                  options.clients, gate_passed ? "PASS" : "FAIL");
    }
  }
  ok = ok && gate_passed;

  // Telemetry overhead on the wire path (always gated, smoke included).
  auto telemetry = run_telemetry_overhead(options);
  if (telemetry.ok) {
    std::printf(
        "\ntelemetry overhead (SET round-trip quantum, best-of-N): "
        "off %.3f ms, on %.3f ms, overhead %.2f%% (<2%% required): %s\n",
        telemetry.off_ms, telemetry.on_ms, telemetry.overhead_percent,
        telemetry.gate_met ? "PASS" : "FAIL");
  } else {
    std::printf("\n!! telemetry overhead phase: %s\n",
                telemetry.error.c_str());
  }
  ok = ok && telemetry.ok && telemetry.gate_met;

  FILE* out = std::fopen("BENCH_server.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n  \"bench\": \"abl_server\",\n"
        "  \"clients\": %d,\n  \"window_seconds\": %.2f,\n"
        "  \"ping_interval_ms\": %d,\n  \"paced_sets_per_sec\": %.0f,\n"
        "  \"modes\": [%s\n  ],\n"
        "  \"fanout_speedup\": %.3f,\n  \"p99_improved\": %s,\n"
        "  \"gated\": %s,\n  \"gate_passed\": %s,\n"
        "  \"telemetry_off_ms\": %.3f,\n  \"telemetry_on_ms\": %.3f,\n"
        "  \"telemetry_overhead_percent\": %.2f,\n"
        "  \"telemetry_gate_met\": %s\n}\n",
        options.clients, options.window_seconds, options.ping_interval_ms,
        options.paced_sets_per_sec, json.c_str(), speedup,
        p99_improved ? "true" : "false", gated ? "true" : "false",
        gate_passed ? "true" : "false", telemetry.off_ms, telemetry.on_ms,
        telemetry.overhead_percent, telemetry.gate_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_server.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_int = [&](int fallback) {
      return (i + 1 < argc) ? std::atoi(argv[++i]) : fallback;
    };
    if (arg == "--clients") {
      options.clients = next_int(options.clients);
    } else if (arg == "--seconds") {
      options.window_seconds = next_int(3);
    } else if (arg == "--shards") {
      options.io_shards = next_int(options.io_shards);
    } else if (arg == "--ping-interval-ms") {
      options.ping_interval_ms = next_int(options.ping_interval_ms);
    } else if (arg == "--paced-rate") {
      options.paced_sets_per_sec = next_int(20000);
    } else if (arg == "--smoke") {
      options.smoke = true;
      options.clients = 64;
      options.window_seconds = 1.0;
      options.paced_sets_per_sec = 500;
    } else if (arg == "--sharded-only") {
      options.sharded_only = true;
    } else if (arg == "--single-thread") {
      options.single_only = true;
    } else {
      std::fprintf(stderr,
                   "usage: abl_server [--clients N] [--seconds S] "
                   "[--shards K] [--ping-interval-ms M] [--paced-rate R] "
                   "[--smoke] [--sharded-only] [--single-thread]\n");
      return 2;
    }
  }
  return run(options);
}
