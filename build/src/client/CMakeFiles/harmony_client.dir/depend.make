# Empty dependencies file for harmony_client.
# This may be replaced when dependencies are built.
