file(REMOVE_RECURSE
  "CMakeFiles/fig7_db_adaptation.dir/fig7_db_adaptation.cc.o"
  "CMakeFiles/fig7_db_adaptation.dir/fig7_db_adaptation.cc.o.d"
  "fig7_db_adaptation"
  "fig7_db_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_db_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
