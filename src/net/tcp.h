// Thin POSIX TCP helpers: RAII fd, listen/accept/connect on localhost,
// non-blocking I/O. IPv4 only — the prototype ran on one machine's
// loopback and a single switch.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace harmony::net {

class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close(); }
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void close();

 private:
  int fd_ = -1;
};

// Binds and listens on 127.0.0.1:port (port 0 = ephemeral). Returns the
// listening fd; query the actual port with local_port().
Result<Fd> listen_on(uint16_t port, int backlog = 16);
Result<uint16_t> local_port(const Fd& fd);

Result<Fd> accept_connection(const Fd& listener);
Result<Fd> connect_to(const std::string& host, uint16_t port);

Status set_nonblocking(const Fd& fd, bool nonblocking);

// read(2)/write(2) wrappers mapping EAGAIN to 0 bytes (non-blocking).
// A peer hangup reads as kClosed.
Result<size_t> read_some(const Fd& fd, char* buffer, size_t capacity);
Result<size_t> write_some(const Fd& fd, const char* data, size_t length);

// Blocking write of the whole buffer (client side).
Status write_all(const Fd& fd, const std::string& data);

}  // namespace harmony::net
