// A deadline-carrying interactive application: an open-loop stream of
// requests arrives every `period_s`; each request costs
// `service_ref_s` CPU seconds on the app's server node. The bundle
// declares the period as its deadline ({period}/{tardiness}, the
// deadline/period resource model), and its performance model is the
// load-reading default — so any batch work co-located on the server
// node inflates the predicted response past the deadline, the
// objective's tardiness term charges for it, and the optimizer
// preempts the batch app's capacity. Per-request tardiness lands in
// the `interactive.N.tardiness` metric.
#pragma once

#include <memory>
#include <string>

#include "apps/sim_context.h"
#include "client/client.h"

namespace harmony::apps {

struct InteractiveConfig {
  int instance = 1;
  double period_s = 60.0;       // request cadence == implicit deadline
  double service_ref_s = 20.0;  // per-request work on the reference CPU
  double memory_mb = 32.0;
  double tardiness_weight = 5.0;  // lateness is worth 5x a batch second
  int max_requests = 0;  // 0 = run until stop()
};

std::string interactive_bundle_script(const InteractiveConfig& config);

class InteractiveApp {
 public:
  InteractiveApp(SimContext ctx, InteractiveConfig config);

  Status start();
  // Serves out the in-flight request, then deregisters.
  void stop();
  bool finished() const { return finished_; }

  int requests_completed() const { return requests_completed_; }
  // Mean tardiness (seconds late per request) over completed requests.
  double mean_tardiness() const {
    return requests_completed_ > 0
               ? tardiness_total_ / requests_completed_
               : 0.0;
  }
  const std::string& tardiness_metric() const { return tardiness_metric_; }
  core::InstanceId instance_id() const { return client_->instance_id(); }

 private:
  void request_arrival();
  void request_complete(double arrival);
  void refresh_node();

  SimContext ctx_;
  InteractiveConfig config_;
  std::unique_ptr<client::InProcTransport> transport_;
  std::unique_ptr<client::HarmonyClient> client_;
  cluster::NodeId server_node_ = 0;
  bool have_node_ = false;
  int requests_started_ = 0;
  int requests_completed_ = 0;
  int requests_in_flight_ = 0;
  double tardiness_total_ = 0;
  bool stop_requested_ = false;
  bool finished_ = false;
  std::string response_metric_;
  std::string tardiness_metric_;
};

}  // namespace harmony::apps
