#include "apps/interactive_app.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::apps {

std::string interactive_bundle_script(const InteractiveConfig& config) {
  // No performance tag: the load-reading default model predicts the
  // response from the server node's speed and resident load, which is
  // exactly what couples co-located batch work to the tardiness term.
  return str_format(
      "harmonyBundle Interactive:%d service {\n"
      "  {serve\n"
      "    {node server {seconds %g} {memory %g}}\n"
      "    {period %g}\n"
      "    {tardiness %g}}\n"
      "}\n",
      config.instance, config.service_ref_s, config.memory_mb,
      config.period_s, config.tardiness_weight);
}

InteractiveApp::InteractiveApp(SimContext ctx, InteractiveConfig config)
    : ctx_(ctx),
      config_(std::move(config)),
      response_metric_(
          str_format("interactive.%d.response_time", config_.instance)),
      tardiness_metric_(
          str_format("interactive.%d.tardiness", config_.instance)) {
  transport_ = std::make_unique<client::InProcTransport>(ctx_.controller);
  client_ = std::make_unique<client::HarmonyClient>(transport_.get());
}

Status InteractiveApp::start() {
  auto status =
      client_->startup(str_format("Interactive-%d", config_.instance));
  if (!status.ok()) return status;
  status = client_->bundle_setup(interactive_bundle_script(config_));
  if (!status.ok()) return status;
  client_->add_variable("service.server.nodes", "");
  status = client_->wait_for_update();
  if (!status.ok()) return status;
  refresh_node();
  if (!have_node_) {
    return Status(ErrorCode::kNoMatch, "no server node assigned");
  }
  request_arrival();
  return Status::Ok();
}

void InteractiveApp::stop() { stop_requested_ = true; }

void InteractiveApp::refresh_node() {
  client_->poll_updates();
  auto hosts = client_->var_list("service.server.nodes");
  if (hosts.empty()) {
    have_node_ = false;
    return;
  }
  auto node = ctx_.node_of(hosts.front());
  if (!node.ok()) {
    have_node_ = false;
    return;
  }
  if (have_node_ && node.value() != server_node_) {
    HLOG_INFO("interactive_app")
        << response_metric_ << " migrated at t=" << ctx_.now();
  }
  server_node_ = node.value();
  have_node_ = true;
}

void InteractiveApp::request_arrival() {
  if (stop_requested_ ||
      (config_.max_requests > 0 &&
       requests_started_ >= config_.max_requests)) {
    if (requests_in_flight_ == 0 && !finished_) {
      finished_ = true;
      if (client_->registered()) {
        auto status = client_->end();
        if (!status.ok()) {
          HLOG_WARN("interactive_app")
              << "harmony_end failed: " << status.to_string();
        }
      }
    }
    return;
  }
  ++requests_started_;
  const double arrival = ctx_.now();
  // Request boundary: pick up any migration Harmony pushed since.
  refresh_node();
  if (have_node_) {
    ++requests_in_flight_;
    ctx_.cpu->submit(server_node_, config_.service_ref_s,
                     [this, arrival] { request_complete(arrival); });
  } else {
    // Unserved request: fully late by construction.
    ++requests_completed_;
    tardiness_total_ += config_.period_s;
    ctx_.metrics->record(tardiness_metric_, ctx_.now(), config_.period_s);
  }
  // Open-loop cadence: the next request arrives on schedule whether or
  // not this one finished.
  ctx_.engine->schedule(config_.period_s, [this] { request_arrival(); });
}

void InteractiveApp::request_complete(double arrival) {
  --requests_in_flight_;
  const double response = ctx_.now() - arrival;
  const double tardiness = std::max(0.0, response - config_.period_s);
  ++requests_completed_;
  tardiness_total_ += tardiness;
  ctx_.metrics->record(response_metric_, ctx_.now(), response);
  ctx_.metrics->record(tardiness_metric_, ctx_.now(), tardiness);
  // The stream may have been stopped while this request was in flight.
  if (stop_requested_ ||
      (config_.max_requests > 0 &&
       requests_started_ >= config_.max_requests)) {
    request_arrival();
  }
}

}  // namespace harmony::apps
