file(REMOVE_RECURSE
  "CMakeFiles/rsl_parser_test.dir/rsl_parser_test.cc.o"
  "CMakeFiles/rsl_parser_test.dir/rsl_parser_test.cc.o.d"
  "rsl_parser_test"
  "rsl_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
