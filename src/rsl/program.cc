#include "rsl/program.h"

#include <atomic>
#include <cctype>
#include <cmath>
#include <memory>

#include "common/strings.h"

namespace harmony::rsl {

namespace {

// Bumped from domain worker threads concurrently once the decision core
// is partitioned; relaxed ordering is fine for a monotonic stats counter.
std::atomic<uint64_t> g_expr_evaluations{0};

// Compile-time value: mirrors the tree-walk evaluator's EValue so the
// constant folder reproduces its semantics (including string truthiness
// and lazy numeric conversion) exactly.
struct CVal {
  bool is_number = true;
  double number = 0.0;
  std::string text;

  static CVal num(double v) { return CVal{true, v, {}}; }
  static CVal str(std::string s) { return CVal{false, 0.0, std::move(s)}; }

  bool truthy() const {
    if (is_number) return number != 0.0;
    return !text.empty() && text != "0" && text != "false" && text != "no";
  }
};

std::string cval_as_string(const CVal& value) {
  return value.is_number ? format_number(value.number) : value.text;
}

Result<double> cval_to_number(const CVal& value) {
  if (value.is_number) return value.number;
  double parsed = 0;
  if (parse_double(value.text, &parsed)) return parsed;
  return Err<double>(ErrorCode::kEvalError,
                     "expected a number, got \"" + value.text + "\"");
}

bool string_truthy(const std::string& text) {
  return !text.empty() && text != "0" && text != "false" && text != "no";
}

}  // namespace

uint64_t expr_evaluations() {
  return g_expr_evaluations.load(std::memory_order_relaxed);
}
void bump_expr_evaluations() {
  g_expr_evaluations.fetch_add(1, std::memory_order_relaxed);
}

// Domain errors carry the `expr "<source>": ` prefix like fail() does.
Result<double> Program::apply_builtin(Func func, const double* args,
                                      size_t argc, const std::string& source) {
  auto fail = [&](const std::string& message) {
    return Err<double>(ErrorCode::kEvalError,
                       "expr \"" + source + "\": " + message);
  };
  switch (func) {
    case Func::kAbs: return std::fabs(args[0]);
    case Func::kSqrt:
      if (args[0] < 0) return fail("sqrt of negative number");
      return std::sqrt(args[0]);
    case Func::kExp: return std::exp(args[0]);
    case Func::kLog:
      if (args[0] <= 0) return fail("log of non-positive number");
      return std::log(args[0]);
    case Func::kLog10:
      if (args[0] <= 0) return fail("log10 of non-positive number");
      return std::log10(args[0]);
    case Func::kFloor: return std::floor(args[0]);
    case Func::kCeil: return std::ceil(args[0]);
    case Func::kRound: return std::round(args[0]);
    case Func::kInt: return std::trunc(args[0]);
    case Func::kPow: return std::pow(args[0], args[1]);
    case Func::kFmod:
      if (args[1] == 0) return fail("fmod by zero");
      return std::fmod(args[0], args[1]);
    case Func::kMin: {
      double acc = args[0];
      for (size_t i = 0; i < argc; ++i) acc = std::min(acc, args[i]);
      return acc;
    }
    case Func::kMax: {
      double acc = args[0];
      for (size_t i = 0; i < argc; ++i) acc = std::max(acc, args[i]);
      return acc;
    }
  }
  return fail("unknown function");  // unreachable
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------
//
// A recursive-descent pass over the same grammar as ExprParser
// (expr.cc), emitting postfix code instead of evaluating. The scanner
// helpers (match, match_word, parse_identifier, ...) are copied
// verbatim so that compilability is exactly "the tree-walk would not
// hit a syntax error": anything this compiler rejects falls back to the
// tree-walk, anything it accepts must evaluate identically.
//
// Each compile_* method appends code for one subexpression and pushes
// exactly one CEntry describing it. finish() completes an operator over
// the top N entries:
//   - all operands constant  -> fold now; a fold error becomes a kFail
//     instruction ("poisoned": execution deterministically errors),
//   - any operand poisoned   -> code after the first poisoned operand
//     can never execute and is truncated; no operator is emitted,
//   - otherwise              -> the operator instruction is emitted.
// Poisoning preserves error ORDER: operands before the first poisoned
// one keep their code, so a runtime error there (unresolvable name)
// still fires first, exactly as the tree-walk's parse-order evaluation
// would report it.
class Compiler {
 public:
  explicit Compiler(std::string_view text) : text_(text) {
    program_.source_ = std::string(text);
  }

  Result<Program> compile() {
    auto status = compile_ternary();
    if (!status.ok()) return Err<Program>(status.error().code,
                                          status.error().message);
    skip_space();
    if (pos_ < text_.size()) {
      return Err<Program>(ErrorCode::kParseError,
                          str_format("unexpected character '%c' at offset %zu",
                                     text_[pos_], pos_));
    }
    HARMONY_ASSERT(cstack_.size() == 1);
    program_.max_stack_ = compute_max_stack();
    return std::move(program_);
  }

 private:
  using Op = Program::Op;
  using Func = Program::Func;
  using Inst = Program::Inst;

  // Compile-time description of the value the code so far leaves on the
  // stack for one subexpression.
  struct CEntry {
    size_t code_start = 0;  // first instruction belonging to this value
    bool is_const = false;  // folded to `value` (no reads, no errors)
    bool poisoned = false;  // evaluation deterministically errors (kFail)
    bool numeric = false;   // statically known to be a number at runtime
    CVal value;
  };

  Status fail(const std::string& message) const {
    return Status(ErrorCode::kParseError,
                  "expr \"" + std::string(text_) + "\": " + message);
  }
  std::string prefixed(const std::string& message) const {
    return "expr \"" + std::string(text_) + "\": " + message;
  }

  // --- scanner: verbatim from ExprParser ------------------------------

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool match(std::string_view token) {
    skip_space();
    if (text_.substr(pos_).size() < token.size()) return false;
    if (text_.substr(pos_, token.size()) != token) return false;
    char next = pos_ + token.size() < text_.size() ? text_[pos_ + token.size()] : '\0';
    if ((token == "<" || token == ">") && next == '=') return false;
    if (token == "*" && next == '*') return false;
    if (token == "=") return false;  // only '==' is valid
    if (token == "!" && next == '=') return false;
    pos_ += token.size();
    return true;
  }

  bool match_word(std::string_view word) {
    skip_space();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t after = pos_ + word.size();
    if (after < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[after])) ||
         text_[after] == '_')) {
      return false;
    }
    pos_ = after;
    return true;
  }

  bool peek_is(char c) {
    skip_space();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  std::string parse_identifier() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '.' || text_[pos_] == ':')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  // --- grammar --------------------------------------------------------

  Status compile_ternary() {
    auto status = compile_or();
    if (!status.ok()) return status;
    skip_space();
    if (!match("?")) return status;
    status = compile_ternary();
    if (!status.ok()) return status;
    skip_space();
    if (!match(":")) return fail("expected ':' in ternary");
    status = compile_ternary();
    if (!status.ok()) return status;
    finish(Inst{Op::kSelect}, 3);
    return Status::Ok();
  }

  Status compile_or() {
    auto status = compile_and();
    if (!status.ok()) return status;
    while (match("||")) {
      status = compile_and();
      if (!status.ok()) return status;
      finish(Inst{Op::kOr}, 2);
    }
    return Status::Ok();
  }

  Status compile_and() {
    auto status = compile_equality();
    if (!status.ok()) return status;
    while (match("&&")) {
      status = compile_equality();
      if (!status.ok()) return status;
      finish(Inst{Op::kAnd}, 2);
    }
    return Status::Ok();
  }

  Status compile_equality() {
    auto status = compile_relational();
    if (!status.ok()) return status;
    while (true) {
      Op op;
      if (match("==") || match_word("eq")) {
        op = Op::kEq;
      } else if (match("!=") || match_word("ne")) {
        op = Op::kNe;
      } else {
        return Status::Ok();
      }
      status = compile_relational();
      if (!status.ok()) return status;
      finish(Inst{op}, 2);
    }
  }

  Status compile_relational() {
    auto status = compile_additive();
    if (!status.ok()) return status;
    while (true) {
      Op op;
      if (match("<=")) op = Op::kLe;
      else if (match(">=")) op = Op::kGe;
      else if (match("<")) op = Op::kLt;
      else if (match(">")) op = Op::kGt;
      else return Status::Ok();
      status = compile_additive();
      if (!status.ok()) return status;
      finish(Inst{op}, 2);
    }
  }

  Status compile_additive() {
    auto status = compile_multiplicative();
    if (!status.ok()) return status;
    while (true) {
      Op op;
      if (match("+")) op = Op::kAdd;
      else if (match("-")) op = Op::kSub;
      else return Status::Ok();
      status = compile_multiplicative();
      if (!status.ok()) return status;
      finish(Inst{op}, 2);
    }
  }

  Status compile_multiplicative() {
    auto status = compile_unary();
    if (!status.ok()) return status;
    while (true) {
      Op op;
      if (match("*")) op = Op::kMul;
      else if (match("/")) op = Op::kDiv;
      else if (match("%")) op = Op::kMod;
      else return Status::Ok();
      status = compile_unary();
      if (!status.ok()) return status;
      finish(Inst{op}, 2);
    }
  }

  Status compile_unary() {
    skip_space();
    if (match("!")) {
      auto status = compile_unary();
      if (!status.ok()) return status;
      finish(Inst{Op::kNot}, 1);
      return Status::Ok();
    }
    if (match("-")) {
      auto status = compile_unary();
      if (!status.ok()) return status;
      finish(Inst{Op::kNeg}, 1);
      return Status::Ok();
    }
    if (match("+")) return compile_unary();  // identity, even for strings
    return compile_power();
  }

  Status compile_power() {
    auto status = compile_primary();
    if (!status.ok()) return status;
    skip_space();
    if (pos_ + 1 < text_.size() && text_[pos_] == '*' &&
        text_[pos_ + 1] == '*') {
      pos_ += 2;
      status = compile_unary();  // right associative
      if (!status.ok()) return status;
      finish(Inst{Op::kPow}, 2);
    }
    return Status::Ok();
  }

  Status compile_primary() {
    skip_space();
    if (pos_ >= text_.size()) return fail("unexpected end of expression");
    char c = text_[pos_];

    if (c == '(') {
      ++pos_;
      auto inner = compile_ternary();
      if (!inner.ok()) return inner;
      skip_space();
      if (!match(")")) return fail("expected ')'");
      return Status::Ok();
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return compile_number();
    }

    if (c == '"' || c == '{') return compile_string(c);

    // [script] substitution depends on a command interpreter that only
    // exists at eval time; such expressions keep the tree-walk path.
    if (c == '[') return fail("script substitution is not compilable");

    if (c == '$') {
      ++pos_;
      std::string name = parse_identifier();
      if (name.empty()) return fail("expected variable name after '$'");
      Inst inst{Op::kLoadVar};
      inst.index = slot(program_.vars_, name);
      push_entry(inst, /*numeric=*/false);
      return Status::Ok();
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name = parse_identifier();
      skip_space();
      if (peek_is('(')) return compile_call(name);
      Inst inst{Op::kLoadName};
      inst.index = slot(program_.names_, name);
      push_entry(inst, /*numeric=*/false);
      return Status::Ok();
    }

    return fail(str_format("unexpected character '%c'", c));
  }

  Status compile_number() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '+' || text_[pos_] == '-') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    double value = 0;
    if (!parse_double(text_.substr(start, pos_ - start), &value)) {
      return fail("malformed number");
    }
    push_const_number(value);
    return Status::Ok();
  }

  Status compile_string(char open) {
    char close = open == '{' ? '}' : '"';
    ++pos_;
    std::string out;
    int depth = 1;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (open == '{') {
        if (c == '{') ++depth;
        if (c == '}' && --depth == 0) break;
      } else if (c == close) {
        break;
      }
      out.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing delimiter
    push_const_string(std::move(out));
    return Status::Ok();
  }

  Status compile_call(const std::string& name) {
    match("(");
    size_t argc = 0;
    skip_space();
    if (!peek_is(')')) {
      while (true) {
        auto status = compile_ternary();
        if (!status.ok()) return status;
        // The tree-walk converts each argument to a number right after
        // parsing it, BEFORE the next argument is parsed/resolved; an
        // explicit conversion per argument preserves that error order.
        finish_tonum();
        ++argc;
        skip_space();
        if (match(",")) continue;
        break;
      }
    }
    if (!match(")")) return fail("expected ')' after function arguments");
    if (argc > UINT16_MAX) return fail("too many function arguments");

    Func func;
    if (!lookup_builtin(name, argc, &func)) {
      // Arguments still evaluate (and may error) first, then the call
      // itself fails — the tree-walk's apply_function order.
      finish_fail(argc, ErrorCode::kEvalError,
                  prefixed("unknown function: " + name + "()"));
      return Status::Ok();
    }
    Inst inst{Op::kCall};
    inst.func = func;
    inst.argc = static_cast<uint16_t>(argc);
    finish(inst, argc);
    return Status::Ok();
  }

  static bool lookup_builtin(const std::string& name, size_t argc,
                             Func* out) {
    if (name == "abs" && argc == 1) { *out = Func::kAbs; return true; }
    if (name == "sqrt" && argc == 1) { *out = Func::kSqrt; return true; }
    if (name == "exp" && argc == 1) { *out = Func::kExp; return true; }
    if (name == "log" && argc == 1) { *out = Func::kLog; return true; }
    if (name == "log10" && argc == 1) { *out = Func::kLog10; return true; }
    if (name == "floor" && argc == 1) { *out = Func::kFloor; return true; }
    if (name == "ceil" && argc == 1) { *out = Func::kCeil; return true; }
    if (name == "round" && argc == 1) { *out = Func::kRound; return true; }
    if (name == "int" && argc == 1) { *out = Func::kInt; return true; }
    if (name == "pow" && argc == 2) { *out = Func::kPow; return true; }
    if (name == "fmod" && argc == 2) { *out = Func::kFmod; return true; }
    if (name == "min" && argc >= 1) { *out = Func::kMin; return true; }
    if (name == "max" && argc >= 1) { *out = Func::kMax; return true; }
    return false;
  }

  // --- emission + folding ---------------------------------------------

  void push_const_number(double value) {
    Inst inst{Op::kPushNum};
    inst.number = value;
    CEntry entry;
    entry.code_start = program_.ops_.size();
    entry.is_const = true;
    entry.numeric = true;
    entry.value = CVal::num(value);
    program_.ops_.push_back(inst);
    cstack_.push_back(std::move(entry));
  }

  void push_const_string(std::string text) {
    Inst inst{Op::kPushStr};
    inst.index = intern(text);
    CEntry entry;
    entry.code_start = program_.ops_.size();
    entry.is_const = true;
    entry.numeric = false;
    entry.value = CVal::str(std::move(text));
    program_.ops_.push_back(inst);
    cstack_.push_back(std::move(entry));
  }

  void push_entry(const Inst& inst, bool numeric) {
    CEntry entry;
    entry.code_start = program_.ops_.size();
    entry.numeric = numeric;
    program_.ops_.push_back(inst);
    cstack_.push_back(std::move(entry));
  }

  uint32_t intern(const std::string& text) {
    for (size_t i = 0; i < program_.strings_.size(); ++i) {
      if (program_.strings_[i].text == text) return static_cast<uint32_t>(i);
    }
    Program::StrLit lit;
    lit.text = text;
    lit.numeric = parse_double(text, &lit.number);
    lit.truthy = string_truthy(text);
    program_.strings_.push_back(std::move(lit));
    return static_cast<uint32_t>(program_.strings_.size() - 1);
  }

  static uint32_t slot(std::vector<std::string>& list,
                       const std::string& name) {
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i] == name) return static_cast<uint32_t>(i);
    }
    list.push_back(name);
    return static_cast<uint32_t>(list.size() - 1);
  }

  // Replaces the top `count` entries with a poisoned entry whose code
  // ends at the first already-poisoned operand (nothing after it can
  // execute).
  void poison_propagate(size_t count) {
    size_t base = cstack_.size() - count;
    size_t first = base;
    while (!cstack_[first].poisoned) ++first;
    size_t code_end = first + 1 < cstack_.size()
                          ? cstack_[first + 1].code_start
                          : program_.ops_.size();
    program_.ops_.resize(code_end);
    CEntry entry;
    entry.code_start = cstack_[base].code_start;
    entry.poisoned = true;
    cstack_.resize(base);
    cstack_.push_back(std::move(entry));
  }

  // Replaces the top entry with a folded constant (or a poisoned kFail
  // when folding errored), discarding the entry's code.
  void replace_with_fold(size_t base, Result<CVal> folded) {
    size_t code_start = cstack_[base].code_start;
    program_.ops_.resize(code_start);
    cstack_.resize(base);
    if (folded.ok()) {
      if (folded.value().is_number) {
        push_const_number(folded.value().number);
      } else {
        push_const_string(std::move(folded).value().text);
      }
    } else {
      Inst inst{Op::kFail};
      inst.index = fail_slot(folded.error().code, folded.error().message);
      CEntry entry;
      entry.code_start = code_start;
      entry.poisoned = true;
      program_.ops_.push_back(inst);
      cstack_.push_back(std::move(entry));
    }
  }

  uint32_t fail_slot(ErrorCode code, std::string message) {
    program_.fails_.push_back({code, std::move(message)});
    return static_cast<uint32_t>(program_.fails_.size() - 1);
  }

  // Completes an operator over the top `count` operand entries.
  void finish(const Inst& inst, size_t count) {
    size_t base = cstack_.size() - count;
    bool any_poisoned = false;
    bool all_const = true;
    for (size_t i = base; i < cstack_.size(); ++i) {
      any_poisoned = any_poisoned || cstack_[i].poisoned;
      all_const = all_const && cstack_[i].is_const;
    }
    if (any_poisoned) {
      poison_propagate(count);
      return;
    }
    if (all_const) {
      replace_with_fold(base, fold_apply(inst, &cstack_[base], count));
      return;
    }
    bool numeric = inst.op != Op::kSelect
                       ? true
                       : (cstack_[base + 1].numeric && cstack_[base + 2].numeric);
    CEntry entry;
    entry.code_start = cstack_[base].code_start;
    entry.numeric = numeric;
    program_.ops_.push_back(inst);
    cstack_.resize(base);
    cstack_.push_back(std::move(entry));
  }

  // Emits arg code followed by an unconditional failure (unknown
  // function / bad arity, detected at compile time).
  void finish_fail(size_t count, ErrorCode code, std::string message) {
    size_t base = cstack_.size() - count;
    if (count > 0) {
      for (size_t i = base; i < cstack_.size(); ++i) {
        if (cstack_[i].poisoned) {
          poison_propagate(count);
          return;
        }
      }
    }
    size_t code_start = count > 0 ? cstack_[base].code_start
                                  : program_.ops_.size();
    Inst inst{Op::kFail};
    inst.index = fail_slot(code, std::move(message));
    CEntry entry;
    entry.code_start = code_start;
    entry.poisoned = true;
    program_.ops_.push_back(inst);
    cstack_.resize(base);
    cstack_.push_back(std::move(entry));
  }

  // Conversion of a function argument to a number (tree-walk does this
  // per argument at parse time).
  void finish_tonum() {
    CEntry& entry = cstack_.back();
    if (entry.poisoned) return;
    if (entry.is_const) {
      if (entry.value.is_number) return;
      auto converted = cval_to_number(entry.value);
      size_t base = cstack_.size() - 1;
      if (converted.ok()) {
        replace_with_fold(base, CVal::num(converted.value()));
      } else {
        replace_with_fold(
            base, Err<CVal>(converted.error().code, converted.error().message));
      }
      return;
    }
    if (entry.numeric) return;  // statically a number; no-op
    program_.ops_.push_back(Inst{Op::kToNum});
    entry.numeric = true;
  }

  Result<CVal> fold_apply(const Inst& inst, const CEntry* operands,
                          size_t count) {
    auto fail = [&](const std::string& message) {
      return Err<CVal>(ErrorCode::kEvalError, prefixed(message));
    };
    auto tonum2 = [&](double* a, double* b) -> Status {
      auto x = cval_to_number(operands[0].value);
      if (!x.ok()) return Status(x.error().code, x.error().message);
      auto y = cval_to_number(operands[1].value);
      if (!y.ok()) return Status(y.error().code, y.error().message);
      *a = x.value();
      *b = y.value();
      return Status::Ok();
    };
    switch (inst.op) {
      case Op::kAdd: case Op::kSub: case Op::kMul:
      case Op::kDiv: case Op::kMod: case Op::kPow:
      case Op::kLe: case Op::kGe: case Op::kLt: case Op::kGt: {
        double a = 0, b = 0;
        auto status = tonum2(&a, &b);
        if (!status.ok()) {
          return Err<CVal>(status.error().code, status.error().message);
        }
        switch (inst.op) {
          case Op::kAdd: return CVal::num(a + b);
          case Op::kSub: return CVal::num(a - b);
          case Op::kMul: return CVal::num(a * b);
          case Op::kDiv:
            if (b == 0.0) return fail("division by zero");
            return CVal::num(a / b);
          case Op::kMod:
            if (b == 0.0) return fail("division by zero");
            return CVal::num(std::fmod(a, b));
          case Op::kPow: return CVal::num(std::pow(a, b));
          case Op::kLe: return CVal::num(a <= b ? 1 : 0);
          case Op::kGe: return CVal::num(a >= b ? 1 : 0);
          case Op::kLt: return CVal::num(a < b ? 1 : 0);
          default: return CVal::num(a > b ? 1 : 0);
        }
      }
      case Op::kNeg: {
        auto x = cval_to_number(operands[0].value);
        if (!x.ok()) return Err<CVal>(x.error().code, x.error().message);
        return CVal::num(-x.value());
      }
      case Op::kNot:
        return CVal::num(operands[0].value.truthy() ? 0 : 1);
      case Op::kAnd:
        return CVal::num(
            (operands[0].value.truthy() && operands[1].value.truthy()) ? 1 : 0);
      case Op::kOr:
        return CVal::num(
            (operands[0].value.truthy() || operands[1].value.truthy()) ? 1 : 0);
      case Op::kEq: case Op::kNe: {
        const CVal& a = operands[0].value;
        const CVal& b = operands[1].value;
        bool equal;
        if (a.is_number && b.is_number) {
          equal = a.number == b.number;
        } else {
          equal = cval_as_string(a) == cval_as_string(b);
        }
        return CVal::num((equal == (inst.op == Op::kEq)) ? 1 : 0);
      }
      case Op::kSelect:
        return operands[0].value.truthy() ? operands[1].value
                                          : operands[2].value;
      case Op::kCall: {
        double args_buf[8];
        std::unique_ptr<double[]> heap;
        double* args = args_buf;
        if (count > 8) {
          heap.reset(new double[count]);
          args = heap.get();
        }
        for (size_t i = 0; i < count; ++i) {
          // finish_tonum already folded each argument to a number.
          HARMONY_ASSERT(operands[i].value.is_number);
          args[i] = operands[i].value.number;
        }
        auto result =
            Program::apply_builtin(inst.func, args, count, program_.source_);
        if (!result.ok()) {
          return Err<CVal>(result.error().code, result.error().message);
        }
        return CVal::num(result.value());
      }
      default:
        HARMONY_ASSERT(false);
        return CVal::num(0);
    }
  }

  uint32_t compute_max_stack() const {
    size_t depth = 0, max_depth = 0;
    for (const Inst& inst : program_.ops_) {
      switch (inst.op) {
        case Op::kPushNum: case Op::kPushStr:
        case Op::kLoadName: case Op::kLoadVar:
        case Op::kFail:  // never actually pushes; keeps the bound safe
          ++depth;
          break;
        case Op::kNeg: case Op::kNot: case Op::kToNum:
          break;
        case Op::kSelect:
          depth -= 2;
          break;
        case Op::kCall:
          depth -= inst.argc - 1;
          break;
        default:  // binary operators
          --depth;
          break;
      }
      max_depth = std::max(max_depth, depth);
    }
    return static_cast<uint32_t>(max_depth);
  }

  std::string_view text_;
  size_t pos_ = 0;
  Program program_;
  std::vector<CEntry> cstack_;
};

Result<Program> Program::compile(std::string_view text) {
  return Compiler(text).compile();
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

std::optional<double> Program::constant() const {
  if (ops_.size() == 1 && ops_[0].op == Op::kPushNum) {
    return ops_[0].number;
  }
  return std::nullopt;
}

const std::string& Program::str_text(
    int32_t idx, const std::vector<std::string>& scratch) const {
  size_t i = static_cast<size_t>(idx);
  if (i < strings_.size()) return strings_[i].text;
  return scratch[i - strings_.size()];
}

Result<double> Program::to_number(
    const Val& value, const std::vector<std::string>& scratch) const {
  if (value.str < 0) return value.num;
  size_t i = static_cast<size_t>(value.str);
  if (i < strings_.size()) {
    if (strings_[i].numeric) return strings_[i].number;
    return Err<double>(ErrorCode::kEvalError,
                       "expected a number, got \"" + strings_[i].text + "\"");
  }
  // Scratch strings exist precisely because parse_double failed on them
  // at load time.
  return Err<double>(
      ErrorCode::kEvalError,
      "expected a number, got \"" + scratch[i - strings_.size()] + "\"");
}

bool Program::truthy(const Val& value,
                     const std::vector<std::string>& scratch) const {
  if (value.str < 0) return value.num != 0.0;
  size_t i = static_cast<size_t>(value.str);
  if (i < strings_.size()) return strings_[i].truthy;
  return string_truthy(scratch[i - strings_.size()]);
}

Result<Program::Val> Program::run(const ExprContext& ctx,
                                  std::vector<std::string>& scratch) const {
  constexpr size_t kInlineStack = 16;
  Val inline_stack[kInlineStack];
  std::unique_ptr<Val[]> heap_stack;
  Val* stack = inline_stack;
  if (max_stack_ > kInlineStack) {
    heap_stack.reset(new Val[max_stack_]);
    stack = heap_stack.get();
  }
  size_t sp = 0;

  auto fail = [this](const std::string& message) {
    return Err<Val>(ErrorCode::kEvalError,
                    "expr \"" + source_ + "\": " + message);
  };
  auto raw_err = [](const Error& error) {
    return Err<Val>(error.code, error.message);
  };

  // Reused across $var / name loads; values short enough for SSO keep
  // the numeric path allocation-free.
  std::string var_buf;

  for (const Inst& inst : ops_) {
    switch (inst.op) {
      case Op::kPushNum:
        stack[sp++] = Val{inst.number, -1};
        break;
      case Op::kPushStr:
        stack[sp++] = Val{0, static_cast<int32_t>(inst.index)};
        break;
      case Op::kLoadName: {
        const std::string& name = names_[inst.index];
        if (ctx.name_lookup) {
          double value = 0;
          if (ctx.name_lookup(name, &value)) {
            stack[sp++] = Val{value, -1};
            break;
          }
        }
        if (ctx.var_lookup) {
          var_buf.clear();
          if (ctx.var_lookup(name, &var_buf)) {
            double number = 0;
            if (parse_double(var_buf, &number)) {
              stack[sp++] = Val{number, -1};
            } else {
              scratch.push_back(std::move(var_buf));
              var_buf.clear();
              stack[sp++] = Val{0, static_cast<int32_t>(strings_.size() +
                                                        scratch.size() - 1)};
            }
            break;
          }
        }
        return fail("cannot resolve identifier: " + name);
      }
      case Op::kLoadVar: {
        const std::string& name = vars_[inst.index];
        if (!ctx.var_lookup) return fail("no variable context for $" + name);
        var_buf.clear();
        if (!ctx.var_lookup(name, &var_buf)) {
          return fail("no such variable: " + name);
        }
        double number = 0;
        if (parse_double(var_buf, &number)) {
          stack[sp++] = Val{number, -1};
        } else {
          scratch.push_back(std::move(var_buf));
          var_buf.clear();
          stack[sp++] = Val{0, static_cast<int32_t>(strings_.size() +
                                                    scratch.size() - 1)};
        }
        break;
      }
      case Op::kAdd: case Op::kSub: case Op::kMul:
      case Op::kDiv: case Op::kMod: case Op::kPow:
      case Op::kLe: case Op::kGe: case Op::kLt: case Op::kGt: {
        // Left operand converts first: its "expected a number" error
        // wins, as in the tree-walk.
        auto a = to_number(stack[sp - 2], scratch);
        if (!a.ok()) return raw_err(a.error());
        auto b = to_number(stack[sp - 1], scratch);
        if (!b.ok()) return raw_err(b.error());
        double x = a.value(), y = b.value(), r = 0;
        switch (inst.op) {
          case Op::kAdd: r = x + y; break;
          case Op::kSub: r = x - y; break;
          case Op::kMul: r = x * y; break;
          case Op::kDiv:
            if (y == 0.0) return fail("division by zero");
            r = x / y;
            break;
          case Op::kMod:
            if (y == 0.0) return fail("division by zero");
            r = std::fmod(x, y);
            break;
          case Op::kPow: r = std::pow(x, y); break;
          case Op::kLe: r = x <= y ? 1 : 0; break;
          case Op::kGe: r = x >= y ? 1 : 0; break;
          case Op::kLt: r = x < y ? 1 : 0; break;
          default: r = x > y ? 1 : 0; break;
        }
        --sp;
        stack[sp - 1] = Val{r, -1};
        break;
      }
      case Op::kNeg: {
        auto a = to_number(stack[sp - 1], scratch);
        if (!a.ok()) return raw_err(a.error());
        stack[sp - 1] = Val{-a.value(), -1};
        break;
      }
      case Op::kNot:
        stack[sp - 1] = Val{truthy(stack[sp - 1], scratch) ? 0.0 : 1.0, -1};
        break;
      case Op::kAnd: case Op::kOr: {
        bool a = truthy(stack[sp - 2], scratch);
        bool b = truthy(stack[sp - 1], scratch);
        bool r = inst.op == Op::kAnd ? (a && b) : (a || b);
        --sp;
        stack[sp - 1] = Val{r ? 1.0 : 0.0, -1};
        break;
      }
      case Op::kEq: case Op::kNe: {
        const Val& a = stack[sp - 2];
        const Val& b = stack[sp - 1];
        bool equal;
        if (a.str < 0 && b.str < 0) {
          equal = a.num == b.num;
        } else if (a.str >= 0 && b.str >= 0) {
          equal = str_text(a.str, scratch) == str_text(b.str, scratch);
        } else if (a.str < 0) {
          equal = format_number(a.num) == str_text(b.str, scratch);
        } else {
          equal = str_text(a.str, scratch) == format_number(b.num);
        }
        --sp;
        stack[sp - 1] =
            Val{(equal == (inst.op == Op::kEq)) ? 1.0 : 0.0, -1};
        break;
      }
      case Op::kSelect: {
        bool cond = truthy(stack[sp - 3], scratch);
        stack[sp - 3] = cond ? stack[sp - 2] : stack[sp - 1];
        sp -= 2;
        break;
      }
      case Op::kToNum: {
        auto a = to_number(stack[sp - 1], scratch);
        if (!a.ok()) return raw_err(a.error());
        stack[sp - 1] = Val{a.value(), -1};
        break;
      }
      case Op::kCall: {
        size_t argc = inst.argc;
        double args_buf[8];
        std::unique_ptr<double[]> heap_args;
        double* args = args_buf;
        if (argc > 8) {
          heap_args.reset(new double[argc]);
          args = heap_args.get();
        }
        for (size_t i = 0; i < argc; ++i) {
          // kToNum (or folding) guaranteed numbers on the stack.
          args[i] = stack[sp - argc + i].num;
        }
        auto result = apply_builtin(inst.func, args, argc, source_);
        if (!result.ok()) return raw_err(result.error());
        sp -= argc - 1;
        stack[sp - 1] = Val{result.value(), -1};
        break;
      }
      case Op::kFail: {
        const Failure& failure = fails_[inst.index];
        return Err<Val>(failure.code, failure.message);
      }
    }
  }
  HARMONY_ASSERT(sp == 1);
  return stack[0];
}

Result<double> Program::eval_number(const ExprContext& ctx) const {
  std::vector<std::string> scratch;
  auto value = run(ctx, scratch);
  if (!value.ok()) {
    return Err<double>(value.error().code, value.error().message);
  }
  if (value.value().str < 0) return value.value().num;
  const std::string& text = str_text(value.value().str, scratch);
  double parsed = 0;
  if (parse_double(text, &parsed)) return parsed;
  return Err<double>(ErrorCode::kEvalError,
                     "expression result is not a number: \"" + text + "\"");
}

Result<std::string> Program::eval(const ExprContext& ctx) const {
  std::vector<std::string> scratch;
  auto value = run(ctx, scratch);
  if (!value.ok()) {
    return Err<std::string>(value.error().code, value.error().message);
  }
  if (value.value().str < 0) return format_number(value.value().num);
  return str_text(value.value().str, scratch);
}

}  // namespace harmony::rsl
