file(REMOVE_RECURSE
  "CMakeFiles/harmony_db.dir/bufferpool.cc.o"
  "CMakeFiles/harmony_db.dir/bufferpool.cc.o.d"
  "CMakeFiles/harmony_db.dir/cache.cc.o"
  "CMakeFiles/harmony_db.dir/cache.cc.o.d"
  "CMakeFiles/harmony_db.dir/engine.cc.o"
  "CMakeFiles/harmony_db.dir/engine.cc.o.d"
  "CMakeFiles/harmony_db.dir/executor.cc.o"
  "CMakeFiles/harmony_db.dir/executor.cc.o.d"
  "CMakeFiles/harmony_db.dir/table.cc.o"
  "CMakeFiles/harmony_db.dir/table.cc.o.d"
  "CMakeFiles/harmony_db.dir/wisconsin.cc.o"
  "CMakeFiles/harmony_db.dir/wisconsin.cc.o.d"
  "libharmony_db.a"
  "libharmony_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
