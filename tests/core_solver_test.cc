// Anytime-solver contract tests: bit-identity with pure greedy at
// budget_ms = 0 (the default), strict improvement on the wedged
// packing-stress swarm, no-op behaviour when greedy is already
// optimal, grant-level selection, and rollback of infeasible forced
// choices. The wall-clock budget is made irrelevant by pairing a huge
// budget with a small max_rounds, so every assertion is deterministic.
#include "core/solver.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/controller.h"
#include "core/optimizer.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::SwarmConfig;
using harmony::testing::fingerprint;
using harmony::testing::swarm_app_scripts;
using harmony::testing::swarm_cluster_script;

std::vector<InstanceId> register_swarm(Controller& controller,
                                       const SwarmConfig& swarm) {
  std::vector<InstanceId> ids;
  for (const auto& script : swarm_app_scripts(swarm)) {
    auto id = controller.register_script(script);
    EXPECT_TRUE(id.ok()) << (id.ok() ? "" : id.error().message);
    if (id.ok()) ids.push_back(id.value());
  }
  return ids;
}

ControllerConfig swarm_config() {
  ControllerConfig config;
  config.optimizer.memory_grant_levels = {1.0, 2.0, 3.0};
  return config;
}

// A solver config whose wall-clock budget can never expire mid-test;
// max_rounds bounds the search instead, keeping runs deterministic.
SolverConfig deterministic_solver(int max_rounds) {
  SolverConfig solver;
  solver.budget_ms = 60000;
  solver.max_rounds = max_rounds;
  solver.seed = 42;
  return solver;
}

TEST(Solver, BudgetZeroIsBitIdenticalToGreedy) {
  for (uint64_t seed : {1ull, 7ull, 1234ull}) {
    SwarmConfig swarm;
    swarm.groups = 2;
    swarm.clients_per_group = 3;
    swarm.apps_per_group = 8;
    swarm.seed = seed;

    ControllerConfig greedy_config = swarm_config();

    // Every solver knob set except the budget: enabled() must hinge on
    // budget_ms alone, and budget 0 must leave the greedy path
    // untouched.
    ControllerConfig solver_config = swarm_config();
    solver_config.optimizer.solver.budget_ms = 0;
    solver_config.optimizer.solver.max_rounds = 16;
    solver_config.optimizer.solver.swap_pairs_per_round = 8;
    solver_config.optimizer.solver.seed = seed;

    Controller greedy(greedy_config);
    Controller solver(solver_config);
    for (Controller* controller : {&greedy, &solver}) {
      ASSERT_TRUE(
          controller->add_nodes_script(swarm_cluster_script(swarm)).ok());
      ASSERT_TRUE(controller->finalize_cluster().ok());
      register_swarm(*controller, swarm);
      ASSERT_TRUE(controller->report_external_load("g0000-c01", 3).ok());
      ASSERT_TRUE(controller->reevaluate().ok());
      ASSERT_TRUE(controller->report_external_load("g0000-c01", 0).ok());
      ASSERT_TRUE(controller->reevaluate().ok());
    }
    EXPECT_EQ(fingerprint(greedy), fingerprint(solver))
        << "budget_ms = 0 must be bit-identical to greedy (seed " << seed
        << ")";
    // budget 0 means no solver at all, not a zero-round solver.
    EXPECT_EQ(solver.solver_stats(), nullptr);
  }
}

TEST(Solver, ImprovesWedgedPackingStress) {
  SwarmConfig swarm;
  swarm.groups = 1;
  swarm.clients_per_group = 2;
  swarm.apps_per_group = 10;
  swarm.packing_stress = true;

  Controller controller(swarm_config());
  ASSERT_TRUE(controller.add_nodes_script(swarm_cluster_script(swarm)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  register_swarm(controller, swarm);

  // Greedy arrival wedges each client at grants {51, 51, 51, 17} plus
  // a lean fallback, and greedy re-evaluation cannot unwedge it: the
  // per-bundle argmin never reduces an already-placed grant.
  auto greedy_objective = controller.objective_value();
  ASSERT_TRUE(greedy_objective.ok());
  ASSERT_TRUE(controller.reevaluate().ok());
  auto after_greedy = controller.objective_value();
  ASSERT_TRUE(after_greedy.ok());
  EXPECT_NEAR(after_greedy.value(), greedy_objective.value(), 1e-9);

  OptimizerConfig config = controller.optimizer().config();
  config.solver = deterministic_solver(4);
  controller.optimizer().set_config(config);
  ASSERT_TRUE(controller.reevaluate().ok());

  auto solved = controller.objective_value();
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(solved.value(), greedy_objective.value() - 1e-6)
      << "solver must strictly beat greedy on the packing-stress swarm";

  const SolverStats* stats = controller.solver_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->passes, 1u);
  EXPECT_GE(stats->improved_passes, 1u);
  EXPECT_GE(stats->moves_accepted, 1u);
  EXPECT_GT(stats->total_improvement, 0.0);

  // The committed plan is stable: another pass must never give the
  // improvement back.
  ASSERT_TRUE(controller.reevaluate().ok());
  auto again = controller.objective_value();
  ASSERT_TRUE(again.ok());
  EXPECT_LE(again.value(), solved.value() + 1e-9);
}

TEST(Solver, NoopWhenGreedyAlreadyOptimal) {
  SwarmConfig swarm;
  swarm.groups = 1;
  swarm.clients_per_group = 3;
  swarm.apps_per_group = 6;
  swarm.seed = 9;  // generous memory: greedy takes the top grant everywhere

  Controller controller(swarm_config());
  ASSERT_TRUE(controller.add_nodes_script(swarm_cluster_script(swarm)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  register_swarm(controller, swarm);

  auto greedy_objective = controller.objective_value();
  ASSERT_TRUE(greedy_objective.ok());
  uint64_t reconfigurations = controller.reconfigurations();

  OptimizerConfig config = controller.optimizer().config();
  config.solver = deterministic_solver(3);
  controller.optimizer().set_config(config);
  ASSERT_TRUE(controller.reevaluate().ok());

  // Only strictly improving moves are ever committed, so an optimal
  // plan must pass through the solver unchanged.
  auto solved = controller.objective_value();
  ASSERT_TRUE(solved.ok());
  EXPECT_NEAR(solved.value(), greedy_objective.value(), 1e-9);
  EXPECT_EQ(controller.reconfigurations(), reconfigurations);
  const SolverStats* stats = controller.solver_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->moves_accepted, 0u);
}

TEST(Solver, GreedyPicksHighestFeasibleGrantPerLevel) {
  SwarmConfig swarm;
  swarm.groups = 1;
  swarm.clients_per_group = 1;
  swarm.apps_per_group = 5;
  swarm.packing_stress = true;  // one 170 MB client node

  Controller controller(swarm_config());
  ASSERT_TRUE(controller.add_nodes_script(swarm_cluster_script(swarm)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  std::vector<InstanceId> ids = register_swarm(controller, swarm);
  ASSERT_EQ(ids.size(), 5u);

  // 170 MB of client memory takes three full grants (3 x 51), one
  // minimum grant (17), and the fifth app degrades to the grant-free
  // lean option.
  for (int i = 0; i < 3; ++i) {
    const BundleState* bundle = controller.bundle_state(ids[i], "cache");
    ASSERT_NE(bundle, nullptr);
    ASSERT_TRUE(bundle->configured);
    EXPECT_EQ(bundle->choice.option, "rich");
    EXPECT_DOUBLE_EQ(bundle->choice.memory_grant, 3.0);
  }
  const BundleState* fourth = controller.bundle_state(ids[3], "cache");
  ASSERT_NE(fourth, nullptr);
  EXPECT_EQ(fourth->choice.option, "rich");
  EXPECT_DOUBLE_EQ(fourth->choice.memory_grant, 1.0);
  const BundleState* fifth = controller.bundle_state(ids[4], "cache");
  ASSERT_NE(fifth, nullptr);
  EXPECT_EQ(fifth->choice.option, "lean");
}

TEST(Solver, InfeasibleForcedChoiceRollsBack) {
  SwarmConfig swarm;
  swarm.groups = 1;
  swarm.clients_per_group = 1;
  swarm.apps_per_group = 2;
  swarm.packing_stress = true;

  Controller controller(swarm_config());
  ASSERT_TRUE(controller.add_nodes_script(swarm_cluster_script(swarm)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  std::vector<InstanceId> ids = register_swarm(controller, swarm);
  ASSERT_EQ(ids.size(), 2u);

  std::string before = fingerprint(controller);

  // A grant far beyond node memory: apply_choice must fail cleanly and
  // restore the previous configuration, allocations included.
  OptionChoice choice;
  choice.option = "rich";
  choice.memory_grant = 1000.0;
  auto status = controller.set_option(ids[0], "cache", choice);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(fingerprint(controller), before)
      << "failed forced choice must leave no trace in live state";

  // Unknown option: same contract.
  choice.option = "plaid";
  choice.memory_grant = 1.0;
  status = controller.set_option(ids[0], "cache", choice);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(fingerprint(controller), before);
}

// A short-budget pass samples only a few swap pairs; the anytime
// contract is that *successive* passes keep exploring fresh
// neighborhoods instead of deterministically resampling the same
// (possibly improvement-free) pairs forever. Modeled deterministically:
// max_rounds = 1 with a trimmed pair sample per pass, a seed whose
// first-pass sample finds nothing, and repeated passes that must still
// converge to the unwedged packing optimum.
TEST(Solver, PassesExploreFreshNeighborhoods) {
  SwarmConfig swarm;
  swarm.groups = 1;
  swarm.clients_per_group = 8;
  swarm.apps_per_group = 40;
  swarm.packing_stress = true;

  ControllerConfig config = swarm_config();
  config.optimizer.reevaluate_on_arrival = false;  // place-only arrivals
  Controller controller(config);
  ASSERT_TRUE(controller.add_nodes_script(swarm_cluster_script(swarm)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  std::vector<InstanceId> ids = register_swarm(controller, swarm);

  auto grant_count = [&](double grant) {
    int count = 0;
    for (InstanceId id : ids) {
      const BundleState* bundle = controller.bundle_state(id, "cache");
      if (bundle != nullptr && bundle->configured &&
          bundle->choice.option == "rich" &&
          bundle->choice.memory_grant == grant) {
        ++count;
      }
    }
    return count;
  };
  // Greedy wedges every client node at {51, 51, 51, 17}.
  EXPECT_EQ(grant_count(3.0), 24);
  EXPECT_EQ(grant_count(1.0), 8);
  auto greedy_objective = controller.objective_value();
  ASSERT_TRUE(greedy_objective.ok());

  OptimizerConfig oconfig = controller.optimizer().config();
  oconfig.solver = deterministic_solver(/*max_rounds=*/1);
  oconfig.solver.swap_pairs_per_round = 16;
  oconfig.solver.seed = 0x5eed5eedULL;  // first-pass sample: no hit
  controller.optimizer().set_config(oconfig);

  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(controller.reevaluate().ok());
  }
  // Each accepted swap turns a wedged (3, 1) pair into (2, 2): nodes
  // stay exactly full and the convex transfer curve nets ~9.6 s per
  // pair. One 16-pair sample rarely contains any of the 8 wedged
  // pairs — with the pre-fix per-pass reseed this seed finds ZERO
  // moves forever — so the bar is steady accumulation, not full
  // convergence: at least half the pairs fixed within 20 passes.
  EXPECT_GE(grant_count(2.0), 8);
  auto solved = controller.objective_value();
  ASSERT_TRUE(solved.ok());
  EXPECT_LT(solved.value(), greedy_objective.value() - 1e-6);
  const SolverStats* stats = controller.solver_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GE(stats->moves_accepted, 4u);
}

}  // namespace
}  // namespace harmony::core
