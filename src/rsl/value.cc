#include "rsl/value.h"

#include <cctype>

namespace harmony::rsl {

namespace {

bool is_space(char c) { return std::isspace(static_cast<unsigned char>(c)); }

// Appends the character a backslash escape denotes. Returns the number
// of input characters consumed after the backslash.
size_t apply_escape(std::string_view text, size_t i, std::string* out) {
  if (i >= text.size()) {
    out->push_back('\\');
    return 0;
  }
  switch (text[i]) {
    case 'n': out->push_back('\n'); return 1;
    case 't': out->push_back('\t'); return 1;
    case 'r': out->push_back('\r'); return 1;
    case '\n': out->push_back(' '); return 1;  // line continuation
    default: out->push_back(text[i]); return 1;
  }
}

}  // namespace

Result<std::vector<std::string>> list_parse(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = text.size();
  while (true) {
    while (i < n && is_space(text[i])) ++i;
    if (i >= n) return out;

    std::string element;
    if (text[i] == '{') {
      int depth = 1;
      ++i;
      size_t start = i;
      while (i < n && depth > 0) {
        if (text[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        if (text[i] == '{') ++depth;
        if (text[i] == '}') --depth;
        ++i;
      }
      if (depth != 0) {
        return Err<std::vector<std::string>>(ErrorCode::kParseError,
                                             "unbalanced braces in list");
      }
      element.assign(text.substr(start, i - 1 - start));
      if (i < n && !is_space(text[i])) {
        return Err<std::vector<std::string>>(
            ErrorCode::kParseError, "junk after closing brace in list");
      }
    } else if (text[i] == '"') {
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\') {
          ++i;
          i += apply_escape(text, i, &element);
        } else {
          element.push_back(text[i]);
          ++i;
        }
      }
      if (i >= n) {
        return Err<std::vector<std::string>>(ErrorCode::kParseError,
                                             "unterminated quote in list");
      }
      ++i;  // closing quote
      if (i < n && !is_space(text[i])) {
        return Err<std::vector<std::string>>(
            ErrorCode::kParseError, "junk after closing quote in list");
      }
    } else {
      while (i < n && !is_space(text[i])) {
        if (text[i] == '\\') {
          ++i;
          i += apply_escape(text, i, &element);
        } else {
          element.push_back(text[i]);
          ++i;
        }
      }
    }
    out.push_back(std::move(element));
  }
}

bool braces_balanced(std::string_view text) {
  int depth = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\') {
      ++i;
      continue;
    }
    if (text[i] == '{') ++depth;
    if (text[i] == '}') {
      --depth;
      if (depth < 0) return false;
    }
  }
  return depth == 0;
}

std::string element_quote(std::string_view element) {
  if (element.empty()) return "{}";
  bool needs_quoting = false;
  for (char c : element) {
    if (is_space(c) || c == '{' || c == '}' || c == '"' || c == '\\' ||
        c == '[' || c == ']' || c == '$' || c == ';') {
      needs_quoting = true;
      break;
    }
  }
  if (!needs_quoting) return std::string(element);
  // A trailing run of an odd number of backslashes would escape the
  // closing brace; such elements must use backslash quoting instead.
  size_t trailing_backslashes = 0;
  for (auto it = element.rbegin(); it != element.rend() && *it == '\\'; ++it) {
    ++trailing_backslashes;
  }
  if (trailing_backslashes % 2 == 0 && braces_balanced(element)) {
    std::string out = "{";
    out.append(element);
    out.push_back('}');
    return out;
  }
  // Fall back to backslash escaping.
  std::string out;
  for (char c : element) {
    if (is_space(c) || c == '{' || c == '}' || c == '"' || c == '\\' ||
        c == '[' || c == ']' || c == '$' || c == ';') {
      out.push_back('\\');
    }
    if (c == '\n') {
      out.pop_back();
      out.append("\\n");
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string list_build(const std::vector<std::string>& elements) {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out.push_back(' ');
    out.append(element_quote(elements[i]));
  }
  return out;
}

}  // namespace harmony::rsl
