file(REMOVE_RECURSE
  "CMakeFiles/core_objective_test.dir/core_objective_test.cc.o"
  "CMakeFiles/core_objective_test.dir/core_objective_test.cc.o.d"
  "core_objective_test"
  "core_objective_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_objective_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
