#include "persist/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/assert.h"
#include "common/strings.h"
#include "persist/crc32c.h"

namespace harmony::persist {

namespace {

constexpr size_t kHeaderBytes = 8;

void put_u32(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>((value >> 24) & 0xFF));
  out->push_back(static_cast<char>((value >> 16) & 0xFF));
  out->push_back(static_cast<char>((value >> 8) & 0xFF));
  out->push_back(static_cast<char>(value & 0xFF));
}

uint32_t get_u32(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return (static_cast<uint32_t>(bytes[0]) << 24) |
         (static_cast<uint32_t>(bytes[1]) << 16) |
         (static_cast<uint32_t>(bytes[2]) << 8) | static_cast<uint32_t>(bytes[3]);
}

Error errno_error(const char* what, const std::string& path) {
  return Error{ErrorCode::kIo, str_format("%s %s: %s", what, path.c_str(),
                                          std::strerror(errno))};
}

Status write_fully(int fd, const char* data, size_t size,
                   const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

std::string encode_record(std::string_view payload) {
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  put_u32(&out, static_cast<uint32_t>(payload.size()));
  put_u32(&out, crc32c(payload));
  out.append(payload);
  return out;
}

Journal::~Journal() { close(); }

Journal::Journal(Journal&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      pending_(std::move(other.pending_)),
      appended_records_(other.appended_records_),
      committed_bytes_(other.committed_bytes_),
      commits_(other.commits_),
      syncs_(other.syncs_.load(std::memory_order_relaxed)) {}

Journal& Journal::operator=(Journal&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    pending_ = std::move(other.pending_);
    appended_records_ = other.appended_records_;
    committed_bytes_ = other.committed_bytes_;
    commits_ = other.commits_;
    syncs_.store(other.syncs_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  }
  return *this;
}

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Journal> Journal::open(const std::string& path) {
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) return errno_error("open journal", path);
  Journal journal;
  journal.fd_ = fd;
  journal.path_ = path;
  return journal;
}

void Journal::append(std::string_view payload) {
  pending_.append(encode_record(payload));
  ++appended_records_;
}

void Journal::append_raw(std::string_view framed) {
  pending_.append(framed);
  ++appended_records_;
}

Status Journal::commit(bool sync) {
  if (!pending_.empty()) {
    HARMONY_ASSERT_MSG(fd_ >= 0, "commit on closed journal");
    Status status = write_fully(fd_, pending_.data(), pending_.size(), path_);
    if (!status.ok()) return status;
    committed_bytes_ += pending_.size();
    pending_.clear();
    ++commits_;
  }
  if (sync) return this->sync();
  return Status::Ok();
}

Status Journal::sync() {
  HARMONY_ASSERT_MSG(fd_ >= 0, "sync on closed journal");
  if (::fsync(fd_) != 0) return errno_error("fsync", path_);
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

Status Journal::reset() {
  HARMONY_ASSERT_MSG(fd_ >= 0, "reset on closed journal");
  pending_.clear();
  if (::ftruncate(fd_, 0) != 0) return errno_error("truncate", path_);
  if (::fsync(fd_) != 0) return errno_error("fsync", path_);
  return Status::Ok();
}

Result<ReplayStats> Journal::replay(
    const std::string& path,
    const std::function<Status(const std::string& payload)>& handler,
    bool repair) {
  ReplayStats stats;
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return stats;  // no journal yet: nothing to replay
    return errno_error("open journal", path);
  }

  std::string data;
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      Error error = errno_error("read", path);
      ::close(fd);
      return error;
    }
    if (n == 0) break;
    data.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t offset = 0;
  while (data.size() - offset >= kHeaderBytes) {
    uint32_t length = get_u32(data.data() + offset);
    uint32_t expected_crc = get_u32(data.data() + offset + 4);
    if (length > kMaxRecordBytes) break;  // corrupt length prefix
    if (data.size() - offset - kHeaderBytes < length) break;  // torn tail
    std::string payload = data.substr(offset + kHeaderBytes, length);
    if (crc32c(payload) != expected_crc) break;
    Status status = handler(payload);
    if (!status.ok()) return status.error();
    ++stats.records;
    offset += kHeaderBytes + length;
  }
  stats.valid_bytes = offset;
  stats.truncated = offset < data.size();

  if (stats.truncated && repair) {
    if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
      return errno_error("truncate", path);
    }
  }
  return stats;
}

}  // namespace harmony::persist
