file(REMOVE_RECURSE
  "CMakeFiles/harmony_cluster.dir/matcher.cc.o"
  "CMakeFiles/harmony_cluster.dir/matcher.cc.o.d"
  "CMakeFiles/harmony_cluster.dir/pool.cc.o"
  "CMakeFiles/harmony_cluster.dir/pool.cc.o.d"
  "CMakeFiles/harmony_cluster.dir/topology.cc.o"
  "CMakeFiles/harmony_cluster.dir/topology.cc.o.d"
  "libharmony_cluster.a"
  "libharmony_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
