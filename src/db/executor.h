// Query operators with work accounting. Every operator reports how many
// tuples it examined/built/probed and how many result bytes it produced;
// the simulated applications convert those counts into reference-machine
// CPU seconds and network transfer sizes.
#pragma once

#include <cstdint>
#include <vector>

#include "db/table.h"

namespace harmony::db {

struct WorkCounters {
  uint64_t rows_selected_left = 0;   // index-select output, relation 1
  uint64_t rows_selected_right = 0;  // index-select output, relation 2
  uint64_t rows_examined = 0;        // total rows touched by selections
  uint64_t join_build_rows = 0;      // hash-table build side
  uint64_t join_probe_rows = 0;      // probe side
  uint64_t result_rows = 0;
  uint64_t result_bytes = 0;

  WorkCounters& operator+=(const WorkCounters& other);
};

struct JoinedRow {
  RowId left;
  RowId right;
};

// Hash join on an integer attribute over pre-selected row sets. Builds
// on the smaller side. Result pairs are in deterministic (probe-side)
// order.
std::vector<JoinedRow> hash_join(const Table& left,
                                 const std::vector<RowId>& left_rows,
                                 const Table& right,
                                 const std::vector<RowId>& right_rows,
                                 Attr join_attr, WorkCounters* counters);

// The paper's benchmark query: select tuples with
// tenPercent == left_value / right_value from each relation (10%
// selectivity via the index), join on unique1.
struct BenchmarkQuery {
  int32_t left_ten_percent = 0;
  int32_t right_ten_percent = 0;
};

struct QueryResult {
  std::vector<JoinedRow> rows;
  WorkCounters work;
};

QueryResult run_benchmark_query(const Table& left, const Table& right,
                                const BenchmarkQuery& query);

}  // namespace harmony::db
