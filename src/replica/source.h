// Primary-side replication source: the bridge between the persistence
// layer's journal tap and the wire. It watches every committed journal
// byte (persist::ReplicationTap) and queues it, per subscribed standby,
// as {REPL BATCH} frames the server ships on its next drain cycle
// (net::ReplicationFeed); compactions become {REPL COMPACT} markers.
//
// A standby attaches with {REPL HELLO <gen> <offset> <id>}. When its
// position extends the current generation's journal, the backlog
// between its offset and the primary's committed offset is read straight
// from the journal file and streamed; anything else (stale generation,
// offset past ours — a divergent or future history) gets a full resync:
// the snapshot file as {REPL SNAP}/{REPL SNAPC}/{REPL SNAPE}, then the
// journal from byte zero.
//
// Threading: in the HA arrangement every entry point runs on the
// controller thread — the tap fires under the journal mutex from epoch
// commits this thread executes, and the feed methods are called from
// the server's dispatch loop. The internal mutex still guards all state
// so the invariants hold if a future embedding calls from elsewhere.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "metric/telemetry.h"
#include "net/server.h"
#include "persist/persistence.h"

namespace harmony::replica {

class ReplicationSource final : public persist::ReplicationTap,
                                public net::ReplicationFeed {
 public:
  explicit ReplicationSource(persist::Persistence* persistence);

  // --- persist::ReplicationTap (fires under the journal mutex) ------------
  void on_journal_commit(uint64_t generation, uint64_t start_offset,
                         std::string_view bytes) override;
  void on_compaction(uint64_t new_generation) override;

  // --- net::ReplicationFeed (controller thread) ---------------------------
  std::vector<net::Message> handshake(uint64_t conn,
                                      const std::string& standby_id,
                                      uint64_t generation,
                                      uint64_t offset) override;
  void note_ack(uint64_t conn, uint64_t generation, uint64_t offset,
                uint64_t records) override;
  void detach(uint64_t conn) override;
  std::vector<net::Message> take_pending(uint64_t conn) override;
  bool acked_through(uint64_t generation, uint64_t offset) override;
  bool has_subscribers() override;

  size_t subscriber_count();

 private:
  struct Event {
    enum class Kind { kBatch, kCompact };
    Kind kind = Kind::kBatch;
    uint64_t generation = 0;
    uint64_t offset = 0;   // kBatch
    std::string bytes;     // kBatch: framed journal records
  };
  struct Subscriber {
    std::string standby_id;
    std::deque<Event> queue;
    size_t queued_bytes = 0;
    // Records shipped to this standby since its HELLO (batch frames
    // only — the snapshot of a full resync doesn't count). The standby
    // acks the records it applied since the same point, so the
    // difference is its replay lag in records.
    uint64_t streamed_records = 0;
    // Last position the standby acked having applied durably enough to
    // serve from (it journals before acking).
    uint64_t acked_generation = 0;
    uint64_t acked_offset = 0;
    uint64_t acked_records = 0;
    // Mid-handshake: the backlog is being read from the files while tap
    // events queue; excluded from semi-sync quorum until complete.
    bool syncing = false;
    // Dropped for overflowing the queue; ignored until it re-HELLOs.
    bool overflowed = false;
  };

  void refresh_lag_locked();

  persist::Persistence* persistence_;
  std::mutex mutex_;
  std::map<uint64_t, Subscriber> subscribers_;
  // Stream position of the newest committed byte, mirrored from the tap
  // so lag math never re-locks the persistence layer.
  uint64_t head_generation_ = 0;
  uint64_t head_offset_ = 0;

  metric::Gauge* lag_records_ = &metric::telemetry_gauge("replica.lag_records");
  metric::Gauge* lag_bytes_ = &metric::telemetry_gauge("replica.lag_bytes");
  metric::Gauge* subscribers_gauge_ =
      &metric::telemetry_gauge("replica.subscribers");
  metric::Counter* batches_total_ =
      &metric::telemetry_counter("replica.batches_streamed_total");
  metric::Counter* resyncs_total_ =
      &metric::telemetry_counter("replica.full_resyncs_total");
};

}  // namespace harmony::replica
