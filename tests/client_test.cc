#include "client/client.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "client/capi.h"
#include "core/controller.h"

namespace harmony::client {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        controller_.add_nodes_script(apps::db_cluster_script(2)).ok());
    ASSERT_TRUE(controller_.finalize_cluster().ok());
    transport_ = std::make_unique<InProcTransport>(&controller_);
  }
  const char* kBundle =
      "harmonyBundle Demo:1 b {\n"
      "  {small {node n {hostname sp2-00} {seconds 5} {memory 4}}}\n"
      "  {large {node n {hostname sp2-00} {seconds 5} {memory 48}}}\n"
      "}\n";
  core::Controller controller_;
  std::unique_ptr<InProcTransport> transport_;
};

TEST_F(ClientTest, LifecycleOrderEnforced) {
  HarmonyClient client(transport_.get());
  EXPECT_FALSE(client.bundle_setup(kBundle).ok()) << "startup first";
  ASSERT_TRUE(client.startup("demo").ok());
  EXPECT_FALSE(client.startup("again").ok());
  EXPECT_FALSE(client.commit().ok()) << "no bundles yet";
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  ASSERT_TRUE(client.commit().ok());
  EXPECT_TRUE(client.registered());
  EXPECT_FALSE(client.bundle_setup(kBundle).ok()) << "already committed";
  ASSERT_TRUE(client.end().ok());
  EXPECT_FALSE(client.end().ok()) << "double end";
}

TEST_F(ClientTest, VariablesReceiveInitialConfiguration) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo").ok());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  const std::string* option = client.add_variable("b", "none");
  EXPECT_EQ(*option, "none");
  ASSERT_TRUE(client.wait_for_update().ok());
  client.poll_updates();
  // Both options fit; either way the variable must now hold a real one.
  EXPECT_TRUE(*option == "small" || *option == "large") << *option;
  EXPECT_EQ(client.var("b"), *option) << "pointer and accessor agree";
  EXPECT_EQ(client.var("b.n.node"), "sp2-00");
}

TEST_F(ClientTest, PendingUpdatesApplyOnlyAtPoll) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo").ok());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  ASSERT_TRUE(client.commit().ok());
  // Subscription delivered updates into the pending buffer; the
  // declared variable is untouched until poll_updates().
  const std::string* option = client.add_variable("fresh-var", "x");
  EXPECT_EQ(*option, "x");
  EXPECT_TRUE(client.poll_updates());
  EXPECT_FALSE(client.poll_updates()) << "second poll sees nothing new";
}

TEST_F(ClientTest, VarHelpers) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo").ok());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  ASSERT_TRUE(client.wait_for_update().ok());
  client.poll_updates();
  EXPECT_DOUBLE_EQ(client.var_number("b.n.memory", -1), 4.0);
  EXPECT_DOUBLE_EQ(client.var_number("no.such.var", -1), -1.0);
  EXPECT_EQ(client.var_list("b.n.nodes"), std::vector<std::string>{"sp2-00"});
}

TEST_F(ClientTest, FetchReadsNamespace) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo").ok());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  EXPECT_FALSE(client.fetch("b.option").ok()) << "not registered yet";
  ASSERT_TRUE(client.wait_for_update().ok());
  auto value = client.fetch("b.option");
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value.value() == "small" || value.value() == "large");
}

TEST_F(ClientTest, DestructorEndsRegistration) {
  {
    HarmonyClient client(transport_.get());
    ASSERT_TRUE(client.startup("demo").ok());
    ASSERT_TRUE(client.bundle_setup(kBundle).ok());
    ASSERT_TRUE(client.commit().ok());
    EXPECT_EQ(controller_.live_instances(), 1u);
  }
  EXPECT_EQ(controller_.live_instances(), 0u);
}

TEST_F(ClientTest, RegistrationFailureSurfaces) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo").ok());
  ASSERT_TRUE(client
                  .bundle_setup("harmonyBundle Huge:1 b {{o {node n "
                                "{seconds 1} {memory 99999}}}}")
                  .ok());
  EXPECT_FALSE(client.commit().ok());
  EXPECT_FALSE(client.registered());
}

TEST_F(ClientTest, InterruptModeAppliesImmediately) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo", /*use_interrupts=*/true).ok());
  EXPECT_TRUE(client.use_interrupts());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  std::vector<std::string> interrupts;
  client.set_interrupt_handler(
      [&](const std::string& name, const std::string&) {
        interrupts.push_back(name);
      });
  const std::string* option = client.add_variable("b", "none");
  ASSERT_TRUE(client.commit().ok());
  // No poll needed: the variable updated during commit and the handler
  // fired, exactly like the prototype's I/O event handler.
  EXPECT_NE(*option, "none");
  EXPECT_FALSE(interrupts.empty());
  EXPECT_NE(std::find(interrupts.begin(), interrupts.end(), "b"),
            interrupts.end());
  EXPECT_FALSE(client.poll_updates()) << "nothing left to poll";
}

TEST_F(ClientTest, PollingModeDefersWithoutPoll) {
  HarmonyClient client(transport_.get());
  ASSERT_TRUE(client.startup("demo", /*use_interrupts=*/false).ok());
  ASSERT_TRUE(client.bundle_setup(kBundle).ok());
  const std::string* option = client.add_variable("b", "none");
  ASSERT_TRUE(client.commit().ok());
  EXPECT_EQ(*option, "none") << "polling mode: value waits for poll_updates";
  EXPECT_TRUE(client.poll_updates());
  EXPECT_NE(*option, "none");
}

// --- the Figure 5 C API ------------------------------------------------------

TEST_F(ClientTest, CApiFullLifecycle) {
  harmony_connect_local(&controller_);
  ASSERT_EQ(harmony_startup("capi-demo", 0), 0) << harmony_last_error();
  ASSERT_EQ(harmony_bundle_setup(kBundle), 0) << harmony_last_error();
  void* option = harmony_add_variable("b", "none", HARMONY_VAR_STRING);
  ASSERT_NE(option, nullptr);
  void* memory = harmony_add_variable("b.n.memory", "0", HARMONY_VAR_INT);
  ASSERT_NE(memory, nullptr);
  EXPECT_STREQ(static_cast<const char*>(option), "none");
  ASSERT_EQ(harmony_wait_for_update(), 0) << harmony_last_error();
  const char* opt = static_cast<const char*>(option);
  EXPECT_TRUE(std::string(opt) == "small" || std::string(opt) == "large");
  long mem = *static_cast<long*>(memory);
  EXPECT_TRUE(mem == 4 || mem == 48) << mem;
  EXPECT_EQ(controller_.live_instances(), 1u);
  ASSERT_EQ(harmony_end(), 0) << harmony_last_error();
  EXPECT_EQ(controller_.live_instances(), 0u);
}

TEST_F(ClientTest, CApiErrorsReported) {
  harmony_connect_local(&controller_);
  EXPECT_EQ(harmony_bundle_setup("x"), -1);
  EXPECT_NE(std::string(harmony_last_error()).find("startup"),
            std::string::npos);
  ASSERT_EQ(harmony_startup("capi-err", 0), 0);
  EXPECT_EQ(harmony_startup("twice", 0), -1);
  EXPECT_EQ(harmony_wait_for_update(), -1) << "no bundles registered";
  EXPECT_EQ(harmony_end(), -1);
}

TEST_F(ClientTest, CApiRealVariable) {
  harmony_connect_local(&controller_);
  ASSERT_EQ(harmony_startup("capi-real", 0), 0);
  ASSERT_EQ(harmony_bundle_setup(kBundle), 0);
  void* memory = harmony_add_variable("b.n.memory", "1.5", HARMONY_VAR_REAL);
  ASSERT_NE(memory, nullptr);
  EXPECT_DOUBLE_EQ(*static_cast<double*>(memory), 1.5);
  ASSERT_EQ(harmony_wait_for_update(), 0);
  double mem = *static_cast<double*>(memory);
  EXPECT_TRUE(mem == 4.0 || mem == 48.0);
  ASSERT_EQ(harmony_end(), 0);
}

}  // namespace
}  // namespace harmony::client
