# Empty dependencies file for rsl_value_test.
# This may be replaced when dependencies are built.
