// Objective functions (paper §4.2): "a single variable that represents
// the overall behavior of the system we are trying to optimize... a
// measure of goodness for each application scaled into a common
// currency." The default minimizes the average completion time of the
// jobs currently in the system.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace harmony::core {

// Deadline/period resource model (per "Distributed Resource Management
// for Time-Sensitive Applications"): an instance that declares a
// deadline contributes a tardiness penalty — weight * max(0, predicted
// time - deadline) — on top of the base objective. Tardiness is a sum
// of per-instance hinge terms, so it preserves separability: a bundle
// whose prediction is constant across candidates still shifts the
// objective uniformly.
struct DeadlineTerm {
  double time = 0;        // predicted completion/response time
  double deadline_s = 0;  // effective deadline (deadline, else period)
  double weight = 1.0;    // tardiness weight (common-currency scaling)
};

double tardiness_penalty(const std::vector<DeadlineTerm>& terms);

class Objective {
 public:
  virtual ~Objective() = default;
  virtual const char* name() const = 0;
  // Lower is better. response_times holds one predicted time per live
  // application instance.
  virtual double evaluate(const std::vector<double>& response_times) const = 0;
  // True when the objective is a sum (up to positive scaling) of
  // per-instance terms. For such objectives, instances whose predicted
  // time is constant across one bundle's candidate placements shift the
  // objective uniformly and cannot change that bundle's argmin — the
  // incremental optimizer exploits this to skip untouched bundles.
  // Non-separable objectives (makespan) only allow skipping when the
  // whole system is unchanged.
  virtual bool separable() const { return false; }

  // Base objective plus the tardiness penalty of the supplied deadline
  // terms. With no terms this is exactly evaluate(times) — scenarios
  // without deadlines keep their decision path bit-identical.
  double evaluate_with_deadlines(const std::vector<double>& response_times,
                                 const std::vector<DeadlineTerm>& terms) const {
    double base = evaluate(response_times);
    return terms.empty() ? base : base + tardiness_penalty(terms);
  }
};

// The paper's default: minimize mean completion time.
class MeanCompletionTime : public Objective {
 public:
  const char* name() const override { return "mean-completion-time"; }
  double evaluate(const std::vector<double>& response_times) const override;
  bool separable() const override { return true; }
};

// Makespan: minimize the slowest job (fairness-oriented alternative the
// paper's "other objective functions" future work gestures at).
class MaxCompletionTime : public Objective {
 public:
  const char* name() const override { return "max-completion-time"; }
  double evaluate(const std::vector<double>& response_times) const override;
};

// Negative aggregate throughput (jobs per second); minimizing it
// maximizes throughput. The paper names system throughput as the
// default overall objective in §3.
class NegativeThroughput : public Objective {
 public:
  const char* name() const override { return "throughput"; }
  double evaluate(const std::vector<double>& response_times) const override;
  bool separable() const override { return true; }
};

// Weighted mean: "a measure of goodness for each application scaled
// into a common currency". Weights are positional per instance; missing
// weights default to 1.
class WeightedCompletionTime : public Objective {
 public:
  explicit WeightedCompletionTime(std::vector<double> weights)
      : weights_(std::move(weights)) {}
  const char* name() const override { return "weighted-completion-time"; }
  double evaluate(const std::vector<double>& response_times) const override;
  bool separable() const override { return true; }

 private:
  std::vector<double> weights_;
};

std::unique_ptr<Objective> make_objective(const std::string& name);

}  // namespace harmony::core
