#include "metric/telemetry.h"

#include <chrono>
#include <cstdlib>

#include "common/strings.h"

namespace harmony::metric {

namespace detail {
std::atomic<bool> g_telemetry_enabled{true};
std::atomic<uint32_t> g_next_thread_slot{0};
}  // namespace detail

void set_telemetry_enabled(bool on) {
  detail::g_telemetry_enabled.store(on, std::memory_order_relaxed);
}

uint64_t telemetry_now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                            start)
          .count());
}

uint64_t Histogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::percentile(double q) const {
  uint64_t counts[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts[i];
    if (seen > rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBuckets - 1);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer* buffer = new TraceBuffer();  // intentionally leaked
  return *buffer;
}

void TraceBuffer::record(const char* name, uint64_t ts_us, uint64_t dur_us) {
  TraceSpan span{name, ts_us, dur_us, detail::thread_slot()};
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_recorded_;
  if (ring_.size() < kCapacity) {
    ring_.push_back(span);
  } else {
    ring_[next_] = span;
    next_ = (next_ + 1) % kCapacity;
  }
}

std::vector<TraceSpan> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceSpan> out;
  out.reserve(ring_.size());
  // Oldest-first: [next_, end) then [0, next_).
  for (size_t i = next_; i < ring_.size(); ++i) out.push_back(ring_[i]);
  for (size_t i = 0; i < next_; ++i) out.push_back(ring_[i]);
  return out;
}

std::string TraceBuffer::render_chrome_json() const {
  std::vector<TraceSpan> spans = snapshot();
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    out += str_format(
        "{\"name\":\"%s\",\"cat\":\"harmony\",\"ph\":\"X\",\"ts\":%llu,"
        "\"dur\":%llu,\"pid\":1,\"tid\":%u}",
        spans[i].name, static_cast<unsigned long long>(spans[i].ts_us),
        static_cast<unsigned long long>(spans[i].dur_us), spans[i].tid);
  }
  out += "]}";
  return out;
}

uint64_t TraceBuffer::total_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_recorded_ = 0;
}

Telemetry& Telemetry::instance() {
  static Telemetry* telemetry = new Telemetry();  // intentionally leaked
  return *telemetry;
}

Telemetry::Telemetry() {
  // Ops overrides: HARMONY_TELEMETRY=0 disables all instruments,
  // HARMONY_TRACE=1 turns the span ring on from startup.
  if (const char* env = std::getenv("HARMONY_TELEMETRY")) {
    if (std::string_view(env) == "0") set_telemetry_enabled(false);
  }
  if (const char* env = std::getenv("HARMONY_TRACE")) {
    if (std::string_view(env) == "1") TraceBuffer::instance().set_enabled(true);
  }
}

Counter& Telemetry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Telemetry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Telemetry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

namespace {

std::string prometheus_name(const std::string& dotted) {
  std::string out = "harmony_";
  for (char c : dotted) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string Telemetry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    std::string prom = prometheus_name(name);
    out += str_format("# TYPE %s counter\n%s %llu\n", prom.c_str(),
                      prom.c_str(),
                      static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string prom = prometheus_name(name);
    out += str_format("# TYPE %s gauge\n%s %lld\n", prom.c_str(), prom.c_str(),
                      static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string prom = prometheus_name(name);
    out += str_format("# TYPE %s histogram\n", prom.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kBuckets; ++i) {
      uint64_t in_bucket = histogram->bucket_count(i);
      cumulative += in_bucket;
      if (in_bucket == 0 && i + 1 < Histogram::kBuckets) continue;
      if (i + 1 < Histogram::kBuckets) {
        out += str_format(
            "%s_bucket{le=\"%llu\"} %llu\n", prom.c_str(),
            static_cast<unsigned long long>(Histogram::bucket_upper_bound(i)),
            static_cast<unsigned long long>(cumulative));
      }
    }
    out += str_format("%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count "
                      "%llu\n",
                      prom.c_str(), static_cast<unsigned long long>(cumulative),
                      prom.c_str(),
                      static_cast<unsigned long long>(histogram->sum()),
                      prom.c_str(),
                      static_cast<unsigned long long>(cumulative));
  }
  return out;
}

std::string Telemetry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ',';
    first = false;
    out += str_format("\"%s\":%llu", name.c_str(),
                      static_cast<unsigned long long>(counter->value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += str_format("\"%s\":%lld", name.c_str(),
                      static_cast<long long>(gauge->value()));
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += str_format(
        "\"%s\":{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p99\":%llu}",
        name.c_str(), static_cast<unsigned long long>(histogram->count()),
        static_cast<unsigned long long>(histogram->sum()),
        static_cast<unsigned long long>(histogram->percentile(0.50)),
        static_cast<unsigned long long>(histogram->percentile(0.99)));
  }
  out += "}}";
  return out;
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, gauge] : gauges_) gauge->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace harmony::metric
