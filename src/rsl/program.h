// One-time compilation of RSL expressions into a flat postfix program
// executed by a small stack VM. The controller's inner loop evaluates
// parameterized resource requirements (e.g. the paper's
//   44 + (client.memory > 24 ? 24 : client.memory) - 17
// link bandwidth) once per candidate configuration; the tree-walking
// evaluator in expr.cc re-parses the text and allocates identifier
// strings on every call. A compiled Program parses once: numeric
// subtrees are constant-folded, string literals are interned, each
// distinct bare name / $variable gets a slot, and evaluation runs over
// a stack of doubles with no per-eval allocation on the numeric path.
//
// The compiler also reports the expression's *read set* — the bare
// (namespace) names and $variables it references — which the core
// planning engine uses to sharpen dirty-set invalidation and to key
// the prediction cache on the values actually read.
//
// Semantics contract: when compile() succeeds, eval_number() returns
// bit-identical values AND identical error outcomes (code + message)
// to expr_eval_number() on the same text and context. The grammar has
// no short-circuit evaluation (&&, || and ?: evaluate every operand,
// exactly like the tree-walk), so straight-line postfix needs no jump
// opcodes. Expressions the program cannot represent — [script]
// substitution, malformed text — fail to compile and the caller keeps
// the tree-walk path, which preserves behavior by construction.
// tests/rsl_property_test.cc enforces the contract on randomized
// expressions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "rsl/expr.h"

namespace harmony::rsl {

class Program {
 public:
  // Parses and compiles `text`. Fails on syntax errors and on [script]
  // substitution (the tree-walk evaluator remains the authority for
  // those); a successful compile may still evaluate to an error at
  // runtime (division by zero, unresolved names, ...).
  static Result<Program> compile(std::string_view text);

  // Distinct bare identifiers (namespace paths like "client.memory"),
  // first-use order. This is the expression's namespace read set.
  const std::vector<std::string>& names() const { return names_; }
  // Distinct $variables referenced, first-use order.
  const std::vector<std::string>& vars() const { return vars_; }
  bool reads_anything() const { return !names_.empty() || !vars_.empty(); }

  // Folded literal when the whole expression reduced to one number at
  // compile time (no reads, no possible runtime error).
  std::optional<double> constant() const;

  // Executes the program. Mirrors expr_eval_number / expr_eval.
  Result<double> eval_number(const ExprContext& ctx) const;
  Result<std::string> eval(const ExprContext& ctx) const;

  const std::string& source() const { return source_; }
  size_t op_count() const { return ops_.size(); }

 private:
  friend class Compiler;

  enum class Op : uint8_t {
    kPushNum,   // push number (inst.number)
    kPushStr,   // push interned string (inst.index)
    kLoadName,  // resolve names_[inst.index] via name_lookup/var_lookup
    kLoadVar,   // resolve vars_[inst.index] via var_lookup
    kAdd, kSub, kMul, kDiv, kMod, kPow,
    kNeg, kNot,
    kAnd, kOr,
    kEq, kNe, kLe, kGe, kLt, kGt,
    kSelect,  // cond ? then : else (all three already evaluated)
    kToNum,   // convert top of stack to a number (function arguments)
    kCall,    // builtin function inst.func over inst.argc numbers
    kFail,    // unconditional error fails_[inst.index] (folded failure)
  };

  enum class Func : uint8_t {
    kAbs, kSqrt, kExp, kLog, kLog10, kFloor, kCeil, kRound, kInt,
    kPow, kFmod, kMin, kMax,
  };

  struct Inst {
    Op op;
    Func func = Func::kAbs;  // kCall only
    uint16_t argc = 0;       // kCall only
    uint32_t index = 0;      // kPushStr / kLoadName / kLoadVar / kFail
    double number = 0;       // kPushNum
  };

  // Interned string literal with its numeric interpretation
  // precomputed (TCL strings convert lazily at use sites).
  struct StrLit {
    std::string text;
    bool numeric = false;
    double number = 0;
    bool truthy = false;
  };

  struct Failure {
    ErrorCode code = ErrorCode::kEvalError;
    std::string message;  // full message, exactly as the tree-walk emits
  };

  // Runtime value: a double, or a reference to an interned literal
  // (str < literal count) / scratch string produced by a lookup.
  struct Val {
    double num = 0;
    int32_t str = -1;  // -1 = number
  };

  // Builtin application shared by the constant folder and the VM; exact
  // tree-walk apply_function semantics over already-converted numbers.
  static Result<double> apply_builtin(Func func, const double* args,
                                      size_t argc, const std::string& source);

  Result<Val> run(const ExprContext& ctx,
                  std::vector<std::string>& scratch) const;
  const std::string& str_text(int32_t idx,
                              const std::vector<std::string>& scratch) const;
  Result<double> to_number(const Val& value,
                           const std::vector<std::string>& scratch) const;
  bool truthy(const Val& value,
              const std::vector<std::string>& scratch) const;

  std::string source_;
  std::vector<Inst> ops_;
  std::vector<StrLit> strings_;
  std::vector<std::string> names_;
  std::vector<std::string> vars_;
  std::vector<Failure> fails_;
  uint32_t max_stack_ = 0;
};

// Total Expr::eval invocations process-wide (decision-path metric for
// bench/abl_optimizer.cc; single-threaded controller, plain counter).
uint64_t expr_evaluations();
void bump_expr_evaluations();

}  // namespace harmony::rsl
