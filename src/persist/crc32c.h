// CRC32C (Castagnoli polynomial, the checksum used by iSCSI, ext4 and
// most modern journals). Software table implementation — fast enough
// for journal records that are tens to a few thousand bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace harmony::persist {

// CRC of `data` continuing from `seed` (0 for a fresh checksum). The
// conventional reflected form: crc32c("123456789") == 0xE3069283.
uint32_t crc32c(std::string_view data, uint32_t seed = 0);

}  // namespace harmony::persist
