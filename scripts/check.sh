#!/usr/bin/env bash
# Full verification sweep: build + ctest in the regular config, then in
# the ASan+UBSan config. Usage: scripts/check.sh [-j N]
set -euo pipefail

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

run_config() {
  local name="$1" dir="$2"; shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_config default build
run_config asan build-asan -DHARMONY_SANITIZE=ON

echo "=== all configs green ==="
