#include "db/table.h"

#include <gtest/gtest.h>

#include <set>

#include "db/wisconsin.h"

namespace harmony::db {
namespace {

TEST(Wisconsin, TupleIs208Bytes) {
  EXPECT_EQ(sizeof(WisconsinTuple), 208u);
}

TEST(Wisconsin, GeneratorProducesValidRelation) {
  auto tuples = generate_wisconsin(1000, 42);
  ASSERT_EQ(tuples.size(), 1000u);
  std::set<int32_t> unique1;
  for (size_t i = 0; i < tuples.size(); ++i) {
    const auto& t = tuples[i];
    unique1.insert(t.unique1);
    EXPECT_EQ(t.unique2, static_cast<int32_t>(i)) << "unique2 sequential";
    EXPECT_EQ(t.ten_percent, t.unique2 % 10);
    EXPECT_EQ(t.one_percent, t.unique2 % 100);
    EXPECT_EQ(t.two, t.unique1 % 2);
    EXPECT_EQ(t.unique3, t.unique1);
    EXPECT_EQ(t.stringu1[0], 'A');
  }
  EXPECT_EQ(unique1.size(), 1000u) << "unique1 is a permutation";
  EXPECT_EQ(*unique1.begin(), 0);
  EXPECT_EQ(*unique1.rbegin(), 999);
}

TEST(Wisconsin, DeterministicPerSeed) {
  auto a = generate_wisconsin(100, 7);
  auto b = generate_wisconsin(100, 7);
  auto c = generate_wisconsin(100, 8);
  EXPECT_EQ(a[0].unique1, b[0].unique1);
  bool all_same = true;
  for (size_t i = 0; i < 100; ++i) {
    if (a[i].unique1 != c[i].unique1) all_same = false;
  }
  EXPECT_FALSE(all_same) << "different seeds give different permutations";
}

TEST(Wisconsin, TenPercentSelectivityHolds) {
  auto tuples = generate_wisconsin(10000, 1);
  size_t matching = 0;
  for (const auto& t : tuples) {
    if (t.ten_percent == 3) ++matching;
  }
  EXPECT_EQ(matching, 1000u) << "exactly 10% per bucket";
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("wisc");
    table_->bulk_load(generate_wisconsin(1000, 42));
  }
  std::unique_ptr<Table> table_;
};

TEST_F(TableTest, BulkLoadAndRowAccess) {
  EXPECT_EQ(table_->row_count(), 1000u);
  EXPECT_EQ(table_->bytes(), 1000u * 208u);
  EXPECT_EQ(table_->row(5).unique2, 5);
}

TEST_F(TableTest, FullScanSelectWithoutIndex) {
  uint64_t examined = 0;
  auto rows = table_->select_eq(Attr::kTenPercent, 3, &examined);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_EQ(examined, 1000u) << "scan examines every row";
  for (RowId id : rows) {
    EXPECT_EQ(table_->row(id).ten_percent, 3);
  }
}

TEST_F(TableTest, IndexedSelectExaminesOnlyMatches) {
  table_->build_index(Attr::kTenPercent);
  ASSERT_TRUE(table_->has_index(Attr::kTenPercent));
  uint64_t examined = 0;
  auto rows = table_->select_eq(Attr::kTenPercent, 3, &examined);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_EQ(examined, 100u) << "index touches only matching rows";
}

TEST_F(TableTest, IndexAndScanAgree) {
  uint64_t ignored = 0;
  auto scanned = table_->select_eq(Attr::kTenPercent, 7, &ignored);
  table_->build_index(Attr::kTenPercent);
  auto indexed = table_->select_eq(Attr::kTenPercent, 7, &ignored);
  EXPECT_EQ(scanned, indexed);
}

TEST_F(TableTest, UniqueIndexFindsSingleRow) {
  table_->build_index(Attr::kUnique1);
  auto rows = table_->select_eq(Attr::kUnique1, 123);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(table_->row(rows[0]).unique1, 123);
  EXPECT_TRUE(table_->select_eq(Attr::kUnique1, 99999).empty());
}

TEST_F(TableTest, InsertMaintainsIndexes) {
  table_->build_index(Attr::kUnique1);
  WisconsinTuple extra{};
  extra.unique1 = 5555;
  extra.ten_percent = 5;
  RowId id = table_->insert(extra);
  auto rows = table_->select_eq(Attr::kUnique1, 5555);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], id);
}

TEST_F(TableTest, ScanFilter) {
  uint64_t examined = 0;
  auto rows = table_->scan_filter(
      [](const WisconsinTuple& t) { return t.unique1 < 10; }, &examined);
  EXPECT_EQ(rows.size(), 10u);
  EXPECT_EQ(examined, 1000u);
}

TEST(AttrHelpers, NamesAndValues) {
  WisconsinTuple t{};
  t.unique1 = 42;
  t.ten_percent = 2;
  EXPECT_STREQ(attr_name(Attr::kUnique1), "unique1");
  EXPECT_STREQ(attr_name(Attr::kTenPercent), "tenPercent");
  EXPECT_EQ(attr_value(t, Attr::kUnique1), 42);
  EXPECT_EQ(attr_value(t, Attr::kTenPercent), 2);
}

}  // namespace
}  // namespace harmony::db
