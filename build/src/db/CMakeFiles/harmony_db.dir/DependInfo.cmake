
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/bufferpool.cc" "src/db/CMakeFiles/harmony_db.dir/bufferpool.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/bufferpool.cc.o.d"
  "/root/repo/src/db/cache.cc" "src/db/CMakeFiles/harmony_db.dir/cache.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/cache.cc.o.d"
  "/root/repo/src/db/engine.cc" "src/db/CMakeFiles/harmony_db.dir/engine.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/engine.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/db/CMakeFiles/harmony_db.dir/executor.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/executor.cc.o.d"
  "/root/repo/src/db/table.cc" "src/db/CMakeFiles/harmony_db.dir/table.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/table.cc.o.d"
  "/root/repo/src/db/wisconsin.cc" "src/db/CMakeFiles/harmony_db.dir/wisconsin.cc.o" "gcc" "src/db/CMakeFiles/harmony_db.dir/wisconsin.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
