// Shared wiring for simulated harnessed applications: the virtual-time
// engine, CPU and network models over the controller's topology, and
// the controller itself. Everything runs single-threaded on the event
// loop, exactly like the paper's event-driven prototype.
#pragma once

#include "core/controller.h"
#include "metric/metric.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace harmony::apps {

struct SimContext {
  sim::SimEngine* engine = nullptr;
  sim::CpuModel* cpu = nullptr;
  sim::NetworkModel* net = nullptr;
  core::Controller* controller = nullptr;
  metric::MetricRegistry* metrics = nullptr;

  double now() const { return engine->now(); }
  const cluster::Topology& topology() const {
    return controller->topology();
  }
  Result<cluster::NodeId> node_of(const std::string& hostname) const {
    return topology().find_by_hostname(hostname);
  }
};

// Builds the standard harness: controller clocked by the sim engine and
// CPU/network models over its finalized topology.
class SimHarness {
 public:
  explicit SimHarness(core::ControllerConfig config = {})
      : controller_(std::move(config)) {}

  // Call after the cluster scripts are loaded into controller().
  Status finalize() {
    auto status = controller_.finalize_cluster();
    if (!status.ok()) return status;
    controller_.set_time_source([this] { return engine_.now(); });
    cpu_ = std::make_unique<sim::CpuModel>(&engine_, &controller_.topology());
    net_ = std::make_unique<sim::NetworkModel>(&engine_,
                                               &controller_.topology());
    return Status::Ok();
  }

  core::Controller& controller() { return controller_; }
  sim::SimEngine& engine() { return engine_; }
  metric::MetricRegistry& metrics() { return controller_.metrics(); }

  SimContext context() {
    SimContext ctx;
    ctx.engine = &engine_;
    ctx.cpu = cpu_.get();
    ctx.net = net_.get();
    ctx.controller = &controller_;
    ctx.metrics = &controller_.metrics();
    return ctx;
  }

 private:
  sim::SimEngine engine_;
  core::Controller controller_;
  std::unique_ptr<sim::CpuModel> cpu_;
  std::unique_ptr<sim::NetworkModel> net_;
};

}  // namespace harmony::apps
