// Live malleability and the deadline resource model, end to end: the
// controller resizes a running bag-of-tasks app mid-iteration (workers
// join and retire without an iteration boundary), a forced
// zero-assignment stalls the app instead of crashing it, resizes
// survive crash recovery bit-for-bit, and a deadline-carrying
// interactive app's tardiness term preempts batch capacity.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "apps/bag_app.h"
#include "apps/interactive_app.h"
#include "apps/scenarios.h"
#include "core/controller.h"
#include "persist/persistence.h"
#include "test_scenarios.h"

namespace harmony {
namespace {

using apps::BagApp;
using apps::BagConfig;
using apps::InteractiveApp;
using apps::InteractiveConfig;
using apps::SimHarness;
using apps::worker_cluster_script;
using harmony::testing::fingerprint;

struct MalleableWorld {
  explicit MalleableWorld(int nodes) : nodes(nodes) {
    EXPECT_TRUE(harness.controller()
                    .add_nodes_script(worker_cluster_script(nodes))
                    .ok());
    EXPECT_TRUE(harness.finalize().ok());
  }
  void set_all_online(bool online) {
    for (int i = 0; i < nodes; ++i) {
      ASSERT_TRUE(harness.controller()
                      .set_node_online(str_format("sp2-%02d", i), online)
                      .ok());
    }
  }
  int nodes;
  SimHarness harness;
};

// --- satellite: bundle-script validation ----------------------------------

TEST(BagScript, RejectsEmptyWorkerList) {
  BagConfig config;
  config.workers = "   ";
  auto script = apps::bag_bundle_script(config);
  ASSERT_FALSE(script.ok());
  EXPECT_EQ(script.error().code, ErrorCode::kInvalidArgument);
}

TEST(BagScript, RejectsNonpositiveAndNonNumericWorkerCounts) {
  for (const char* workers : {"1 2 0", "4 -3", "2 x 8", "nan"}) {
    BagConfig config;
    config.workers = workers;
    auto script = apps::bag_bundle_script(config);
    EXPECT_FALSE(script.ok()) << "accepted workers \"" << workers << "\"";
  }
  BagConfig good;
  good.workers = "1 2 4";
  EXPECT_TRUE(apps::bag_bundle_script(good).ok());
}

TEST(BagScript, ControllerRejectsNonFinitePerformancePoints) {
  // Belt and braces below the script builder: harmonyBundle parsing
  // itself refuses a curve with a non-finite point, which is what a
  // division-by-zero worker count would produce.
  MalleableWorld world(2);
  auto id = world.harness.controller().register_script(
      "harmonyBundle Bad:1 parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {1 2}}\n"
      "    {node worker {seconds 10} {memory 8} {replicate {workerNodes}}}\n"
      "    {performance {{1 inf} {2 600}}}}\n"
      "}\n");
  EXPECT_FALSE(id.ok());
}

// --- tentpole: live grow/shrink mid-iteration -----------------------------

TEST(MalleableBag, ResizeGrowsAndShrinksMidIteration) {
  MalleableWorld world(8);
  BagConfig config;
  config.malleable = true;
  config.max_iterations = 3;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 8);
  const core::InstanceId id = bag.instance_id();

  // Shrink mid-parallel-phase (iteration 1 runs its master phase until
  // t=100): the interrupt delivers the new assignment immediately and
  // de-assigned workers retire at their next pull.
  world.harness.engine().schedule(150, [&] {
    ASSERT_TRUE(world.harness.controller().resize(id, "parallelism", 2).ok());
    EXPECT_EQ(bag.current_workers(), 2)
        << "interrupt-mode update must land synchronously";
  });
  // Grow back mid-run: the missing pull loops start without waiting for
  // an iteration boundary.
  world.harness.engine().schedule(400, [&] {
    ASSERT_TRUE(world.harness.controller().resize(id, "parallelism", 8).ok());
    EXPECT_EQ(bag.current_workers(), 8);
  });
  world.harness.engine().run_until(5000);
  ASSERT_TRUE(bag.finished());
  EXPECT_EQ(bag.iterations_completed(), 3);

  // The resize verb records the commanded degree.
  const auto* degree = world.harness.metrics().find("Bag.1.parallelism.degree");
  ASSERT_NE(degree, nullptr);
  ASSERT_GE(degree->size(), 2u);
  EXPECT_DOUBLE_EQ(degree->samples().front().value, 2.0);
  EXPECT_DOUBLE_EQ(degree->last_value(), 8.0);
}

TEST(MalleableBag, ResizeRejectsUndeclaredDegrees) {
  MalleableWorld world(4);
  BagConfig config;
  config.workers = "1 2 4";
  auto script = apps::bag_bundle_script(config);
  ASSERT_TRUE(script.ok());
  auto id = world.harness.controller().register_script(script.value());
  ASSERT_TRUE(id.ok());
  auto& controller = world.harness.controller();

  EXPECT_TRUE(controller.resize(id.value(), "parallelism", 2).ok());
  // Not one of the exposed alternatives.
  EXPECT_EQ(controller.resize(id.value(), "parallelism", 3).error().code,
            ErrorCode::kInvalidArgument);
  // Nonpositive degrees can never be declared, so they are always
  // rejected before touching the optimizer.
  EXPECT_EQ(controller.resize(id.value(), "parallelism", 0).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(controller.resize(id.value(), "parallelism", -2).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(controller.resize(id.value(), "nope", 2).error().code,
            ErrorCode::kNotFound);
  EXPECT_EQ(controller.resize(999, "parallelism", 2).error().code,
            ErrorCode::kNotFound);
  // The valid resize stuck.
  const auto* bundle = controller.bundle_state(id.value(), "parallelism");
  ASSERT_NE(bundle, nullptr);
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 2.0);
}

// --- satellite: shrink-to-empty hardening ---------------------------------

TEST(MalleableBag, SurvivesForcedZeroAssignmentAndRecovers) {
  MalleableWorld world(4);
  BagConfig config;
  config.malleable = true;
  config.workers = "1 2 3 4";
  config.max_iterations = 2;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 4);

  // Mid-iteration the whole cluster disappears: the bundle is displaced
  // with nowhere to go and the app's assignment shrinks to empty. The
  // app must stall, not crash and not finish.
  world.harness.engine().schedule(150, [&] { world.set_all_online(false); });
  world.harness.engine().run_until(800);
  EXPECT_EQ(bag.current_workers(), 0);
  EXPECT_FALSE(bag.finished());
  EXPECT_EQ(bag.iterations_completed(), 0);

  // Capacity returns: the re-evaluation re-places the bundle and the
  // interrupt wakes the app to finish its runs.
  world.set_all_online(true);
  world.harness.engine().run_until(5000);
  ASSERT_TRUE(bag.finished());
  EXPECT_EQ(bag.iterations_completed(), 2);
}

TEST(PollingBag, ZeroAssignmentWindsDownWithoutCrashing) {
  // The polling-mode regression: begin_iteration used to dereference
  // worker_nodes_[0] with no emptiness guard. A polling app has no
  // wake-up interrupt, so losing every worker ends it gracefully.
  MalleableWorld world(2);
  BagConfig config;
  config.workers = "1 2";
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  world.harness.engine().schedule(150, [&] { world.set_all_online(false); });
  world.harness.engine().run_until(3000);
  EXPECT_TRUE(bag.finished());
  EXPECT_EQ(bag.current_workers(), 0);
}

// --- tentpole: deadline/period model and tardiness preemption -------------

TEST(DeadlineObjective, TardinessTermRaisesObjective) {
  MalleableWorld world(1);
  // Predicted 40 s of service against a 30 s period: 10 s late at
  // weight 2 puts the mean objective at 40 + 2*10.
  auto id = world.harness.controller().register_script(
      "harmonyBundle Late:1 svc {\n"
      "  {only\n"
      "    {node server {seconds 40} {memory 8}}\n"
      "    {period 30}\n"
      "    {tardiness 2}}\n"
      "}\n");
  ASSERT_TRUE(id.ok());
  auto terms = world.harness.controller().deadline_terms();
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_DOUBLE_EQ(std::get<1>(terms[0]), 30.0);
  EXPECT_DOUBLE_EQ(std::get<2>(terms[0]), 2.0);
  auto objective = world.harness.controller().objective_value();
  ASSERT_TRUE(objective.ok());
  EXPECT_DOUBLE_EQ(objective.value(), 60.0);
}

TEST(DeadlineApp, MeetsDeadlinesAlone) {
  MalleableWorld world(2);
  InteractiveConfig config;
  config.period_s = 30;
  config.service_ref_s = 20;
  config.max_requests = 5;
  InteractiveApp app(world.harness.context(), config);
  ASSERT_TRUE(app.start().ok());
  world.harness.engine().run_until(400);
  ASSERT_TRUE(app.finished());
  EXPECT_EQ(app.requests_completed(), 5);
  EXPECT_DOUBLE_EQ(app.mean_tardiness(), 0.0);
}

TEST(DeadlineApp, TardinessPreemptsBatchCapacity) {
  // Two nodes, an interactive app on one of them. A width-2 bag
  // placement would improve the batch means but co-locate a worker with
  // the interactive server, pushing its predicted response past the
  // period; the tardiness term makes that trade lose, so the bag is
  // held at width 1 and the deadline is met.
  MalleableWorld world(2);
  InteractiveConfig icfg;
  icfg.period_s = 30;
  icfg.service_ref_s = 20;
  icfg.tardiness_weight = 20;
  icfg.max_requests = 18;
  InteractiveApp interactive(world.harness.context(), icfg);
  ASSERT_TRUE(interactive.start().ok());

  BagConfig bcfg;
  bcfg.malleable = true;
  bcfg.workers = "1 2";
  bcfg.max_iterations = 2;
  BagApp bag(world.harness.context(), bcfg);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 1)
      << "the deadline app's tardiness term must keep the bag off the "
         "interactive server's node";

  world.harness.engine().run_until(4000);
  ASSERT_TRUE(bag.finished());
  ASSERT_TRUE(interactive.finished());
  EXPECT_EQ(interactive.requests_completed(), 18);
  EXPECT_LT(interactive.mean_tardiness(), 0.5);
}

TEST(DeadlineApp, WithoutTardinessWeightBatchStealsTheNode) {
  // Counterfactual for the test above: zero weight disables the
  // deadline pressure, the optimizer takes the better batch means, and
  // the interactive app's requests run late.
  MalleableWorld world(2);
  InteractiveConfig icfg;
  icfg.period_s = 30;
  icfg.service_ref_s = 20;
  icfg.tardiness_weight = 0;
  icfg.max_requests = 18;
  InteractiveApp interactive(world.harness.context(), icfg);
  ASSERT_TRUE(interactive.start().ok());

  BagConfig bcfg;
  bcfg.malleable = true;
  bcfg.workers = "1 2";
  bcfg.max_iterations = 2;
  BagApp bag(world.harness.context(), bcfg);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 2);

  world.harness.engine().run_until(4000);
  EXPECT_GT(interactive.mean_tardiness(), 2.0);
}

// --- satellite: RSZ journaling and replay ---------------------------------

TEST(ResizeJournal, ResizeSurvivesCrashRecoveryBitForBit) {
  const std::string dir = ::testing::TempDir() + "malleable_rsz_" +
                          std::to_string(::getpid());
  auto clean = [&] {
    std::remove((dir + "/journal.wal").c_str());
    std::remove((dir + "/snapshot.hsn").c_str());
    std::remove((dir + "/snapshot.tmp").c_str());
    ::rmdir(dir.c_str());
  };
  clean();
  double clock = 0;
  persist::PersistConfig config;
  config.dir = dir;
  config.snapshot_min_journal_bytes = 0;

  core::Controller reference;
  reference.set_time_source([&clock] { return clock; });
  std::string pre_crash;
  {
    core::Controller live;
    live.set_time_source([&clock] { return clock; });
    auto persistence = persist::Persistence::open(config, live);
    ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
    auto step = [&](auto&& fn) {
      clock += 5;
      fn(live);
      fn(reference);
    };
    step([](core::Controller& c) {
      ASSERT_TRUE(c.add_nodes_script(testing::sp2_cluster_script(4)).ok());
      ASSERT_TRUE(c.finalize_cluster().ok());
    });
    step([](core::Controller& c) {
      // A granularity window holds the steered degree through the
      // recovery verification pass: without it the pass is free to
      // re-optimize the resize straight back to the argmin.
      auto id = c.register_script(testing::bag_bundle("1 2 3 4", 1000));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(id.value(), 1u);
    });
    step([](core::Controller& c) {
      ASSERT_TRUE(c.resize(1, "parallelism", 2).ok());
    });
    step([](core::Controller& c) {
      ASSERT_TRUE(c.resize(1, "parallelism", 3).ok());
    });
    ASSERT_TRUE((*persistence)->flush().ok());
    pre_crash = fingerprint(live);
    // Crash: the controller dies, the journal survives.
  }

  core::Controller recovered;
  auto persistence = persist::Persistence::open(config, recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_TRUE((*persistence)->recovery().recovered);
  EXPECT_EQ(fingerprint(recovered), pre_crash);
  EXPECT_EQ(fingerprint(recovered), fingerprint(reference));
  // The replayed degree is the latest one, not the first.
  const auto* bundle = recovered.bundle_state(1, "parallelism");
  ASSERT_NE(bundle, nullptr);
  EXPECT_DOUBLE_EQ(bundle->choice.variables.at("workerNodes"), 3.0);
  persistence.value().reset();
  clean();
}

}  // namespace
}  // namespace harmony
