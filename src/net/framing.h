// Length-prefixed framing for the Harmony wire protocol: 4-byte
// big-endian payload length followed by the payload. FrameBuffer
// reassembles frames from arbitrary byte chunks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace harmony::net {

// Frames above this are a protocol violation (sanity bound; bundle
// scripts are kilobytes).
inline constexpr uint32_t kMaxFrameBytes = 16u << 20;

std::string encode_frame(std::string_view payload);

class FrameBuffer {
 public:
  void feed(std::string_view bytes) { buffer_.append(bytes); }

  // Next complete frame's payload, or nullopt if more bytes are needed.
  // Returns an error (kProtocol) on an oversized length prefix; the
  // connection should be dropped.
  Result<std::optional<std::string>> next_frame();

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace harmony::net
