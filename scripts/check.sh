#!/usr/bin/env bash
# Full verification sweep: build + ctest in the regular config, then in
# the ASan+UBSan config, then the partitioned-decision-core suite under
# ThreadSanitizer (domain workers cross threads; the differential and
# storm tests are the ones that would race). Usage: scripts/check.sh [-j N]
set -euo pipefail

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

run_config() {
  local name="$1" dir="$2"; shift 2
  echo "=== [$name] configure ==="
  cmake -B "$dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$dir" -j "$jobs"
  echo "=== [$name] test ==="
  ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_config default build
run_config asan build-asan -DHARMONY_SANITIZE=ON

# TSan: only the multi-threaded decision-core suite — building the
# whole tree under a third config would double the sweep for tests
# that never leave one thread. apps_malleable_test rides along: the
# mid-iteration resize storm exercises the join/retire protocol.
echo "=== [tsan] configure ==="
cmake -B build-tsan -S . -DHARMONY_TSAN=ON
echo "=== [tsan] build ==="
cmake --build build-tsan -j "$jobs" \
  --target core_domain_test core_storm_test core_solver_test \
  core_scale_test apps_malleable_test
echo "=== [tsan] test ==="
ctest --test-dir build-tsan --output-on-failure -j "$jobs" \
  -R '^(core_(domain|storm|solver|scale)|apps_malleable)_test$'

# Anytime-allocator gates at smoke scale: budget_ms = 0 bit-identity,
# solver <= greedy, strict improvement on packing-stress. Does not
# rewrite BENCH_optimizer.json.
echo "=== [bench] abl_optimizer --smoke ==="
cmake --build build -j "$jobs" --target abl_optimizer
./build/bench/abl_optimizer --smoke

# Multi-process failover (kill -9 the primary under a client swarm;
# standby promotes, sessions RESUME, fingerprints stay bit-identical)
# runs in the default ctest sweep above as replica_failover_test; the
# bench adds promotion latency, storm drain and the <2% replication
# overhead gate at smoke scale.
echo "=== [bench] abl_failover --smoke ==="
cmake --build build -j "$jobs" --target abl_failover
./build/bench/abl_failover --smoke

# Scoped-domain scaling at smoke scale: 250- and 1k-node clusters with
# the same fixed workload, decision fingerprints bit-identical to the
# --single-domain reference. Does not rewrite BENCH_scale.json numbers
# used in the README (those come from the full sweep).
echo "=== [bench] abl_scale --smoke ==="
cmake --build build -j "$jobs" --target abl_scale
./build/bench/abl_scale --smoke

# Malleability gates at smoke scale: live grow/shrink strictly improves
# the bag+interactive mix, deadline tardiness ~0 under preemption, and
# the decision path is bit-identical with malleability off. The sim
# clock makes this deterministic and sub-second.
echo "=== [bench] abl_malleable --smoke ==="
cmake --build build -j "$jobs" --target abl_malleable
./build/bench/abl_malleable --smoke

echo "=== all configs green ==="
