#include "rsl/interp.h"

#include "common/strings.h"
#include "rsl/value.h"

namespace harmony::rsl {

Interp::Interp() {
  frames_.emplace_back();  // global frame
  register_builtins(*this);
}

void Interp::register_command(const std::string& name, CommandFn fn) {
  commands_[name] = std::move(fn);
}

bool Interp::has_command(const std::string& name) const {
  return commands_.count(name) > 0 || procs_.count(name) > 0;
}

std::vector<std::string> Interp::command_names() const {
  std::vector<std::string> names;
  names.reserve(commands_.size() + procs_.size());
  for (const auto& [name, fn] : commands_) names.push_back(name);
  for (const auto& [name, proc] : procs_) names.push_back(name);
  return names;
}

void Interp::set_var(const std::string& name, std::string value) {
  frames_.back()[name] = std::move(value);
}

void Interp::set_global(const std::string& name, std::string value) {
  frames_.front()[name] = std::move(value);
}

Result<std::string> Interp::get_var(const std::string& name) const {
  auto it = frames_.back().find(name);
  if (it != frames_.back().end()) return it->second;
  if (frames_.size() > 1) {
    auto git = frames_.front().find(name);
    if (git != frames_.front().end()) return git->second;
  }
  return Err<std::string>(ErrorCode::kNotFound,
                          "no such variable: " + name);
}

bool Interp::has_var(const std::string& name) const {
  if (frames_.back().count(name)) return true;
  return frames_.size() > 1 && frames_.front().count(name) > 0;
}

void Interp::unset_var(const std::string& name) {
  frames_.back().erase(name);
  if (frames_.size() == 1) return;
}

Status Interp::define_proc(const std::string& name, Proc proc) {
  procs_[name] = std::move(proc);
  return Status::Ok();
}

const Interp::Proc* Interp::find_proc(const std::string& name) const {
  auto it = procs_.find(name);
  return it == procs_.end() ? nullptr : &it->second;
}

void Interp::push_frame() { frames_.emplace_back(); }

void Interp::pop_frame() {
  HARMONY_ASSERT(frames_.size() > 1);
  frames_.pop_back();
}

Result<std::string> Interp::eval(std::string_view script) {
  auto parsed = parse_script(script);
  if (!parsed.ok()) {
    return Err<std::string>(parsed.error().code, parsed.error().message);
  }
  std::string result;
  for (const auto& cmd : parsed.value()) {
    auto r = exec_command(cmd);
    if (!r.ok()) return r;
    result = std::move(r).value();
    if (flow_ != Flow::kNormal) break;
  }
  return result;
}

Result<std::string> Interp::exec_command(const ParsedCommand& cmd) {
  std::vector<std::string> argv;
  argv.reserve(cmd.words.size());
  for (const auto& word : cmd.words) {
    auto sub = substitute_word(word);
    if (!sub.ok()) return sub;
    argv.push_back(std::move(sub).value());
  }
  if (argv.empty()) return std::string();
  return eval_argv(argv);
}

Result<std::string> Interp::eval_argv(const std::vector<std::string>& argv) {
  HARMONY_ASSERT(!argv.empty());
  const std::string& name = argv[0];

  if (const Proc* proc = find_proc(name)) {
    // Bind arguments before pushing the callee frame so defaults can
    // reference nothing (they are literals).
    if (frames_.size() >= kMaxFrameDepth) {
      return Err<std::string>(ErrorCode::kEvalError,
                              "recursion limit exceeded in proc " + name);
    }
    const size_t given = argv.size() - 1;
    const size_t fixed = proc->params.size();
    if (!proc->has_varargs && given > fixed) {
      return Err<std::string>(
          ErrorCode::kEvalError,
          str_format("proc %s: expected at most %zu args, got %zu",
                     name.c_str(), fixed, given));
    }
    Frame frame;
    for (size_t i = 0; i < fixed; ++i) {
      const auto& [pname, pdefault] = proc->params[i];
      if (i < given) {
        frame[pname] = argv[i + 1];
      } else if (!pdefault.empty()) {
        frame[pname] = pdefault;
      } else {
        return Err<std::string>(
            ErrorCode::kEvalError,
            str_format("proc %s: missing argument %s", name.c_str(),
                       pname.c_str()));
      }
    }
    if (proc->has_varargs) {
      std::vector<std::string> rest;
      for (size_t i = fixed; i < given; ++i) rest.push_back(argv[i + 1]);
      frame["args"] = list_build(rest);
    }
    // Copy the proc body: running the body may redefine the proc itself.
    std::string body = proc->body;
    frames_.push_back(std::move(frame));
    auto result = eval(body);
    pop_frame();
    if (flow_ == Flow::kReturn) flow_ = Flow::kNormal;
    return result;
  }

  auto it = commands_.find(name);
  if (it == commands_.end()) {
    return Err<std::string>(ErrorCode::kEvalError,
                            "invalid command name: \"" + name + "\"");
  }
  // Copy the handler: command implementations may re-register themselves.
  CommandFn fn = it->second;
  return fn(*this, argv);
}

Result<std::string> Interp::substitute_word(const Word& word) {
  if (word.kind == WordKind::kBraced) return word.literal;
  std::string out;
  for (const auto& seg : word.segments) {
    switch (seg.kind) {
      case SegKind::kLiteral:
        out.append(seg.text);
        break;
      case SegKind::kVariable: {
        auto value = get_var(seg.text);
        if (!value.ok()) {
          return Err<std::string>(
              value.error().code,
              str_format("line %d: %s", word.line,
                         value.error().message.c_str()));
        }
        out.append(value.value());
        break;
      }
      case SegKind::kCommand: {
        auto value = eval(seg.text);
        if (!value.ok()) return value;
        out.append(value.value());
        break;
      }
    }
  }
  return out;
}

}  // namespace harmony::rsl
