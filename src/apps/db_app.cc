#include "apps/db_app.h"

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::apps {

std::string db_client_bundle_script(const DbClientConfig& config) {
  // Amounts are the application's own estimates of total per-query
  // resource use, as §3.5 prescribes: QS concentrates CPU at the
  // server and ships only results; DS runs the join at the client and
  // ships selected buckets, less whatever its cache (sized by the
  // memory Harmony grants) retains. The DS link expression is the
  // paper's memory-parameterized bandwidth, in its intended decreasing
  // form (see DESIGN.md on the OCR fix): two 2.1 MB buckets scale down
  // linearly as the cache approaches 10 buckets' worth (42 MB).
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS\n"
      "    {node server {hostname %s} {seconds 18} {memory 20}}\n"
      "    {node client {hostname %s} {seconds 0.1} {memory 2}}\n"
      "    {link client server 0.05}}\n"
      "  {DS\n"
      "    {node server {hostname %s} {seconds 2} {memory 20}}\n"
      "    {node client {hostname %s} {memory >=17} {seconds 16.2}}\n"
      "    {link client server {4.2 * (1 - (client.memory > 42 ? 42 : "
      "client.memory) / 42)}}}\n"
      "}\n",
      config.instance, config.server_host.c_str(), config.client_host.c_str(),
      config.server_host.c_str(), config.client_host.c_str());
}

DbClientApp::DbClientApp(SimContext ctx, db::DbEngine* engine,
                         DbClientConfig config)
    : ctx_(ctx),
      engine_(engine),
      config_(std::move(config)),
      rng_(config_.seed),
      metric_name_(str_format("db.client%d.response", config_.instance)) {
  transport_ = std::make_unique<client::InProcTransport>(ctx_.controller);
  client_ = std::make_unique<client::HarmonyClient>(transport_.get());
}

Status DbClientApp::start() {
  auto status = client_->startup(
      str_format("DBclient-%d", config_.instance));
  if (!status.ok()) return status;
  status = client_->bundle_setup(db_client_bundle_script(config_));
  if (!status.ok()) return status;
  client_->add_variable("where", "QS");
  client_->add_variable("where.client.memory", "17");
  status = client_->wait_for_update();
  if (!status.ok()) return status;

  auto client_node = ctx_.node_of(config_.client_host);
  auto server_node = ctx_.node_of(config_.server_host);
  if (!client_node.ok() || !server_node.ok()) {
    return Status(ErrorCode::kNotFound, "client or server host unknown");
  }
  client_node_ = client_node.value();
  server_node_ = server_node.value();

  poll_configuration();
  issue_query();
  return Status::Ok();
}

void DbClientApp::stop() {
  stop_requested_ = true;
  if (!query_in_flight_ && client_->registered()) {
    auto status = client_->end();
    if (!status.ok()) {
      HLOG_WARN("db_app") << metric_name_
                          << " harmony_end failed: " << status.to_string();
    }
  }
}

void DbClientApp::poll_configuration() {
  client_->poll_updates();
  db::Placement next = client_->var("where") == "DS"
                           ? db::Placement::kDataShipping
                           : db::Placement::kQueryShipping;
  if (next != placement_) {
    HLOG_INFO("db_app") << metric_name_ << " reconfigured to "
                        << db::placement_name(next) << " at t=" << ctx_.now();
    ctx_.metrics->record(
        str_format("db.client%d.placement", config_.instance), ctx_.now(),
        next == db::Placement::kDataShipping ? 1.0 : 0.0);
    placement_ = next;
  }
  // Harmony may have granted a different amount of client memory; the
  // cache resizes (evicting if shrunk) — the paper's memory<->bandwidth
  // tradeoff in action.
  double memory = client_->var_number("where.client.memory", 17.0);
  if (memory != cache_.capacity_mb()) cache_.resize(memory);
}

void DbClientApp::issue_query() {
  if (stop_requested_) {
    stop();
    return;
  }
  query_in_flight_ = true;
  const double started_at = ctx_.now();

  db::BenchmarkQuery query;
  query.left_ten_percent = static_cast<int32_t>(rng_.next_below(10));
  query.right_ten_percent = static_cast<int32_t>(rng_.next_below(10));

  // Stage 1: the query message travels client -> server.
  auto request = ctx_.net->transfer(
      client_node_, server_node_, config_.request_mb, [this, query,
                                                       started_at] {
        // Stage 2: really execute to learn this query's work profile.
        db::BucketCache* cache = placement_ == db::Placement::kDataShipping
                                     ? &cache_
                                     : nullptr;
        db::ExecutionProfile profile =
            engine_->execute(query, placement_, cache, config_.costs);
        // Stage 3: server CPU.
        ctx_.cpu->submit(server_node_, profile.server_cpu_s, [this, profile,
                                                              started_at] {
          // Stage 4: results / buckets travel server -> client.
          auto response = ctx_.net->transfer(
              server_node_, client_node_, profile.transfer_mb,
              [this, profile, started_at] {
                // Stage 5: client CPU (parse + any client-side join).
                ctx_.cpu->submit(client_node_, profile.client_cpu_s,
                                 [this, started_at] {
                                   finish_query(started_at);
                                 });
              });
          HARMONY_ASSERT_MSG(response.ok(), "server->client disconnected");
        });
      });
  HARMONY_ASSERT_MSG(request.ok(), "client->server disconnected");
}

void DbClientApp::finish_query(double started_at) {
  query_in_flight_ = false;
  ++queries_completed_;
  ctx_.metrics->record(metric_name_, ctx_.now(), ctx_.now() - started_at);
  // Natural phase boundary: poll Harmony before the next query.
  poll_configuration();
  if (stop_requested_) {
    stop();
    return;
  }
  if (config_.think_time_s > 0) {
    ctx_.engine->schedule(config_.think_time_s, [this] { issue_query(); });
  } else {
    issue_query();
  }
}

}  // namespace harmony::apps
