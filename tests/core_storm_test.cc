// Failure-injection / property test: a randomized storm of arrivals,
// departures, manual steering and re-evaluations must never corrupt the
// controller's resource accounting, namespace, or predictions — and
// when everything departs, the cluster must be exactly as it started.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/console.h"
#include "core/controller.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::simple_bundle;
using harmony::testing::sp2_cluster_script;

// Exact accounting invariant: the pool's reserved memory and placement
// counts equal the sums over all configured allocations.
void expect_accounting_exact(const Controller& controller) {
  std::map<cluster::NodeId, double> reserved;
  std::map<cluster::NodeId, int> placements;
  for (const auto& instance : controller.state().instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      for (const auto& entry : bundle.allocation.entries) {
        reserved[entry.node] += entry.requirement.memory_mb;
        ++placements[entry.node];
      }
    }
  }
  const auto& pool = *controller.state().pool;
  for (const auto& node : controller.topology().nodes()) {
    double expected_free = node.memory_mb - reserved[node.id];
    EXPECT_NEAR(pool.available_memory(node.id), expected_free, 1e-6)
        << node.hostname;
    EXPECT_EQ(pool.process_count(node.id), placements[node.id])
        << node.hostname;
  }
  EXPECT_TRUE(pool.invariants_hold());
}

// Every configured bundle must be visible in the namespace with a
// valid option, and predictions must be finite.
void expect_consistent_views(const Controller& controller) {
  for (const auto& instance : controller.state().instances) {
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      auto option = controller.names().get_string(
          instance.path() + "." + bundle.spec.bundle + ".option");
      ASSERT_TRUE(option.ok()) << instance.path();
      EXPECT_EQ(option.value(), bundle.choice.option);
      EXPECT_NE(bundle.spec.find_option(bundle.choice.option), nullptr);
    }
  }
  auto predictions = controller.predictions();
  ASSERT_TRUE(predictions.ok());
  for (const auto& [id, seconds] : predictions.value()) {
    EXPECT_TRUE(std::isfinite(seconds)) << id;
    EXPECT_GE(seconds, 0.0) << id;
  }
}

class StormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StormTest, RandomLifecyclesPreserveInvariants) {
  Controller controller;
  ASSERT_TRUE(controller.add_nodes_script(sp2_cluster_script(6)).ok());
  ASSERT_TRUE(controller.finalize_cluster().ok());
  double now = 0;
  controller.set_time_source([&now] { return now; });

  Rng rng(GetParam());
  std::vector<InstanceId> live;
  int arrivals = 0, departures = 0, rejections = 0;

  for (int step = 0; step < 300; ++step) {
    now += rng.next_double(0.1, 30.0);
    double dice = rng.next_double();
    if (dice < 0.45 || live.empty()) {
      // Arrival of a random application type.
      std::string script;
      switch (rng.next_below(3)) {
        case 0:
          script = db_client_bundle(
              str_format("sp2-%02d", static_cast<int>(rng.next_below(6))),
              static_cast<int>(rng.next_int(1, 99)));
          break;
        case 1:
          script = bag_bundle("1 2 3 4", /*granularity=*/0);
          break;
        default:
          script = simple_bundle(static_cast<int>(rng.next_int(1, 3)),
                                 /*seconds=*/100, /*memory=*/16);
          break;
      }
      auto id = controller.register_application([&] {
        std::vector<rsl::BundleSpec> bundles;
        rsl::RslHost host;
        host.on_bundle([&bundles](const rsl::BundleSpec& b) {
          bundles.push_back(b);
          return Status::Ok();
        });
        EXPECT_TRUE(host.eval_script(script).ok());
        return bundles;
      }());
      if (id.ok()) {
        live.push_back(id.value());
        ++arrivals;
      } else {
        EXPECT_EQ(id.error().code, ErrorCode::kNoMatch)
            << id.error().to_string();
        ++rejections;
      }
    } else if (dice < 0.75) {
      // Departure.
      size_t pick = rng.next_below(live.size());
      ASSERT_TRUE(controller.unregister(live[pick]).ok());
      live.erase(live.begin() + static_cast<long>(pick));
      ++departures;
    } else if (dice < 0.82) {
      ASSERT_TRUE(controller.reevaluate().ok());
    } else if (dice < 0.88) {
      // Node churn: toggle a random node's availability (never let the
      // whole cluster vanish).
      std::string host = str_format("sp2-%02d",
                                    static_cast<int>(rng.next_below(6)));
      auto node = controller.topology().find_by_hostname(host).value();
      bool online = controller.state().pool->is_online(node);
      if (!online || controller.state().pool->online_count() > 2) {
        ASSERT_TRUE(controller.set_node_online(host, !online).ok());
      }
    } else if (dice < 0.93) {
      // External load comes and goes.
      std::string host = str_format("sp2-%02d",
                                    static_cast<int>(rng.next_below(6)));
      ASSERT_TRUE(controller
                      .report_external_load(
                          host, static_cast<int>(rng.next_below(4)))
                      .ok());
    } else {
      // Manual steering to a random declared option (may legitimately
      // fail if resources do not fit; must never corrupt state).
      size_t pick = rng.next_below(live.size());
      const InstanceState* instance =
          controller.state().find_instance(live[pick]);
      ASSERT_NE(instance, nullptr);
      const BundleState& bundle = instance->bundles[0];
      auto choices = enumerate_choices(bundle.spec);
      const OptionChoice& choice = choices[rng.next_below(choices.size())];
      (void)controller.set_option(live[pick], bundle.spec.bundle, choice);
    }
    expect_accounting_exact(controller);
    expect_consistent_views(controller);
  }

  EXPECT_GT(arrivals, 50);
  EXPECT_GT(departures, 20);

  // Drain: afterwards the cluster must be pristine.
  for (InstanceId id : live) {
    ASSERT_TRUE(controller.unregister(id).ok());
  }
  for (const auto& node : controller.topology().nodes()) {
    EXPECT_NEAR(controller.state().pool->available_memory(node.id),
                node.memory_mb, 1e-6);
    EXPECT_EQ(controller.state().pool->process_count(node.id), 0);
  }
  EXPECT_EQ(controller.live_instances(), 0u);
  auto final_predictions = controller.predictions();
  ASSERT_TRUE(final_predictions.ok());
  EXPECT_TRUE(final_predictions.value().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StormTest,
                         ::testing::Values(1, 42, 1999, 20260707));

}  // namespace
}  // namespace harmony::core
