#include "core/optimizer.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "core/binding.h"

namespace harmony::core {

Optimizer::Optimizer(const Predictor* predictor, const Objective* objective,
                     OptimizerConfig config)
    : predictor_(predictor), objective_(objective), config_(config) {
  HARMONY_ASSERT(predictor != nullptr && objective != nullptr);
}

Result<std::vector<std::pair<InstanceId, double>>> Optimizer::predict_all(
    const SystemState& state) const {
  std::vector<std::pair<InstanceId, double>> out;
  auto load = state.node_load();
  for (const auto& instance : state.instances) {
    double total = 0.0;
    bool any = false;
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      const rsl::OptionSpec* option =
          bundle.spec.find_option(bundle.choice.option);
      if (option == nullptr) {
        return Err<std::vector<std::pair<InstanceId, double>>>(
            ErrorCode::kNotFound,
            "configured option vanished: " + bundle.choice.option);
      }
      PredictionInput input;
      input.option = option;
      input.choice = &bundle.choice;
      input.allocation = &bundle.allocation;
      input.topology = &state.topology;
      input.node_load = &load;
      input.names = names_;
      auto predicted = predictor_->predict(input);
      if (!predicted.ok()) {
        return Err<std::vector<std::pair<InstanceId, double>>>(
            predicted.error().code, predicted.error().message);
      }
      total += predicted.value();
      any = true;
    }
    if (any) out.emplace_back(instance.id, total);
  }
  return out;
}

Result<double> Optimizer::objective_value(const SystemState& state) const {
  auto predictions = predict_all(state);
  if (!predictions.ok()) {
    return Err<double>(predictions.error().code, predictions.error().message);
  }
  std::vector<double> times;
  times.reserve(predictions.value().size());
  for (const auto& [id, t] : predictions.value()) times.push_back(t);
  return objective_->evaluate(times);
}

Result<cluster::Allocation> Optimizer::try_install(
    SystemState& state, BundleState& bundle,
    const OptionChoice& choice) const {
  const rsl::OptionSpec* option = bundle.spec.find_option(choice.option);
  if (option == nullptr) {
    return Err<cluster::Allocation>(ErrorCode::kNotFound,
                                    "no such option: " + choice.option);
  }
  auto bound = bind_option(*option, choice, names_);
  if (!bound.ok()) {
    return Err<cluster::Allocation>(bound.error().code, bound.error().message);
  }
  cluster::Matcher matcher(config_.match_policy);
  return matcher.match(bound.value().node_requirements,
                       bound.value().link_requirements, *state.pool);
}

Result<Decision> Optimizer::optimize_bundle(SystemState& state,
                                            InstanceState& instance,
                                            BundleState& bundle, double now,
                                            bool require_feasible) {
  // Granularity gate: hold the current option until its window elapses.
  if (bundle.configured && config_.respect_granularity) {
    const rsl::OptionSpec* current =
        bundle.spec.find_option(bundle.choice.option);
    if (current != nullptr && current->granularity_s > 0 &&
        now - bundle.last_switch_time < current->granularity_s) {
      return Decision{instance.id, bundle.spec.bundle, bundle.choice, false};
    }
  }

  // Save and release the current configuration: candidates are matched
  // against the pool as if this bundle held nothing.
  const bool had_config = bundle.configured;
  const OptionChoice previous_choice = bundle.choice;
  const cluster::Allocation previous_allocation = bundle.allocation;
  if (had_config) {
    auto released = cluster::Matcher::release(bundle.allocation, *state.pool);
    HARMONY_ASSERT_MSG(released.ok(), "releasing current allocation failed");
    bundle.configured = false;
    bundle.allocation = {};
  }

  struct Best {
    OptionChoice choice;
    double objective;
  };
  std::optional<Best> best;

  // Expand option choices with the configured memory grant levels (only
  // meaningful for options that declare >= memory constraints; a
  // too-generous grant simply fails to match and is skipped).
  std::vector<double> levels = config_.memory_grant_levels;
  if (levels.empty()) levels = {1.0};
  std::vector<OptionChoice> candidates;
  for (const OptionChoice& base : enumerate_choices(bundle.spec)) {
    bool open_ended = false;
    if (const rsl::OptionSpec* option = bundle.spec.find_option(base.option)) {
      for (const auto& node : option->nodes) {
        if (node.memory.op == rsl::Constraint::Op::kGe) open_ended = true;
      }
    }
    for (double level : levels) {
      OptionChoice candidate = base;
      candidate.memory_grant = level;
      candidates.push_back(std::move(candidate));
      if (!open_ended) break;  // further levels would be identical
    }
  }

  for (const OptionChoice& candidate : candidates) {
    auto allocation = try_install(state, bundle, candidate);
    if (!allocation.ok()) continue;  // infeasible under current pool
    ++candidates_evaluated_;
    bundle.choice = candidate;
    bundle.allocation = allocation.value();
    bundle.configured = true;

    auto predictions = predict_all(state);
    double objective = std::numeric_limits<double>::infinity();
    if (predictions.ok()) {
      std::vector<double> times;
      times.reserve(predictions.value().size());
      for (auto& [id, t] : predictions.value()) {
        // Frictional cost of switching away from the current option.
        if (config_.respect_friction && had_config && id == instance.id &&
            !(candidate == previous_choice)) {
          const rsl::OptionSpec* opt = bundle.spec.find_option(candidate.option);
          if (opt != nullptr) t += opt->friction_s;
        }
        times.push_back(t);
      }
      objective = objective_->evaluate(times);
    }

    if (std::isfinite(objective) && (!best || objective < best->objective)) {
      best = Best{candidate, objective};
    }

    auto released = cluster::Matcher::release(bundle.allocation, *state.pool);
    HARMONY_ASSERT(released.ok());
    bundle.configured = false;
    bundle.allocation = {};
  }

  if (!best) {
    // Nothing feasible: restore the previous configuration if any.
    if (had_config) {
      auto restored = try_install(state, bundle, previous_choice);
      HARMONY_ASSERT_MSG(restored.ok(), "restoring previous allocation failed");
      bundle.choice = previous_choice;
      bundle.allocation = std::move(restored).value();
      bundle.configured = true;
      return Decision{instance.id, bundle.spec.bundle, bundle.choice, false};
    }
    if (require_feasible) {
      return Err<Decision>(ErrorCode::kNoMatch,
                           str_format("no feasible option for %s.%s",
                                      instance.path().c_str(),
                                      bundle.spec.bundle.c_str()));
    }
    return Decision{instance.id, bundle.spec.bundle, OptionChoice{}, false};
  }

  auto allocation = try_install(state, bundle, best->choice);
  HARMONY_ASSERT_MSG(allocation.ok(), "re-matching the winner failed");
  bundle.choice = best->choice;
  bundle.allocation = std::move(allocation).value();
  bundle.configured = true;
  // A migration (same option, different nodes) is a reconfiguration
  // too: the application must learn its new node assignment.
  bool changed = !had_config || !(best->choice == previous_choice) ||
                 !bundle.allocation.same_placement(previous_allocation);
  if (changed) bundle.last_switch_time = now;
  HLOG_DEBUG("optimizer") << instance.path() << "." << bundle.spec.bundle
                          << " -> " << bundle.choice.to_string()
                          << (changed ? " (changed)" : " (kept)");
  return Decision{instance.id, bundle.spec.bundle, bundle.choice, changed};
}

Result<Decision> Optimizer::configure_first_feasible(SystemState& state,
                                                     InstanceState& instance,
                                                     BundleState& bundle,
                                                     double now) {
  HARMONY_ASSERT(!bundle.configured);
  for (const OptionChoice& candidate : enumerate_choices(bundle.spec)) {
    auto allocation = try_install(state, bundle, candidate);
    if (!allocation.ok()) continue;
    ++candidates_evaluated_;
    bundle.choice = candidate;
    bundle.allocation = std::move(allocation).value();
    bundle.configured = true;
    bundle.last_switch_time = now;
    return Decision{instance.id, bundle.spec.bundle, bundle.choice, true};
  }
  return Err<Decision>(ErrorCode::kNoMatch,
                       str_format("no feasible option for %s.%s",
                                  instance.path().c_str(),
                                  bundle.spec.bundle.c_str()));
}

Result<std::vector<Decision>> Optimizer::on_arrival(SystemState& state,
                                                    InstanceId id,
                                                    double now) {
  if (config_.mode == OptimizerConfig::Mode::kExhaustive) {
    return exhaustive(state, now);
  }
  InstanceState* arrived = state.find_instance(id);
  if (arrived == nullptr) {
    return Err<std::vector<Decision>>(ErrorCode::kNotFound,
                                      "no such instance");
  }
  std::vector<Decision> decisions;
  // 1. Configure the new application's bundles, definition order.
  for (auto& bundle : arrived->bundles) {
    auto decision =
        config_.initial_policy == OptimizerConfig::InitialPolicy::kFirstFeasible
            ? configure_first_feasible(state, *arrived, bundle, now)
            : optimize_bundle(state, *arrived, bundle, now,
                              /*require_feasible=*/true);
    if (!decision.ok()) {
      return Err<std::vector<Decision>>(decision.error().code,
                                        decision.error().message);
    }
    decisions.push_back(std::move(decision).value());
  }
  if (!config_.reevaluate_on_arrival) return decisions;
  // 2. Re-evaluate existing applications.
  for (auto& instance : state.instances) {
    if (instance.id == id) continue;
    for (auto& bundle : instance.bundles) {
      auto decision = optimize_bundle(state, instance, bundle, now,
                                      /*require_feasible=*/false);
      if (!decision.ok()) {
        return Err<std::vector<Decision>>(decision.error().code,
                                          decision.error().message);
      }
      decisions.push_back(std::move(decision).value());
    }
  }
  return decisions;
}

Result<std::vector<Decision>> Optimizer::reevaluate(SystemState& state,
                                                    double now) {
  if (config_.mode == OptimizerConfig::Mode::kExhaustive) {
    return exhaustive(state, now);
  }
  std::vector<Decision> decisions;
  for (auto& instance : state.instances) {
    for (auto& bundle : instance.bundles) {
      auto decision = optimize_bundle(state, instance, bundle, now,
                                      /*require_feasible=*/false);
      if (!decision.ok()) {
        return Err<std::vector<Decision>>(decision.error().code,
                                          decision.error().message);
      }
      decisions.push_back(std::move(decision).value());
    }
  }
  return decisions;
}

Result<Decision> Optimizer::apply_choice(SystemState& state, InstanceId id,
                                         const std::string& bundle_name,
                                         const OptionChoice& choice,
                                         double now) {
  InstanceState* instance = state.find_instance(id);
  if (instance == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound, "no such instance");
  }
  BundleState* bundle = instance->find_bundle(bundle_name);
  if (bundle == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound,
                         "no such bundle: " + bundle_name);
  }
  if (bundle->spec.find_option(choice.option) == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound,
                         "no such option: " + choice.option);
  }
  const bool had_config = bundle->configured;
  const OptionChoice previous = bundle->choice;
  if (had_config) {
    if (choice == previous) {
      return Decision{id, bundle_name, previous, false};
    }
    auto released = cluster::Matcher::release(bundle->allocation, *state.pool);
    HARMONY_ASSERT(released.ok());
    bundle->configured = false;
    bundle->allocation = {};
  }
  auto allocation = try_install(state, *bundle, choice);
  if (!allocation.ok()) {
    if (had_config) {
      auto restored = try_install(state, *bundle, previous);
      HARMONY_ASSERT_MSG(restored.ok(), "restoring previous allocation failed");
      bundle->choice = previous;
      bundle->allocation = std::move(restored).value();
      bundle->configured = true;
    }
    return Err<Decision>(allocation.error().code, allocation.error().message);
  }
  bundle->choice = choice;
  bundle->allocation = std::move(allocation).value();
  bundle->configured = true;
  bundle->last_switch_time = now;
  return Decision{id, bundle_name, choice, true};
}

// Joint search over the full cartesian space of (instance, bundle)
// choices. Exponential; exists as the quality baseline for ablation A1.
// Memory grant levels are not expanded here — the joint space is large
// enough already, and the greedy pass is the production path.
Result<std::vector<Decision>> Optimizer::exhaustive(SystemState& state,
                                                    double now) {
  struct Slot {
    InstanceState* instance;
    BundleState* bundle;
    std::vector<OptionChoice> choices;
    OptionChoice previous;
    bool had_config;
  };
  std::vector<Slot> slots;
  size_t combinations = 1;
  for (auto& instance : state.instances) {
    for (auto& bundle : instance.bundles) {
      Slot slot;
      slot.instance = &instance;
      slot.bundle = &bundle;
      slot.choices = enumerate_choices(bundle.spec);
      slot.previous = bundle.choice;
      slot.had_config = bundle.configured;
      if (slot.choices.empty()) continue;
      combinations *= slot.choices.size();
      if (combinations > config_.exhaustive_limit) {
        return Err<std::vector<Decision>>(
            ErrorCode::kCapacity,
            str_format("exhaustive search space exceeds limit (%zu)",
                       config_.exhaustive_limit));
      }
      slots.push_back(std::move(slot));
    }
  }

  // Release everything; try each combination from scratch.
  for (auto& slot : slots) {
    if (slot.bundle->configured) {
      auto released =
          cluster::Matcher::release(slot.bundle->allocation, *state.pool);
      HARMONY_ASSERT(released.ok());
      slot.bundle->configured = false;
      slot.bundle->allocation = {};
    }
  }

  std::vector<size_t> index(slots.size(), 0);
  std::optional<std::vector<size_t>> best_index;
  double best_objective = std::numeric_limits<double>::infinity();

  auto try_combination = [&]() -> bool {
    size_t installed = 0;
    bool feasible = true;
    for (size_t i = 0; i < slots.size(); ++i) {
      auto allocation =
          try_install(state, *slots[i].bundle, slots[i].choices[index[i]]);
      if (!allocation.ok()) {
        feasible = false;
        break;
      }
      slots[i].bundle->choice = slots[i].choices[index[i]];
      slots[i].bundle->allocation = std::move(allocation).value();
      slots[i].bundle->configured = true;
      ++installed;
    }
    double objective = std::numeric_limits<double>::infinity();
    if (feasible) {
      ++candidates_evaluated_;
      auto predictions = predict_all(state);
      if (predictions.ok()) {
        std::vector<double> times;
        for (auto& [id, t] : predictions.value()) times.push_back(t);
        objective = objective_->evaluate(times);
      }
    }
    for (size_t i = installed; i-- > 0;) {
      auto released =
          cluster::Matcher::release(slots[i].bundle->allocation, *state.pool);
      HARMONY_ASSERT(released.ok());
      slots[i].bundle->configured = false;
      slots[i].bundle->allocation = {};
    }
    if (std::isfinite(objective) && objective < best_objective) {
      best_objective = objective;
      best_index = index;
    }
    // Advance the odometer.
    for (size_t i = 0; i < slots.size(); ++i) {
      if (++index[i] < slots[i].choices.size()) return true;
      index[i] = 0;
    }
    return false;
  };
  if (!slots.empty()) {
    while (try_combination()) {
    }
  }

  if (!best_index) {
    return Err<std::vector<Decision>>(ErrorCode::kNoMatch,
                                      "no feasible joint configuration");
  }
  std::vector<Decision> decisions;
  for (size_t i = 0; i < slots.size(); ++i) {
    const OptionChoice& winner = slots[i].choices[(*best_index)[i]];
    auto allocation = try_install(state, *slots[i].bundle, winner);
    HARMONY_ASSERT_MSG(allocation.ok(), "re-matching joint winner failed");
    slots[i].bundle->choice = winner;
    slots[i].bundle->allocation = std::move(allocation).value();
    slots[i].bundle->configured = true;
    bool changed = !slots[i].had_config || !(winner == slots[i].previous);
    if (changed) slots[i].bundle->last_switch_time = now;
    decisions.push_back(Decision{slots[i].instance->id,
                                 slots[i].bundle->spec.bundle, winner,
                                 changed});
  }
  return decisions;
}

}  // namespace harmony::core
