// The Harmony process of §5: "a server that listens on a well-known
// port and waits for connections from application processes." Single-
// threaded poll(2) loop; every connected application gets its variable
// updates pushed as UPDATE frames. A disconnect implies harmony_end for
// every instance the connection registered.
#pragma once

#include <poll.h>

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "core/controller.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"

namespace harmony::net {

class HarmonyTcpServer {
 public:
  // port 0 = pick an ephemeral port (tests).
  HarmonyTcpServer(core::Controller* controller, uint16_t port);
  ~HarmonyTcpServer();

  Result<uint16_t> start();  // bind + listen; returns the bound port
  uint16_t port() const { return port_; }

  // Runs one poll iteration (accept / read / dispatch / write).
  // Returns true if any progress was made.
  bool run_once(int timeout_ms);
  // Loops until stop() (from a dispatched handler) or `until_idle_ms`
  // of inactivity when positive.
  void run(int until_idle_ms = -1);
  void stop() { stopping_ = true; }

  size_t connection_count() const { return connections_.size(); }

 private:
  struct Connection {
    Fd fd;
    FrameBuffer inbound;
    std::string outbound;
    std::vector<core::InstanceId> instances;
    bool drop = false;
  };

  void accept_new();
  void handle_readable(Connection& connection);
  void dispatch(Connection& connection, const Message& message);
  Message handle_message(Connection& connection, const Message& message);
  void send(Connection& connection, const Message& message);
  void flush_writable(Connection& connection);
  void reap_dropped();

  core::Controller* controller_;
  uint16_t port_;
  Fd listener_;
  std::vector<std::unique_ptr<Connection>> connections_;
  // Reused across run_once ticks; resized only when the connection set
  // changes, so the steady-state poll loop allocates nothing.
  std::vector<pollfd> pollfds_;
  // stop() may be called from another thread (tests, signal handlers);
  // everything else is single-threaded.
  std::atomic<bool> stopping_ = false;
};

}  // namespace harmony::net
