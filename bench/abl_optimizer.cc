// Ablation A1 — greedy one-bundle-at-a-time vs exhaustive joint search.
// The paper (§4.3) chooses greedy: "a simple form of greedy
// optimization that will not necessarily produce a globally optimal
// value, but it is simple and easy to implement." This bench quantifies
// the tradeoff: objective quality vs candidate evaluations and decision
// wall time, as database clients accumulate.
#include <chrono>
#include <cstdio>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

struct RunResult {
  double objective = 0;
  uint64_t candidates = 0;
  double wall_ms = 0;
  bool ok = true;
};

RunResult run_mode(core::OptimizerConfig::Mode mode, int clients) {
  core::ControllerConfig config;
  config.optimizer.mode = mode;
  core::Controller controller(config);
  RunResult result;
  if (!controller.add_nodes_script(db_cluster_script(clients)).ok() ||
      !controller.finalize_cluster().ok()) {
    result.ok = false;
    return result;
  }
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    auto id = controller.register_script(db_client_bundle_script(client));
    if (!id.ok()) {
      result.ok = false;
      return result;
    }
  }
  auto t1 = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.candidates = controller.optimizer().candidates_evaluated();
  auto objective = controller.objective_value();
  result.objective = objective.ok() ? objective.value() : -1;
  return result;
}

int run() {
  std::printf("=== Ablation A1: greedy vs exhaustive option search ===\n");
  std::printf("scenario: N database clients arriving on an N-client cluster; "
              "objective = mean predicted completion time\n\n");
  std::printf("clients   greedy_obj  exhaust_obj  gap%%   greedy_cands  "
              "exhaust_cands   greedy_ms  exhaust_ms\n");
  bool greedy_ever_worse = false;
  bool ok = true;
  for (int clients : {1, 2, 3, 4, 5, 6}) {
    auto greedy = run_mode(core::OptimizerConfig::Mode::kGreedy, clients);
    auto exhaustive =
        run_mode(core::OptimizerConfig::Mode::kExhaustive, clients);
    ok = ok && greedy.ok && exhaustive.ok;
    double gap = exhaustive.objective > 0
                     ? 100.0 * (greedy.objective - exhaustive.objective) /
                           exhaustive.objective
                     : 0;
    if (gap > 1e-6) greedy_ever_worse = true;
    std::printf("%7d   %10.3f  %11.3f  %5.1f  %12llu  %13llu  %10.2f  %10.2f\n",
                clients, greedy.objective, exhaustive.objective, gap,
                static_cast<unsigned long long>(greedy.candidates),
                static_cast<unsigned long long>(exhaustive.candidates),
                greedy.wall_ms, exhaustive.wall_ms);
  }
  std::printf("\nsummary: greedy matches the exhaustive optimum on this "
              "workload: %s\n", greedy_ever_worse ? "no (gap above)" : "yes");
  std::printf("exhaustive candidate count grows as 2^N (joint space); greedy "
              "grows linearly per pass.\n");
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
