// Matches application node/link requirements onto cluster nodes,
// reserving their memory and recording one placement (process) per
// matched requirement. Candidates are ordered least-loaded first —
// "as nodes and links are matched, we decrease the available resources"
// (§4.1) — with the configured policy breaking ties: the paper's simple
// first-fit by default; best-fit and worst-fit exist for the
// fragmentation ablation study.
#pragma once

#include <string>
#include <vector>

#include "cluster/pool.h"
#include "cluster/topology.h"
#include "common/result.h"

namespace harmony::cluster {

struct NodeRequirement {
  std::string role;            // option-namespace name ("client", "worker")
  int index = 0;               // replica index within the role
  std::string hostname_glob = "*";
  std::string os;              // empty = any
  double memory_mb = 0.0;      // reserved exclusively when matched
};

// Connectivity requirement between two placed requirements (indices into
// the requirement vector). Bandwidth is a minimum path bandwidth; 0
// means "any connectivity".
struct LinkRequirement {
  size_t from = 0;
  size_t to = 0;
  double min_bandwidth_mbps = 0.0;
};

enum class MatchPolicy { kFirstFit, kBestFit, kWorstFit };

const char* match_policy_name(MatchPolicy policy);

struct Allocation {
  struct Entry {
    NodeRequirement requirement;
    NodeId node = kInvalidNode;
  };
  std::vector<Entry> entries;

  // Node placed for (role, index), or kInvalidNode.
  NodeId find(const std::string& role, int index = 0) const;
  // All nodes assigned to a role, in replica order.
  std::vector<NodeId> nodes_for(const std::string& role) const;
  bool empty() const { return entries.empty(); }
  // True when both allocations place the same (role, index) on the same
  // node — i.e. no migration happened.
  bool same_placement(const Allocation& other) const;
};

class Matcher {
 public:
  explicit Matcher(MatchPolicy policy = MatchPolicy::kFirstFit)
      : policy_(policy) {}

  MatchPolicy policy() const { return policy_; }

  // Finds a placement satisfying every requirement and link constraint,
  // reserving memory in the pool. On failure nothing is reserved.
  // Replicas of the same role are placed on distinct nodes (the paper's
  // "replicate" semantics); different roles may share a node if memory
  // allows.
  Result<Allocation> match(const std::vector<NodeRequirement>& requirements,
                           const std::vector<LinkRequirement>& links,
                           ResourceView& pool) const;

  // Releases the memory held by a previous successful match.
  static Status release(const Allocation& allocation, ResourceView& pool);

 private:
  MatchPolicy policy_;
};

}  // namespace harmony::cluster
