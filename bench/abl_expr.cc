// RSL expression engine benchmark: bytecode VM (rsl::Program) vs the
// per-call tree-walk evaluator, over the expression classes the
// decision path actually evaluates (performance models, seconds /
// megabytes amounts). The tree-walk re-parses the text on every call;
// the VM parses once and replays a flat postfix program, so the gap is
// the parse cost plus allocation traffic. Results land in
// BENCH_expr.json; exits nonzero if the compiled form is not at least
// 5x faster on the parameterized (namespace-reading) classes.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "rsl/expr.h"
#include "rsl/program.h"

namespace {

using namespace harmony;

rsl::ExprContext bench_context() {
  rsl::ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name == "client.memory") { *out = 33.5; return true; }
    if (name == "server.load") { *out = 0.25; return true; }
    if (name == "x") { *out = 3.5; return true; }
    if (name == "y") { *out = 12.0; return true; }
    if (name == "z") { *out = 5.0; return true; }
    return false;
  };
  ctx.var_lookup = [](const std::string& name, std::string* out) {
    if (name == "mode") { *out = "fast"; return true; }
    if (name == "count") { *out = "8"; return true; }
    return false;
  };
  return ctx;
}

struct ExprCase {
  const char* name;
  const char* text;
  // Classes that read the namespace are the decision path's hot case
  // and carry the 5x acceptance gate.
  bool parameterized;
};

const ExprCase kCases[] = {
    {"constant", "2 + 3 * 4 - 17 % 5", false},
    {"paper", "44 + (client.memory > 24 ? 24 : client.memory) - 17", true},
    {"arith_chain", "x * 2 + y / 4 - z + (x + y) * (server.load + 1)", true},
    {"functions", "min(sqrt(x * x), max(y, 2)) + pow(2, 3) + abs(0 - x)",
     true},
    {"ternary_vars", "$mode eq {fast} ? x * 0.5 + $count : y * 2", true},
};

struct Measured {
  double interpreted_eps = 0;  // evals per second
  double compiled_eps = 0;
  double speedup = 0;
  bool ok = true;
};

// Wall-clocks `evals` calls of `fn`, returning evals/sec. The checksum
// keeps the optimizer from deleting the loop.
template <typename Fn>
double rate(int evals, double* checksum, Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < evals; ++i) *checksum += fn();
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return seconds > 0 ? evals / seconds : 0;
}

Measured measure(const ExprCase& c, const rsl::ExprContext& ctx) {
  Measured out;
  auto compiled = rsl::Program::compile(c.text);
  if (!compiled.ok()) {
    std::fprintf(stderr, "%s: does not compile: %s\n", c.name,
                 compiled.error().message.c_str());
    out.ok = false;
    return out;
  }
  const rsl::Program& program = compiled.value();
  // Sanity: both evaluators agree before we time anything.
  auto vm = program.eval_number(ctx);
  auto tree = rsl::expr_eval_number(c.text, ctx);
  if (!vm.ok() || !tree.ok() || vm.value() != tree.value()) {
    std::fprintf(stderr, "%s: evaluator disagreement\n", c.name);
    out.ok = false;
    return out;
  }

  const std::string text = c.text;
  double checksum = 0;
  // Warm up, then measure enough evals for a stable clock reading.
  (void)rate(2000, &checksum, [&] { return program.eval_number(ctx).value(); });
  (void)rate(2000, &checksum,
             [&] { return rsl::expr_eval_number(text, ctx).value(); });
  const int kCompiledEvals = 2000000;
  const int kInterpretedEvals = 200000;
  out.compiled_eps = rate(kCompiledEvals, &checksum,
                          [&] { return program.eval_number(ctx).value(); });
  out.interpreted_eps =
      rate(kInterpretedEvals, &checksum,
           [&] { return rsl::expr_eval_number(text, ctx).value(); });
  out.speedup =
      out.interpreted_eps > 0 ? out.compiled_eps / out.interpreted_eps : 0;
  if (checksum == 12345.6789) std::printf(" ");  // defeat DCE
  return out;
}

int run() {
  std::printf("=== RSL expression engine: compiled VM vs tree-walk ===\n");
  std::printf("per-eval cost of the decision path's expression classes; "
              "the tree-walk re-parses every call\n\n");
  std::printf("%-14s %16s %16s %9s  %s\n", "class", "tree_evals/s",
              "vm_evals/s", "speedup", "expression");
  rsl::ExprContext ctx = bench_context();
  bool ok = true;
  bool gate_met = true;
  std::string json;
  for (const auto& c : kCases) {
    Measured m = measure(c, ctx);
    ok = ok && m.ok;
    if (!m.ok) continue;
    std::printf("%-14s %16.0f %16.0f %8.1fx  %s\n", c.name, m.interpreted_eps,
                m.compiled_eps, m.speedup, c.text);
    if (c.parameterized && m.speedup < 5.0) gate_met = false;
    if (!json.empty()) json += ",";
    json += str_format(
        "\n    {\"name\": \"%s\", \"parameterized\": %s, "
        "\"interpreted_evals_per_sec\": %.0f, "
        "\"compiled_evals_per_sec\": %.0f, \"speedup\": %.2f}",
        c.name, c.parameterized ? "true" : "false", m.interpreted_eps,
        m.compiled_eps, m.speedup);
  }
  std::printf("\ncompiled >=5x on parameterized expressions: %s\n",
              gate_met ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_expr.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"abl_expr\",\n"
                 "  \"expressions\": [%s\n  ],\n"
                 "  \"parameterized_speedup_met\": %s\n}\n",
                 json.c_str(), gate_met ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_expr.json\n");
  }
  return ok && gate_met ? 0 : 1;
}

}  // namespace

int main() { return run(); }
