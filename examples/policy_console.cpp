// The policy console: inspect and steer a live Harmony system from TCL
// — "much of the matching and policy description is currently
// implemented directly in TCL" (§3.1). Runs a scripted session against
// a populated controller; pass a script file to run your own, or `-` to
// read from stdin.
//
//   ./build/examples/policy_console            # the canned tour
//   echo 'harmonyNodes' | ./build/examples/policy_console -
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "core/console.h"
#include "core/controller.h"
#include "rsl/interp.h"

using namespace harmony;

namespace {

const char* kTour = R"(
puts "== live instances =="
foreach app [harmonyInstances] { puts "  $app" }

puts "== predictions =="
foreach row [harmonyPredict] {
  puts "  [lindex $row 0]: [lindex $row 1] s"
}
puts "objective: [harmonyObjective]"

puts "== cluster =="
foreach row [harmonyNodes] {
  puts "  [lindex $row 0]: speed [lindex $row 1], [lindex $row 2] MB free, [lindex $row 3] tasks"
}

puts "== manual steering =="
set victim [lindex [harmonyInstances] 0]
puts "forcing $victim onto data shipping..."
harmonySetOption $victim where DS
puts "  option now: [harmonyOption $victim where]"
puts "  objective now: [harmonyObjective]"

puts "== a policy proc: keep the objective under a budget =="
proc enforceBudget {budget} {
  if {[harmonyObjective] <= $budget} { return "within budget" }
  harmonyReevaluate
  return "reoptimized -> [harmonyObjective]"
}
puts "  [enforceBudget 10]"
puts "  final option: [harmonyOption $victim where]"
)";

}  // namespace

int main(int argc, char** argv) {
  core::Controller controller;
  if (!controller.add_nodes_script(apps::db_cluster_script(3)).ok() ||
      !controller.finalize_cluster().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }
  // Populate: two database clients (query shipping wins at this load).
  for (int i = 1; i <= 2; ++i) {
    apps::DbClientConfig config;
    config.client_host = str_format("sp2-%02d", i - 1);
    config.instance = i;
    auto id = controller.register_script(db_client_bundle_script(config));
    if (!id.ok()) {
      std::fprintf(stderr, "registration failed: %s\n",
                   id.error().to_string().c_str());
      return 1;
    }
  }

  std::string script;
  if (argc > 1) {
    if (std::string(argv[1]) == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      script = buffer.str();
    } else {
      std::ifstream file(argv[1]);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", argv[1]);
        return 1;
      }
      std::ostringstream buffer;
      buffer << file.rdbuf();
      script = buffer.str();
    }
  } else {
    script = kTour;
  }

  rsl::Interp interp;
  core::register_console(interp, controller);
  auto result = interp.eval(script);
  std::fputs(interp.output().c_str(), stdout);
  if (!result.ok()) {
    std::fprintf(stderr, "script error: %s\n",
                 result.error().to_string().c_str());
    return 1;
  }
  if (!result.value().empty()) {
    std::printf("=> %s\n", result.value().c_str());
  }
  return 0;
}
