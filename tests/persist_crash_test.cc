// Real-crash recovery: a forked child drives a persisted controller and
// reports its fingerprint over a pipe after every flushed epoch; the
// parent SIGKILLs it at a chosen point — no destructors, no atexit, the
// kernel just takes the process away — and then recovers from whatever
// the child left on disk. The recovered fingerprint must equal the last
// one the child acknowledged as flushed.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "persist/persistence.h"
#include "test_scenarios.h"

namespace harmony::persist {
namespace {

using harmony::testing::bag_bundle;
using harmony::testing::db_client_bundle;
using harmony::testing::fingerprint;
using harmony::testing::sp2_cluster_script;

constexpr int kSteps = 8;

void child_apply_step(core::Controller& c, int s) {
  switch (s) {
    case 1:
      if (!c.add_nodes_script(sp2_cluster_script(5)).ok()) std::abort();
      if (!c.finalize_cluster().ok()) std::abort();
      break;
    case 2: if (!c.register_script(bag_bundle("1 2 3", 0)).ok()) std::abort(); break;
    case 3: if (!c.register_script(db_client_bundle("sp2-00", 1)).ok()) std::abort(); break;
    case 4: if (!c.report_external_load("sp2-01", 2).ok()) std::abort(); break;
    case 5: if (!c.register_script(db_client_bundle("sp2-01", 2)).ok()) std::abort(); break;
    case 6: if (!c.set_node_online("sp2-02", false).ok()) std::abort(); break;
    case 7: if (!c.unregister(1).ok()) std::abort(); break;
    case 8: if (!c.reevaluate().ok()) std::abort(); break;
  }
}

bool write_all(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::write(fd, p, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  while (size > 0) {
    ssize_t n = ::read(fd, p, size);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Child protocol: after each step the child flushes the journal, sends
// [u32 length][fingerprint] up the pipe and waits for a 1-byte ack, so
// the parent always knows the newest fingerprint that is durable on
// disk. Never returns.
[[noreturn]] void run_child(const std::string& dir, int out_fd, int ack_fd) {
  core::Controller controller;
  double clock = 0;
  controller.set_time_source([&clock] { return clock; });
  PersistConfig config;
  config.dir = dir;
  config.snapshot_every_epochs = 3;  // exercise compaction under fire
  config.snapshot_min_journal_bytes = 0;
  config.fsync_every_epochs = 1;
  auto persistence = Persistence::open(config, controller);
  if (!persistence.ok()) std::abort();
  for (int s = 1; s <= kSteps; ++s) {
    clock += 5.0;
    child_apply_step(controller, s);
    if (!(*persistence)->flush().ok()) std::abort();
    const std::string print = fingerprint(controller);
    uint32_t length = static_cast<uint32_t>(print.size());
    if (!write_all(out_fd, &length, sizeof(length))) std::abort();
    if (!write_all(out_fd, print.data(), print.size())) std::abort();
    char ack = 0;
    if (!read_all(ack_fd, &ack, 1)) std::abort();
  }
  // Parked here until the parent kills us; _exit would be a clean exit
  // the test must not mistake for a crash.
  for (;;) pause();
}

class CrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "crash_" + std::to_string(::getpid()) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    clean();
  }
  void TearDown() override { clean(); }

  void clean() {
    std::remove((dir_ + "/journal.wal").c_str());
    std::remove((dir_ + "/snapshot.hsn").c_str());
    std::remove((dir_ + "/snapshot.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  // Forks the child, collects fingerprints until `kill_after` acks have
  // been sent, then SIGKILLs it mid-protocol. Returns the last
  // acknowledged (= durable) fingerprint.
  std::string run_until_kill(int kill_after) {
    int to_parent[2];
    int to_child[2];
    EXPECT_EQ(::pipe(to_parent), 0);
    EXPECT_EQ(::pipe(to_child), 0);
    pid_t pid = ::fork();
    if (pid == 0) {
      ::close(to_parent[0]);
      ::close(to_child[1]);
      run_child(dir_, to_parent[1], to_child[0]);
    }
    ::close(to_parent[1]);
    ::close(to_child[0]);
    std::string last;
    for (int s = 1; s <= kill_after; ++s) {
      uint32_t length = 0;
      EXPECT_TRUE(read_all(to_parent[0], &length, sizeof(length)));
      std::string print(length, '\0');
      EXPECT_TRUE(read_all(to_parent[0], print.data(), length));
      last = print;
      // The last fingerprint is deliberately NOT acked: the child stays
      // blocked in read(2), guaranteed not to have journaled anything
      // past the state it just reported when the SIGKILL lands.
      if (s < kill_after) {
        char ack = 'k';
        EXPECT_TRUE(write_all(to_child[1], &ack, 1));
      }
    }
    EXPECT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFSIGNALED(wstatus));
    ::close(to_parent[0]);
    ::close(to_child[1]);
    return last;
  }

  std::string recover_fingerprint() {
    core::Controller recovered;
    PersistConfig config;
    config.dir = dir_;
    config.snapshot_every_epochs = 3;
    auto persistence = Persistence::open(config, recovered);
    EXPECT_TRUE(persistence.ok()) << persistence.error().to_string();
    if (!persistence.ok()) return "";
    EXPECT_TRUE((*persistence)->recovery().recovered);
    return fingerprint(recovered);
  }

  std::string dir_;
};

TEST_F(CrashTest, SigkillAfterEveryStepRecoversTheAckedState) {
  // One crash point per step of the history — registration, load
  // report, node-offline, departure, re-evaluation all get a turn as
  // the last durable event.
  for (int kill_after = 1; kill_after <= kSteps; ++kill_after) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    clean();
    const std::string acked = run_until_kill(kill_after);
    ASSERT_FALSE(acked.empty());
    EXPECT_EQ(recover_fingerprint(), acked);
  }
}

TEST_F(CrashTest, RecoveryIsIdempotent) {
  run_until_kill(kSteps);
  const std::string first = recover_fingerprint();
  ASSERT_FALSE(first.empty());
  // Recovering a second time from the same (now repaired) files must
  // land on the same state: recovery reads, repairs, and re-journals
  // only its own verification pass.
  EXPECT_EQ(recover_fingerprint(), first);
}

TEST_F(CrashTest, CorruptTailAfterCrashIsTruncatedNotFatal) {
  const std::string acked = run_until_kill(5);
  // Scribble a corrupt record where the torn tail of a real crash would
  // be: plausible header, garbage checksum.
  {
    FILE* journal = std::fopen((dir_ + "/journal.wal").c_str(), "ab");
    ASSERT_NE(journal, nullptr);
    const char tail[] = "\x00\x00\x00\x04\xDE\xAD\xBE\xEFzzzz";
    std::fwrite(tail, 1, sizeof(tail) - 1, journal);
    std::fclose(journal);
  }
  core::Controller recovered;
  PersistConfig config;
  config.dir = dir_;
  auto persistence = Persistence::open(config, recovered);
  ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
  EXPECT_TRUE((*persistence)->recovery().journal_truncated);
  EXPECT_EQ(fingerprint(recovered), acked);
}

}  // namespace
}  // namespace harmony::persist
