#include "core/namespace.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace harmony::core {

bool Namespace::valid_path(const std::string& path) {
  if (path.empty()) return false;
  if (path.front() == '.' || path.back() == '.') return false;
  if (path.find("..") != std::string::npos) return false;
  return true;
}

Status Namespace::set(const std::string& path, double value) {
  if (!valid_path(path)) {
    return Status(ErrorCode::kInvalidArgument, "malformed path: " + path);
  }
  strings_.erase(path);
  numbers_[path] = value;
  return Status::Ok();
}

Status Namespace::set_string(const std::string& path,
                             const std::string& value) {
  if (!valid_path(path)) {
    return Status(ErrorCode::kInvalidArgument, "malformed path: " + path);
  }
  numbers_.erase(path);
  strings_[path] = value;
  return Status::Ok();
}

Result<double> Namespace::get(const std::string& path) const {
  auto it = numbers_.find(path);
  if (it == numbers_.end()) {
    if (fallback_ != nullptr) return fallback_->get(path);
    return Err<double>(ErrorCode::kNotFound, "no such name: " + path);
  }
  return it->second;
}

Result<std::string> Namespace::get_string(const std::string& path) const {
  auto it = strings_.find(path);
  if (it != strings_.end()) return it->second;
  auto nit = numbers_.find(path);
  if (nit != numbers_.end()) return format_number(nit->second);
  if (fallback_ != nullptr) return fallback_->get_string(path);
  return Err<std::string>(ErrorCode::kNotFound, "no such name: " + path);
}

bool Namespace::has(const std::string& path) const {
  if (numbers_.count(path) > 0 || strings_.count(path) > 0) return true;
  return fallback_ != nullptr && fallback_->has(path);
}

void Namespace::erase(const std::string& path) {
  auto erase_from = [&](auto& map) {
    auto it = map.lower_bound(path);
    while (it != map.end()) {
      const std::string& key = it->first;
      if (key == path ||
          (key.size() > path.size() && starts_with(key, path) &&
           key[path.size()] == '.')) {
        it = map.erase(it);
      } else {
        break;
      }
    }
  };
  erase_from(numbers_);
  erase_from(strings_);
}

std::vector<std::string> Namespace::list(const std::string& prefix) const {
  std::set<std::string> children;
  std::string base = prefix.empty() ? "" : prefix + ".";
  auto scan = [&](const auto& map) {
    auto it = base.empty() ? map.begin() : map.lower_bound(base);
    for (; it != map.end(); ++it) {
      const std::string& key = it->first;
      if (!base.empty() && !starts_with(key, base)) break;
      std::string rest = key.substr(base.size());
      size_t dot = rest.find('.');
      children.insert(dot == std::string::npos ? rest : rest.substr(0, dot));
    }
  };
  scan(numbers_);
  scan(strings_);
  return {children.begin(), children.end()};
}

std::vector<std::string> Namespace::leaves(const std::string& prefix) const {
  std::vector<std::string> out;
  auto scan = [&](const auto& map) {
    for (const auto& [key, value] : map) {
      if (prefix.empty() || key == prefix ||
          (starts_with(key, prefix) && key.size() > prefix.size() &&
           key[prefix.size()] == '.')) {
        out.push_back(key);
      }
    }
  };
  scan(numbers_);
  scan(strings_);
  std::sort(out.begin(), out.end());
  return out;
}

rsl::ExprContext Namespace::expr_context(const std::string& base) const {
  rsl::ExprContext ctx;
  ctx.name_lookup = [this, base](const std::string& name, double* out) {
    if (!base.empty()) {
      auto relative = get(base + "." + name);
      if (relative.ok()) {
        *out = relative.value();
        return true;
      }
    }
    auto absolute = get(name);
    if (absolute.ok()) {
      *out = absolute.value();
      return true;
    }
    return false;
  };
  return ctx;
}

}  // namespace harmony::core
