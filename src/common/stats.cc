#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace harmony {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  HARMONY_ASSERT(q >= 0.0 && q <= 1.0);
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(samples.size())));
  if (rank == 0) rank = 1;
  return samples[rank - 1];
}

double piecewise_linear(const std::vector<std::pair<double, double>>& points,
                        double x) {
  HARMONY_ASSERT(!points.empty());
  if (x <= points.front().first) return points.front().second;
  if (x >= points.back().first) return points.back().second;
  for (size_t i = 1; i < points.size(); ++i) {
    if (x <= points[i].first) {
      const auto& [x0, y0] = points[i - 1];
      const auto& [x1, y1] = points[i];
      if (x1 == x0) return y1;
      double t = (x - x0) / (x1 - x0);
      return y0 + t * (y1 - y0);
    }
  }
  return points.back().second;
}

}  // namespace harmony
