// Metric interface (paper §2): "a unified way to gather data about the
// performance of applications and their execution environment. Data
// about system conditions and application resource requirements flow
// into the metric interface, and on to both the adaptation controller
// and individual applications."
//
// MetricRegistry stores named time series; observers (the controller,
// experiment harnesses) subscribe to updates.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace harmony::metric {

struct Sample {
  double time = 0.0;
  double value = 0.0;
};

class TimeSeries {
 public:
  // Sample times must be non-decreasing (simulation time).
  void add(double time, double value);

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  size_t size() const { return samples_.size(); }
  double last_value() const;
  double last_time() const;

  // Statistics over samples with time in [from, to].
  RunningStats stats_between(double from, double to) const;
  // Statistics over the trailing window [last_time - window, last_time].
  RunningStats stats_window(double window) const;
  // Mean of all samples.
  double mean() const;

 private:
  std::vector<Sample> samples_;
};

class MetricRegistry {
 public:
  using Observer =
      std::function<void(const std::string& name, double time, double value)>;

  // Records a sample and notifies observers.
  void record(const std::string& name, double time, double value);

  bool has(const std::string& name) const { return series_.count(name) > 0; }
  // Creates the series if absent.
  TimeSeries& series(const std::string& name) { return series_[name]; }
  const TimeSeries* find(const std::string& name) const;
  std::vector<std::string> names() const;

  void subscribe(Observer observer) {
    observers_.push_back(std::move(observer));
  }

  // "time,value" CSV lines for one series (experiment output).
  std::string export_csv(const std::string& name) const;

  void clear() { series_.clear(); }

 private:
  std::map<std::string, TimeSeries> series_;  // ordered names() output
  std::vector<Observer> observers_;
};

}  // namespace harmony::metric
