// The single cross-thread channel of the sharded network front end: a
// bounded MPSC queue carrying decoded protocol events from the I/O
// shard threads to the controller thread. The controller stays
// single-threaded — it drains this mailbox and is the only writer of
// core state, so journaling order is exactly the mailbox drain order.
//
// push() blocks when the mailbox is full: a controller that falls
// behind backpressures the shards (which in turn stop reading their
// sockets) instead of queueing unboundedly. The consumer never blocks
// on producers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "metric/telemetry.h"
#include "net/protocol.h"

namespace harmony::net {

struct NetEvent {
  enum class Kind {
    kAccepted,  // a shard accepted a connection (precedes its messages)
    kMessage,   // one decoded protocol message
    kClosed,    // the connection is gone (EOF, error, or overflow)
  };
  Kind kind = Kind::kMessage;
  uint64_t conn = 0;  // server-wide connection id
  int shard = 0;      // shard that owns (or will own) the socket
  Message message;    // kMessage only
  // kClosed: the shard cut the connection at the slow-consumer
  // high-water mark rather than buffering without bound.
  bool overflow = false;
  // Stamped by Mailbox::push when telemetry is enabled; the drain side
  // turns it into the mailbox queue-wait histogram and epoch span.
  uint64_t enqueued_us = 0;
};

class Mailbox {
 public:
  explicit Mailbox(size_t capacity);

  // Blocks while full; returns false once the mailbox is closed (the
  // event is discarded — the server is shutting down).
  bool push(NetEvent event);

  // Swaps everything queued into `out` (cleared first), waiting up to
  // `timeout_ms` for the first event. Returns the number drained; 0
  // after a timeout or when closed and empty.
  size_t drain(std::vector<NetEvent>& out, int timeout_ms);

  void close();

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<NetEvent> queue_;
  const size_t capacity_;
  bool closed_ = false;
  // High-water mark of the queued-event depth, updated on every push.
  metric::Gauge* depth_high_water_;
};

}  // namespace harmony::net
