// Policy console: controller introspection and steering commands
// registered into a TCL interpreter. The paper (§3.1) notes that "much
// of the matching and policy description is currently implemented
// directly in TCL"; this is that surface — operators and policy scripts
// can inspect the system and steer it from the same language the RSL
// uses.
//
// Commands:
//   harmonyInstances                      -> list of "App.id" names
//   harmonyBundles <App.id>               -> bundle names of an instance
//   harmonyOption <App.id> <bundle>       -> current option (+variables)
//   harmonySetOption <App.id> <bundle> <option> ?var value ...?
//   harmonyPredict                        -> {App.id seconds} pairs
//   harmonyObjective                      -> current objective value
//   harmonyReevaluate                     -> run an adaptation pass
//   harmonyNodes                          -> {host speed mem_free load} rows
//   harmonyNodeState <host> online|offline   runtime node add/delete
//   harmonyExternalLoad <host> <tasks>       report outside load (§4.3)
//   harmonyName <path>                    -> read any namespace entry
//   harmonyDomains                        -> one {id worker {members}
//                                            epochs last_ms} row per
//                                            optimization domain of the
//                                            published DomainRouter
#pragma once

#include "core/controller.h"
#include "rsl/interp.h"

namespace harmony::core {

// Registers the console commands. The controller must outlive the
// interpreter registration.
void register_console(rsl::Interp& interp, Controller& controller);

}  // namespace harmony::core
