#include "cluster/pool.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace harmony::cluster {
namespace {

class PoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(topo_.add_node("a", 1.0, 128).ok());
    ASSERT_TRUE(topo_.add_node("b", 2.0, 64).ok());
    pool_ = std::make_unique<ResourcePool>(&topo_);
  }
  Topology topo_;
  std::unique_ptr<ResourcePool> pool_;
};

TEST_F(PoolTest, InitialAvailability) {
  EXPECT_DOUBLE_EQ(pool_->total_memory(0), 128);
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 128);
  EXPECT_EQ(pool_->process_count(0), 0);
  EXPECT_TRUE(pool_->invariants_hold());
}

TEST_F(PoolTest, ReserveAndRelease) {
  ASSERT_TRUE(pool_->reserve_memory(0, 100).ok());
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 28);
  ASSERT_TRUE(pool_->reserve_memory(0, 28).ok());
  EXPECT_NEAR(pool_->available_memory(0), 0, 1e-9);
  ASSERT_TRUE(pool_->release_memory(0, 128).ok());
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 128);
}

TEST_F(PoolTest, OverReserveFails) {
  EXPECT_FALSE(pool_->reserve_memory(0, 129).ok());
  ASSERT_TRUE(pool_->reserve_memory(0, 100).ok());
  auto status = pool_->reserve_memory(0, 29);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kCapacity);
  EXPECT_TRUE(pool_->invariants_hold());
}

TEST_F(PoolTest, OverReleaseFails) {
  ASSERT_TRUE(pool_->reserve_memory(0, 10).ok());
  EXPECT_FALSE(pool_->release_memory(0, 11).ok());
  EXPECT_TRUE(pool_->release_memory(0, 10).ok());
}

TEST_F(PoolTest, BadArgumentsRejected) {
  EXPECT_FALSE(pool_->reserve_memory(9, 1).ok());
  EXPECT_FALSE(pool_->reserve_memory(0, -1).ok());
  EXPECT_FALSE(pool_->release_memory(9, 1).ok());
  EXPECT_FALSE(pool_->release_memory(0, -1).ok());
  EXPECT_FALSE(pool_->remove_process(9).ok());
}

TEST_F(PoolTest, ProcessCounting) {
  pool_->add_process(0);
  pool_->add_process(0);
  pool_->add_process(1);
  EXPECT_EQ(pool_->process_count(0), 2);
  EXPECT_EQ(pool_->process_count(1), 1);
  EXPECT_EQ(pool_->total_processes(), 3);
  ASSERT_TRUE(pool_->remove_process(0).ok());
  EXPECT_EQ(pool_->process_count(0), 1);
  ASSERT_TRUE(pool_->remove_process(1).ok());
  EXPECT_FALSE(pool_->remove_process(1).ok()) << "count must not go negative";
  EXPECT_TRUE(pool_->invariants_hold());
}

TEST_F(PoolTest, ReservationRollsBackOnDestruction) {
  {
    MemoryReservation res(pool_.get());
    ASSERT_TRUE(res.reserve(0, 50).ok());
    ASSERT_TRUE(res.reserve(1, 30).ok());
    EXPECT_DOUBLE_EQ(pool_->available_memory(0), 78);
    // no commit — destructor rolls back
  }
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 128);
  EXPECT_DOUBLE_EQ(pool_->available_memory(1), 64);
}

TEST_F(PoolTest, ReservationCommitKeepsMemory) {
  {
    MemoryReservation res(pool_.get());
    ASSERT_TRUE(res.reserve(0, 50).ok());
    res.commit();
  }
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 78);
}

TEST_F(PoolTest, ReservationPartialFailureLeavesEarlierHolds) {
  MemoryReservation res(pool_.get());
  ASSERT_TRUE(res.reserve(0, 100).ok());
  EXPECT_FALSE(res.reserve(1, 100).ok()) << "b only has 64";
  res.rollback();
  EXPECT_DOUBLE_EQ(pool_->available_memory(0), 128);
}

// Property: any interleaving of balanced reserve/release keeps invariants.
TEST_F(PoolTest, RandomizedBalancedOperationsKeepInvariants) {
  Rng rng(2024);
  std::vector<std::pair<NodeId, double>> held;
  for (int step = 0; step < 5000; ++step) {
    bool do_reserve = held.empty() || rng.next_bool(0.55);
    if (do_reserve) {
      NodeId node = static_cast<NodeId>(rng.next_below(2));
      double mb = rng.next_double(0.0, 80.0);
      if (pool_->reserve_memory(node, mb).ok()) held.emplace_back(node, mb);
    } else {
      size_t pick = rng.next_below(held.size());
      ASSERT_TRUE(pool_->release_memory(held[pick].first, held[pick].second).ok());
      held.erase(held.begin() + static_cast<long>(pick));
    }
    ASSERT_TRUE(pool_->invariants_hold()) << "step " << step;
  }
  for (auto& [node, mb] : held) {
    ASSERT_TRUE(pool_->release_memory(node, mb).ok());
  }
  EXPECT_NEAR(pool_->available_memory(0), 128, 1e-6);
  EXPECT_NEAR(pool_->available_memory(1), 64, 1e-6);
}

}  // namespace
}  // namespace harmony::cluster
