# Empty compiler generated dependencies file for abl_mem_bw.
# This may be replaced when dependencies are built.
