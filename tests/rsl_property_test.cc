// Property tests for the RSL substrate: randomly generated lists must
// round-trip through the TCL list codec, randomly generated expression
// trees must evaluate to the value computed directly from the tree (an
// independent reference evaluator), and the bytecode VM must agree with
// the tree-walk evaluator — bit-identical values AND identical error
// outcomes — on randomized expressions over the full grammar.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "common/rng.h"
#include "common/strings.h"
#include "rsl/expr.h"
#include "rsl/program.h"
#include "rsl/value.h"

namespace harmony::rsl {
namespace {

// --- list round-trip ------------------------------------------------------

std::string random_element(Rng& rng) {
  static const char* const kAlphabet =
      "abcXYZ012 \t{}[]$;\\\"autumn.:-+*/";
  size_t length = rng.next_below(12);
  std::string out;
  for (size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[rng.next_below(31)]);
  }
  return out;
}

class ListRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ListRoundTripProperty, RandomListsSurvive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::string> original;
    size_t n = rng.next_below(8);
    for (size_t i = 0; i < n; ++i) original.push_back(random_element(rng));
    std::string wire = list_build(original);
    auto parsed = list_parse(wire);
    ASSERT_TRUE(parsed.ok()) << "wire: [" << wire << "]";
    EXPECT_EQ(parsed.value(), original) << "wire: [" << wire << "]";
  }
}

TEST_P(ListRoundTripProperty, NestedListsSurvive) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 200; ++trial) {
    // Two-level nesting: a list of lists, as bundles use heavily.
    std::vector<std::string> outer;
    size_t n = 1 + rng.next_below(4);
    for (size_t i = 0; i < n; ++i) {
      std::vector<std::string> inner;
      size_t m = rng.next_below(5);
      for (size_t j = 0; j < m; ++j) inner.push_back(random_element(rng));
      outer.push_back(list_build(inner));
    }
    auto parsed = list_parse(list_build(outer));
    ASSERT_TRUE(parsed.ok());
    ASSERT_EQ(parsed.value().size(), outer.size());
    for (size_t i = 0; i < outer.size(); ++i) {
      auto inner = list_parse(parsed.value()[i]);
      auto expected = list_parse(outer[i]);
      ASSERT_TRUE(inner.ok() && expected.ok());
      EXPECT_EQ(inner.value(), expected.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListRoundTripProperty,
                         ::testing::Values(1, 7, 99, 12345));

// --- expression tree vs printed-and-parsed evaluation -----------------------

struct Node {
  enum Kind { kNumber, kAdd, kSub, kMul, kDiv, kMin, kMax, kTernary } kind;
  double number = 0;
  std::unique_ptr<Node> a, b, c;
};

std::unique_ptr<Node> random_tree(Rng& rng, int depth) {
  auto node = std::make_unique<Node>();
  if (depth <= 0 || rng.next_bool(0.3)) {
    node->kind = Node::kNumber;
    // Small integers and halves keep evaluation exact in doubles.
    node->number = static_cast<double>(rng.next_int(-20, 20)) / 2.0;
    return node;
  }
  switch (rng.next_below(6)) {
    case 0: node->kind = Node::kAdd; break;
    case 1: node->kind = Node::kSub; break;
    case 2: node->kind = Node::kMul; break;
    case 3: node->kind = Node::kMin; break;
    case 4: node->kind = Node::kMax; break;
    default: node->kind = Node::kTernary; break;
  }
  node->a = random_tree(rng, depth - 1);
  node->b = random_tree(rng, depth - 1);
  if (node->kind == Node::kTernary) node->c = random_tree(rng, depth - 1);
  return node;
}

double reference_eval(const Node& node) {
  switch (node.kind) {
    case Node::kNumber: return node.number;
    case Node::kAdd: return reference_eval(*node.a) + reference_eval(*node.b);
    case Node::kSub: return reference_eval(*node.a) - reference_eval(*node.b);
    case Node::kMul: return reference_eval(*node.a) * reference_eval(*node.b);
    case Node::kDiv: return reference_eval(*node.a) / reference_eval(*node.b);
    case Node::kMin:
      return std::min(reference_eval(*node.a), reference_eval(*node.b));
    case Node::kMax:
      return std::max(reference_eval(*node.a), reference_eval(*node.b));
    case Node::kTernary:
      return reference_eval(*node.a) != 0.0 ? reference_eval(*node.b)
                                            : reference_eval(*node.c);
  }
  return 0;
}

// Prints with explicit parentheses so the only thing under test is the
// evaluator, not precedence coincidences.
std::string print(const Node& node) {
  switch (node.kind) {
    case Node::kNumber:
      return node.number < 0
                 ? "(0 - " + format_number(-node.number) + ")"
                 : format_number(node.number);
    case Node::kAdd: return "(" + print(*node.a) + " + " + print(*node.b) + ")";
    case Node::kSub: return "(" + print(*node.a) + " - " + print(*node.b) + ")";
    case Node::kMul: return "(" + print(*node.a) + " * " + print(*node.b) + ")";
    case Node::kDiv: return "(" + print(*node.a) + " / " + print(*node.b) + ")";
    case Node::kMin: return "min(" + print(*node.a) + ", " + print(*node.b) + ")";
    case Node::kMax: return "max(" + print(*node.a) + ", " + print(*node.b) + ")";
    case Node::kTernary:
      return "(" + print(*node.a) + " ? " + print(*node.b) + " : " +
             print(*node.c) + ")";
  }
  return "0";
}

class ExprTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExprTreeProperty, PrintedTreesEvaluateToReferenceValue) {
  Rng rng(GetParam());
  int evaluated = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto tree = random_tree(rng, 4);
    double expected = reference_eval(*tree);
    if (!std::isfinite(expected)) continue;
    std::string text = print(*tree);
    auto actual = expr_eval_number(text, {});
    ASSERT_TRUE(actual.ok()) << text << ": " << actual.error().to_string();
    EXPECT_DOUBLE_EQ(actual.value(), expected) << text;
    ++evaluated;
  }
  EXPECT_GT(evaluated, 300);
}

// Also test precedence-sensitive printing without parentheses: a flat
// chain of + - * evaluated left-to-right with standard precedence.
TEST_P(ExprTreeProperty, FlatChainsFollowPrecedence) {
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 200; ++trial) {
    size_t terms = 2 + rng.next_below(6);
    std::vector<double> values;
    std::vector<char> ops;
    for (size_t i = 0; i < terms; ++i) {
      values.push_back(static_cast<double>(rng.next_int(0, 9)));
      if (i + 1 < terms) ops.push_back("+-*"[rng.next_below(3)]);
    }
    std::string text = format_number(values[0]);
    for (size_t i = 0; i < ops.size(); ++i) {
      text += std::string(" ") + ops[i] + " " + format_number(values[i + 1]);
    }
    // Reference: multiplication first, then left-to-right + and -.
    std::vector<double> terms2{values[0]};
    std::vector<char> addsub;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i] == '*') {
        terms2.back() *= values[i + 1];
      } else {
        addsub.push_back(ops[i]);
        terms2.push_back(values[i + 1]);
      }
    }
    double expected = terms2[0];
    for (size_t i = 0; i < addsub.size(); ++i) {
      expected = addsub[i] == '+' ? expected + terms2[i + 1]
                                  : expected - terms2[i + 1];
    }
    auto actual = expr_eval_number(text, {});
    ASSERT_TRUE(actual.ok()) << text;
    EXPECT_DOUBLE_EQ(actual.value(), expected) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprTreeProperty,
                         ::testing::Values(2, 17, 404, 987654));

// --- compiled VM vs tree-walk differential ---------------------------------
//
// Generates random expression TEXT over the full grammar — numbers,
// string literals, $vars and bare names (with deliberate lookup
// misses), every operator, functions with wrong arity, ternaries —
// and requires the compiled program to reproduce the tree-walk
// exactly: same ok-ness, bit-identical doubles (NaN-safe via bit
// comparison), same error code and message.

ExprContext differential_context() {
  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name == "client.memory") { *out = 33.5; return true; }
    if (name == "server.load") { *out = 0.25; return true; }
    if (name == "n.zero") { *out = 0.0; return true; }
    if (name == "n.negative") { *out = -7.25; return true; }
    return false;  // everything else: "cannot resolve identifier"
  };
  ctx.var_lookup = [](const std::string& name, std::string* out) {
    if (name == "os") { *out = "linux"; return true; }
    if (name == "count") { *out = "8"; return true; }
    if (name == "half") { *out = "0.5"; return true; }
    if (name == "word") { *out = "fast"; return true; }
    return false;  // everything else: "no such variable"
  };
  return ctx;
}

std::string random_leaf(Rng& rng) {
  switch (rng.next_below(10)) {
    case 0: return format_number(static_cast<double>(rng.next_int(0, 40)) / 2);
    case 1: return format_number(static_cast<double>(rng.next_int(0, 5)));
    case 2: {  // string literal, both quoting forms
      static const char* const kStrings[] = {"linux", "fast", "0",
                                             "no",    "3.5",  "abc"};
      const char* text = kStrings[rng.next_below(6)];
      return rng.next_bool(0.5) ? "{" + std::string(text) + "}"
                                : "\"" + std::string(text) + "\"";
    }
    case 3: case 4: {  // $var, sometimes a miss
      static const char* const kVars[] = {"os", "count", "half",
                                          "word", "missing"};
      return "$" + std::string(kVars[rng.next_below(5)]);
    }
    default: {  // bare name, sometimes a miss
      static const char* const kNames[] = {"client.memory", "server.load",
                                           "n.zero", "n.negative",
                                           "no.such.name", "count"};
      return std::string(kNames[rng.next_below(6)]);
    }
  }
}

std::string random_vm_expr(Rng& rng, int depth) {
  if (depth <= 0 || rng.next_bool(0.25)) {
    std::string leaf = random_leaf(rng);
    switch (rng.next_below(8)) {
      case 0: return "-" + leaf;
      case 1: return "!" + leaf;
      case 2: return "+" + leaf;
      case 3: return "(" + leaf + ")";
      default: return leaf;
    }
  }
  switch (rng.next_below(5)) {
    case 0: {  // binary operator chain
      static const char* const kOps[] = {"+",  "-",  "*",  "/",  "%",
                                         "**", "&&", "||", "==", "!=",
                                         "<",  ">",  "<=", ">="};
      std::string a = random_vm_expr(rng, depth - 1);
      std::string b = random_vm_expr(rng, depth - 1);
      std::string op = kOps[rng.next_below(14)];
      std::string space = rng.next_bool(0.8) ? " " : "";
      return "(" + a + space + op + space + b + ")";
    }
    case 1: {  // word operators need surrounding spaces
      std::string a = random_vm_expr(rng, depth - 1);
      std::string b = random_vm_expr(rng, depth - 1);
      return "(" + a + (rng.next_bool(0.5) ? " eq " : " ne ") + b + ")";
    }
    case 2: {  // ternary
      std::string c = random_vm_expr(rng, depth - 1);
      std::string t = random_vm_expr(rng, depth - 1);
      std::string e = random_vm_expr(rng, depth - 1);
      return "(" + c + " ? " + t + " : " + e + ")";
    }
    case 3: {  // function call, including wrong arity / unknown names
      static const char* const kFuncs[] = {"abs",   "sqrt", "exp",  "log",
                                           "floor", "ceil", "round", "int",
                                           "pow",   "fmod", "min",  "max",
                                           "nosuchfn"};
      std::string name = kFuncs[rng.next_below(13)];
      size_t argc = rng.next_below(4);  // 0..3, often the wrong arity
      std::string out = name + "(";
      for (size_t i = 0; i < argc; ++i) {
        if (i) out += ", ";
        out += random_vm_expr(rng, depth - 1);
      }
      return out + ")";
    }
    default: {  // unary over a composite
      std::string inner = random_vm_expr(rng, depth - 1);
      switch (rng.next_below(3)) {
        case 0: return "-(" + inner + ")";
        case 1: return "!(" + inner + ")";
        default: return "+(" + inner + ")";
      }
    }
  }
}

class CompiledVmProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompiledVmProperty, CompiledProgramsMatchTreeWalkExactly) {
  Rng rng(GetParam());
  ExprContext ctx = differential_context();
  int compiled_count = 0;
  for (int trial = 0; trial < 600; ++trial) {
    std::string text = random_vm_expr(rng, 1 + rng.next_below(4));
    auto program = Program::compile(text);
    // Uncompilable text keeps the tree-walk path in Expr::eval, so the
    // two evaluators agree by construction; nothing to check.
    if (!program.ok()) continue;
    ++compiled_count;

    auto vm = program.value().eval_number(ctx);
    auto tree = expr_eval_number(text, ctx);
    ASSERT_EQ(vm.ok(), tree.ok())
        << text << "\n vm:   "
        << (vm.ok() ? format_number(vm.value()) : vm.error().to_string())
        << "\n tree: "
        << (tree.ok() ? format_number(tree.value()) : tree.error().to_string());
    if (vm.ok()) {
      uint64_t vm_bits = 0, tree_bits = 0;
      std::memcpy(&vm_bits, &vm.value(), sizeof(vm_bits));
      std::memcpy(&tree_bits, &tree.value(), sizeof(tree_bits));
      EXPECT_EQ(vm_bits, tree_bits) << text;
    } else {
      EXPECT_EQ(vm.error().code, tree.error().code) << text;
      EXPECT_EQ(vm.error().message, tree.error().message) << text;
    }

    // The string-result evaluator must agree too (exercises Select over
    // strings and TCL number formatting).
    auto vm_str = program.value().eval(ctx);
    auto tree_str = expr_eval(text, ctx);
    ASSERT_EQ(vm_str.ok(), tree_str.ok()) << text;
    if (vm_str.ok()) {
      EXPECT_EQ(vm_str.value(), tree_str.value()) << text;
    } else {
      EXPECT_EQ(vm_str.error().message, tree_str.error().message) << text;
    }
  }
  // The generator emits syntactically valid text, so nearly everything
  // should compile; a low rate means the differential lost its teeth.
  EXPECT_GT(compiled_count, 550);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledVmProperty,
                         ::testing::Values(3, 29, 1371, 271828));

}  // namespace
}  // namespace harmony::rsl
