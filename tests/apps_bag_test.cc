// End-to-end simulation of the Figure 4 mechanics: the bag-of-tasks app
// resizes at iteration boundaries as Harmony's worker assignment
// changes, and coexists with a rigid parallel job.
#include "apps/bag_app.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"
#include "apps/simple_app.h"

namespace harmony::apps {
namespace {

struct BagWorld {
  explicit BagWorld(int nodes = 8) {
    EXPECT_TRUE(harness.controller()
                    .add_nodes_script(worker_cluster_script(nodes))
                    .ok());
    EXPECT_TRUE(harness.finalize().ok());
  }
  SimHarness harness;
};

TEST(BagApp, AloneUsesAllEightWorkers) {
  BagWorld world;
  BagConfig config;
  config.max_iterations = 3;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 8);
  world.harness.engine().run_until(1500);
  ASSERT_TRUE(bag.finished());
  EXPECT_EQ(bag.iterations_completed(), 3);
  const auto* series = world.harness.metrics().find(bag.metric_name());
  ASSERT_NE(series, nullptr);
  // t(8) ~= 100 s sequential + 1000/8 parallel + messaging/straggle.
  EXPECT_NEAR(series->mean(), 235, 30);
}

TEST(BagApp, FewerWorkersRunSlowerPredictably) {
  BagWorld world(2);  // only two nodes available
  BagConfig config;
  config.max_iterations = 2;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 2);
  world.harness.engine().run_until(2000);
  ASSERT_TRUE(bag.finished());
  const auto* series = world.harness.metrics().find(bag.metric_name());
  ASSERT_NE(series, nullptr);
  EXPECT_NEAR(series->mean(), 600, 60) << "t(2) ~= 100 + 1000/2";
}

TEST(SimpleApp, RunsFixedIterationsOnDedicatedNodes) {
  BagWorld world;
  SimpleConfig config;
  config.workers = 3;
  config.max_iterations = 2;
  SimpleApp simple(world.harness.context(), config);
  ASSERT_TRUE(simple.start().ok());
  EXPECT_EQ(simple.nodes().size(), 3u);
  world.harness.engine().run_until(1000);
  ASSERT_TRUE(simple.finished());
  EXPECT_EQ(simple.iterations_completed(), 2);
  const auto* series =
      world.harness.metrics().find("simple.1.iteration_time");
  ASSERT_NE(series, nullptr);
  EXPECT_NEAR(series->mean(), 300.5, 5);
  EXPECT_EQ(world.harness.controller().live_instances(), 0u)
      << "finished app deregistered";
}

// The Figure 4 arc: the bag app shares the machine with a rigid job,
// shrinking to the free nodes, and expands back when the rigid job
// leaves — all at iteration boundaries.
TEST(BagApp, ShrinksBesideRigidJobThenExpands) {
  BagWorld world;
  SimpleConfig rigid_config;
  rigid_config.workers = 3;
  rigid_config.max_iterations = 2;  // leaves after ~601 s
  SimpleApp rigid(world.harness.context(), rigid_config);
  ASSERT_TRUE(rigid.start().ok());

  BagConfig bag_config;
  BagApp bag(world.harness.context(), bag_config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 5)
      << "five nodes (rather than six): the free set beside the rigid job";

  world.harness.engine().run_until(2000);
  ASSERT_TRUE(rigid.finished());
  EXPECT_EQ(bag.current_workers(), 8)
      << "after the rigid job departs, the next iteration boundary "
         "expands the bag app";
  bag.stop();
  world.harness.engine().run_until(3000);
  EXPECT_TRUE(bag.finished());
}

// Granularity gate in vivo: with a large granularity, the bag app's
// assignment must not churn even as another job comes and goes.
TEST(BagApp, GranularityHoldsAssignmentSteady) {
  BagWorld world;
  BagConfig config;
  config.granularity_s = 100000;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  EXPECT_EQ(bag.current_workers(), 8);

  SimpleConfig rigid_config;
  rigid_config.workers = 3;
  rigid_config.memory_mb = 16;  // fits beside the bag app's 16 MB workers
  rigid_config.max_iterations = 1;
  SimpleApp rigid(world.harness.context(), rigid_config);
  world.harness.engine().schedule(50, [&] { ASSERT_TRUE(rigid.start().ok()); });
  world.harness.engine().run_until(1200);
  EXPECT_EQ(bag.current_workers(), 8)
      << "inside the granularity window the option must not change";
  bag.stop();
  world.harness.engine().run_until(3000);
}

TEST(BagApp, WorkerMetricTracksReconfiguration) {
  BagWorld world;
  SimpleConfig rigid_config;
  rigid_config.workers = 3;
  rigid_config.max_iterations = 1;
  SimpleApp rigid(world.harness.context(), rigid_config);
  ASSERT_TRUE(rigid.start().ok());
  BagConfig config;
  BagApp bag(world.harness.context(), config);
  ASSERT_TRUE(bag.start().ok());
  world.harness.engine().run_until(1500);
  const auto* workers = world.harness.metrics().find("bag.1.workers");
  ASSERT_NE(workers, nullptr);
  ASSERT_GE(workers->size(), 2u);
  EXPECT_DOUBLE_EQ(workers->samples().front().value, 5.0);
  EXPECT_DOUBLE_EQ(workers->last_value(), 8.0);
  bag.stop();
  world.harness.engine().run_until(3000);
}

}  // namespace
}  // namespace harmony::apps
