file(REMOVE_RECURSE
  "libharmony_apps.a"
)
