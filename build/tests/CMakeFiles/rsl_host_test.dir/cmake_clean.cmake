file(REMOVE_RECURSE
  "CMakeFiles/rsl_host_test.dir/rsl_host_test.cc.o"
  "CMakeFiles/rsl_host_test.dir/rsl_host_test.cc.o.d"
  "rsl_host_test"
  "rsl_host_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
