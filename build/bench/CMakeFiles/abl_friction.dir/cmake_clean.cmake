file(REMOVE_RECURSE
  "CMakeFiles/abl_friction.dir/abl_friction.cc.o"
  "CMakeFiles/abl_friction.dir/abl_friction.cc.o.d"
  "abl_friction"
  "abl_friction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_friction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
