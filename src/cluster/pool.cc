#include "cluster/pool.h"

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::cluster {

ResourcePool::ResourcePool(const Topology* topology) : topology_(topology) {
  HARMONY_ASSERT(topology != nullptr);
  reserved_memory_.assign(topology->node_count(), 0.0);
  processes_.assign(topology->node_count(), 0);
  external_load_.assign(topology->node_count(), 0);
  online_.assign(topology->node_count(), true);
}

void ResourcePool::set_external_load(NodeId node, int tasks) {
  HARMONY_ASSERT(node < external_load_.size());
  HARMONY_ASSERT(tasks >= 0);
  external_load_[node] = tasks;
}

int ResourcePool::external_load(NodeId node) const {
  HARMONY_ASSERT(node < external_load_.size());
  return external_load_[node];
}

void ResourcePool::set_online(NodeId node, bool online) {
  HARMONY_ASSERT(node < online_.size());
  online_[node] = online;
}

bool ResourcePool::is_online(NodeId node) const {
  HARMONY_ASSERT(node < online_.size());
  return online_[node];
}

size_t ResourcePool::online_count() const {
  size_t count = 0;
  for (bool online : online_) {
    if (online) ++count;
  }
  return count;
}

double ResourcePool::total_memory(NodeId node) const {
  return topology_->node(node).memory_mb;
}

double ResourcePool::available_memory(NodeId node) const {
  HARMONY_ASSERT(node < reserved_memory_.size());
  return topology_->node(node).memory_mb - reserved_memory_[node];
}

Status ResourcePool::reserve_memory(NodeId node, double mb) {
  if (node >= reserved_memory_.size()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative reservation");
  }
  if (available_memory(node) + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity,
                  str_format("node %s: %.1f MB requested, %.1f MB available",
                             topology_->node(node).hostname.c_str(), mb,
                             available_memory(node)));
  }
  reserved_memory_[node] += mb;
  return Status::Ok();
}

Status ResourcePool::release_memory(NodeId node, double mb) {
  if (node >= reserved_memory_.size()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative release");
  }
  if (reserved_memory_[node] + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity, "releasing more memory than reserved");
  }
  reserved_memory_[node] -= mb;
  if (reserved_memory_[node] < 0) reserved_memory_[node] = 0;  // absorb epsilon
  return Status::Ok();
}

int ResourcePool::process_count(NodeId node) const {
  HARMONY_ASSERT(node < processes_.size());
  return processes_[node];
}

void ResourcePool::add_process(NodeId node) {
  HARMONY_ASSERT(node < processes_.size());
  ++processes_[node];
}

Status ResourcePool::remove_process(NodeId node) {
  if (node >= processes_.size()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (processes_[node] == 0) {
    return Status(ErrorCode::kCapacity, "no process to remove");
  }
  --processes_[node];
  return Status::Ok();
}

int ResourcePool::total_processes() const {
  int total = 0;
  for (int count : processes_) total += count;
  return total;
}

bool ResourcePool::invariants_hold() const {
  for (NodeId id = 0; id < reserved_memory_.size(); ++id) {
    if (reserved_memory_[id] < -1e-9) return false;
    if (reserved_memory_[id] > topology_->node(id).memory_mb + 1e-9) {
      return false;
    }
    if (processes_[id] < 0) return false;
  }
  return true;
}

PoolOverlay::PoolOverlay(const ResourceView* base) : base_(base) {
  HARMONY_ASSERT(base != nullptr);
}

double PoolOverlay::reserved_delta(NodeId node) const {
  auto it = deltas_.find(node);
  return it == deltas_.end() ? 0.0 : it->second.memory_mb;
}

double PoolOverlay::total_memory(NodeId node) const {
  return base_->total_memory(node);
}

double PoolOverlay::available_memory(NodeId node) const {
  return base_->available_memory(node) - reserved_delta(node);
}

void PoolOverlay::apply(NodeId node, double memory_mb, int processes) {
  Delta& delta = deltas_[node];
  delta.memory_mb += memory_mb;
  delta.processes += processes;
  log_.push_back({node, memory_mb, processes});
}

Status PoolOverlay::reserve_memory(NodeId node, double mb) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative reservation");
  }
  if (available_memory(node) + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity,
                  str_format("node %s: %.1f MB requested, %.1f MB available",
                             topology().node(node).hostname.c_str(), mb,
                             available_memory(node)));
  }
  apply(node, mb, 0);
  return Status::Ok();
}

Status PoolOverlay::release_memory(NodeId node, double mb) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (mb < 0) {
    return Status(ErrorCode::kInvalidArgument, "negative release");
  }
  // Effective reserved = base reserved + overlay delta; mirror the live
  // pool's over-release check and epsilon absorption.
  double reserved = (base_->total_memory(node) - base_->available_memory(node)) +
                    reserved_delta(node);
  if (reserved + 1e-9 < mb) {
    return Status(ErrorCode::kCapacity, "releasing more memory than reserved");
  }
  double applied = -mb;
  if (reserved - mb < 0) applied = -reserved;  // absorb epsilon
  apply(node, applied, 0);
  return Status::Ok();
}

int PoolOverlay::process_count(NodeId node) const {
  auto it = deltas_.find(node);
  return base_->process_count(node) +
         (it == deltas_.end() ? 0 : it->second.processes);
}

void PoolOverlay::add_process(NodeId node) {
  HARMONY_ASSERT(node < topology().node_count());
  apply(node, 0.0, 1);
}

Status PoolOverlay::remove_process(NodeId node) {
  if (node >= topology().node_count()) {
    return Status(ErrorCode::kNotFound, "no such node");
  }
  if (process_count(node) == 0) {
    return Status(ErrorCode::kCapacity, "no process to remove");
  }
  apply(node, 0.0, -1);
  return Status::Ok();
}

void PoolOverlay::rewind(Mark mark) {
  HARMONY_ASSERT(mark.log_size <= log_.size());
  while (log_.size() > mark.log_size) {
    const LogEntry& entry = log_.back();
    Delta& delta = deltas_[entry.node];
    delta.memory_mb -= entry.memory_mb;
    delta.processes -= entry.processes;
    log_.pop_back();
  }
}

void PoolOverlay::reset() {
  deltas_.clear();
  log_.clear();
}

Status MemoryReservation::reserve(NodeId node, double mb) {
  auto status = pool_->reserve_memory(node, mb);
  if (status.ok()) held_.emplace_back(node, mb);
  return status;
}

void MemoryReservation::rollback() {
  for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
    auto status = pool_->release_memory(it->first, it->second);
    HARMONY_ASSERT_MSG(status.ok(), "rollback release failed");
  }
  held_.clear();
}

}  // namespace harmony::cluster
