// Durability ablation — recovery cost and the snapshot/journal tradeoff.
//
// A controller with N database clients is driven through R journaled
// perturbation rounds, then "crashes" (the process state is dropped,
// the files survive) and a fresh controller is rebuilt. Two compaction
// policies bracket the design space:
//
//   journal-heavy  baseline snapshot only; recovery replays every event
//   snapshot-heavy compaction every 16 epochs; recovery loads the last
//                  snapshot and replays a short tail
//
// Recovery must land on the same decisions (objective and instance
// count are compared against the pre-crash controller) and complete in
// interactive time. Results go to BENCH_recovery.json.
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "apps/db_app.h"
#include "apps/scenarios.h"
#include "common/strings.h"
#include "core/controller.h"
#include "persist/persistence.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

std::string bench_dir() {
  return str_format("/tmp/abl_recovery_wal_%d", static_cast<int>(::getpid()));
}

void clean_dir() {
  const std::string dir = bench_dir();
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/snapshot.hsn").c_str());
  std::remove((dir + "/snapshot.tmp").c_str());
  ::rmdir(dir.c_str());
}

long file_size(const std::string& path) {
  FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return 0;
  std::fseek(file, 0, SEEK_END);
  long size = std::ftell(file);
  std::fclose(file);
  return size;
}

struct CrashState {
  double objective = 0;
  size_t instances = 0;
  uint64_t journal_bytes = 0;
  uint64_t snapshot_bytes = 0;
  bool ok = true;
};

// Builds the workload under the given compaction policy, then crashes.
CrashState build_and_crash(int clients, int rounds,
                           uint64_t snapshot_every) {
  clean_dir();
  CrashState state;
  core::Controller controller;
  double t = 0;
  controller.set_time_source([&t] { return t; });
  persist::PersistConfig config;
  config.dir = bench_dir();
  config.snapshot_every_epochs = snapshot_every;
  // The policies under comparison are epoch-count policies; the size
  // deferral would hide the snapshot-heavy one on this small workload.
  config.snapshot_min_journal_bytes = 0;
  auto persistence = persist::Persistence::open(config, controller);
  if (!persistence.ok()) {
    state.ok = false;
    return state;
  }
  if (!controller.add_nodes_script(db_cluster_script(clients + 1)).ok() ||
      !controller.finalize_cluster().ok()) {
    state.ok = false;
    return state;
  }
  for (int i = 1; i <= clients; ++i) {
    DbClientConfig client;
    client.client_host = str_format("sp2-%02d", i - 1);
    client.instance = i;
    if (!controller.register_script(db_client_bundle_script(client)).ok()) {
      state.ok = false;
      return state;
    }
    t += 10;
  }
  for (int round = 0; round < rounds; ++round) {
    t += 10;
    if (!controller.report_external_load("sp2-00", round % 2 ? 0 : 2).ok()) {
      state.ok = false;
      return state;
    }
  }
  if (!(*persistence)->flush().ok()) {
    state.ok = false;
    return state;
  }
  auto objective = controller.objective_value();
  state.objective = objective.ok() ? objective.value() : -1;
  state.instances = controller.live_instances();
  state.journal_bytes = file_size(bench_dir() + "/journal.wal");
  state.snapshot_bytes = file_size(bench_dir() + "/snapshot.hsn");
  return state;
}

struct RecoveryResult {
  double wall_ms = 0;
  uint64_t snapshot_records = 0;
  uint64_t journal_records = 0;
  bool matched = false;
  bool ok = true;
};

RecoveryResult recover_and_check(const CrashState& expected) {
  RecoveryResult result;
  core::Controller controller;
  persist::PersistConfig config;
  config.dir = bench_dir();
  const auto t0 = std::chrono::steady_clock::now();
  auto persistence = persist::Persistence::open(config, controller);
  const auto t1 = std::chrono::steady_clock::now();
  if (!persistence.ok()) {
    result.ok = false;
    return result;
  }
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  result.snapshot_records = (*persistence)->recovery().snapshot_records;
  result.journal_records = (*persistence)->recovery().journal_records;
  auto objective = controller.objective_value();
  const double recovered_objective =
      objective.ok() ? objective.value() : -1;
  result.matched = controller.live_instances() == expected.instances &&
                   std::abs(recovered_objective - expected.objective) == 0;
  return result;
}

int run() {
  const int clients = 6;
  std::printf("=== Durability: recovery cost vs compaction policy ===\n");
  std::printf("scenario: %d database clients, R journaled load-report "
              "rounds, then crash + rebuild\n\n", clients);
  std::printf("%7s %16s %12s %12s %10s %10s %12s %8s\n", "rounds", "policy",
              "journal_B", "snapshot_B", "snap_recs", "jrnl_recs",
              "recovery_ms", "match");
  bool ok = true;
  std::string json;
  for (int rounds : {50, 200, 800}) {
    struct Policy {
      const char* name;
      uint64_t snapshot_every;
    };
    for (const Policy& policy :
         {Policy{"journal-heavy", 0}, Policy{"snapshot-heavy", 16}}) {
      auto crashed = build_and_crash(clients, rounds, policy.snapshot_every);
      auto recovered = recover_and_check(crashed);
      ok = ok && crashed.ok && recovered.ok && recovered.matched;
      std::printf("%7d %16s %12llu %12llu %10llu %10llu %12.2f %8s\n",
                  rounds, policy.name,
                  static_cast<unsigned long long>(crashed.journal_bytes),
                  static_cast<unsigned long long>(crashed.snapshot_bytes),
                  static_cast<unsigned long long>(recovered.snapshot_records),
                  static_cast<unsigned long long>(recovered.journal_records),
                  recovered.wall_ms, recovered.matched ? "yes" : "NO");
      if (!json.empty()) json += ",";
      json += str_format(
          "\n    {\"rounds\": %d, \"policy\": \"%s\", "
          "\"journal_bytes\": %llu, \"snapshot_bytes\": %llu, "
          "\"snapshot_records\": %llu, \"journal_records\": %llu, "
          "\"recovery_ms\": %.3f, \"decisions_match\": %s}",
          rounds, policy.name,
          static_cast<unsigned long long>(crashed.journal_bytes),
          static_cast<unsigned long long>(crashed.snapshot_bytes),
          static_cast<unsigned long long>(recovered.snapshot_records),
          static_cast<unsigned long long>(recovered.journal_records),
          recovered.wall_ms, recovered.matched ? "true" : "false");
    }
  }
  clean_dir();
  std::printf("\nall recoveries reproduced the pre-crash decisions: %s\n",
              ok ? "yes" : "NO");

  FILE* out = std::fopen("BENCH_recovery.json", "w");
  if (out != nullptr) {
    std::fprintf(out,
                 "{\n  \"bench\": \"abl_recovery\",\n"
                 "  \"recovery\": [%s\n  ],\n"
                 "  \"all_matched\": %s\n}\n",
                 json.c_str(), ok ? "true" : "false");
    std::fclose(out);
    std::printf("wrote BENCH_recovery.json\n");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
