#include "rsl/parser.h"

#include <gtest/gtest.h>

namespace harmony::rsl {
namespace {

TEST(ParseScript, SingleCommand) {
  auto r = parse_script("set x 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  ASSERT_EQ(r.value()[0].words.size(), 3u);
  EXPECT_TRUE(r.value()[0].words[0].is_literal());
  EXPECT_EQ(r.value()[0].words[0].literal_text(), "set");
  EXPECT_EQ(r.value()[0].words[2].literal_text(), "1");
}

TEST(ParseScript, MultipleCommandsNewlineAndSemicolon) {
  auto r = parse_script("set x 1\nset y 2; set z 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ParseScript, CommentsSkipped) {
  auto r = parse_script("# a comment\nset x 1\n# another");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
}

TEST(ParseScript, BracedWordIsLiteral) {
  auto r = parse_script("set x {a $b [c]}");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  EXPECT_EQ(w.kind, WordKind::kBraced);
  EXPECT_EQ(w.literal, "a $b [c]");
}

TEST(ParseScript, NestedBraces) {
  auto r = parse_script("cmd {a {b {c}} d}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].words[1].literal, "a {b {c}} d");
}

TEST(ParseScript, VariableSegments) {
  auto r = parse_script("set x a$b.c");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  ASSERT_EQ(w.segments.size(), 2u);
  EXPECT_EQ(w.segments[0].kind, SegKind::kLiteral);
  EXPECT_EQ(w.segments[0].text, "a");
  EXPECT_EQ(w.segments[1].kind, SegKind::kVariable);
  EXPECT_EQ(w.segments[1].text, "b.c");  // dots are variable chars
}

TEST(ParseScript, BracedVariableName) {
  auto r = parse_script("set x ${weird name}");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  ASSERT_EQ(w.segments.size(), 1u);
  EXPECT_EQ(w.segments[0].kind, SegKind::kVariable);
  EXPECT_EQ(w.segments[0].text, "weird name");
}

TEST(ParseScript, CommandSubstitutionSegment) {
  auto r = parse_script("set x [expr 1 + 2]");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  ASSERT_EQ(w.segments.size(), 1u);
  EXPECT_EQ(w.segments[0].kind, SegKind::kCommand);
  EXPECT_EQ(w.segments[0].text, "expr 1 + 2");
}

TEST(ParseScript, NestedBrackets) {
  auto r = parse_script("set x [a [b c]]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].words[2].segments[0].text, "a [b c]");
}

TEST(ParseScript, QuotedWordsAllowSpaces) {
  auto r = parse_script("set x \"hello world\"");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  ASSERT_EQ(w.segments.size(), 1u);
  EXPECT_EQ(w.segments[0].text, "hello world");
}

TEST(ParseScript, QuotedWordWithSubstitution) {
  auto r = parse_script("set x \"v=$v\"");
  ASSERT_TRUE(r.ok());
  const auto& w = r.value()[0].words[2];
  ASSERT_EQ(w.segments.size(), 2u);
  EXPECT_EQ(w.segments[0].text, "v=");
  EXPECT_EQ(w.segments[1].kind, SegKind::kVariable);
}

TEST(ParseScript, EscapesInBareWords) {
  auto r = parse_script("set x a\\nb");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].words[2].segments[0].text, "a\nb");
}

TEST(ParseScript, LineContinuation) {
  auto r = parse_script("set x \\\n 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].words.size(), 3u);
}

TEST(ParseScript, MultilineBracedArgumentSpansCommands) {
  auto r = parse_script("proc f {} {\n set a 1\n set b 2\n}\nset x 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].words.size(), 4u);
}

TEST(ParseScript, ErrorsCarryLineNumbers) {
  auto r = parse_script("set x 1\nset y {unclosed");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos)
      << r.error().message;
}

TEST(ParseScript, UnbalancedBracketsFail) {
  EXPECT_FALSE(parse_script("set x [a").ok());
}

TEST(ParseScript, UnterminatedQuoteFails) {
  EXPECT_FALSE(parse_script("set x \"abc").ok());
}

TEST(ParseScript, EmptyScript) {
  auto r = parse_script("");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
  r = parse_script("\n\n;;\n");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

TEST(ParseScript, DollarWithoutNameIsLiteral) {
  auto r = parse_script("set x a$ b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].words[2].segments[0].text, "a$");
}

TEST(ParseScript, PaperBundleParsesAsOneCommand) {
  const char* script = R"(harmonyBundle DBclient:1 where {
  {QS
    {node server {hostname harmony.cs.umd.edu} {seconds 42} {memory 20}}
    {node client {hostname *} {os linux} {seconds 1} {memory 2}}
    {link client server 10}}
  {DS
    {node server {hostname harmony.cs.umd.edu} {seconds 1} {memory 20}}
    {node client {hostname *} {os linux} {memory >=17} {seconds 9}}
    {link client server {44 + (client.memory > 24 ? 24 : client.memory) - 17}}}
})";
  auto r = parse_script(script);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_EQ(r.value()[0].words.size(), 4u);
  EXPECT_EQ(r.value()[0].words[0].literal_text(), "harmonyBundle");
}

}  // namespace
}  // namespace harmony::rsl
