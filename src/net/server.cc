#include "net/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"

namespace harmony::net {

namespace {

// Resume tokens gate session hijacking, so they must be unguessable
// and unique across server restarts (recovered sessions keep their
// tokens). /dev/urandom or nothing: without a secure source the server
// issues no token at all (the registration falls back to v1,
// non-resumable) rather than a predictable one.
std::string make_session_token() {
  unsigned char raw[12];
  int fd = ::open("/dev/urandom", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return {};
  const bool filled =
      ::read(fd, raw, sizeof(raw)) == static_cast<ssize_t>(sizeof(raw));
  ::close(fd);
  if (!filled) return {};
  std::string token;
  token.reserve(sizeof(raw) * 2);
  for (unsigned char byte : raw) token += str_format("%02x", byte);
  return token;
}

// Tokens are secrets; logs carry only a recognizable prefix.
std::string token_prefix(const std::string& token) {
  return token.substr(0, 6) + "...";
}

// The serve loop's thread is the controller's owner thread while it
// runs; the binding is released on exit so tests (and embedders) can
// inspect the controller from their own thread afterwards. In routed
// mode there is no single controller to bind (each domain worker binds
// its own around each op), so a null controller is a no-op.
class OwnerBind {
 public:
  explicit OwnerBind(core::Controller* controller) : controller_(controller) {
    if (controller_ != nullptr) controller_->bind_owner_thread();
  }
  ~OwnerBind() {
    if (controller_ != nullptr) controller_->unbind_owner_thread();
  }
  OwnerBind(const OwnerBind&) = delete;
  OwnerBind& operator=(const OwnerBind&) = delete;

 private:
  core::Controller* controller_;
};

// Epoch batching is a single-controller concept; routed servers let
// each domain op commit its own epoch on its worker.
class MaybeEpoch {
 public:
  explicit MaybeEpoch(core::Controller* controller) {
    if (controller != nullptr) scope_.emplace(*controller);
  }

 private:
  std::optional<core::Controller::EpochScope> scope_;
};

}  // namespace

HarmonyTcpServer::HarmonyTcpServer(core::Controller* controller,
                                   uint16_t port, ServerConfig config)
    : HarmonyTcpServer(controller, nullptr, port, config) {}

HarmonyTcpServer::HarmonyTcpServer(core::DomainRouter* router, uint16_t port,
                                   ServerConfig config)
    : HarmonyTcpServer(nullptr, router, port, config) {}

HarmonyTcpServer::HarmonyTcpServer(core::Controller* controller,
                                   core::DomainRouter* router, uint16_t port,
                                   ServerConfig config)
    : controller_(controller),
      router_(router),
      config_(config),
      port_(port),
      mailbox_(config.mailbox_capacity),
      frames_out_total_(&metric::telemetry_counter("net.frames_out_total")),
      session_parks_total_(
          &metric::telemetry_counter("net.session_parks_total")),
      backpressure_drops_total_(
          &metric::telemetry_counter("net.backpressure_drops_total")),
      connections_gauge_(&metric::telemetry_gauge("net.connections")),
      parked_gauge_(&metric::telemetry_gauge("net.parked_sessions")),
      mailbox_wait_us_(&metric::telemetry_histogram("net.mailbox_wait_us")) {
  HARMONY_ASSERT((controller != nullptr) != (router != nullptr));
  if (router_ != nullptr) core::publish_domain_router(router_);
}

HarmonyTcpServer::~HarmonyTcpServer() {
  // The shard threads must be gone before controller state is touched:
  // after this, no mailbox event or egress command is in flight.
  shutdown_shards();
  for (auto& connection : connections_) detach_connection(*connection);
  for (auto& [id, connection] : remotes_) detach_connection(*connection);
  if (router_ != nullptr) core::publish_domain_router(nullptr);
}

// --- decision-core dispatch ------------------------------------------------

Result<core::InstanceId> HarmonyTcpServer::ctl_register(
    const std::string& script) {
  return router_ != nullptr ? router_->register_script(script)
                            : controller_->register_script(script);
}

Status HarmonyTcpServer::ctl_unregister(core::InstanceId id) {
  return router_ != nullptr ? router_->unregister(id)
                            : controller_->unregister(id);
}

Status HarmonyTcpServer::ctl_subscribe(core::InstanceId id,
                                       core::Controller::UpdateHandler handler) {
  return router_ != nullptr ? router_->subscribe(id, std::move(handler))
                            : controller_->subscribe(id, std::move(handler));
}

Result<std::string> HarmonyTcpServer::ctl_get_variable(
    core::InstanceId id, const std::string& name) {
  return router_ != nullptr ? router_->get_variable(id, name)
                            : controller_->get_variable(id, name);
}

Status HarmonyTcpServer::ctl_report_load(const std::string& hostname,
                                         int tasks) {
  return router_ != nullptr
             ? router_->report_external_load(hostname, tasks)
             : controller_->report_external_load(hostname, tasks);
}

Status HarmonyTcpServer::ctl_set_option(core::InstanceId id,
                                        const std::string& bundle,
                                        const core::OptionChoice& choice) {
  return router_ != nullptr ? router_->set_option(id, bundle, choice)
                            : controller_->set_option(id, bundle, choice);
}

Status HarmonyTcpServer::ctl_resize(core::InstanceId id,
                                    const std::string& bundle,
                                    double workers) {
  return router_ != nullptr ? router_->resize(id, bundle, workers)
                            : controller_->resize(id, bundle, workers);
}

Status HarmonyTcpServer::ctl_reevaluate() {
  return router_ != nullptr ? router_->reevaluate()
                            : controller_->reevaluate();
}

void HarmonyTcpServer::detach_connection(Connection& connection) {
  if (connection.is_replica) {
    if (feed_ != nullptr) feed_->detach(connection.id);
    return;
  }
  // Deregister non-resumable connections; sessions with a token stay
  // registered so a persistence-backed restart can offer them for
  // RESUME. Their update subscriptions must be parked, though: the
  // handlers capture this server and raw Connection pointers, and a
  // controller that outlives the server would otherwise flush pending
  // variables into freed memory.
  if (!connection.session_token.empty()) {
    for (core::InstanceId id : connection.instances) {
      (void)ctl_subscribe(id, core::Controller::UpdateHandler{});
    }
    return;
  }
  for (core::InstanceId id : connection.instances) {
    (void)ctl_unregister(id);
  }
}

void HarmonyTcpServer::set_persistence(persist::Persistence* persistence) {
  persistence_ = persistence;
  if (persistence_ == nullptr) return;
  // Sessions recovered from the journal/snapshot are parked: their
  // instances are already restored in the controller, and the owning
  // clients get one grace window to reconnect and RESUME.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(session_grace_ms_);
  for (const auto& [token, instances] : persistence_->sessions()) {
    parked_[token] = ParkedSession{instances, deadline};
  }
}

Result<uint16_t> HarmonyTcpServer::start() {
  io_shard_count_ = config_.io_shards;
  if (io_shard_count_ < 0) {
    unsigned hw = std::thread::hardware_concurrency();
    io_shard_count_ = static_cast<int>(std::min(4u, hw == 0 ? 1u : hw));
  }
  auto listener = listen_on(port_, config_.listen_backlog);
  if (!listener.ok()) {
    return Err<uint16_t>(listener.error().code, listener.error().message);
  }
  listener_ = std::move(listener).value();
  auto status = set_nonblocking(listener_, true);
  if (!status.ok()) {
    return Err<uint16_t>(status.error().code, status.error().message);
  }
  auto port = local_port(listener_);
  if (!port.ok()) return port;
  port_ = port.value();
  if (!sharded()) {
    accept_reserve_ = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
    HLOG_INFO("server") << "harmony listening on 127.0.0.1:" << port_
                        << " (single-thread poll loop)";
    return port_;
  }
  // Shard 0 owns the listener and deals accepted sockets round-robin;
  // the full roster must exist before any shard thread starts.
  for (int i = 0; i < io_shard_count_; ++i) {
    ShardOptions options;
    options.index = i;
    options.high_water_bytes = config_.outbound_high_water;
    options.sndbuf_bytes = config_.sndbuf_bytes;
    options.mailbox = &mailbox_;
    options.connection_count = &shard_connections_;
    options.next_conn_id = &next_conn_id_;
    options.accept_cursor = &accept_cursor_;
    options.peers = &shards_;
    shards_.push_back(std::make_unique<IoShard>(options));
  }
  shard_wake_.assign(shards_.size(), 0);
  for (int i = 0; i < io_shard_count_; ++i) {
    auto started = shards_[i]->start(i == 0 ? std::move(listener_) : Fd{});
    if (!started.ok()) {
      shutdown_shards();
      return Err<uint16_t>(started.error().code, started.error().message);
    }
  }
  HLOG_INFO("server") << "harmony listening on 127.0.0.1:" << port_ << " ("
                      << io_shard_count_ << " I/O shard(s))";
  return port_;
}

void HarmonyTcpServer::stop() {
  stopping_ = true;
  if (!shards_.empty()) {
    // Unblocks the controller thread (mailbox) and every shard loop.
    mailbox_.close();
    for (auto& shard : shards_) {
      shard->request_stop();
      shard->wake();
    }
  }
}

void HarmonyTcpServer::shutdown_shards() {
  if (shards_.empty()) return;
  mailbox_.close();
  for (auto& shard : shards_) {
    shard->request_stop();
    shard->wake();
  }
  for (auto& shard : shards_) shard->join();
  shards_.clear();
}

bool HarmonyTcpServer::run_once(int timeout_ms) {
  return sharded() ? drain_once(timeout_ms) : poll_once(timeout_ms);
}

void HarmonyTcpServer::run(int until_idle_ms) { serve_loop(until_idle_ms); }

void HarmonyTcpServer::serve_loop(int until_idle_ms) {
  // Idle time is measured on a monotonic clock, not by counting poll
  // timeouts: a wait interrupted by a signal (EINTR) returns
  // immediately, so assuming each no-progress iteration consumed the
  // full timeout would cut the idle window short by however often
  // signals arrive.
  using Clock = std::chrono::steady_clock;
  Clock::time_point last_progress = Clock::now();
  while (!stopping_) {
    bool progress = sharded() ? drain_once(50) : poll_once(50);
    if (progress) {
      last_progress = Clock::now();
    } else if (until_idle_ms > 0) {
      auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
          Clock::now() - last_progress);
      if (idle.count() >= until_idle_ms) return;
    }
  }
}

// --- sharded controller loop ----------------------------------------------

bool HarmonyTcpServer::drain_once(int timeout_ms) {
  mailbox_.drain(drain_batch_, timeout_ms);
  reap_expired_sessions();
  connections_gauge_->set(static_cast<int64_t>(connection_count()));
  parked_gauge_->set(static_cast<int64_t>(parked_.size()));
  bool progress = !drain_batch_.empty();
  if (progress) {
    record_mailbox_waits();
    // The owner binding covers exactly the window in which this thread
    // mutates core state. While the loop blocks in drain, the controller
    // stays unbound, so externally synchronized callers (tests, tools
    // embedding a server thread) can still drive it directly. A standby
    // never binds: its controller is owned by the replication applier,
    // and nothing this loop dispatches there touches core state.
    OwnerBind bind(standby_ ? nullptr : controller_);
    // Replies ship every stride rather than once per batch: egress
    // still coalesces per recipient within a stride, but a message at
    // the back of a big drain batch no longer waits for the whole batch
    // to finish dispatching before its reply leaves the process.
    constexpr size_t kShipStride = 64;
    size_t since_ship = 0;
    for (auto& event : drain_batch_) {
      process_net_event(event);
      if (++since_ship >= kShipStride) {
        pump_updates();
        ship_staged();
        since_ship = 0;
      }
    }
  }
  // Ships everything staged this cycle — dispatch replies plus any
  // UPDATE fan-out from expired-session re-evaluations above (and, in
  // routed mode, updates queued by domain workers since the last tick).
  progress = pump_updates() || progress;
  progress = pump_replication() || progress;
  ship_staged();
  return progress;
}

void HarmonyTcpServer::record_mailbox_waits() {
  if (!metric::telemetry_enabled()) return;
  const uint64_t now_us = metric::telemetry_now_us();
  uint64_t oldest_us = 0;
  for (const auto& event : drain_batch_) {
    // Events stamped while telemetry was disabled carry no timestamp.
    if (event.enqueued_us == 0 || event.enqueued_us > now_us) continue;
    if (oldest_us == 0) oldest_us = event.enqueued_us;
    mailbox_wait_us_->record(now_us - event.enqueued_us);
  }
  // One queue-wait span per drain cycle: the oldest event's wait
  // brackets the whole batch.
  if (oldest_us != 0 && metric::TraceBuffer::instance().enabled()) {
    metric::TraceBuffer::instance().record("mailbox.queue_wait", oldest_us,
                                           now_us - oldest_us);
  }
}

bool HarmonyTcpServer::process_net_event(NetEvent& event) {
  switch (event.kind) {
    case NetEvent::Kind::kAccepted: {
      auto connection = std::make_unique<Connection>();
      connection->id = event.conn;
      connection->shard = event.shard;
      HLOG_DEBUG("server") << "accepted conn " << event.conn << " on shard "
                           << event.shard;
      remotes_.emplace(event.conn, std::move(connection));
      return true;
    }
    case NetEvent::Kind::kMessage: {
      auto it = remotes_.find(event.conn);
      if (it == remotes_.end()) return false;
      dispatch(*it->second, event.message);
      return true;
    }
    case NetEvent::Kind::kClosed: {
      auto it = remotes_.find(event.conn);
      if (it == remotes_.end()) return false;
      if (event.overflow) {
        HLOG_WARN("server") << "conn " << event.conn
                            << " cut at the slow-consumer high-water mark";
        // A v2 session parks (counted in park_or_end); a v1 client
        // loses its registrations outright.
        if (it->second->session_token.empty()) {
          backpressure_drops_total_->increment();
        }
      }
      {
        MaybeEpoch epoch(standby_ ? nullptr : controller_);
        park_or_end(*it->second);
      }
      // Anything still staged for it can never be delivered.
      egress_dirty_.erase(std::remove(egress_dirty_.begin(),
                                      egress_dirty_.end(), it->second.get()),
                          egress_dirty_.end());
      remotes_.erase(it);
      return true;
    }
  }
  return false;
}

void HarmonyTcpServer::ship_staged() {
  if (egress_dirty_.empty()) return;
  metric::ScopedSpan span("update.fanout");
  std::fill(shard_wake_.begin(), shard_wake_.end(), 0);
  for (Connection* connection : egress_dirty_) {
    if (connection->staged.empty()) continue;
    shards_[connection->shard]->post_send(connection->id,
                                          std::move(connection->staged));
    connection->staged.clear();
    shard_wake_[connection->shard] = 1;
  }
  egress_dirty_.clear();
  // One wake per shard per drain cycle, not per connection.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shard_wake_[i]) shards_[i]->wake();
  }
}

// --- single-thread poll loop (the A/B baseline) ---------------------------

bool HarmonyTcpServer::poll_once(int timeout_ms) {
  // The fd/event fields are refreshed in place every tick (writability
  // interest follows the outbound buffer), but the vector itself only
  // grows or shrinks when connections come and go.
  pollfds_.resize(connections_.size() + 1);
  pollfds_[0] = {listener_.get(), POLLIN, 0};
  for (size_t i = 0; i < connections_.size(); ++i) {
    short events = POLLIN;
    if (!connections_[i]->outbound.empty()) events |= POLLOUT;
    pollfds_[i + 1] = {connections_[i]->fd.get(), events, 0};
  }
  int ready = ::poll(pollfds_.data(), pollfds_.size(), timeout_ms);
  reap_expired_sessions();
  connections_gauge_->set(static_cast<int64_t>(connections_.size()));
  parked_gauge_->set(static_cast<int64_t>(parked_.size()));
  if (ready <= 0) return false;

  if (pollfds_[0].revents & POLLIN) accept_new();
  // accept_new may have grown connections_; the new entries poll next
  // tick. Dispatch strictly over this tick's snapshot.
  OwnerBind bind(standby_ ? nullptr : controller_);
  const size_t polled = pollfds_.size();
  for (size_t i = 1; i < polled; ++i) {
    Connection& connection = *connections_[i - 1];
    if (pollfds_[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      handle_readable(connection);
    }
    if (!connection.drop && (pollfds_[i].revents & POLLOUT)) {
      flush_writable(connection);
    }
  }
  reap_dropped();
  // Routed mode: updates queued outside a dispatch (departure cascades
  // from reaping, for instance) ship before the tick ends.
  pump_updates();
  pump_replication();
  return true;
}

void HarmonyTcpServer::accept_new() {
  while (true) {
    auto accepted = accept_connection(listener_);
    if (!accepted.ok()) {
      if (accepted.error().code == ErrorCode::kTimeout) return;  // drained
      if (accepted.error().code == ErrorCode::kCapacity) {
        // Out of fds: shed the pending connection via the reserve slot
        // so the listener does not stall with a full backlog.
        if (!accept_reserve_.valid()) {
          HLOG_WARN("server") << "out of file descriptors; accept deferred";
          return;
        }
        accept_reserve_.close();
        int fd = ::accept(listener_.get(), nullptr, nullptr);
        if (fd >= 0) ::close(fd);
        accept_reserve_ = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
        HLOG_WARN("server")
            << "out of file descriptors; shed one pending connection";
        continue;
      }
      HLOG_WARN("server") << "accept: " << accepted.error().message;
      return;
    }
    auto connection = std::make_unique<Connection>();
    // Routed mode addresses queued updates by connection id, so the
    // poll loop's connections need one too.
    connection->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    connection->fd = std::move(accepted).value();
    auto status = set_nonblocking(connection->fd, true);
    if (!status.ok()) continue;
    if (config_.sndbuf_bytes > 0) {
      (void)::setsockopt(connection->fd.get(), SOL_SOCKET, SO_SNDBUF,
                         &config_.sndbuf_bytes, sizeof(config_.sndbuf_bytes));
    }
    HLOG_DEBUG("server") << "accepted connection fd="
                         << connection->fd.get();
    connections_.push_back(std::move(connection));
  }
}

void HarmonyTcpServer::handle_readable(Connection& connection) {
  char buffer[4096];
  while (true) {
    auto n = read_some(connection.fd, buffer, sizeof(buffer));
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) break;  // drained
    connection.inbound.feed(std::string_view(buffer, n.value()));
  }
  while (true) {
    auto frame = connection.inbound.next_frame();
    if (!frame.ok()) {
      HLOG_WARN("server") << "protocol violation: " << frame.error().message;
      connection.drop = true;
      return;
    }
    if (!frame.value().has_value()) break;
    auto message = Message::decode(*frame.value());
    if (!message.ok()) {
      send(connection, Message::err(message.error().code,
                                    message.error().message));
      continue;
    }
    dispatch(connection, message.value());
    if (connection.drop) return;
  }
}

void HarmonyTcpServer::dispatch(Connection& connection,
                                const Message& message) {
  Message reply;
  // Cork the dispatching connection: every frame this message produces
  // for it — the RESUME/subscribe replay, fan-out to itself, and the
  // reply — accumulates and leaves in one buffered write instead of one
  // write(2) per frame. (Sharded mode batches by construction.)
  connection.corked = true;
  {
    // One message = one optimization epoch: a REGISTER that also
    // subscribes (or an END that cascades re-evaluations) produces a
    // single coherent flush of variable updates and one set of
    // decision-path metrics. A standby opens no epoch — its controller
    // belongs to the replication applier, and the verbs that reach
    // handle_message there never touch it.
    MaybeEpoch epoch(standby_ ? nullptr : controller_);
    reply = handle_message(connection, message);
  }
  // The epoch close above flushed pending variable updates, so UPDATE
  // frames always precede the reply on the wire — clients that block on
  // the reply then drain their buffer see a complete picture. Routed
  // ops block until their domain epoch flushed, so pumping here gives
  // the same ordering.
  pump_updates();
  if (reply.verb.empty()) {
    // No-reply sentinel (replication ACKs).
  } else if (should_defer_reply(message.verb, reply)) {
    // Semi-sync: the epoch above journaled this verb's effect; hold the
    // OK until a standby acks the covering journal position. The
    // UPDATE frames already staged still precede the reply when it
    // finally ships, because per-connection egress is FIFO.
    const persist::ReplicationPosition position =
        persistence_->replication_position();
    deferred_.push_back(DeferredReply{
        connection.id, reply, position.generation, position.offset,
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.sync_reply_timeout_ms)});
  } else {
    send(connection, reply);
  }
  connection.corked = false;
  if (!sharded() && !connection.drop) flush_writable(connection);
}

bool HarmonyTcpServer::should_defer_reply(const std::string& verb,
                                          const Message& reply) const {
  if (feed_ == nullptr || persistence_ == nullptr || standby_) return false;
  if (reply.verb != "OK") return false;  // failures journaled nothing
  // The mutating verbs: everything whose loss on failover a client
  // could observe. GET/METRICS/etc. read freely.
  const bool mutating = verb == "REGISTER" || verb == "END" ||
                        verb == "LOAD" || verb == "SET" ||
                        verb == "RESIZE" || verb == "REEVALUATE" ||
                        verb == "RESUME";
  return mutating && feed_->has_subscribers();
}

Status HarmonyTcpServer::attach_updates(Connection& connection,
                                        core::InstanceId id) {
  if (router_ != nullptr) {
    // Routed mode: handlers fire on domain worker threads, where none
    // of the egress state may be touched. They queue by connection id
    // (the connection may die before the pump runs) and the controller
    // thread pumps the queue into the normal send path.
    const uint64_t conn_id = connection.id;
    return router_->subscribe(
        id,
        [this, conn_id](const std::string& name, const std::string& value) {
          std::lock_guard<std::mutex> lock(updates_mutex_);
          pending_updates_.push_back(PendingUpdate{conn_id, name, value});
        });
  }
  // Wire updates for this instance to this connection. The pointer is
  // stable: connections are heap-allocated and subscriptions die with
  // the instance (unregister clears them) or are re-pointed on RESUME.
  Connection* conn = &connection;
  return controller_->subscribe(
      id, [this, conn](const std::string& name, const std::string& value) {
        send(*conn, Message::update(name, value));
      });
}

HarmonyTcpServer::Connection* HarmonyTcpServer::find_connection(uint64_t id) {
  if (sharded()) {
    auto it = remotes_.find(id);
    return it == remotes_.end() ? nullptr : it->second.get();
  }
  for (auto& connection : connections_) {
    if (connection->id == id) return connection.get();
  }
  return nullptr;
}

bool HarmonyTcpServer::pump_updates() {
  if (router_ == nullptr) return false;
  std::vector<PendingUpdate> batch;
  {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    batch.swap(pending_updates_);
  }
  if (batch.empty()) return false;
  for (const PendingUpdate& update : batch) {
    Connection* connection = find_connection(update.conn);
    if (connection == nullptr || connection->drop) continue;
    send(*connection, Message::update(update.name, update.value));
  }
  return true;
}

void HarmonyTcpServer::persist_session(
    const std::string& token, const std::vector<core::InstanceId>& instances) {
  if (persistence_ != nullptr) persistence_->record_session(token, instances);
}

std::string HarmonyTcpServer::new_session_token() const {
  // 96 random bits make a collision astronomically unlikely, but a
  // token that collides with a parked or live session would hand one
  // client another's instances — check anyway; it is cheap.
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::string token = make_session_token();
    if (token.empty()) return {};
    if (parked_.count(token) != 0) continue;
    bool in_use = false;
    for (const auto& connection : connections_) {
      in_use = in_use || connection->session_token == token;
    }
    for (const auto& [id, connection] : remotes_) {
      in_use = in_use || connection->session_token == token;
    }
    if (!in_use) return token;
  }
  return {};
}

Message HarmonyTcpServer::handle_message(Connection& connection,
                                         const Message& message) {
  if (message.verb == "METRICS") {
    // Only reached in single-thread mode: the sharded front end answers
    // scrapes on the owning I/O shard without a mailbox round trip.
    return build_metrics_reply(message);
  }
  if (message.verb == "DOMAINS") {
    // Likewise shard-answered when sharded; here for the poll loop.
    return build_domains_reply(message);
  }
  if (message.verb == "STATUS") {
    // Likewise shard-answered when sharded; here for the poll loop.
    return build_status_reply(message);
  }
  if (message.verb == "REPL") {
    return handle_repl(connection, message);
  }
  if (standby_ && is_decision_verb(message.verb)) {
    // Authoritative refusal. The sharded front end already redirects
    // decision verbs at the shard (ha_accepting), but the poll loop —
    // and any message that raced a role flip through the mailbox —
    // lands here.
    return not_primary_reply();
  }
  if (message.verb == "REGISTER") {
    // v1: {REGISTER script} -> {OK id}. v2: {REGISTER script 2} ->
    // {OK id token}; the token makes the session resumable.
    const bool v2 = message.args.size() == 2 && message.args[1] == "2";
    if (message.args.empty() || (message.args.size() == 2 && !v2) ||
        message.args.size() > 2) {
      return Message::err(ErrorCode::kProtocol,
                          "REGISTER expects a script and optional version");
    }
    auto id = ctl_register(message.args[0]);
    if (!id.ok()) {
      return Message::err(id.error().code, id.error().message);
    }
    connection.instances.push_back(id.value());
    auto subscribed = attach_updates(connection, id.value());
    if (!subscribed.ok()) {
      return Message::err(subscribed.error().code, subscribed.error().message);
    }
    const std::string id_text =
        str_format("%llu", static_cast<unsigned long long>(id.value()));
    if (!v2) return Message::ok({id_text});
    if (connection.session_token.empty()) {
      connection.session_token = new_session_token();
      if (connection.session_token.empty()) {
        // No secure randomness available: answer v1-style (registered,
        // not resumable) instead of issuing a guessable token.
        HLOG_WARN("server")
            << "no session token source; registration is not resumable";
        return Message::ok({id_text});
      }
    }
    persist_session(connection.session_token, connection.instances);
    return Message::ok({id_text, connection.session_token});
  }
  if (message.verb == "RESUME") {
    if (message.args.size() != 1) {
      return Message::err(ErrorCode::kProtocol, "RESUME expects a token");
    }
    return handle_resume(connection, message.args[0]);
  }
  if (message.verb == "END" || message.verb == "GET") {
    unsigned long long raw = 0;
    if (message.args.empty() ||
        sscanf(message.args[0].c_str(), "%llu", &raw) != 1) {
      return Message::err(ErrorCode::kProtocol, "bad instance id");
    }
    core::InstanceId id = raw;
    bool owned = std::find(connection.instances.begin(),
                           connection.instances.end(),
                           id) != connection.instances.end();
    if (!owned) {
      return Message::err(ErrorCode::kNotFound,
                          "instance not registered here");
    }
    if (message.verb == "END") {
      auto status = ctl_unregister(id);
      connection.instances.erase(std::remove(connection.instances.begin(),
                                             connection.instances.end(), id),
                                 connection.instances.end());
      if (!connection.session_token.empty()) {
        persist_session(connection.session_token, connection.instances);
      }
      return status.ok() ? Message::ok()
                         : Message::err(status.error().code,
                                        status.error().message);
    }
    if (message.args.size() != 2) {
      return Message::err(ErrorCode::kProtocol, "GET expects id and name");
    }
    auto value = ctl_get_variable(id, message.args[1]);
    return value.ok() ? Message::ok({value.value()})
                      : Message::err(value.error().code,
                                     value.error().message);
  }
  if (message.verb == "LOAD") {
    // {LOAD <hostname> <tasks>}: observed load from outside Harmony's
    // control (§4.3), reported by any connected client or monitoring
    // agent; feeds the contention models and triggers a re-evaluation.
    long long tasks = 0;
    if (message.args.size() != 2 || !parse_int64(message.args[1], &tasks) ||
        tasks < 0) {
      return Message::err(ErrorCode::kProtocol,
                          "LOAD expects a hostname and a task count");
    }
    auto status =
        ctl_report_load(message.args[0], static_cast<int>(tasks));
    return status.ok() ? Message::ok()
                       : Message::err(status.error().code,
                                      status.error().message);
  }
  if (message.verb == "SET") {
    // {SET <id> <bundle> <option> [<var> <value>]...}: computational
    // steering (§7) — force a bundle onto an option, bypassing the
    // objective but not resource matching. Deliberately not gated on
    // connection ownership: steering comes from operator consoles, not
    // from the application being steered.
    if (message.args.size() < 3 || message.args.size() % 2 != 1) {
      return Message::err(
          ErrorCode::kProtocol,
          "SET expects id, bundle, option, and variable pairs");
    }
    unsigned long long raw = 0;
    if (sscanf(message.args[0].c_str(), "%llu", &raw) != 1) {
      return Message::err(ErrorCode::kProtocol, "bad instance id");
    }
    core::OptionChoice choice;
    choice.option = message.args[2];
    for (size_t i = 3; i + 1 < message.args.size(); i += 2) {
      double value = 0;
      if (!parse_double(message.args[i + 1], &value)) {
        return Message::err(ErrorCode::kProtocol,
                            "bad variable value: " + message.args[i + 1]);
      }
      choice.variables[message.args[i]] = value;
    }
    auto status = ctl_set_option(raw, message.args[1], choice);
    return status.ok() ? Message::ok()
                       : Message::err(status.error().code,
                                      status.error().message);
  }
  if (message.verb == "RESIZE") {
    // {RESIZE <id> <bundle> <workers>}: live grow/shrink — move the
    // bundle's parallelism variable to a new declared degree while the
    // application runs. Like SET, not gated on connection ownership:
    // resizes come from operator consoles and schedulers.
    if (message.args.size() != 3) {
      return Message::err(ErrorCode::kProtocol,
                          "RESIZE expects id, bundle, and worker count");
    }
    unsigned long long raw = 0;
    if (sscanf(message.args[0].c_str(), "%llu", &raw) != 1) {
      return Message::err(ErrorCode::kProtocol, "bad instance id");
    }
    double workers = 0;
    if (!parse_double(message.args[2], &workers)) {
      return Message::err(ErrorCode::kProtocol,
                          "bad worker count: " + message.args[2]);
    }
    auto status = ctl_resize(raw, message.args[1], workers);
    return status.ok() ? Message::ok()
                       : Message::err(status.error().code,
                                      status.error().message);
  }
  if (message.verb == "REEVALUATE") {
    auto status = ctl_reevaluate();
    return status.ok() ? Message::ok()
                       : Message::err(status.error().code,
                                      status.error().message);
  }
  return Message::err(ErrorCode::kProtocol, "unknown verb: " + message.verb);
}

Message HarmonyTcpServer::handle_resume(Connection& connection,
                                        const std::string& token) {
  auto it = parked_.find(token);
  if (it == parked_.end()) {
    return Message::err(ErrorCode::kNotFound, "unknown or expired session");
  }
  if (!connection.instances.empty() || !connection.session_token.empty()) {
    return Message::err(ErrorCode::kInvalidArgument,
                        "connection already has a session");
  }
  connection.session_token = token;
  connection.instances = std::move(it->second.instances);
  parked_.erase(it);
  // Reattaching the subscription replays each instance's current
  // configuration as synthetic decisions, flushed before the OK reply —
  // a resuming client's harmony_wait_for_update sees a complete
  // pending-variable snapshot exactly as a fresh registrant would. The
  // whole replay leaves as one buffered write (the dispatch cork / the
  // sharded egress batch), not one send per variable.
  // Instances whose subscription fails already departed; drop them from
  // the session for good, or they would be re-parked and retried on
  // every reconnect cycle.
  std::vector<core::InstanceId> live;
  std::vector<std::string> id_texts;
  for (core::InstanceId id : connection.instances) {
    auto subscribed = attach_updates(connection, id);
    if (!subscribed.ok()) {
      HLOG_WARN("server") << "resume: instance " << id
                          << " gone: " << subscribed.error().message;
      continue;
    }
    live.push_back(id);
    id_texts.push_back(
        str_format("%llu", static_cast<unsigned long long>(id)));
  }
  if (live.size() != connection.instances.size()) {
    connection.instances = std::move(live);
    persist_session(token, connection.instances);
  }
  HLOG_INFO("server") << "session " << token_prefix(token) << " resumed with "
                      << id_texts.size() << " instance(s)";
  return Message::ok(std::move(id_texts));
}

Message HarmonyTcpServer::handle_repl(Connection& connection,
                                      const Message& message) {
  if (feed_ == nullptr) {
    return Message::err(ErrorCode::kInvalidArgument,
                        "replication is not enabled on this server");
  }
  if (message.args.empty()) {
    return Message::err(ErrorCode::kProtocol, "REPL expects a subcommand");
  }
  const std::string& sub = message.args[0];
  auto parse_pos = [&](size_t index, uint64_t* out) {
    long long value = 0;
    if (index >= message.args.size() ||
        !parse_int64(message.args[index], &value) || value < 0) {
      return false;
    }
    *out = static_cast<uint64_t>(value);
    return true;
  };
  if (sub == "HELLO") {
    // {REPL HELLO <gen> <offset> <standby_id>}
    uint64_t generation = 0, offset = 0;
    if (message.args.size() != 4 || !parse_pos(1, &generation) ||
        !parse_pos(2, &offset)) {
      return Message::err(ErrorCode::kProtocol,
                          "REPL HELLO expects generation, offset, and id");
    }
    if (persistence_ != nullptr) {
      // The baseline snapshot is written lazily (first epoch commit); a
      // standby joining before any traffic must still get a coherent
      // starting point, so force it durable now.
      Status flushed = persistence_->flush();
      if (!flushed.ok()) {
        return Message::err(flushed.error().code, flushed.error().message);
      }
    }
    connection.is_replica = true;
    HLOG_INFO("server") << "standby " << message.args[3]
                        << " attached at generation " << generation
                        << " offset " << offset;
    for (Message& frame :
         feed_->handshake(connection.id, message.args[3], generation, offset)) {
      send(connection, frame);
    }
    return Message::ok({"REPL"});
  }
  if (sub == "ACK") {
    // {REPL ACK <gen> <offset> <records>} — no reply (the stream is
    // one-directional; an OK per ack would double the chatter).
    uint64_t generation = 0, offset = 0, records = 0;
    if (message.args.size() != 4 || !parse_pos(1, &generation) ||
        !parse_pos(2, &offset) || !parse_pos(3, &records)) {
      return Message::err(ErrorCode::kProtocol,
                          "REPL ACK expects generation, offset, and records");
    }
    feed_->note_ack(connection.id, generation, offset, records);
    return Message{};
  }
  return Message::err(ErrorCode::kProtocol, "unknown REPL subcommand: " + sub);
}

bool HarmonyTcpServer::pump_replication() {
  if (feed_ == nullptr) return false;
  bool progress = false;
  // Ship journal batches queued by the tap since the last cycle.
  auto ship_to = [&](Connection& connection) {
    if (!connection.is_replica || connection.drop) return;
    for (Message& frame : feed_->take_pending(connection.id)) {
      send(connection, frame);
      progress = true;
    }
  };
  if (sharded()) {
    for (auto& [id, connection] : remotes_) ship_to(*connection);
  } else {
    for (auto& connection : connections_) ship_to(*connection);
  }
  // Release semi-sync replies in arrival order: acked, timed out, or
  // moot (no subscribers left — durability degrades to local-only
  // rather than stalling clients on a dead standby).
  if (!deferred_.empty()) {
    const auto now = std::chrono::steady_clock::now();
    const bool unsubscribed = !feed_->has_subscribers();
    while (!deferred_.empty()) {
      DeferredReply& head = deferred_.front();
      if (!unsubscribed && now < head.deadline &&
          !feed_->acked_through(head.generation, head.offset)) {
        break;
      }
      Connection* connection = find_connection(head.conn);
      if (connection != nullptr && !connection->drop) {
        send(*connection, head.reply);
        if (!sharded()) flush_writable(*connection);
      }
      deferred_.pop_front();
      progress = true;
    }
  }
  return progress;
}

void HarmonyTcpServer::send(Connection& connection, const Message& message) {
  if (connection.drop) return;
  frames_out_total_->increment();
  if (sharded()) {
    // Coalesce: every frame this drain cycle produces for a recipient
    // joins one staged batch, shipped to its shard as a single buffer
    // (flushed there with one writev).
    if (connection.staged.empty()) egress_dirty_.push_back(&connection);
    connection.staged += encode_frame(message.encode());
    return;
  }
  connection.outbound += encode_frame(message.encode());
  if (connection.outbound.size() > config_.outbound_high_water) {
    HLOG_WARN("server")
        << "slow consumer over the high-water mark; disconnecting";
    connection.drop = true;
    if (connection.session_token.empty()) {
      backpressure_drops_total_->increment();
    }
    return;
  }
  if (!connection.corked) flush_writable(connection);
}

void HarmonyTcpServer::flush_writable(Connection& connection) {
  while (!connection.outbound.empty()) {
    auto n = write_some(connection.fd, connection.outbound.data(),
                        connection.outbound.size());
    if (!n.ok()) {
      connection.drop = true;
      return;
    }
    if (n.value() == 0) return;  // would block; poll will retry
    connection.outbound.erase(0, n.value());
  }
}

void HarmonyTcpServer::park_or_end(Connection& connection) {
  if (connection.is_replica) {
    // A standby's subscription dies with its connection; it re-attaches
    // with a fresh HELLO at its recovered position.
    if (feed_ != nullptr) feed_->detach(connection.id);
    connection.is_replica = false;
    return;
  }
  if (!connection.session_token.empty() && !connection.instances.empty()) {
    // Resumable session: park instead of departing. Subscriptions go
    // empty (parked) so nothing references the dying connection.
    HLOG_INFO("server") << "connection dropped; parking session "
                        << token_prefix(connection.session_token);
    session_parks_total_->increment();
    for (core::InstanceId id : connection.instances) {
      (void)ctl_subscribe(id, core::Controller::UpdateHandler{});
    }
    parked_[connection.session_token] = ParkedSession{
        std::move(connection.instances),
        std::chrono::steady_clock::now() +
            std::chrono::milliseconds(session_grace_ms_)};
    connection.instances.clear();
    return;
  }
  // A vanished application is an implicit harmony_end (DEPART is
  // synthesized: unregister journals the departure like an explicit
  // one).
  for (core::InstanceId id : connection.instances) {
    HLOG_INFO("server") << "connection dropped; ending instance " << id;
    (void)ctl_unregister(id);
  }
  connection.instances.clear();
}

void HarmonyTcpServer::reap_dropped() {
  // All implicit harmony_ends from one poll iteration share an epoch.
  MaybeEpoch epoch(standby_ ? nullptr : controller_);
  for (auto& connection : connections_) {
    if (!connection->drop) continue;
    park_or_end(*connection);
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const auto& c) { return c->drop; }),
      connections_.end());
}

void HarmonyTcpServer::reap_expired_sessions() {
  // A standby's parked set (if any) mirrors the primary's decisions;
  // expiring locally would mutate a controller the applier owns.
  if (standby_) return;
  if (parked_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  // Scan before binding: idle ticks with nothing expired must not claim
  // controller ownership (see drain_once).
  bool any_expired = false;
  for (const auto& entry : parked_) {
    if (entry.second.deadline <= now) {
      any_expired = true;
      break;
    }
  }
  if (!any_expired) return;
  OwnerBind bind(controller_);
  for (auto it = parked_.begin(); it != parked_.end();) {
    if (it->second.deadline > now) {
      ++it;
      continue;
    }
    MaybeEpoch epoch(controller_);
    HLOG_INFO("server") << "session " << token_prefix(it->first)
                        << " expired; ending its instances";
    for (core::InstanceId id : it->second.instances) {
      (void)ctl_unregister(id);
    }
    if (persistence_ != nullptr) persistence_->drop_session(it->first);
    it = parked_.erase(it);
  }
}

}  // namespace harmony::net
