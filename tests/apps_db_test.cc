// End-to-end simulation of the §6 experiment mechanics: harmonized DB
// clients execute real Wisconsin queries on the simulated cluster, and
// the controller reconfigures them from query shipping to data shipping
// as clients accumulate.
#include "apps/db_app.h"

#include <gtest/gtest.h>

#include "apps/scenarios.h"

namespace harmony::apps {
namespace {

// 10k-row relations keep the test fast; decisions depend on the bundle
// estimates, not the engine size, so the adaptation story is identical
// to the full-scale bench.
constexpr size_t kRows = 10000;

struct DbWorld {
  DbWorld() : engine(kRows, 42) {
    EXPECT_TRUE(harness.controller()
                    .add_nodes_script(db_cluster_script(3))
                    .ok());
    EXPECT_TRUE(harness.finalize().ok());
  }

  DbClientApp* make_client(int instance) {
    DbClientConfig config;
    config.client_host = str_format("sp2-%02d", instance - 1);
    config.instance = instance;
    config.seed = 1000 + instance;
    clients.push_back(
        std::make_unique<DbClientApp>(harness.context(), &engine, config));
    return clients.back().get();
  }

  SimHarness harness;
  db::DbEngine engine;
  std::vector<std::unique_ptr<DbClientApp>> clients;
};

TEST(DbApp, SingleClientRunsQueriesUnderQs) {
  DbWorld world;
  auto* client = world.make_client(1);
  ASSERT_TRUE(client->start().ok());
  world.harness.engine().run_until(100);
  EXPECT_EQ(client->current_placement(), db::Placement::kQueryShipping);
  EXPECT_GT(client->queries_completed(), 50u);
  const auto* series = world.harness.metrics().find(client->metric_name());
  ASSERT_NE(series, nullptr);
  // 1.8 ref-s of server work on the speed-2.25 server ~= 0.8 s/query.
  EXPECT_NEAR(series->mean(), 0.8, 0.25);
  client->stop();
}

TEST(DbApp, TwoClientsDoubleResponseTime) {
  DbWorld world;
  auto* c1 = world.make_client(1);
  auto* c2 = world.make_client(2);
  ASSERT_TRUE(c1->start().ok());
  ASSERT_TRUE(c2->start().ok());
  world.harness.engine().run_until(100);
  EXPECT_EQ(c1->current_placement(), db::Placement::kQueryShipping);
  EXPECT_EQ(c2->current_placement(), db::Placement::kQueryShipping);
  const auto* series = world.harness.metrics().find(c1->metric_name());
  ASSERT_NE(series, nullptr);
  EXPECT_NEAR(series->stats_window(50).mean(), 1.6, 0.4)
      << "two clients sharing the server roughly double response time";
}

// Figure 7's arc: clients arrive, the third arrival flips everyone to
// data shipping, and response times fall back toward the 2-client
// level.
TEST(DbApp, ThirdClientTriggersDataShippingSwitch) {
  DbWorld world;
  auto* c1 = world.make_client(1);
  auto* c2 = world.make_client(2);
  auto* c3 = world.make_client(3);
  ASSERT_TRUE(c1->start().ok());
  world.harness.engine().schedule(200, [&] { ASSERT_TRUE(c2->start().ok()); });
  world.harness.engine().schedule(400, [&] { ASSERT_TRUE(c3->start().ok()); });
  world.harness.engine().run_until(700);

  EXPECT_EQ(c1->current_placement(), db::Placement::kDataShipping);
  EXPECT_EQ(c2->current_placement(), db::Placement::kDataShipping);
  EXPECT_EQ(c3->current_placement(), db::Placement::kDataShipping);

  const auto* series = world.harness.metrics().find(c1->metric_name());
  ASSERT_NE(series, nullptr);
  double phase1 = series->stats_between(0, 200).mean();
  double phase2 = series->stats_between(200, 400).mean();
  double phase3_late = series->stats_between(550, 700).mean();
  EXPECT_NEAR(phase2 / phase1, 2.0, 0.5) << "second client doubles load";
  // After the switch, response returns to roughly the 2-client level
  // (paper: "approximately the same as when two clients were executing").
  EXPECT_LT(phase3_late, phase2 * 1.6);
  EXPECT_GT(phase3_late, phase1);
}

TEST(DbApp, DataShippingCacheWarmsUp) {
  DbWorld world;
  // Force DS immediately by starting three clients at once.
  std::vector<DbClientApp*> clients;
  for (int i = 1; i <= 3; ++i) clients.push_back(world.make_client(i));
  for (auto* client : clients) ASSERT_TRUE(client->start().ok());
  world.harness.engine().run_until(300);
  ASSERT_EQ(clients[0]->current_placement(), db::Placement::kDataShipping);
  // 17 MB cache vs 20 buckets of ~0.2 MB: everything fits, so after
  // warmup the hit rate approaches 1.
  const auto& cache = clients[0]->cache();
  EXPECT_GT(cache.hits(), cache.misses());
  EXPECT_LE(cache.misses(), 20u);
}

TEST(DbApp, StopDeregistersAndSurvivorsReoptimize) {
  DbWorld world;
  std::vector<DbClientApp*> clients;
  for (int i = 1; i <= 3; ++i) {
    clients.push_back(world.make_client(i));
    ASSERT_TRUE(clients.back()->start().ok());
  }
  world.harness.engine().run_until(100);
  ASSERT_EQ(clients[0]->current_placement(), db::Placement::kDataShipping);
  EXPECT_EQ(world.harness.controller().live_instances(), 3u);

  clients[2]->stop();
  world.harness.engine().run_until(200);
  EXPECT_TRUE(clients[2]->stopped());
  EXPECT_EQ(world.harness.controller().live_instances(), 2u);
  // With two clients, query shipping wins again; survivors must have
  // been reconfigured at their next query boundary.
  EXPECT_EQ(clients[0]->current_placement(), db::Placement::kQueryShipping);
  EXPECT_EQ(clients[1]->current_placement(), db::Placement::kQueryShipping);
}

TEST(DbApp, PlacementMetricRecordsSwitches) {
  DbWorld world;
  std::vector<DbClientApp*> clients;
  for (int i = 1; i <= 3; ++i) {
    clients.push_back(world.make_client(i));
    ASSERT_TRUE(clients.back()->start().ok());
  }
  world.harness.engine().run_until(50);
  const auto* placement =
      world.harness.metrics().find("db.client1.placement");
  ASSERT_NE(placement, nullptr);
  EXPECT_DOUBLE_EQ(placement->last_value(), 1.0) << "1 = data shipping";
}

}  // namespace
}  // namespace harmony::apps
