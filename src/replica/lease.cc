#include "replica/lease.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "common/strings.h"

namespace harmony::replica {
namespace {

// RAII holder of the open + flock(LOCK_EX) pair every lease operation
// runs under. The lock covers the read-check-write sequence, so two
// candidates racing an expired lease serialize and the loser sees the
// winner's fresh term.
class LockedFile {
 public:
  explicit LockedFile(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~LockedFile() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  LockedFile(const LockedFile&) = delete;
  LockedFile& operator=(const LockedFile&) = delete;

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

Result<LeaseInfo> read_locked(int fd) {
  char buffer[256];
  const ssize_t n = ::pread(fd, buffer, sizeof(buffer) - 1, 0);
  if (n < 0) return Error{ErrorCode::kIo, "lease: read failed"};
  if (n == 0) return Error{ErrorCode::kNotFound, "lease: empty"};
  buffer[n] = '\0';
  LeaseInfo info;
  long long term = 0;
  long long expiry = 0;
  char holder[128] = {0};
  if (std::sscanf(buffer, "%lld %127s %lld", &term, holder, &expiry) != 3) {
    return Error{ErrorCode::kCorruption, "lease: malformed file"};
  }
  info.term = static_cast<uint64_t>(term);
  info.holder = holder;
  info.expiry_ms = expiry;
  return info;
}

Status write_locked(int fd, const LeaseInfo& info) {
  char buffer[256];
  const int n = std::snprintf(buffer, sizeof(buffer), "%llu %s %lld\n",
                              static_cast<unsigned long long>(info.term),
                              info.holder.c_str(),
                              static_cast<long long>(info.expiry_ms));
  if (::ftruncate(fd, 0) != 0 ||
      ::pwrite(fd, buffer, static_cast<size_t>(n), 0) != n ||
      ::fsync(fd) != 0) {
    return Status(ErrorCode::kIo, "lease: write failed");
  }
  return Status();
}

}  // namespace

int64_t LeaseFile::now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Result<LeaseInfo> LeaseFile::read() const {
  LockedFile file(path_);
  if (!file.ok()) return Error{ErrorCode::kIo, "lease: cannot open " + path_};
  return read_locked(file.fd());
}

Result<uint64_t> LeaseFile::try_acquire(const std::string& holder,
                                        int64_t ttl_ms) {
  LockedFile file(path_);
  if (!file.ok()) return Error{ErrorCode::kIo, "lease: cannot open " + path_};
  LeaseInfo current;
  Result<LeaseInfo> read = read_locked(file.fd());
  if (read.ok()) {
    current = read.value();
  } else if (read.error().code != ErrorCode::kNotFound &&
             read.error().code != ErrorCode::kCorruption) {
    // (A malformed lease is treated as free: the term still advances
    // past whatever was legible, preserving fencing monotonicity.)
    return read.error();
  }
  const int64_t now = now_ms();
  const bool ours = current.holder == holder;
  if (!current.holder.empty() && !ours && current.expiry_ms > now) {
    return Error{ErrorCode::kNotPrimary,
                 "lease held by " + current.holder + " for " +
                     std::to_string(current.expiry_ms - now) + "ms"};
  }
  LeaseInfo next;
  next.term = current.term + 1;
  next.holder = holder;
  next.expiry_ms = now + ttl_ms;
  Status wrote = write_locked(file.fd(), next);
  if (!wrote.ok()) return wrote.error();
  return next.term;
}

Status LeaseFile::renew(const std::string& holder, uint64_t term,
                        int64_t ttl_ms) {
  LockedFile file(path_);
  if (!file.ok()) return Status(ErrorCode::kIo, "lease: cannot open " + path_);
  Result<LeaseInfo> read = read_locked(file.fd());
  if (!read.ok()) return Status(read.error());
  const LeaseInfo& current = read.value();
  if (current.holder != holder || current.term != term) {
    return Status(ErrorCode::kNotPrimary,
                  "lease superseded: held by " + current.holder + " at term " +
                      std::to_string(current.term));
  }
  LeaseInfo next = current;
  next.expiry_ms = now_ms() + ttl_ms;
  return write_locked(file.fd(), next);
}

Result<bool> LeaseFile::expired() const {
  Result<LeaseInfo> read = this->read();
  if (!read.ok()) {
    if (read.error().code == ErrorCode::kNotFound) return true;
    return read.error();
  }
  return read.value().expiry_ms <= now_ms();
}

}  // namespace harmony::replica
