// Session resumption end to end: client reconnect + RESUME over a live
// server, resumption across a full server restart (persistence-backed),
// the synthesized DEPART when a client dies mid-update, and crash-safe
// client teardown when the server is already gone.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/scenarios.h"
#include "client/client.h"
#include "net/server.h"
#include "net/tcp_transport.h"
#include "persist/persistence.h"
#include "test_scenarios.h"

namespace harmony::net {
namespace {

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "resume_" + std::to_string(::getpid()) +
           "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    clean_dir();
  }

  void TearDown() override {
    stop_server();
    server_.reset();
    persistence_.reset();
    controller_.reset();
    clean_dir();
  }

  void clean_dir() {
    std::remove((dir_ + "/journal.wal").c_str());
    std::remove((dir_ + "/snapshot.hsn").c_str());
    std::remove((dir_ + "/snapshot.tmp").c_str());
    ::rmdir(dir_.c_str());
  }

  // Fresh controller with the 3-client DB cluster; optionally durable.
  void start_server(bool with_persistence, uint16_t port = 0) {
    controller_ = std::make_unique<core::Controller>();
    if (!with_persistence) {
      ASSERT_TRUE(
          controller_->add_nodes_script(apps::db_cluster_script(3)).ok());
      ASSERT_TRUE(controller_->finalize_cluster().ok());
    }
    if (with_persistence) {
      persist::PersistConfig config;
      config.dir = dir_;
      config.fsync_every_epochs = 1;
      auto persistence = persist::Persistence::open(config, *controller_);
      ASSERT_TRUE(persistence.ok()) << persistence.error().to_string();
      persistence_ = std::move(persistence).value();
      if (!persistence_->recovery().recovered) {
        ASSERT_TRUE(
            controller_->add_nodes_script(apps::db_cluster_script(3)).ok());
        ASSERT_TRUE(controller_->finalize_cluster().ok());
      }
    }
    server_ = std::make_unique<HarmonyTcpServer>(controller_.get(), port);
    if (persistence_) server_->set_persistence(persistence_.get());
    auto bound = server_->start();
    ASSERT_TRUE(bound.ok()) << bound.error().to_string();
    port_ = bound.value();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void stop_server() {
    if (server_thread_.joinable()) {
      server_->stop();
      server_thread_.join();
    }
  }

  // Tears the whole server side down (poll loop, sockets, persistence)
  // as a crash-then-restart would; the journal/snapshot files remain.
  void destroy_server() {
    stop_server();
    server_.reset();
    persistence_.reset();
    controller_.reset();
  }

  std::string client_bundle(int i) {
    return str_format(
        "harmonyBundle DBclient:%d where {\n"
        "  {QS {node server {hostname server} {seconds 18} {memory 20}}\n"
        "      {node client {hostname sp2-%02d} {seconds 0.1} {memory 2}}\n"
        "      {link client server 0.05}}\n"
        "  {DS {node server {hostname server} {seconds 2} {memory 20}}\n"
        "      {node client {hostname sp2-%02d} {memory >=17} {seconds 16.2}}\n"
        "      {link client server 2.5}}\n"
        "}\n",
        i, i - 1, i - 1);
  }

  // Polls `get` until it returns `want` (the server applies parked-
  // session expiry and re-evaluations asynchronously).
  void wait_for_value(TcpTransport& transport, core::InstanceId id,
                      const std::string& name, const std::string& want) {
    for (int spin = 0; spin < 100; ++spin) {
      auto value = transport.get_variable(id, name);
      ASSERT_TRUE(value.ok()) << value.error().to_string();
      if (value.value() == want) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    auto value = transport.get_variable(id, name);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(value.value(), want) << "never converged";
  }

  std::string dir_;
  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<persist::Persistence> persistence_;
  std::unique_ptr<HarmonyTcpServer> server_;
  std::thread server_thread_;
  uint16_t port_ = 0;
};

TEST_F(ResumeTest, ReconnectAndResumeOverLiveServer) {
  start_server(/*with_persistence=*/false);
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  ASSERT_TRUE(id.ok());
  ASSERT_FALSE(transport.session_token().empty());
  const std::string token = transport.session_token();

  std::vector<std::pair<std::string, std::string>> updates;
  ASSERT_TRUE(transport
                  .subscribe(id.value(),
                             [&](const std::string& name,
                                 const std::string& value) {
                               updates.emplace_back(name, value);
                             })
                  .ok());
  updates.clear();

  // Network blip: the socket dies without a goodbye. The next call
  // reconnects, RESUMEs, and retransmits transparently.
  transport.close();
  auto option = transport.get_variable(id.value(), "where.option");
  ASSERT_TRUE(option.ok()) << option.error().to_string();
  EXPECT_EQ(option.value(), "QS");
  EXPECT_EQ(transport.session_token(), token);

  // RESUME replayed the current configuration as UPDATE frames ahead of
  // its OK, so wait_for_update semantics survived the blip.
  bool saw_option = false;
  for (const auto& [name, value] : updates) {
    if (name == "where" && value == "QS") saw_option = true;
  }
  EXPECT_TRUE(saw_option);

  ASSERT_TRUE(transport.unregister(id.value()).ok());
  stop_server();
  EXPECT_EQ(controller_->live_instances(), 0u);
  EXPECT_EQ(server_->parked_session_count(), 0u);
}

TEST_F(ResumeTest, ResumeAcrossServerRestartWithPersistence) {
  start_server(/*with_persistence=*/true);
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  ASSERT_TRUE(id.ok());
  ASSERT_FALSE(transport.session_token().empty());

  std::vector<std::pair<std::string, std::string>> updates;
  ASSERT_TRUE(transport
                  .subscribe(id.value(),
                             [&](const std::string& name,
                                 const std::string& value) {
                               updates.emplace_back(name, value);
                             })
                  .ok());
  ASSERT_TRUE(persistence_->flush().ok());

  // Full restart: server process state is gone, a new controller is
  // recovered from the journal, and the session comes back parked.
  const uint16_t old_port = port_;
  destroy_server();
  updates.clear();
  start_server(/*with_persistence=*/true, old_port);
  ASSERT_TRUE(persistence_->recovery().recovered);
  EXPECT_EQ(server_->parked_session_count(), 1u);

  // The client's next call rides reconnect + RESUME into the new
  // server; the recovered controller still knows the instance.
  auto option = transport.get_variable(id.value(), "where.option");
  ASSERT_TRUE(option.ok()) << option.error().to_string();
  EXPECT_EQ(option.value(), "QS");
  bool saw_option = false;
  for (const auto& [name, value] : updates) {
    if (name == "where" && value == "QS") saw_option = true;
  }
  EXPECT_TRUE(saw_option);

  ASSERT_TRUE(transport.unregister(id.value()).ok());
  stop_server();
  EXPECT_EQ(controller_->live_instances(), 0u);
  EXPECT_EQ(server_->parked_session_count(), 0u);
}

TEST_F(ResumeTest, ResumePrunesDepartedInstancesFromTheSession) {
  start_server(/*with_persistence=*/true);
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  ASSERT_TRUE(id.ok());
  const std::string token = transport.session_token();
  ASSERT_FALSE(token.empty());

  // Corrupt the session sideways: claim an instance id the controller
  // will not know after recovery, as if it departed after the session
  // record was journaled.
  {
    core::Controller::EpochScope epoch(*controller_);
    persistence_->record_session(token, {id.value(), 999});
  }
  ASSERT_TRUE(persistence_->flush().ok());

  const uint16_t old_port = port_;
  destroy_server();
  start_server(/*with_persistence=*/true, old_port);
  ASSERT_TRUE(persistence_->recovery().recovered);
  EXPECT_EQ(server_->parked_session_count(), 1u);

  // The next call resumes the session; the dead id must not survive it.
  auto option = transport.get_variable(id.value(), "where.option");
  ASSERT_TRUE(option.ok()) << option.error().to_string();
  EXPECT_EQ(option.value(), "QS");

  stop_server();
  const auto& sessions = persistence_->sessions();
  ASSERT_EQ(sessions.count(token), 1u);
  EXPECT_EQ(sessions.at(token), std::vector<core::InstanceId>{id.value()});
}

TEST_F(ResumeTest, ResumeDeliversLatestDegreeAfterInFlightResizes) {
  start_server(/*with_persistence=*/false);
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  // Granularity holds operator resizes against later re-evaluations.
  auto id =
      transport.register_app(harmony::testing::bag_bundle("1 2 3", 10000));
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  std::vector<std::pair<std::string, std::string>> updates;
  ASSERT_TRUE(transport
                  .subscribe(id.value(),
                             [&](const std::string& name,
                                 const std::string& value) {
                               updates.emplace_back(name, value);
                             })
                  .ok());
  wait_for_value(transport, id.value(), "parallelism.workerNodes", "3");

  // Two in-flight resizes, then the socket dies without a goodbye.
  ASSERT_TRUE(transport.resize(id.value(), "parallelism", 1).ok());
  ASSERT_TRUE(transport.resize(id.value(), "parallelism", 2).ok());
  updates.clear();
  transport.close();

  // Reconnect + RESUME replays the *latest* configuration only: a
  // resumed client must never observe the superseded degree.
  auto degree = transport.get_variable(id.value(), "parallelism.workerNodes");
  ASSERT_TRUE(degree.ok()) << degree.error().to_string();
  EXPECT_EQ(degree.value(), "2");
  bool saw_latest = false;
  for (const auto& [name, value] : updates) {
    if (name != "workerNodes") continue;
    EXPECT_EQ(value, "2") << "resume replayed a superseded degree";
    if (value == "2") saw_latest = true;
  }
  EXPECT_TRUE(saw_latest);

  ASSERT_TRUE(transport.unregister(id.value()).ok());
  stop_server();
  EXPECT_EQ(controller_->live_instances(), 0u);
}

TEST_F(ResumeTest, ResumedSessionSeesLatestDegreeAcrossRestart) {
  start_server(/*with_persistence=*/true);
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id =
      transport.register_app(harmony::testing::bag_bundle("1 2 3", 10000));
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  std::vector<std::pair<std::string, std::string>> updates;
  ASSERT_TRUE(transport
                  .subscribe(id.value(),
                             [&](const std::string& name,
                                 const std::string& value) {
                               updates.emplace_back(name, value);
                             })
                  .ok());
  ASSERT_TRUE(transport.resize(id.value(), "parallelism", 1).ok());
  ASSERT_TRUE(transport.resize(id.value(), "parallelism", 2).ok());
  ASSERT_TRUE(persistence_->flush().ok());

  // Full restart: the journaled RSZ events replay into a fresh
  // controller, and the recovery verification pass must not undo them.
  const uint16_t old_port = port_;
  destroy_server();
  updates.clear();
  start_server(/*with_persistence=*/true, old_port);
  ASSERT_TRUE(persistence_->recovery().recovered);
  EXPECT_EQ(server_->parked_session_count(), 1u);

  auto degree = transport.get_variable(id.value(), "parallelism.workerNodes");
  ASSERT_TRUE(degree.ok()) << degree.error().to_string();
  EXPECT_EQ(degree.value(), "2");
  bool saw_latest = false;
  for (const auto& [name, value] : updates) {
    if (name != "workerNodes") continue;
    EXPECT_EQ(value, "2") << "resume replayed a superseded degree";
    if (value == "2") saw_latest = true;
  }
  EXPECT_TRUE(saw_latest);

  ASSERT_TRUE(transport.unregister(id.value()).ok());
  stop_server();
  EXPECT_EQ(controller_->live_instances(), 0u);
}

TEST_F(ResumeTest, ClientDeathMidUpdateSynthesizesDepartAndReevaluates) {
  start_server(/*with_persistence=*/false);
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<core::InstanceId> ids;
  for (int i = 1; i <= 3; ++i) {
    transports.push_back(std::make_unique<TcpTransport>());
    ASSERT_TRUE(transports.back()->connect("localhost", port_).ok());
    auto id = transports.back()->register_app(client_bundle(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Three clients saturate the server: everyone is on data shipping.
  wait_for_value(*transports[0], ids[0], "where.option", "DS");

  // Client 3 is killed mid-update — no END, just a dead socket. With a
  // zero grace window the server synthesizes the DEPART immediately and
  // re-evaluates; the survivors fall back to query shipping.
  server_->set_session_grace_ms(0);
  transports[2]->close();
  wait_for_value(*transports[0], ids[0], "where.option", "QS");
  wait_for_value(*transports[1], ids[1], "where.option", "QS");

  stop_server();
  EXPECT_EQ(controller_->live_instances(), 2u);
  EXPECT_EQ(server_->parked_session_count(), 0u);
}

TEST_F(ResumeTest, ClientTeardownSurvivesDeadServer) {
  start_server(/*with_persistence=*/false);
  auto transport = std::make_unique<TcpTransport>();
  // Teardown must fail fast, not sit in reconnect backoff.
  ASSERT_TRUE(transport->connect("localhost", port_).ok());
  client::HarmonyClient client(transport.get());
  ASSERT_TRUE(client.startup("doomed").ok());
  ASSERT_TRUE(client.bundle_setup(client_bundle(1)).ok());
  const std::string* option = client.add_variable("where", "unset");
  ASSERT_TRUE(client.wait_for_update().ok());
  ASSERT_TRUE(transport->pump().ok());
  client.poll_updates();
  EXPECT_EQ(*option, "QS");

  // The server vanishes — poll loop stopped, sockets closed.
  stop_server();
  server_.reset();

  // harmony_end on a dead server: best-effort DEPART, clean Ok. The
  // crash-safe teardown contract says an exiting application never
  // fails (or throws) because Harmony is unreachable.
  EXPECT_TRUE(client.end().ok());
}

}  // namespace
}  // namespace harmony::net
