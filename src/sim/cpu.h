// Processor-sharing CPU model. Each task carries work measured in
// seconds on the paper's reference machine (400 MHz Pentium II); a node
// with speed s and k resident tasks advances each task at rate s/k.
// This is the contention behaviour behind the paper's Figure 7: query
// response time roughly doubles when a second client shares the server.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "sim/engine.h"

namespace harmony::sim {

using TaskId = uint64_t;

class CpuModel {
 public:
  CpuModel(SimEngine* engine, const cluster::Topology* topology);

  // Submits work to a node; on_done fires at completion time.
  TaskId submit(cluster::NodeId node, double work_ref_seconds,
                std::function<void()> on_done);
  // Cancels a task; its callback never fires.
  Status cancel(TaskId id);

  int active_on(cluster::NodeId node) const;
  int active_total() const { return static_cast<int>(tasks_.size()); }
  // Remaining reference-seconds of work (tests / diagnostics).
  Result<double> remaining(TaskId id) const;

 private:
  struct Task {
    cluster::NodeId node;
    double remaining;  // reference seconds
    std::function<void()> on_done;
  };
  struct NodeState {
    std::vector<TaskId> tasks;
    double last_update = 0.0;
    EventId completion_event = 0;
  };

  double rate_per_task(cluster::NodeId node) const;
  // Advances remaining work on the node to now().
  void sync(cluster::NodeId node);
  // Schedules the node's next task completion.
  void reschedule(cluster::NodeId node);
  void complete(cluster::NodeId node);

  SimEngine* engine_;
  const cluster::Topology* topology_;
  std::unordered_map<TaskId, Task> tasks_;
  std::vector<NodeState> nodes_;
  TaskId next_id_ = 1;
};

}  // namespace harmony::sim
