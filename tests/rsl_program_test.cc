// Directed tests for the RSL bytecode compiler + VM (rsl::Program):
// constant folding, read-set reporting, and exact semantic parity with
// the tree-walk evaluator — values, error codes, and error messages.
// Randomized parity lives in rsl_property_test.cc.
#include <gtest/gtest.h>

#include <cstring>

#include "rsl/expr.h"
#include "rsl/program.h"
#include "rsl/spec.h"

namespace harmony::rsl {
namespace {

ExprContext test_context() {
  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name == "client.memory") { *out = 33.5; return true; }
    if (name == "server.load") { *out = 0.25; return true; }
    if (name == "x") { *out = 3.5; return true; }
    if (name == "zero") { *out = 0.0; return true; }
    return false;
  };
  ctx.var_lookup = [](const std::string& name, std::string* out) {
    if (name == "os") { *out = "linux"; return true; }
    if (name == "count") { *out = "8"; return true; }
    return false;
  };
  return ctx;
}

// Compiles (asserting success) and checks the VM against the tree-walk
// on the same context: identical ok-ness, bit-identical doubles,
// identical error code + message.
void expect_parity(const std::string& text, const ExprContext& ctx) {
  auto compiled = Program::compile(text);
  ASSERT_TRUE(compiled.ok()) << text << ": " << compiled.error().to_string();
  auto vm = compiled.value().eval_number(ctx);
  auto tree = expr_eval_number(text, ctx);
  ASSERT_EQ(vm.ok(), tree.ok())
      << text << ": vm="
      << (vm.ok() ? "ok" : vm.error().to_string()) << " tree="
      << (tree.ok() ? "ok" : tree.error().to_string());
  if (vm.ok()) {
    uint64_t vm_bits = 0, tree_bits = 0;
    std::memcpy(&vm_bits, &vm.value(), sizeof(vm_bits));
    std::memcpy(&tree_bits, &tree.value(), sizeof(tree_bits));
    EXPECT_EQ(vm_bits, tree_bits) << text;
  } else {
    EXPECT_EQ(vm.error().code, tree.error().code) << text;
    EXPECT_EQ(vm.error().message, tree.error().message) << text;
  }
}

TEST(ProgramCompile, FoldsConstantArithmeticToOneInstruction) {
  auto program = Program::compile("2 + 3 * 4");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().op_count(), 1u);
  ASSERT_TRUE(program.value().constant().has_value());
  EXPECT_DOUBLE_EQ(*program.value().constant(), 14.0);
  EXPECT_FALSE(program.value().reads_anything());
}

TEST(ProgramCompile, FoldsFunctionsTernaryAndStrings) {
  struct Case { const char* text; double expected; };
  const Case cases[] = {
      {"min(3, 1, 2)", 1.0},
      {"max(3, 1, 2)", 3.0},
      {"2**3**2", 512.0},        // right associative
      {"-2**2", -4.0},           // unary minus after power
      {"1 ? 2 : 3", 2.0},
      {"{a} eq {a}", 1.0},
      {"{abc} ne \"abd\"", 1.0},
      {"3.5 == {3.5}", 1.0},     // number/string compare via as_string
      {"!{no}", 1.0},            // "no" is falsy
      {"!{0.0}", 0.0},           // but the STRING "0.0" is truthy
      {"17 % 5", 2.0},
      {"+{3.5} + 1", 4.5},       // unary + is identity, even for strings
  };
  for (const auto& c : cases) {
    auto program = Program::compile(c.text);
    ASSERT_TRUE(program.ok()) << c.text;
    ASSERT_TRUE(program.value().constant().has_value()) << c.text;
    EXPECT_DOUBLE_EQ(*program.value().constant(), c.expected) << c.text;
  }
}

TEST(ProgramCompile, ReportsNamespaceReadSet) {
  auto program =
      Program::compile("44 + (client.memory > 24 ? 24 : client.memory) - 17");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().names().size(), 1u);  // deduplicated
  EXPECT_EQ(program.value().names()[0], "client.memory");
  EXPECT_TRUE(program.value().vars().empty());
  EXPECT_FALSE(program.value().constant().has_value());
  EXPECT_TRUE(program.value().reads_anything());
}

TEST(ProgramCompile, ReportsVariableReadSet) {
  auto program = Program::compile("$os eq {linux} && $count > 4");
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().vars().size(), 2u);
  EXPECT_EQ(program.value().vars()[0], "os");
  EXPECT_EQ(program.value().vars()[1], "count");
}

TEST(ProgramCompile, RejectsScriptSubstitutionAndSyntaxErrors) {
  EXPECT_FALSE(Program::compile("[expr 1] + 1").ok());
  EXPECT_FALSE(Program::compile("").ok());
  EXPECT_FALSE(Program::compile("1 +").ok());
  EXPECT_FALSE(Program::compile("(1").ok());
  EXPECT_FALSE(Program::compile("1 @ 2").ok());
}

TEST(ProgramVm, EvaluatesThePaperExpression) {
  auto program =
      Program::compile("44 + (client.memory > 24 ? 24 : client.memory) - 17");
  ASSERT_TRUE(program.ok());
  ExprContext ctx;
  double memory = 33.5;
  ctx.name_lookup = [&](const std::string& name, double* out) {
    if (name != "client.memory") return false;
    *out = memory;
    return true;
  };
  EXPECT_DOUBLE_EQ(program.value().eval_number(ctx).value(), 51.0);
  memory = 16.0;  // below the 24 MB knee: the requirement tracks memory
  EXPECT_DOUBLE_EQ(program.value().eval_number(ctx).value(), 43.0);
}

TEST(ProgramVm, MatchesTreeWalkOnGoldenExpressions) {
  ExprContext ctx = test_context();
  const char* const cases[] = {
      "1 + 2 * 3",
      "x * 2 - server.load",
      "client.memory <= 33.5",
      "$os eq \"linux\"",
      "$count % 3",
      "zero ? x : server.load",
      "x > 0 ? {yes} : {no} eq {yes}",
      "min(x, $count, 2.5) + max(1, server.load)",
      "sqrt(x * x)",
      "pow(2, $count)",
      "-x**2",
      "!x || !zero",
      "1 < 2 < 3",               // relational chains are left-associative
      "fmod($count, 3)",
  };
  for (const char* text : cases) expect_parity(text, ctx);
}

TEST(ProgramVm, MatchesTreeWalkOnErrors) {
  ExprContext ctx = test_context();
  const char* const cases[] = {
      "1 / 0",                  // folded failure, prefixed message
      "x / zero",               // runtime division by zero
      "17 % zero",
      "sqrt(0 - 1)",
      "sqrt(0 - x)",            // runtime domain error
      "log(0)",
      "fmod(1, 0)",
      "nosuchfn(1)",            // unknown function
      "min()",                  // arity error reported as unknown function
      "bogus + 1",              // unresolvable identifier
      "$missing",               // var_lookup miss
      "{abc} + 1",              // folded to_number failure, unprefixed
      "{abc} * x",              // lhs conversion error beats rhs read
      "x + {abc}",
      "min({abc}, bogus)",      // arg 1 conversion error wins (parse order)
      "min(bogus, {abc})",      // arg 1 resolution error wins
      "{hi}",                   // result is not a number
      "x > 0 ? {hi} : 2",       // string result via select
  };
  for (const char* text : cases) expect_parity(text, ctx);
}

TEST(ProgramVm, MissingContextsMatchTreeWalk) {
  // No hooks at all: names and vars fail with the tree-walk's messages.
  ExprContext empty;
  for (const char* text : {"$os", "client.memory + 1"}) {
    auto program = Program::compile(text);
    ASSERT_TRUE(program.ok()) << text;
    auto vm = program.value().eval_number(empty);
    auto tree = expr_eval_number(text, empty);
    ASSERT_FALSE(vm.ok());
    ASSERT_FALSE(tree.ok());
    EXPECT_EQ(vm.error().message, tree.error().message) << text;
  }
}

TEST(ProgramVm, NameFallsBackToInterpreterVariables) {
  // Bare names try name_lookup first, then var_lookup — `expr {x + 1}`
  // over interpreter variables must keep working.
  ExprContext ctx;
  ctx.var_lookup = [](const std::string& name, std::string* out) {
    if (name != "workerNodes") return false;
    *out = "4";
    return true;
  };
  auto program = Program::compile("1200.0 / workerNodes");
  ASSERT_TRUE(program.ok());
  EXPECT_DOUBLE_EQ(program.value().eval_number(ctx).value(), 300.0);
  ASSERT_EQ(program.value().names().size(), 1u);
  EXPECT_EQ(program.value().names()[0], "workerNodes");
}

TEST(ProgramVm, StringResultsRoundTripThroughEval) {
  ExprContext ctx = test_context();
  auto program = Program::compile("x > 0 ? {fast} : {slow}");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().eval(ctx).value(), "fast");
  EXPECT_EQ(program.value().eval(ctx).value(),
            expr_eval("x > 0 ? {fast} : {slow}", ctx).value());
}

TEST(ProgramVm, DeepStacksSpillToTheHeap) {
  // Force a stack deeper than the VM's inline buffer: nested min() calls
  // each hold their arguments while the next nests inside.
  std::string text = "x";
  for (int i = 0; i < 24; ++i) text = "min(1 + " + text + ", 99)";
  expect_parity(text, test_context());
}

TEST(ExprCaching, LiteralsAndLazyCompilationBehave) {
  Expr literal{"42"};
  EXPECT_TRUE(literal.is_constant());
  EXPECT_TRUE(literal.reads_known());
  EXPECT_EQ(literal.program(), nullptr);  // literals never compile

  Expr expr{"client.memory + 1"};
  EXPECT_FALSE(expr.is_constant());
  const Program* program = expr.program();
  ASSERT_NE(program, nullptr);
  EXPECT_EQ(expr.program(), program);  // cached, not recompiled
  EXPECT_TRUE(expr.reads_known());
  ASSERT_EQ(program->names().size(), 1u);
  EXPECT_EQ(program->names()[0], "client.memory");

  Expr script{"[cmd] + 1"};
  EXPECT_EQ(script.program(), nullptr);  // tree-walk fallback
  EXPECT_FALSE(script.reads_known());

  Expr empty{};
  EXPECT_TRUE(empty.reads_known());
  EXPECT_DOUBLE_EQ(empty.eval_constant().value(), 0.0);
}

TEST(ExprCaching, EvalCounterTracksNonLiteralEvaluations) {
  ExprContext ctx = test_context();
  Expr literal{"42"};
  Expr dynamic{"x + 1"};
  uint64_t before = expr_evaluations();
  (void)literal.eval(ctx);  // literal: no evaluator invoked
  EXPECT_EQ(expr_evaluations(), before);
  (void)dynamic.eval(ctx);
  (void)dynamic.eval(ctx);
  EXPECT_EQ(expr_evaluations(), before + 2);
}

}  // namespace
}  // namespace harmony::rsl
