// Wisconsin benchmark tuple layout (Gray, "The Benchmark Handbook"):
// thirteen 4-byte integer attributes plus three 52-byte strings =
// 208 bytes, exactly the paper's "100,000 208-byte tuples".
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace harmony::db {

struct WisconsinTuple {
  int32_t unique1 = 0;       // unique, random order (the join attribute)
  int32_t unique2 = 0;       // unique, sequential
  int32_t two = 0;           // unique1 mod 2
  int32_t four = 0;          // unique1 mod 4
  int32_t ten = 0;           // unique1 mod 10
  int32_t twenty = 0;        // unique1 mod 20
  // Selection attributes are derived from unique2 (the sequential key)
  // rather than unique1 as in the classic definition: the benchmark
  // query selects 10% of each relation and joins on unique1, and an
  // attribute functionally determined by the join key would make
  // cross-bucket joins empty. unique1 is a random permutation, so
  // unique2-derived buckets are independent of the join attribute while
  // keeping exact 1%/10% selectivities.
  int32_t one_percent = 0;   // unique2 mod 100
  int32_t ten_percent = 0;   // unique2 mod 10 (the selection attribute)
  int32_t twenty_percent = 0;  // unique1 mod 5
  int32_t fifty_percent = 0;   // unique1 mod 2
  int32_t unique3 = 0;         // copy of unique1
  int32_t even_one_percent = 0;  // one_percent * 2
  int32_t odd_one_percent = 0;   // one_percent * 2 + 1
  std::array<char, 52> stringu1{};
  std::array<char, 52> stringu2{};
  std::array<char, 52> string4{};
};

static_assert(sizeof(WisconsinTuple) == 208, "paper specifies 208-byte tuples");

inline constexpr size_t kTupleBytes = sizeof(WisconsinTuple);

// Row identifier within a table.
using RowId = uint32_t;

}  // namespace harmony::db
