#include "rsl/spec.h"

#include <cmath>

#include "common/strings.h"
#include "rsl/value.h"

namespace harmony::rsl {

namespace {

template <typename T>
Result<T> parse_error(const std::string& message) {
  return Err<T>(ErrorCode::kParseError, message);
}

}  // namespace

// --- Constraint --------------------------------------------------------------

Result<Constraint> Constraint::parse(std::string_view text) {
  std::string_view t = trim(text);
  if (t.empty() || t == "*") return Constraint{Op::kAny, 0};
  Constraint c;
  if (starts_with(t, ">=")) {
    c.op = Op::kGe;
    t.remove_prefix(2);
  } else if (starts_with(t, "<=")) {
    c.op = Op::kLe;
    t.remove_prefix(2);
  } else if (starts_with(t, ">")) {
    c.op = Op::kGt;
    t.remove_prefix(1);
  } else if (starts_with(t, "<")) {
    c.op = Op::kLt;
    t.remove_prefix(1);
  } else {
    c.op = Op::kEq;
  }
  if (!parse_double(t, &c.value)) {
    return parse_error<Constraint>("malformed constraint: \"" +
                                   std::string(text) + "\"");
  }
  return c;
}

bool Constraint::satisfied_by(double x) const {
  switch (op) {
    case Op::kAny: return true;
    case Op::kEq: return x >= value;  // an exact requirement is a minimum
    case Op::kGe: return x >= value;
    case Op::kLe: return x <= value;
    case Op::kGt: return x > value;
    case Op::kLt: return x < value;
  }
  return false;
}

double Constraint::minimum() const {
  switch (op) {
    case Op::kAny: return 0;
    case Op::kEq: return value;
    case Op::kGe: return value;
    case Op::kLe: return 0;
    case Op::kGt: return value + 1;
    case Op::kLt: return 0;
  }
  return 0;
}

std::string Constraint::to_string() const {
  switch (op) {
    case Op::kAny: return "*";
    case Op::kEq: return format_number(value);
    case Op::kGe: return ">=" + format_number(value);
    case Op::kLe: return "<=" + format_number(value);
    case Op::kGt: return ">" + format_number(value);
    case Op::kLt: return "<" + format_number(value);
  }
  return "*";
}

// --- Expr ---------------------------------------------------------------------

Expr::Expr(std::string text) : text_(std::move(text)) {
  literal_ = parse_double(text_, &literal_value_);
}

const Program* Expr::program() const {
  // Literals never reach the VM (eval short-circuits) and read nothing;
  // compiling them would only waste the cache.
  if (!compile_attempted_ && !text_.empty() && !literal_) {
    compile_attempted_ = true;
    auto compiled = Program::compile(text_);
    if (compiled.ok()) {
      program_ = std::make_shared<const Program>(std::move(compiled).value());
    }
  }
  return program_.get();
}

Result<double> Expr::eval(const ExprContext& ctx) const {
  if (text_.empty()) return 0.0;
  if (literal_) return literal_value_;
  bump_expr_evaluations();
  if (const Program* compiled = program()) return compiled->eval_number(ctx);
  return expr_eval_number(text_, ctx);
}

Result<double> Expr::eval_constant() const {
  ExprContext empty;
  return eval(empty);
}

// --- BundleSpec ----------------------------------------------------------------

const OptionSpec* BundleSpec::find_option(std::string_view name) const {
  for (const auto& option : options) {
    if (option.name == name) return &option;
  }
  return nullptr;
}

Result<std::pair<std::string, std::string>> parse_app_instance(
    std::string_view text) {
  auto parts = split(text, ':');
  if (parts.size() == 1) return std::make_pair(parts[0], std::string("0"));
  if (parts.size() == 2 && !parts[0].empty()) {
    return std::make_pair(parts[0], parts[1]);
  }
  return parse_error<std::pair<std::string, std::string>>(
      "malformed application instance: \"" + std::string(text) + "\"");
}

namespace {

Result<NodeReq> parse_node_req(const std::vector<std::string>& items) {
  // items: node ROLE {tag value}...
  if (items.size() < 2) {
    return parse_error<NodeReq>("node requires a role name");
  }
  NodeReq req;
  req.role = items[1];
  for (size_t i = 2; i < items.size(); ++i) {
    auto tag = list_parse(items[i]);
    if (!tag.ok()) return Err<NodeReq>(tag.error().code, tag.error().message);
    const auto& fields = tag.value();
    if (fields.empty()) continue;
    const std::string& key = fields[0];
    auto require_value = [&]() -> Result<std::string> {
      if (fields.size() < 2) {
        return parse_error<std::string>("node tag \"" + key +
                                        "\" requires a value");
      }
      // Re-join so expressions with spaces survive: {seconds {a + b}}
      std::vector<std::string> rest(fields.begin() + 1, fields.end());
      return join(rest, " ");
    };
    if (key == "hostname") {
      auto value = require_value();
      if (!value.ok()) return Err<NodeReq>(value.error().code, value.error().message);
      req.hostname = value.value();
    } else if (key == "os") {
      auto value = require_value();
      if (!value.ok()) return Err<NodeReq>(value.error().code, value.error().message);
      req.os = value.value();
    } else if (key == "seconds") {
      auto value = require_value();
      if (!value.ok()) return Err<NodeReq>(value.error().code, value.error().message);
      req.seconds = Expr(value.value());
    } else if (key == "memory") {
      auto value = require_value();
      if (!value.ok()) return Err<NodeReq>(value.error().code, value.error().message);
      auto constraint = Constraint::parse(value.value());
      if (!constraint.ok()) {
        return Err<NodeReq>(constraint.error().code, constraint.error().message);
      }
      req.memory = constraint.value();
    } else if (key == "replicate") {
      auto value = require_value();
      if (!value.ok()) return Err<NodeReq>(value.error().code, value.error().message);
      req.replicate = Expr(value.value());
    } else {
      return parse_error<NodeReq>("unknown node tag: \"" + key + "\"");
    }
  }
  return req;
}

Result<LinkReq> parse_link_req(const std::vector<std::string>& items) {
  // items: link ROLE1 ROLE2 EXPR
  if (items.size() != 4) {
    return parse_error<LinkReq>("link requires: link from to megabytes");
  }
  LinkReq req;
  req.from = items[1];
  req.to = items[2];
  req.megabytes = Expr(items[3]);
  return req;
}

Result<VariableSpec> parse_variable(const std::vector<std::string>& items) {
  // items: variable NAME {v1 v2 ...}
  if (items.size() != 3) {
    return parse_error<VariableSpec>("variable requires: variable name values");
  }
  VariableSpec spec;
  spec.name = items[1];
  auto values = list_parse(items[2]);
  if (!values.ok()) {
    return Err<VariableSpec>(values.error().code, values.error().message);
  }
  for (const auto& value : values.value()) {
    double number = 0;
    if (!parse_double(value, &number)) {
      return parse_error<VariableSpec>("variable value is not a number: \"" +
                                       value + "\"");
    }
    spec.values.push_back(number);
  }
  if (spec.values.empty()) {
    return parse_error<VariableSpec>("variable needs at least one value");
  }
  return spec;
}

Status parse_performance(const std::vector<std::string>& items,
                         OptionSpec* option) {
  // One of: performance {{x y} ...}
  //         performance script {BODY}
  //         performance expr {EXPRESSION}
  if (items.size() == 3 && items[1] == "script") {
    option->performance_script = items[2];
    return Status::Ok();
  }
  if (items.size() == 3 && items[1] == "expr") {
    option->performance_expr = Expr(items[2]);
    return Status::Ok();
  }
  if (items.size() == 3 && items[1] == "dag") {
    auto tasks = list_parse(items[2]);
    if (!tasks.ok()) return Status(tasks.error().code, tasks.error().message);
    for (const auto& task_text : tasks.value()) {
      auto fields = list_parse(task_text);
      if (!fields.ok()) return Status(fields.error().code, fields.error().message);
      if (fields.value().size() < 2 || fields.value().size() > 3) {
        return Status(ErrorCode::kParseError,
                      "dag task must be {name seconds ?{deps}?}: \"" +
                          task_text + "\"");
      }
      OptionSpec::DagTask task;
      task.name = fields.value()[0];
      task.seconds = Expr(fields.value()[1]);
      if (fields.value().size() == 3) {
        auto deps = list_parse(fields.value()[2]);
        if (!deps.ok()) return Status(deps.error().code, deps.error().message);
        task.deps = deps.value();
      }
      for (const auto& existing : option->performance_dag) {
        if (existing.name == task.name) {
          return Status(ErrorCode::kParseError,
                        "duplicate dag task: " + task.name);
        }
      }
      option->performance_dag.push_back(std::move(task));
    }
    if (option->performance_dag.empty()) {
      return Status(ErrorCode::kParseError, "dag needs at least one task");
    }
    return Status::Ok();
  }
  if (items.size() != 2) {
    return Status(ErrorCode::kParseError,
                  "performance requires a point list or script");
  }
  auto points = list_parse(items[1]);
  if (!points.ok()) return Status(points.error().code, points.error().message);
  for (const auto& point : points.value()) {
    auto xy = list_parse(point);
    if (!xy.ok()) return Status(xy.error().code, xy.error().message);
    if (xy.value().size() != 2) {
      return Status(ErrorCode::kParseError,
                    "performance point must be {x y}: \"" + point + "\"");
    }
    PerfPoint p;
    if (!parse_double(xy.value()[0], &p.x) ||
        !parse_double(xy.value()[1], &p.y)) {
      return Status(ErrorCode::kParseError,
                    "performance point is not numeric: \"" + point + "\"");
    }
    // A non-finite point is always a generator bug (e.g. a scaling law
    // divided by a zero worker count) and would poison every
    // interpolation that brackets it.
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status(ErrorCode::kParseError,
                    "performance point is not finite: \"" + point + "\"");
    }
    option->performance_points.push_back(p);
  }
  // The controller interpolates piecewise-linearly; points must ascend.
  for (size_t i = 1; i < option->performance_points.size(); ++i) {
    if (option->performance_points[i].x <=
        option->performance_points[i - 1].x) {
      return Status(ErrorCode::kParseError,
                    "performance points must have strictly increasing x");
    }
  }
  return Status::Ok();
}

Result<OptionSpec> parse_option(std::string_view text) {
  auto items = list_parse(text);
  if (!items.ok()) return Err<OptionSpec>(items.error().code, items.error().message);
  if (items.value().empty()) {
    return parse_error<OptionSpec>("empty option specification");
  }
  OptionSpec option;
  option.name = items.value()[0];
  for (size_t i = 1; i < items.value().size(); ++i) {
    auto entry = list_parse(items.value()[i]);
    if (!entry.ok()) return Err<OptionSpec>(entry.error().code, entry.error().message);
    const auto& fields = entry.value();
    if (fields.empty()) continue;
    const std::string& key = fields[0];
    if (key == "node") {
      auto node = parse_node_req(fields);
      if (!node.ok()) return Err<OptionSpec>(node.error().code, node.error().message);
      option.nodes.push_back(std::move(node).value());
    } else if (key == "link") {
      auto link = parse_link_req(fields);
      if (!link.ok()) return Err<OptionSpec>(link.error().code, link.error().message);
      option.links.push_back(std::move(link).value());
    } else if (key == "communication") {
      if (fields.size() < 2) {
        return parse_error<OptionSpec>("communication requires an expression");
      }
      std::vector<std::string> rest(fields.begin() + 1, fields.end());
      option.communication = Expr(join(rest, " "));
    } else if (key == "variable") {
      auto variable = parse_variable(fields);
      if (!variable.ok()) {
        return Err<OptionSpec>(variable.error().code, variable.error().message);
      }
      option.variables.push_back(std::move(variable).value());
    } else if (key == "performance") {
      auto status = parse_performance(fields, &option);
      if (!status.ok()) {
        return Err<OptionSpec>(status.error().code, status.error().message);
      }
    } else if (key == "granularity") {
      if (fields.size() != 2 ||
          !parse_double(fields[1], &option.granularity_s)) {
        return parse_error<OptionSpec>("granularity requires a number");
      }
    } else if (key == "friction") {
      if (fields.size() != 2 || !parse_double(fields[1], &option.friction_s)) {
        return parse_error<OptionSpec>("friction requires a number");
      }
    } else if (key == "deadline") {
      if (fields.size() != 2 || !parse_double(fields[1], &option.deadline_s) ||
          option.deadline_s <= 0) {
        return parse_error<OptionSpec>("deadline requires a positive number");
      }
    } else if (key == "period") {
      if (fields.size() != 2 || !parse_double(fields[1], &option.period_s) ||
          option.period_s <= 0) {
        return parse_error<OptionSpec>("period requires a positive number");
      }
    } else if (key == "tardiness") {
      if (fields.size() != 2 ||
          !parse_double(fields[1], &option.tardiness_weight) ||
          option.tardiness_weight < 0) {
        return parse_error<OptionSpec>(
            "tardiness requires a nonnegative weight");
      }
    } else {
      return parse_error<OptionSpec>("unknown option tag: \"" + key + "\"");
    }
  }
  return option;
}

}  // namespace

Result<BundleSpec> parse_bundle(std::string_view app_instance,
                                std::string_view bundle_name,
                                std::string_view options_list) {
  auto app = parse_app_instance(app_instance);
  if (!app.ok()) return Err<BundleSpec>(app.error().code, app.error().message);
  BundleSpec bundle;
  bundle.application = app.value().first;
  bundle.instance = app.value().second;
  bundle.bundle = std::string(bundle_name);
  if (bundle.bundle.empty()) {
    return parse_error<BundleSpec>("bundle name must not be empty");
  }
  auto options = list_parse(options_list);
  if (!options.ok()) {
    return Err<BundleSpec>(options.error().code, options.error().message);
  }
  if (options.value().empty()) {
    return parse_error<BundleSpec>("bundle \"" + bundle.bundle +
                                   "\" has no options");
  }
  for (const auto& text : options.value()) {
    auto option = parse_option(text);
    if (!option.ok()) {
      return Err<BundleSpec>(option.error().code, option.error().message);
    }
    if (bundle.find_option(option.value().name) != nullptr) {
      return parse_error<BundleSpec>("duplicate option name: \"" +
                                     option.value().name + "\"");
    }
    bundle.options.push_back(std::move(option).value());
  }
  return bundle;
}

Result<NodeAd> parse_node_ad(const std::vector<std::string>& argv) {
  // argv: harmonyNode NAME {tag value}...
  if (argv.size() < 2) {
    return parse_error<NodeAd>("harmonyNode requires a node name");
  }
  NodeAd ad;
  ad.name = argv[1];
  for (size_t i = 2; i < argv.size(); ++i) {
    auto fieldsr = list_parse(argv[i]);
    if (!fieldsr.ok()) return Err<NodeAd>(fieldsr.error().code, fieldsr.error().message);
    const auto& fields = fieldsr.value();
    if (fields.empty()) continue;
    const std::string& key = fields[0];
    if (key == "speed") {
      if (fields.size() != 2 || !parse_double(fields[1], &ad.speed) ||
          ad.speed <= 0) {
        return parse_error<NodeAd>("speed requires a positive number");
      }
    } else if (key == "memory") {
      if (fields.size() != 2 || !parse_double(fields[1], &ad.memory_mb) ||
          ad.memory_mb < 0) {
        return parse_error<NodeAd>("memory requires a non-negative number");
      }
    } else if (key == "os") {
      if (fields.size() != 2) return parse_error<NodeAd>("os requires a value");
      ad.os = fields[1];
    } else if (key == "link") {
      if (fields.size() != 3 && fields.size() != 4) {
        return parse_error<NodeAd>("link requires: link peer mbps ?latency_ms?");
      }
      LinkAd link;
      link.peer = fields[1];
      if (!parse_double(fields[2], &link.bandwidth_mbps) ||
          link.bandwidth_mbps <= 0) {
        return parse_error<NodeAd>("link bandwidth must be positive");
      }
      if (fields.size() == 4 &&
          !parse_double(fields[3], &link.latency_ms)) {
        return parse_error<NodeAd>("link latency must be numeric");
      }
      ad.links.push_back(std::move(link));
    } else {
      return parse_error<NodeAd>("unknown harmonyNode tag: \"" + key + "\"");
    }
  }
  return ad;
}

// --- serialization -----------------------------------------------------------

namespace {

// Emits one {tag value} pair; the value may be an expression with
// spaces, which element_quote wraps in braces so the parser's
// require_value() recovers it verbatim.
std::string tag(const std::string& key, const std::string& value) {
  return list_build({key, value});
}

std::string node_to_list(const NodeReq& node) {
  std::vector<std::string> items = {"node", node.role};
  items.push_back(tag("hostname", node.hostname));
  if (!node.os.empty()) items.push_back(tag("os", node.os));
  if (!node.seconds.empty()) items.push_back(tag("seconds", node.seconds.text()));
  if (node.memory.op != Constraint::Op::kAny) {
    items.push_back(tag("memory", node.memory.to_string()));
  }
  if (!node.replicate.empty()) {
    items.push_back(tag("replicate", node.replicate.text()));
  }
  return list_build(items);
}

std::string option_to_list(const OptionSpec& option) {
  std::vector<std::string> items = {option.name};
  for (const auto& node : option.nodes) items.push_back(node_to_list(node));
  for (const auto& link : option.links) {
    items.push_back(
        list_build({"link", link.from, link.to, link.megabytes.text()}));
  }
  if (!option.communication.empty()) {
    items.push_back(tag("communication", option.communication.text()));
  }
  for (const auto& variable : option.variables) {
    std::vector<std::string> values;
    values.reserve(variable.values.size());
    for (double value : variable.values) values.push_back(format_number(value));
    items.push_back(
        list_build({"variable", variable.name, list_build(values)}));
  }
  if (!option.performance_points.empty()) {
    std::vector<std::string> points;
    points.reserve(option.performance_points.size());
    for (const auto& point : option.performance_points) {
      points.push_back(
          list_build({format_number(point.x), format_number(point.y)}));
    }
    items.push_back(tag("performance", list_build(points)));
  }
  if (!option.performance_script.empty()) {
    items.push_back(
        list_build({"performance", "script", option.performance_script}));
  }
  if (!option.performance_expr.empty()) {
    items.push_back(
        list_build({"performance", "expr", option.performance_expr.text()}));
  }
  if (!option.performance_dag.empty()) {
    std::vector<std::string> tasks;
    tasks.reserve(option.performance_dag.size());
    for (const auto& task : option.performance_dag) {
      tasks.push_back(list_build(
          {task.name, task.seconds.text(), list_build(task.deps)}));
    }
    items.push_back(list_build({"performance", "dag", list_build(tasks)}));
  }
  if (option.granularity_s != 0) {
    items.push_back(tag("granularity", format_number(option.granularity_s)));
  }
  if (option.friction_s != 0) {
    items.push_back(tag("friction", format_number(option.friction_s)));
  }
  if (option.deadline_s != 0) {
    items.push_back(tag("deadline", format_number(option.deadline_s)));
  }
  if (option.period_s != 0) {
    items.push_back(tag("period", format_number(option.period_s)));
  }
  if (option.tardiness_weight != 1.0) {
    items.push_back(tag("tardiness", format_number(option.tardiness_weight)));
  }
  return list_build(items);
}

}  // namespace

std::string bundle_to_script(const BundleSpec& bundle) {
  std::vector<std::string> options;
  options.reserve(bundle.options.size());
  for (const auto& option : bundle.options) {
    options.push_back(option_to_list(option));
  }
  return list_build({"harmonyBundle",
                     bundle.application + ":" + bundle.instance, bundle.bundle,
                     list_build(options)}) +
         "\n";
}

}  // namespace harmony::rsl
