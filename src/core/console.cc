#include "core/console.h"

#include "common/strings.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "rsl/value.h"

namespace harmony::core {

namespace {

using Args = std::vector<std::string>;
using R = Result<std::string>;

R usage(const char* text) {
  return Err<std::string>(ErrorCode::kEvalError,
                          std::string("usage: ") + text);
}

// Parses "App.id" into the instance id by matching against live
// instances (the id suffix is what actually identifies it).
Result<InstanceId> resolve_instance(Controller& controller,
                                    const std::string& name) {
  for (const auto& instance : controller.state().instances) {
    if (instance.path() == name) return instance.id;
  }
  // Also accept a bare numeric id.
  long long id = 0;
  if (parse_int64(name, &id)) {
    if (controller.state().find_instance(static_cast<InstanceId>(id))) {
      return static_cast<InstanceId>(id);
    }
  }
  return Err<InstanceId>(ErrorCode::kNotFound, "no such instance: " + name);
}

}  // namespace

void register_console(rsl::Interp& interp, Controller& controller) {
  Controller* ctl = &controller;

  interp.register_command(
      "harmonyInstances", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 1) return usage("harmonyInstances");
        std::vector<std::string> names;
        for (const auto& instance : ctl->state().instances) {
          names.push_back(instance.path());
        }
        return rsl::list_build(names);
      });

  interp.register_command(
      "harmonyBundles", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 2) return usage("harmonyBundles <App.id>");
        auto id = resolve_instance(*ctl, args[1]);
        if (!id.ok()) return Err<std::string>(id.error().code, id.error().message);
        std::vector<std::string> names;
        for (const auto& bundle :
             ctl->state().find_instance(id.value())->bundles) {
          names.push_back(bundle.spec.bundle);
        }
        return rsl::list_build(names);
      });

  interp.register_command(
      "harmonyOption", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 3) return usage("harmonyOption <App.id> <bundle>");
        auto id = resolve_instance(*ctl, args[1]);
        if (!id.ok()) return Err<std::string>(id.error().code, id.error().message);
        const BundleState* bundle = ctl->bundle_state(id.value(), args[2]);
        if (bundle == nullptr) {
          return Err<std::string>(ErrorCode::kNotFound,
                                  "no such bundle: " + args[2]);
        }
        if (!bundle->configured) return std::string("(unconfigured)");
        std::vector<std::string> out{bundle->choice.option};
        for (const auto& [var, value] : bundle->choice.variables) {
          out.push_back(var);
          out.push_back(format_number(value));
        }
        return rsl::list_build(out);
      });

  interp.register_command(
      "harmonySetOption", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() < 4 || args.size() % 2 != 0) {
          return usage(
              "harmonySetOption <App.id> <bundle> <option> ?var value ...?");
        }
        auto id = resolve_instance(*ctl, args[1]);
        if (!id.ok()) return Err<std::string>(id.error().code, id.error().message);
        OptionChoice choice;
        choice.option = args[3];
        for (size_t i = 4; i + 1 < args.size(); i += 2) {
          double value = 0;
          if (!parse_double(args[i + 1], &value)) {
            return Err<std::string>(ErrorCode::kEvalError,
                                    "variable value must be numeric: " +
                                        args[i + 1]);
          }
          choice.variables[args[i]] = value;
        }
        auto status = ctl->set_option(id.value(), args[2], choice);
        if (!status.ok()) {
          return Err<std::string>(status.error().code, status.error().message);
        }
        return choice.to_string();
      });

  interp.register_command(
      "harmonyPredict", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 1) return usage("harmonyPredict");
        auto predictions = ctl->predictions();
        if (!predictions.ok()) {
          return Err<std::string>(predictions.error().code,
                                  predictions.error().message);
        }
        std::vector<std::string> rows;
        for (const auto& [id, seconds] : predictions.value()) {
          const InstanceState* instance = ctl->state().find_instance(id);
          rows.push_back(rsl::list_build(
              {instance ? instance->path() : format_number(id),
               format_number(seconds)}));
        }
        return rsl::list_build(rows);
      });

  interp.register_command(
      "harmonyObjective", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 1) return usage("harmonyObjective");
        auto objective = ctl->objective_value();
        if (!objective.ok()) {
          return Err<std::string>(objective.error().code,
                                  objective.error().message);
        }
        return format_number(objective.value());
      });

  interp.register_command(
      "harmonyReevaluate", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 1) return usage("harmonyReevaluate");
        auto status = ctl->reevaluate();
        if (!status.ok()) {
          return Err<std::string>(status.error().code, status.error().message);
        }
        return std::string();
      });

  interp.register_command(
      "harmonyNodes", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 1) return usage("harmonyNodes");
        std::vector<std::string> rows;
        auto load = ctl->state().node_load();
        for (const auto& node : ctl->topology().nodes()) {
          double free = ctl->state().pool
                            ? ctl->state().pool->available_memory(node.id)
                            : node.memory_mb;
          int tasks = load.count(node.id) ? load.at(node.id) : 0;
          rows.push_back(rsl::list_build(
              {node.hostname, format_number(node.speed), format_number(free),
               format_number(tasks)}));
        }
        return rsl::list_build(rows);
      });

  interp.register_command(
      "harmonyExternalLoad", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 3) return usage("harmonyExternalLoad <host> <tasks>");
        long long tasks = 0;
        if (!parse_int64(args[2], &tasks)) {
          return Err<std::string>(ErrorCode::kEvalError,
                                  "task count must be an integer");
        }
        auto status =
            ctl->report_external_load(args[1], static_cast<int>(tasks));
        if (!status.ok()) {
          return Err<std::string>(status.error().code, status.error().message);
        }
        return std::string();
      });

  interp.register_command(
      "harmonyNodeState", [ctl](rsl::Interp&, const Args& args) -> R {
        // Runtime availability toggle. (Named distinctly from the RSL's
        // harmonyNode advertisement command, which may share an
        // interpreter with the console.)
        if (args.size() != 3 || (args[2] != "online" && args[2] != "offline")) {
          return usage("harmonyNodeState <host> online|offline");
        }
        auto status = ctl->set_node_online(args[1], args[2] == "online");
        if (!status.ok()) {
          return Err<std::string>(status.error().code, status.error().message);
        }
        return args[2];
      });

  interp.register_command(
      "harmonyMetrics", [](rsl::Interp&, const Args& args) -> R {
        // Same exposition the wire-level {METRICS} verb serves; the
        // console reads the process-global registry directly.
        if (args.size() > 2) return usage("harmonyMetrics ?prom|json|trace?");
        const std::string format = args.size() == 2 ? args[1] : "prom";
        if (format == "prom") {
          return metric::Telemetry::instance().render_prometheus();
        }
        if (format == "json") {
          return metric::Telemetry::instance().render_json();
        }
        if (format == "trace") {
          return metric::TraceBuffer::instance().render_chrome_json();
        }
        return Err<std::string>(ErrorCode::kEvalError,
                                "unknown metrics format: " + format);
      });

  interp.register_command(
      "harmonyDomains", [](rsl::Interp&, const Args& args) -> R {
        // Mirrors the wire-level {DOMAINS} verb: reads the published
        // router's stats mirror, so it is safe while domain workers are
        // mid-decision and needs no reference to a specific controller.
        if (args.size() != 1) return usage("harmonyDomains");
        bool published = false;
        auto domains = published_domains(&published);
        if (!published) {
          return Err<std::string>(ErrorCode::kNotFound,
                                  "no domain router published");
        }
        std::vector<std::string> rows;
        for (const auto& domain : domains) {
          rows.push_back(rsl::list_build(
              {str_format("%u", domain.id), str_format("%zu", domain.worker),
               rsl::list_build(domain.members),
               str_format("%llu",
                          static_cast<unsigned long long>(domain.epochs)),
               format_number(domain.last_decision_ms),
               rsl::list_build({str_format("%llu",
                                           static_cast<unsigned long long>(
                                               domain.solver_passes)),
                                str_format("%llu",
                                           static_cast<unsigned long long>(
                                               domain.solver_moves)),
                                format_number(domain.solver_improvement)})}));
        }
        return rsl::list_build(rows);
      });

  interp.register_command(
      "harmonyName", [ctl](rsl::Interp&, const Args& args) -> R {
        if (args.size() != 2) return usage("harmonyName <path>");
        auto value = ctl->names().get_string(args[1]);
        if (!value.ok()) {
          return Err<std::string>(value.error().code, value.error().message);
        }
        return value.value();
      });
}

}  // namespace harmony::core
