#include "core/domain.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <utility>

#include "common/assert.h"
#include "common/strings.h"
#include "metric/telemetry.h"
#include "rsl/rsl.h"

namespace harmony::core {

namespace {

uint64_t steady_us() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::mutex g_publish_mutex;
DomainRouter* g_published_router = nullptr;

}  // namespace

void publish_domain_router(DomainRouter* router) {
  std::lock_guard<std::mutex> lock(g_publish_mutex);
  g_published_router = router;
}

std::vector<DomainRouter::DomainInfo> published_domains(bool* published) {
  DomainRouter* router = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_publish_mutex);
    router = g_published_router;
  }
  if (published != nullptr) *published = router != nullptr;
  if (router == nullptr) return {};
  return router->snapshot();
}

// --- worker pool -----------------------------------------------------------

struct DomainRouter::Worker {
  std::mutex mutex;
  std::condition_variable cv;        // queue became non-empty / stop
  std::condition_variable idle_cv;   // queue drained and op finished
  std::deque<std::function<void()>> queue;  // guarded by mutex
  bool busy = false;                        // guarded by mutex
  bool stop = false;                        // guarded by mutex
  std::thread thread;

  void start() {
    thread = std::thread([this] { run(); });
  }

  void post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      queue.push_back(std::move(fn));
    }
    cv.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex);
    idle_cv.wait(lock, [this] { return queue.empty() && !busy; });
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      stop = true;
    }
    cv.notify_one();
    if (thread.joinable()) thread.join();
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      cv.wait(lock, [this] { return stop || !queue.empty(); });
      if (queue.empty()) {
        if (stop) return;
        continue;
      }
      auto fn = std::move(queue.front());
      queue.pop_front();
      busy = true;
      lock.unlock();
      fn();
      lock.lock();
      busy = false;
      if (queue.empty()) idle_cv.notify_all();
    }
  }
};

// --- per-domain state ------------------------------------------------------

// Forwards a domain controller's events into the shared WAL, tagged
// with the domain id and the next per-domain sequence number. Runs on
// the domain's worker thread (or the router thread during merge/split
// bookkeeping); DomainJournal implementations are synchronized.
class DomainRouter::Tap final : public EventSink {
 public:
  Tap(DomainRouter* router, Domain* domain)
      : router_(router), domain_(domain) {}

  void on_controller_event(const ControllerEvent& event) override;
  void on_epoch_commit() override;

 private:
  DomainRouter* router_;
  Domain* domain_;
};

struct DomainRouter::Domain {
  uint32_t id = 0;
  size_t worker = 0;
  // Journal sequence number of this domain's event stream. Touched only
  // by the owning worker mid-op and by the router after wait_idle.
  uint64_t dseq = 0;
  // Controller time, sampled by the router when each op was posted and
  // installed by the worker before applying it.
  double now = 0;
  uint64_t epochs = 0;  // ops applied; same access discipline as dseq
  std::unique_ptr<Tap> tap;
  std::unique_ptr<Controller> controller;
  std::vector<InstanceId> instances;       // sorted
  std::vector<cluster::NodeId> footprint;  // sorted, unique
  metric::Counter* epochs_total = nullptr;
  metric::Histogram* epoch_us = nullptr;
};

void DomainRouter::Tap::on_controller_event(const ControllerEvent& event) {
  if (router_->journal_ == nullptr) return;
  router_->journal_->on_domain_event(domain_->id, ++domain_->dseq, event);
}

void DomainRouter::Tap::on_epoch_commit() {
  if (router_->journal_ == nullptr) return;
  router_->journal_->on_domain_epoch_commit(domain_->id);
}

// --- construction ----------------------------------------------------------

DomainRouter::DomainRouter(DomainRouterConfig config)
    : config_(std::move(config)),
      objective_(make_objective(config_.controller.objective)) {
  partitioned_ = !config_.single_domain && objective_ != nullptr &&
                 objective_->separable();
  const int workers = std::max(1, config_.workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->start();
  }
}

DomainRouter::~DomainRouter() {
  quiesce();
  for (auto& worker : workers_) worker->shutdown();
  {
    std::lock_guard<std::mutex> lock(g_publish_mutex);
    if (g_published_router == this) g_published_router = nullptr;
  }
}

// --- cluster setup ---------------------------------------------------------

Status DomainRouter::add_node(const rsl::NodeAd& ad) {
  return template_.add_node(ad);
}

Status DomainRouter::add_nodes_script(const std::string& rsl_script) {
  rsl::RslHost host;
  host.on_node([this](const rsl::NodeAd& ad) { return add_node(ad); });
  return host.eval_script(rsl_script);
}

Status DomainRouter::link_hosts(const std::string& host_a,
                                const std::string& host_b,
                                double bandwidth_mbps, double latency_ms) {
  return template_.link_hosts(host_a, host_b, bandwidth_mbps, latency_ms);
}

Status DomainRouter::finalize_cluster() {
  auto status = template_.finalize_cluster();
  // Idempotent like the controller's — registration calls in every
  // time. Size the ownership index only once: re-assigning would wipe
  // which domain owns which node.
  if (status.ok() &&
      node_domain_.size() != template_.topology().nodes().size()) {
    node_domain_.assign(template_.topology().nodes().size(), 0);
  }
  return status;
}

bool DomainRouter::cluster_finalized() const {
  return template_.cluster_finalized();
}

const cluster::Topology& DomainRouter::topology() const {
  return template_.topology();
}

void DomainRouter::set_time_source(std::function<double()> source) {
  time_source_ = std::move(source);
}

void DomainRouter::attach_journal(DomainJournal* journal) {
  HARMONY_ASSERT_MSG(domains_.empty(),
                     "attach_journal before the first registration");
  journal_ = journal;
}

double DomainRouter::sample_now() {
  return time_source_ ? time_source_() : 0.0;
}

// --- worker dispatch -------------------------------------------------------

void DomainRouter::wait_idle(size_t worker) const {
  workers_[worker]->wait_idle();
}

void DomainRouter::quiesce() {
  for (size_t i = 0; i < workers_.size(); ++i) wait_idle(i);
}

template <typename R>
R DomainRouter::run_on_domain(Domain& domain, double time,
                              std::function<R(Controller&)> op) {
  std::optional<R> result;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  Domain* d = &domain;
  workers_[domain.worker]->post([this, d, time, &op, &result, &done_mutex,
                                 &done_cv, &done] {
    const uint64_t start_us = steady_us();
    d->now = time;
    d->controller->bind_owner_thread();
    result.emplace(op(*d->controller));
    d->controller->unbind_owner_thread();
    note_op_applied(*d, start_us);
    // Notify under the mutex: done_cv/done_mutex live on the caller's
    // stack, and the caller may return (and reuse the frame) the moment
    // it observes `done` with the mutex free. Holding the lock across
    // the notify keeps the waiter blocked until this thread is done
    // touching both objects.
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&done] { return done; });
  return std::move(*result);
}

void DomainRouter::post_on_domain(Domain& domain, double time,
                                  std::function<void(Controller&)> op) {
  Domain* d = &domain;
  workers_[domain.worker]->post([this, d, time, op = std::move(op)] {
    const uint64_t start_us = steady_us();
    d->now = time;
    d->controller->bind_owner_thread();
    op(*d->controller);
    d->controller->unbind_owner_thread();
    note_op_applied(*d, start_us);
  });
}

void DomainRouter::note_op_applied(Domain& domain, uint64_t start_us) {
  const uint64_t end_us = steady_us();
  ++domain.epochs;
  domain.epochs_total->increment();
  domain.epoch_us->record(end_us - start_us);
  if (metric::TraceBuffer::instance().enabled()) {
    metric::TraceBuffer::instance().record("domain.reevaluate", start_us,
                                           end_us - start_us);
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  auto it = info_.find(domain.id);
  if (it != info_.end()) {
    it->second.epochs = domain.epochs;
    it->second.last_decision_ms =
        static_cast<double>(end_us - start_us) / 1000.0;
    if (const SolverStats* stats = domain.controller->solver_stats()) {
      it->second.solver_passes = stats->passes;
      it->second.solver_moves = stats->moves_accepted;
      it->second.solver_improvement = stats->total_improvement;
    }
  }
}

// --- domain lifecycle ------------------------------------------------------

void DomainRouter::sync_node_state(
    Controller& controller,
    const std::vector<cluster::NodeId>& annexed) const {
  // Reconcile the controller's pool with the master node state for
  // exactly the annexed nodes: a domain only sees events for nodes it
  // owns, so nodes annexed by a merge or a widening registration may be
  // stale — owned nodes never are. The master maps hold only dirty
  // entries (load != 0, offline), so a lockstep walk of the sorted
  // annexed list against them costs O(|annexed| + dirty-in-range),
  // never O(cluster). Restores touch no allocations and emit no events,
  // so reconciliation cannot change a decision the reference path would
  // not also make.
  if (annexed.empty()) return;
  const auto& pool = *controller.state().pool;
  const cluster::Topology& topo = controller.topology();
  auto load_it = external_load_.lower_bound(annexed.front());
  auto offline_it = node_offline_.lower_bound(annexed.front());
  for (cluster::NodeId node : annexed) {
    while (load_it != external_load_.end() && load_it->first < node) {
      ++load_it;
    }
    const int desired_load =
        (load_it != external_load_.end() && load_it->first == node)
            ? load_it->second
            : 0;
    if (pool.external_load(node) != desired_load) {
      auto status = controller.restore_external_load(topo.node(node).hostname,
                                                     desired_load);
      HARMONY_ASSERT_MSG(status.ok(), "node-state reconciliation failed");
    }
    while (offline_it != node_offline_.end() && offline_it->first < node) {
      ++offline_it;
    }
    const bool desired_online =
        !(offline_it != node_offline_.end() && offline_it->first == node);
    if (pool.is_online(node) != desired_online) {
      auto status = controller.restore_node_online(topo.node(node).hostname,
                                                   desired_online);
      HARMONY_ASSERT_MSG(status.ok(), "node-state reconciliation failed");
    }
  }
}

DomainRouter::Domain& DomainRouter::create_domain(
    uint32_t id, size_t worker_hint, std::vector<cluster::NodeId> scope) {
  auto domain = std::make_unique<Domain>();
  domain->id = id;
  domain->worker = worker_hint % workers_.size();
  ControllerConfig controller_config = config_.controller;
  if (partitioned_ && config_.workers > 1 &&
      controller_config.optimizer.solver.enabled()) {
    // Domains on different workers improve plans concurrently; slice
    // the anytime budget so the aggregate solver CPU per epoch stays
    // bounded by the configured budget even when every worker is busy.
    controller_config.optimizer.solver.budget_ms /= config_.workers;
  }
  domain->controller = std::make_unique<Controller>(controller_config);
  // Share the template's finalized topology instead of replaying the
  // cluster definition: pool and version state are allocated over the
  // scope (the domain footprint) only, making creation O(|scope|).
  std::sort(scope.begin(), scope.end());
  scope.erase(std::unique(scope.begin(), scope.end()), scope.end());
  auto adopted = domain->controller->adopt_cluster(
      template_.shared_topology(), scope, &template_.names());
  HARMONY_ASSERT_MSG(adopted.ok(), "adopting shared cluster into domain failed");
  Domain* raw = domain.get();
  domain->controller->set_time_source([raw] { return raw->now; });
  sync_node_state(*domain->controller, scope);
  domain->tap = std::make_unique<Tap>(this, raw);
  domain->controller->set_event_sink(domain->tap.get());
  domain->epochs_total = &metric::telemetry_counter(
      str_format("domain.%u.epochs_total", id));
  domain->epoch_us = &metric::telemetry_histogram(
      str_format("domain.%u.epoch_us", id));
  auto [it, inserted] = domains_.emplace(id, std::move(domain));
  HARMONY_ASSERT(inserted);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    DomainInfo& info = info_[id];
    info.id = id;
    info.worker = it->second->worker;
  }
  return *it->second;
}

void DomainRouter::retire_domain(uint32_t domain_id) {
  auto it = domains_.find(domain_id);
  HARMONY_ASSERT(it != domains_.end());
  wait_idle(it->second->worker);
  retired_reconfigurations_ += it->second->controller->reconfigurations();
  for (cluster::NodeId node : it->second->footprint) {
    if (node < node_domain_.size() && node_domain_[node] == domain_id) {
      node_domain_[node] = 0;
    }
  }
  domains_.erase(it);
  drop_info(domain_id);
}

void DomainRouter::index_instance(InstanceId id, uint32_t domain_id,
                                  std::vector<cluster::NodeId> nodes) {
  Domain& domain = *domains_.at(domain_id);
  instance_domain_[id] = domain_id;
  domain.instances.insert(
      std::lower_bound(domain.instances.begin(), domain.instances.end(), id),
      id);
  for (cluster::NodeId node : nodes) {
    if (node < node_domain_.size()) node_domain_[node] = domain_id;
    auto pos = std::lower_bound(domain.footprint.begin(),
                                domain.footprint.end(), node);
    if (pos == domain.footprint.end() || *pos != node) {
      domain.footprint.insert(pos, node);
    }
  }
  instance_nodes_[id] = std::move(nodes);
  refresh_info(domain);
}

void DomainRouter::refresh_info(const Domain& domain) {
  std::vector<std::string> members;
  members.reserve(domain.instances.size());
  for (InstanceId id : domain.instances) {
    const InstanceState* instance = domain.controller->state().find_instance(
        id);
    if (instance != nullptr) members.push_back(instance->path());
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  DomainInfo& info = info_[domain.id];
  info.id = domain.id;
  info.worker = domain.worker;
  info.instances = domain.instances.size();
  info.members = std::move(members);
  info.epochs = domain.epochs;
  if (const SolverStats* stats = domain.controller->solver_stats()) {
    info.solver_passes = stats->passes;
    info.solver_moves = stats->moves_accepted;
    info.solver_improvement = stats->total_improvement;
  }
}

void DomainRouter::drop_info(uint32_t domain_id) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  info_.erase(domain_id);
}

// Moves one instance between controllers via the restore path: the
// captured state reinstalls bit-for-bit (same choices, placements,
// switch times), no events are emitted and no optimization pass runs,
// so decision identity is untouched. A retained subscription is
// re-attached, which replays the current configuration to the client —
// the same contract RESUME already has.
void DomainRouter::restore_into(Domain& target, const Controller& source,
                                InstanceId id) {
  const InstanceState* instance = source.state().find_instance(id);
  HARMONY_ASSERT(instance != nullptr);
  std::vector<Controller::RestoredBundle> bundles;
  bundles.reserve(instance->bundles.size());
  for (const auto& bundle : instance->bundles) {
    Controller::RestoredBundle restored;
    restored.bundle = bundle.spec.bundle;
    restored.configured = bundle.configured;
    restored.choice = bundle.choice;
    restored.last_switch_time = bundle.last_switch_time;
    for (const auto& entry : bundle.allocation.entries) {
      Controller::RestoredAllocationEntry allocation;
      allocation.role = entry.requirement.role;
      allocation.index = entry.requirement.index;
      allocation.hostname_glob = entry.requirement.hostname_glob;
      allocation.os = entry.requirement.os;
      allocation.memory_mb = entry.requirement.memory_mb;
      allocation.hostname = source.topology().node(entry.node).hostname;
      restored.entries.push_back(std::move(allocation));
    }
    bundles.push_back(std::move(restored));
  }
  auto status = target.controller->restore_instance(
      instance->script, id, instance->arrival_time, bundles);
  HARMONY_ASSERT_MSG(status.ok(), "moving instance between domains failed");
  auto subscription = subscriptions_.find(id);
  if (subscription != subscriptions_.end()) {
    auto subscribed = target.controller->subscribe(id, subscription->second);
    HARMONY_ASSERT(subscribed.ok());
  }
}

uint32_t DomainRouter::domain_for_footprint(
    const std::vector<cluster::NodeId>& nodes) {
  std::vector<uint32_t> overlapping;
  for (cluster::NodeId node : nodes) {
    if (node >= node_domain_.size()) continue;
    const uint32_t owner = node_domain_[node];
    if (owner == 0) continue;
    if (std::find(overlapping.begin(), overlapping.end(), owner) ==
        overlapping.end()) {
      overlapping.push_back(owner);
    }
  }
  if (overlapping.empty()) return 0;
  std::sort(overlapping.begin(), overlapping.end());
  if (overlapping.size() == 1) return overlapping[0];
  return merge_domains(std::move(overlapping));
}

uint32_t DomainRouter::merge_domains(std::vector<uint32_t> ids) {
  // Deterministic escalation path: quiesce the involved workers in
  // ascending domain-id order (the id-ordered lock analog), keep the
  // lowest id as the survivor, and move the absorbed domains' instances
  // across in id order via the restore path.
  HARMONY_ASSERT(ids.size() > 1);
  for (uint32_t id : ids) wait_idle(domains_.at(id)->worker);
  Domain& survivor = *domains_.at(ids[0]);
  // The survivor annexes the absorbed footprints: widen its scoped pool
  // by exactly those nodes and reconcile them against the master state
  // before any instance is restored onto them. Nodes the survivor
  // already owns have seen every event and are never stale.
  std::vector<cluster::NodeId> annexed;
  for (size_t i = 1; i < ids.size(); ++i) {
    for (cluster::NodeId node : domains_.at(ids[i])->footprint) {
      if (!std::binary_search(survivor.footprint.begin(),
                              survivor.footprint.end(), node)) {
        annexed.push_back(node);
      }
    }
  }
  std::sort(annexed.begin(), annexed.end());
  annexed.erase(std::unique(annexed.begin(), annexed.end()), annexed.end());
  survivor.controller->extend_scope(annexed);
  sync_node_state(*survivor.controller, annexed);
  for (size_t i = 1; i < ids.size(); ++i) {
    auto node = domains_.extract(ids[i]);
    HARMONY_ASSERT(!node.empty());
    std::unique_ptr<Domain> absorbed = std::move(node.mapped());
    retired_reconfigurations_ += absorbed->controller->reconfigurations();
    for (InstanceId id : absorbed->instances) {
      restore_into(survivor, *absorbed->controller, id);
      instance_domain_[id] = survivor.id;
      survivor.instances.insert(std::lower_bound(survivor.instances.begin(),
                                                 survivor.instances.end(),
                                                 id),
                                id);
    }
    for (cluster::NodeId node_id : absorbed->footprint) {
      if (node_id < node_domain_.size()) node_domain_[node_id] = survivor.id;
      auto pos = std::lower_bound(survivor.footprint.begin(),
                                  survivor.footprint.end(), node_id);
      if (pos == survivor.footprint.end() || *pos != node_id) {
        survivor.footprint.insert(pos, node_id);
      }
    }
    drop_info(absorbed->id);
  }
  refresh_info(survivor);
  return survivor.id;
}

void DomainRouter::rebalance_after_departure(uint32_t domain_id) {
  Domain& domain = *domains_.at(domain_id);
  if (domain.instances.empty()) {
    retire_domain(domain_id);
    return;
  }
  // Connected components of the remaining instances over shared nodes.
  std::map<InstanceId, InstanceId> parent;
  for (InstanceId id : domain.instances) parent[id] = id;
  std::function<InstanceId(InstanceId)> find = [&](InstanceId id) {
    while (parent[id] != id) {
      parent[id] = parent[parent[id]];
      id = parent[id];
    }
    return id;
  };
  std::map<cluster::NodeId, InstanceId> node_owner;
  for (InstanceId id : domain.instances) {
    for (cluster::NodeId node : instance_nodes_[id]) {
      auto [it, inserted] = node_owner.emplace(node, id);
      if (inserted) continue;
      InstanceId a = find(it->second), b = find(id);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::map<InstanceId, std::vector<InstanceId>> components;
  for (InstanceId id : domain.instances) components[find(id)].push_back(id);

  if (components.size() == 1) {
    // Still connected; shrink the footprint so departed-only nodes stop
    // attracting future registrations into this domain.
    std::vector<cluster::NodeId> footprint;
    for (InstanceId id : domain.instances) {
      footprint.insert(footprint.end(), instance_nodes_[id].begin(),
                       instance_nodes_[id].end());
    }
    std::sort(footprint.begin(), footprint.end());
    footprint.erase(std::unique(footprint.begin(), footprint.end()),
                    footprint.end());
    for (cluster::NodeId node : domain.footprint) {
      if (node < node_domain_.size() && node_domain_[node] == domain_id &&
          !std::binary_search(footprint.begin(), footprint.end(), node)) {
        node_domain_[node] = 0;
      }
    }
    domain.footprint = std::move(footprint);
    refresh_info(domain);
    return;
  }

  // The departure disconnected the domain: rebuild each component into
  // its own controller. The component holding the lowest instance id
  // keeps the domain id and continues its journal sequence; the others
  // open fresh streams under fresh ids.
  wait_idle(domain.worker);
  auto extracted = domains_.extract(domain_id);
  std::unique_ptr<Domain> old = std::move(extracted.mapped());
  retired_reconfigurations_ += old->controller->reconfigurations();
  for (cluster::NodeId node : old->footprint) {
    if (node < node_domain_.size() && node_domain_[node] == domain_id) {
      node_domain_[node] = 0;
    }
  }
  drop_info(domain_id);

  bool first = true;
  for (auto& [rep, members] : components) {
    const uint32_t new_id = first ? domain_id : next_domain_id_++;
    // Each component's controller is scoped to the union of its
    // members' footprints — split cost is O(|component|).
    std::vector<cluster::NodeId> scope;
    for (InstanceId id : members) {
      scope.insert(scope.end(), instance_nodes_[id].begin(),
                   instance_nodes_[id].end());
    }
    Domain& fresh =
        create_domain(new_id, (new_id - 1) % workers_.size(), std::move(scope));
    if (first) {
      fresh.dseq = old->dseq;    // the stream continues gap-free
      fresh.epochs = old->epochs;
    }
    first = false;
    fresh.controller->restore_counters(next_instance_id_, 0);
    for (InstanceId id : members) {
      restore_into(fresh, *old->controller, id);
      index_instance(id, new_id, instance_nodes_[id]);
    }
  }
  // `old` (its controller, tap and journal stream) dies here; its
  // reconfiguration history lives on in retired_reconfigurations_.
}

// --- decision operations ---------------------------------------------------

Result<InstanceId> DomainRouter::register_script(
    const std::string& rsl_script) {
  // Parse first (mirrors Controller::register_script): a parse failure
  // must not burn an instance id or touch any domain.
  std::vector<rsl::BundleSpec> bundles;
  rsl::RslHost host;
  host.on_bundle([&bundles](const rsl::BundleSpec& bundle) {
    bundles.push_back(bundle);
    return Status::Ok();
  });
  auto parsed = host.eval_script(rsl_script);
  if (!parsed.ok()) {
    return Err<InstanceId>(parsed.error().code, parsed.error().message);
  }
  auto finalized = finalize_cluster();
  if (!finalized.ok()) {
    return Err<InstanceId>(finalized.error().code, finalized.error().message);
  }
  const double time = sample_now();

  // The instance's footprint — the union of its bundles' admissible
  // node sets — decides the owning domain. In single-domain (or
  // non-separable-objective) mode every instance shares all nodes, so
  // everything collapses into one component by construction.
  std::vector<cluster::NodeId> nodes;
  if (partitioned_) {
    for (const auto& spec : bundles) {
      BundleState probe;
      probe.spec = spec;
      const auto& admissible = probe.admissible(template_.topology());
      nodes.insert(nodes.end(), admissible.begin(), admissible.end());
    }
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  } else {
    for (const auto& node : template_.topology().nodes()) {
      nodes.push_back(node.id);
    }
  }

  uint32_t domain_id = domain_for_footprint(nodes);
  const bool fresh_domain = domain_id == 0;
  if (fresh_domain) {
    domain_id = next_domain_id_++;
    create_domain(domain_id, (domain_id - 1) % workers_.size(), nodes);
  }
  Domain& domain = *domains_.at(domain_id);

  // Footprint extensions this registration brings into an existing
  // domain: widen its scoped pool by exactly those nodes and reconcile
  // them against the master state before matching. A fresh domain was
  // just created with `nodes` as its scope and is already reconciled.
  std::vector<cluster::NodeId> annexed;
  if (!fresh_domain) {
    for (cluster::NodeId node : nodes) {
      if (!std::binary_search(domain.footprint.begin(), domain.footprint.end(),
                              node)) {
        annexed.push_back(node);
      }
    }
  }

  const InstanceId expected_id = next_instance_id_;
  auto result = run_on_domain<Result<InstanceId>>(
      domain, time,
      [this, &bundles, &rsl_script, expected_id, &annexed](Controller& c) {
        if (!annexed.empty()) {
          c.extend_scope(annexed);
          sync_node_state(c, annexed);
        }
        c.restore_counters(expected_id, c.reconfigurations());
        return c.register_application(bundles, rsl_script);
      });
  // The controller burns an id on most failures (exactly like the
  // single-controller path); stay in lockstep so ids remain globally
  // sequential and journal replay reproduces them.
  next_instance_id_ = std::max(next_instance_id_,
                               domain.controller->next_instance_id());
  if (!result.ok()) {
    if (fresh_domain) retire_domain(domain_id);
    return result;
  }
  HARMONY_ASSERT(result.value() == expected_id);
  index_instance(expected_id, domain_id, std::move(nodes));
  return result;
}

Status DomainRouter::unregister(InstanceId id) {
  auto it = instance_domain_.find(id);
  if (it == instance_domain_.end()) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  const uint32_t domain_id = it->second;
  Domain& domain = *domains_.at(domain_id);
  const double time = sample_now();
  auto status = run_on_domain<Status>(
      domain, time, [id](Controller& c) { return c.unregister(id); });
  if (domain.controller->state().find_instance(id) != nullptr) {
    return status;  // departure did not take effect
  }
  instance_domain_.erase(id);
  subscriptions_.erase(id);
  domain.instances.erase(std::remove(domain.instances.begin(),
                                     domain.instances.end(), id),
                         domain.instances.end());
  rebalance_after_departure(domain_id);
  instance_nodes_.erase(id);
  return status;
}

Status DomainRouter::report_external_load(const std::string& hostname,
                                          int concurrent_tasks) {
  // Mirrors Controller::report_external_load's validation order so
  // callers see identical errors.
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  if (concurrent_tasks < 0) {
    return Status(ErrorCode::kInvalidArgument, "load must be non-negative");
  }
  auto node = template_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  const double time = sample_now();
  const uint32_t owner =
      node.value() < node_domain_.size() ? node_domain_[node.value()] : 0;
  if (owner != 0) {
    Domain& domain = *domains_.at(owner);
    auto status = run_on_domain<Status>(
        domain, time, [&hostname, concurrent_tasks](Controller& c) {
          return c.report_external_load(hostname, concurrent_tasks);
        });
    if (status.ok()) {
      if (concurrent_tasks == 0) {
        external_load_.erase(node.value());
      } else {
        external_load_[node.value()] = concurrent_tasks;
      }
    }
    return status;
  }
  // No domain owns the node: record in the master state and journal a
  // router-level event, so recovery replays the same input sequence the
  // single-controller path would have journaled.
  auto load_it = external_load_.find(node.value());
  const int current = load_it == external_load_.end() ? 0 : load_it->second;
  if (current == concurrent_tasks) return Status::Ok();
  if (concurrent_tasks == 0) {
    external_load_.erase(node.value());
  } else {
    external_load_[node.value()] = concurrent_tasks;
  }
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kExternalLoad;
  event.text = hostname;
  event.value = concurrent_tasks;
  journal_router_event(std::move(event), time);
  return Status::Ok();
}

Status DomainRouter::post_external_load(const std::string& hostname,
                                        int concurrent_tasks) {
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  if (concurrent_tasks < 0) {
    return Status(ErrorCode::kInvalidArgument, "load must be non-negative");
  }
  auto node = template_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  const double time = sample_now();
  const uint32_t owner =
      node.value() < node_domain_.size() ? node_domain_[node.value()] : 0;
  if (owner == 0) {
    // Same path as the synchronous call — nothing to defer.
    return report_external_load(hostname, concurrent_tasks);
  }
  // Master state reflects the post immediately (it is the input
  // sequence); the owning worker applies it in queue order, and any
  // merge/split first drains that queue, so the event lands against
  // the domain that owned the node when it was posted.
  if (concurrent_tasks == 0) {
    external_load_.erase(node.value());
  } else {
    external_load_[node.value()] = concurrent_tasks;
  }
  Domain& domain = *domains_.at(owner);
  post_on_domain(domain, time,
                 [hostname, concurrent_tasks](Controller& c) {
                   auto status = c.report_external_load(hostname,
                                                        concurrent_tasks);
                   HARMONY_ASSERT_MSG(status.ok(),
                                      "posted load report failed");
                 });
  return Status::Ok();
}

Status DomainRouter::set_node_online(const std::string& hostname,
                                     bool online) {
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  auto node = template_.topology().find_by_hostname(hostname);
  if (!node.ok()) return Status(node.error().code, node.error().message);
  const double time = sample_now();
  const uint32_t owner =
      node.value() < node_domain_.size() ? node_domain_[node.value()] : 0;
  if (owner != 0) {
    Domain& domain = *domains_.at(owner);
    auto status = run_on_domain<Status>(
        domain, time, [&hostname, online](Controller& c) {
          return c.set_node_online(hostname, online);
        });
    if (status.ok()) {
      if (online) {
        node_offline_.erase(node.value());
      } else {
        node_offline_[node.value()] = true;
      }
    }
    return status;
  }
  const bool currently_online =
      node_offline_.find(node.value()) == node_offline_.end();
  if (currently_online == online) return Status::Ok();
  if (online) {
    node_offline_.erase(node.value());
  } else {
    node_offline_[node.value()] = true;
  }
  ControllerEvent event;
  event.kind = ControllerEvent::Kind::kNodeOnline;
  event.text = hostname;
  event.value = online ? 1 : 0;
  journal_router_event(std::move(event), time);
  return Status::Ok();
}

Status DomainRouter::reevaluate() {
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  const double time = sample_now();
  if (domains_.empty()) {
    // Journal parity with the empty single controller, whose pass still
    // records a REEVAL event.
    journal_router_event(ControllerEvent{}, time);
    return Status::Ok();
  }
  for (auto& [id, domain] : domains_) {
    auto status = run_on_domain<Status>(
        *domain, time, [](Controller& c) { return c.reevaluate(); });
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

Status DomainRouter::set_option(InstanceId id, const std::string& bundle,
                                const OptionChoice& choice) {
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  auto it = instance_domain_.find(id);
  if (it == instance_domain_.end()) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  Domain& domain = *domains_.at(it->second);
  const double time = sample_now();
  return run_on_domain<Status>(
      domain, time, [id, &bundle, &choice](Controller& c) {
        return c.set_option(id, bundle, choice);
      });
}

Status DomainRouter::resize(InstanceId id, const std::string& bundle,
                            double workers) {
  if (!cluster_finalized()) {
    return Status(ErrorCode::kInvalidArgument, "cluster not finalized");
  }
  auto it = instance_domain_.find(id);
  if (it == instance_domain_.end()) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  Domain& domain = *domains_.at(it->second);
  const double time = sample_now();
  return run_on_domain<Status>(
      domain, time, [id, &bundle, workers](Controller& c) {
        return c.resize(id, bundle, workers);
      });
}

Status DomainRouter::subscribe(InstanceId id,
                               Controller::UpdateHandler handler) {
  auto it = instance_domain_.find(id);
  if (it == instance_domain_.end()) {
    return Status(ErrorCode::kNotFound, "no such instance");
  }
  subscriptions_[id] = handler;
  Domain& domain = *domains_.at(it->second);
  const double time = sample_now();
  return run_on_domain<Status>(
      domain, time, [id, handler = std::move(handler)](Controller& c) {
        return c.subscribe(id, std::move(handler));
      });
}

Result<std::string> DomainRouter::get_variable(InstanceId id,
                                               const std::string& name) {
  auto it = instance_domain_.find(id);
  if (it == instance_domain_.end()) {
    return Err<std::string>(ErrorCode::kNotFound, "no such instance");
  }
  Domain& domain = *domains_.at(it->second);
  const double time = sample_now();
  return run_on_domain<Result<std::string>>(
      domain, time, [id, &name](Controller& c) {
        return c.get_variable(id, name);
      });
}

void DomainRouter::journal_router_event(ControllerEvent event, double time) {
  if (journal_ == nullptr) return;
  event.time = time;
  journal_->on_domain_event(0, ++router_dseq_, event);
  journal_->on_domain_epoch_commit(0);
}

// --- merged introspection --------------------------------------------------

std::vector<const Controller*> DomainRouter::domain_controllers() const {
  for (size_t i = 0; i < workers_.size(); ++i) wait_idle(i);
  std::vector<const Controller*> out;
  out.reserve(domains_.size());
  for (const auto& [id, domain] : domains_) {
    out.push_back(domain->controller.get());
  }
  return out;
}

uint64_t DomainRouter::reconfigurations() const {
  for (size_t i = 0; i < workers_.size(); ++i) wait_idle(i);
  uint64_t total = retired_reconfigurations_;
  for (const auto& [id, domain] : domains_) {
    total += domain->controller->reconfigurations();
  }
  return total;
}

Result<std::vector<std::pair<InstanceId, double>>> DomainRouter::predictions()
    const {
  for (size_t i = 0; i < workers_.size(); ++i) wait_idle(i);
  // Ascending first-instance-id order, so the first error reported
  // matches the instance order a global pass would hit it in.
  std::vector<const Domain*> ordered;
  for (const auto& [id, domain] : domains_) ordered.push_back(domain.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Domain* a, const Domain* b) {
              const InstanceId ia = a->instances.empty() ? 0
                                                         : a->instances[0];
              const InstanceId ib = b->instances.empty() ? 0
                                                         : b->instances[0];
              return ia < ib;
            });
  std::vector<std::pair<InstanceId, double>> merged;
  for (const Domain* domain : ordered) {
    auto partial = domain->controller->predictions();
    if (!partial.ok()) {
      return Err<std::vector<std::pair<InstanceId, double>>>(
          partial.error().code, partial.error().message);
    }
    merged.insert(merged.end(), partial.value().begin(),
                  partial.value().end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

Result<double> DomainRouter::objective_value() const {
  if (objective_ == nullptr) {
    return Err<double>(ErrorCode::kInvalidArgument, "unknown objective");
  }
  auto merged = predictions();
  if (!merged.ok()) {
    return Err<double>(merged.error().code, merged.error().message);
  }
  // Id order matches the instance order of a global controller, so even
  // the floating-point summation order is identical.
  std::vector<double> times;
  times.reserve(merged.value().size());
  for (const auto& [id, t] : merged.value()) times.push_back(t);
  // Deadline declarations merged from every domain (id-keyed, so the
  // term order matches a global controller's instance order). Without
  // deadlines, terms stays empty and the evaluation is bit-identical.
  std::map<InstanceId, std::pair<double, double>> deadlines;
  for (const auto& [did, domain] : domains_) {
    for (const auto& [iid, deadline, weight] :
         domain->controller->deadline_terms()) {
      deadlines[iid] = {deadline, weight};
    }
  }
  std::vector<DeadlineTerm> terms;
  if (!deadlines.empty()) {
    for (const auto& [id, t] : merged.value()) {
      auto found = deadlines.find(id);
      if (found == deadlines.end()) continue;
      terms.push_back({t, found->second.first, found->second.second});
    }
  }
  return objective_->evaluate_with_deadlines(times, terms);
}

std::vector<DomainRouter::DomainInfo> DomainRouter::snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  std::vector<DomainInfo> out;
  out.reserve(info_.size());
  for (const auto& [id, info] : info_) out.push_back(info);
  return out;
}

}  // namespace harmony::core
