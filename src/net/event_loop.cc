#include "net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/assert.h"
#include "common/logging.h"

namespace harmony::net {

namespace {

// epoll tags: connection ids start at 2 (the server's id generator is
// seeded accordingly), leaving 0/1 for the shard's own fds.
constexpr uint64_t kWakeTag = 0;
constexpr uint64_t kListenTag = 1;
constexpr int kMaxIov = 64;

}  // namespace

void OutboundRing::append(std::string chunk) {
  if (chunk.empty()) return;
  bytes_ += chunk.size();
  chunks_.push_back(std::move(chunk));
}

Result<bool> OutboundRing::flush(const Fd& fd) {
  while (!chunks_.empty()) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    size_t offset = head_;
    for (auto it = chunks_.begin(); it != chunks_.end() && iovcnt < kMaxIov;
         ++it) {
      iov[iovcnt].iov_base = const_cast<char*>(it->data() + offset);
      iov[iovcnt].iov_len = it->size() - offset;
      ++iovcnt;
      offset = 0;
    }
    // sendmsg rather than writev for MSG_NOSIGNAL: a peer that vanished
    // mid-flush must surface as EPIPE, not kill the process.
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    ssize_t n = ::sendmsg(fd.get(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        return false;
      }
      return Err<bool>(ErrorCode::kTransport, std::strerror(errno));
    }
    size_t consumed = static_cast<size_t>(n);
    bytes_ -= consumed;
    while (consumed > 0) {
      const size_t remaining = chunks_.front().size() - head_;
      if (consumed >= remaining) {
        consumed -= remaining;
        chunks_.pop_front();
        head_ = 0;
      } else {
        head_ += consumed;
        consumed = 0;
      }
    }
  }
  return true;
}

IoShard::IoShard(const ShardOptions& options)
    : options_(options),
      accepts_total_(&metric::telemetry_counter("net.accepts_total")),
      frames_in_total_(&metric::telemetry_counter("net.frames_in_total")),
      frames_out_total_(&metric::telemetry_counter("net.frames_out_total")) {
  HARMONY_ASSERT(options_.mailbox != nullptr);
  HARMONY_ASSERT(options_.next_conn_id != nullptr);
}

IoShard::~IoShard() {
  request_stop();
  wake();
  join();
  // Sockets handed over but never adopted still own their fds.
  for (auto& command : commands_) {
    if (command.kind == Command::Kind::kAdopt && command.fd >= 0) {
      ::close(command.fd);
    }
  }
}

Status IoShard::start(Fd listener) {
  epoll_ = Fd(::epoll_create1(EPOLL_CLOEXEC));
  if (!epoll_.valid()) {
    return Status(ErrorCode::kTransport,
                  std::string("epoll_create1: ") + std::strerror(errno));
  }
  wakeup_ = Fd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
  if (!wakeup_.valid()) {
    return Status(ErrorCode::kTransport,
                  std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;  // level-triggered: wakeups are never lost
  wake_event.data.u64 = kWakeTag;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wakeup_.get(), &wake_event) !=
      0) {
    return Status(ErrorCode::kTransport,
                  std::string("epoll_ctl: ") + std::strerror(errno));
  }
  listener_ = std::move(listener);
  if (listener_.valid()) {
    epoll_event listen_event{};
    listen_event.events = EPOLLIN;
    listen_event.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(),
                    &listen_event) != 0) {
      return Status(ErrorCode::kTransport,
                    std::string("epoll_ctl: ") + std::strerror(errno));
    }
    reserve_ = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  }
  thread_ = std::thread([this] { loop(); });
  return Status::Ok();
}

void IoShard::request_stop() { stop_.store(true, std::memory_order_relaxed); }

void IoShard::join() {
  if (thread_.joinable()) thread_.join();
}

void IoShard::wake() {
  if (!wakeup_.valid()) return;
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_.get(), &one, sizeof(one));
  (void)ignored;
}

void IoShard::post_send(uint64_t conn, std::string data) {
  std::lock_guard<std::mutex> lock(command_mutex_);
  Command command;
  command.kind = Command::Kind::kSend;
  command.conn = conn;
  command.data = std::move(data);
  commands_.push_back(std::move(command));
}

void IoShard::post_adopt(uint64_t conn, int raw_fd) {
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    Command command;
    command.kind = Command::Kind::kAdopt;
    command.conn = conn;
    command.fd = raw_fd;
    commands_.push_back(std::move(command));
  }
  wake();
}

void IoShard::loop() {
  std::vector<epoll_event> events(256);
  while (!stop_.load(std::memory_order_relaxed)) {
    int n = ::epoll_wait(epoll_.get(), events.data(),
                         static_cast<int>(events.size()), 100);
    if (n < 0) {
      if (errno == EINTR) continue;
      HLOG_ERROR("shard") << "epoll_wait: " << std::strerror(errno);
      break;
    }
    drain_commands();
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        drain_wakeups();
        continue;
      }
      if (tag == kListenTag) {
        accept_pending();
        continue;
      }
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;  // closed earlier this batch
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR)) {
        if (!read_conn(tag, it->second)) continue;
      }
      if (ev & EPOLLOUT) flush_conn(tag, it->second);
    }
  }
  // Shutdown: drop the slice without synthesizing kClosed events — the
  // server is tearing the whole front end down and parks/ends sessions
  // itself.
  if (options_.connection_count != nullptr) {
    options_.connection_count->fetch_sub(conns_.size(),
                                         std::memory_order_relaxed);
  }
  conns_.clear();
}

void IoShard::drain_commands() {
  std::vector<Command> commands;
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    commands.swap(commands_);
  }
  for (auto& command : commands) {
    if (command.kind == Command::Kind::kAdopt) {
      adopt(command.conn, Fd(command.fd));
      continue;
    }
    auto it = conns_.find(command.conn);
    if (it == conns_.end()) continue;  // raced with a close; bytes dropped
    enqueue_output(command.conn, it->second, std::move(command.data));
  }
}

void IoShard::drain_wakeups() {
  uint64_t count = 0;
  while (::read(wakeup_.get(), &count, sizeof(count)) > 0) {
  }
}

void IoShard::accept_pending() {
  while (!stop_.load(std::memory_order_relaxed)) {
    auto accepted = accept_connection(listener_);
    if (!accepted.ok()) {
      if (accepted.error().code == ErrorCode::kTimeout) return;  // drained
      if (accepted.error().code == ErrorCode::kCapacity) {
        // Out of fds. Shed the pending connection instead of leaving it
        // in the backlog (the peer would hang, and a level-triggered
        // listener would spin).
        shed_pending_connection();
        if (listener_paused_) return;
        continue;
      }
      HLOG_WARN("shard") << "accept: " << accepted.error().message;
      return;
    }
    Fd fd = std::move(accepted).value();
    accepts_total_->increment();
    (void)set_nonblocking(fd, true);
    if (options_.sndbuf_bytes > 0) {
      (void)::setsockopt(fd.get(), SOL_SOCKET, SO_SNDBUF,
                         &options_.sndbuf_bytes,
                         sizeof(options_.sndbuf_bytes));
    }
    const uint64_t id =
        options_.next_conn_id->fetch_add(1, std::memory_order_relaxed);
    const size_t shard_count =
        options_.peers != nullptr ? options_.peers->size() : 1;
    const int target =
        shard_count <= 1
            ? options_.index
            : static_cast<int>(options_.accept_cursor->fetch_add(
                                   1, std::memory_order_relaxed) %
                               shard_count);
    // kAccepted is pushed before the socket can produce any kMessage
    // (the owning shard only reads it after the adopt below), so the
    // controller always learns of a connection before its traffic.
    NetEvent event;
    event.kind = NetEvent::Kind::kAccepted;
    event.conn = id;
    event.shard = target;
    if (!options_.mailbox->push(std::move(event))) return;  // shutting down
    if (target == options_.index) {
      adopt(id, std::move(fd));
    } else {
      (*options_.peers)[target]->post_adopt(id, fd.release());
    }
  }
}

void IoShard::adopt(uint64_t id, Fd fd) {
  if (!fd.valid()) return;
  epoll_event event{};
  event.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  event.data.u64 = id;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd.get(), &event) != 0) {
    HLOG_WARN("shard") << "epoll add: " << std::strerror(errno);
    NetEvent closed;
    closed.kind = NetEvent::Kind::kClosed;
    closed.conn = id;
    closed.shard = options_.index;
    options_.mailbox->push(std::move(closed));
    return;
  }
  Conn conn;
  conn.fd = std::move(fd);
  conns_.emplace(id, std::move(conn));
  if (options_.connection_count != nullptr) {
    options_.connection_count->fetch_add(1, std::memory_order_relaxed);
  }
  HLOG_DEBUG("shard") << "shard " << options_.index << " adopted conn " << id;
}

bool IoShard::read_conn(uint64_t id, Conn& conn) {
  char buffer[16384];
  while (true) {
    auto n = read_some(conn.fd, buffer, sizeof(buffer));
    if (!n.ok()) {
      close_conn(id, /*overflow=*/false);
      return false;
    }
    if (n.value() == 0) break;  // EAGAIN: the edge is fully drained
    conn.inbound.feed(std::string_view(buffer, n.value()));
  }
  while (true) {
    auto frame = conn.inbound.next_frame();
    if (!frame.ok()) {
      HLOG_WARN("shard") << "protocol violation: " << frame.error().message;
      close_conn(id, /*overflow=*/false);
      return false;
    }
    if (!frame.value().has_value()) break;
    frames_in_total_->increment();
    auto message = Message::decode(*frame.value());
    if (!message.ok()) {
      // Malformed payload inside a well-formed frame: the shard answers
      // ERR itself (no controller state involved) and keeps reading.
      const std::string reply = encode_frame(
          Message::err(message.error().code, message.error().message)
              .encode());
      frames_out_total_->increment();
      if (!enqueue_output(id, conn, reply)) return false;
      continue;
    }
    if (message.value().verb == "METRICS" ||
        message.value().verb == "DOMAINS" ||
        message.value().verb == "STATUS") {
      // Scrapes and role probes are answered here, on the shard:
      // telemetry instruments, the published domain snapshot, and the
      // published HA status are process-global and thread-safe, so
      // observability stays responsive even when the controller thread
      // is saturated (or wedged) — the mailbox is never involved.
      const Message response =
          message.value().verb == "METRICS"
              ? build_metrics_reply(message.value())
          : message.value().verb == "DOMAINS"
              ? build_domains_reply(message.value())
              : build_status_reply(message.value());
      const std::string reply = encode_frame(response.encode());
      frames_out_total_->increment();
      if (!enqueue_output(id, conn, reply)) return false;
      continue;
    }
    if (!ha_accepting() && is_decision_verb(message.value().verb)) {
      // Standby: decision verbs never reach the mailbox — the applier
      // thread owns the controller, and the refusal (with the primary
      // hint) must not queue behind replication traffic.
      const std::string reply = encode_frame(not_primary_reply().encode());
      frames_out_total_->increment();
      if (!enqueue_output(id, conn, reply)) return false;
      continue;
    }
    NetEvent event;
    event.kind = NetEvent::Kind::kMessage;
    event.conn = id;
    event.shard = options_.index;
    event.message = std::move(message).value();
    if (!options_.mailbox->push(std::move(event))) return true;
  }
  return true;
}

bool IoShard::enqueue_output(uint64_t id, Conn& conn, std::string data) {
  conn.outbound.append(std::move(data));
  if (conn.outbound.bytes() > options_.high_water_bytes) {
    HLOG_WARN("shard") << "conn " << id
                       << ": slow consumer over high-water mark ("
                       << conn.outbound.bytes() << " bytes); disconnecting";
    close_conn(id, /*overflow=*/true);
    return false;
  }
  return flush_conn(id, conn);
}

bool IoShard::flush_conn(uint64_t id, Conn& conn) {
  auto drained = conn.outbound.flush(conn.fd);
  if (!drained.ok()) {
    close_conn(id, /*overflow=*/false);
    return false;
  }
  set_write_interest(id, conn, !drained.value());
  return true;
}

void IoShard::set_write_interest(uint64_t id, Conn& conn, bool want) {
  if (conn.want_write == want) return;
  conn.want_write = want;
  epoll_event event{};
  event.events =
      EPOLLIN | EPOLLRDHUP | EPOLLET | (want ? EPOLLOUT : 0u);
  event.data.u64 = id;
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd.get(), &event);
}

void IoShard::close_conn(uint64_t id, bool overflow) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, it->second.fd.get(),
                    nullptr);
  conns_.erase(it);
  if (options_.connection_count != nullptr) {
    options_.connection_count->fetch_sub(1, std::memory_order_relaxed);
  }
  resume_listener_if_paused();
  NetEvent event;
  event.kind = NetEvent::Kind::kClosed;
  event.conn = id;
  event.shard = options_.index;
  event.overflow = overflow;
  options_.mailbox->push(std::move(event));
}

void IoShard::shed_pending_connection() {
  if (!reserve_.valid()) {
    // No headroom left at all: stop watching the listener until a
    // connection closes, so the level-triggered loop does not spin.
    HLOG_WARN("shard")
        << "out of file descriptors and no reserve; pausing accepts";
    pause_listener();
    return;
  }
  reserve_.close();
  int fd = ::accept(listener_.get(), nullptr, nullptr);
  if (fd >= 0) ::close(fd);
  reserve_ = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  HLOG_WARN("shard")
      << "out of file descriptors; shed one pending connection";
}

void IoShard::pause_listener() {
  if (listener_paused_ || !listener_.valid()) return;
  (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, listener_.get(), nullptr);
  listener_paused_ = true;
}

void IoShard::resume_listener_if_paused() {
  if (!listener_paused_) return;
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.u64 = kListenTag;
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, listener_.get(), &event) ==
      0) {
    listener_paused_ = false;
  }
  if (!reserve_.valid()) {
    reserve_ = Fd(::open("/dev/null", O_RDONLY | O_CLOEXEC));
  }
}

}  // namespace harmony::net
