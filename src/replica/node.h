// The HA node manager: one of these per process wires the whole
// replication stack together and runs the role state machine.
//
//   start ──► lease acquired? ──► PRIMARY: Persistence::open + server
//                 │                 + ReplicationSource (tap + feed)
//                 └─► no ──────► STANDBY: Persistence::open_standby +
//                                   refusing server + StandbyReplicator
//
//   poll (the owner thread's heartbeat):
//     PRIMARY   a dedicated thread renews the lease every
//               lease_renew_ms (heartbeats must not queue behind a
//               long drain batch); when a renewal finds a higher term
//               another node promoted past us — poll notices the flag
//               and stops serving immediately (fencing; stale state
//               must never answer again), then serves one server tick.
//     STANDBY   watch the lease file; once it expires, become a
//               CANDIDATE: bump the term via try_acquire, stop the
//               replicator, Persistence::promote(), re-park the
//               mirrored sessions, attach a fresh ReplicationSource,
//               flip the server to accepting — clients RESUME against
//               us and the deposed primary's standbys re-attach here.
//               A replicator flagging needs_reset() instead tears the
//               mirror down (wipe + rebuild from the stream).
//
// Single-threaded by design: the thread calling poll() is the
// controller thread (it drives server->run_once), so every promotion
// step happens between server ticks with no connection in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/controller.h"
#include "net/server.h"
#include "net/tcp_transport.h"
#include "persist/persistence.h"
#include "replica/lease.h"
#include "replica/source.h"
#include "replica/standby.h"

namespace harmony::replica {

struct HaNodeConfig {
  // Persistence directory for this node's journal + snapshots.
  std::string data_dir;
  // Lease file shared by all candidate processes.
  std::string lease_path;
  // Client-facing listen port (0 = ephemeral; the bound port is kept
  // across standby rebuilds).
  uint16_t port = 0;
  // Client endpoints of the other nodes (where a standby finds the
  // primary, and what a standby names in its not_primary hint).
  std::vector<net::Endpoint> peers;
  std::string node_id = "node";
  // host:port clients should be told to aim at while we are primary;
  // empty = 127.0.0.1:<bound port>.
  std::string advertise;
  int64_t lease_ttl_ms = 1500;
  int64_t lease_renew_ms = 500;
  // Fresh-start hook: defines the cluster on a primary whose directory
  // held no prior state (standbys receive the definition through the
  // snapshot stream instead). Must be deterministic across nodes.
  std::function<Status(core::Controller&)> bootstrap;
  // Optional controller time source, installed while (and only while)
  // this node is primary; standbys follow the replicated event times.
  std::function<double()> time_source;
  int session_grace_ms = 30000;
  net::ServerConfig server;
  persist::PersistConfig persist;  // `dir` is overridden with data_dir
  StandbyConfig standby;           // `peers`/`node_id` overridden
};

class HaNode {
 public:
  enum class Role { kStandby, kCandidate, kPrimary };

  explicit HaNode(HaNodeConfig config);
  ~HaNode();

  HaNode(const HaNode&) = delete;
  HaNode& operator=(const HaNode&) = delete;

  Status start();
  // One supervision step: role upkeep (lease renew / expiry watch /
  // promotion) then one server tick. Returns true on progress.
  bool poll(int timeout_ms);
  // poll() until stop() is called (from any thread).
  void run(int timeout_ms = 50);
  void stop();

  Role role() const { return role_; }
  static const char* role_name(Role role);
  uint64_t term() const { return term_; }
  uint16_t port() const { return port_; }
  bool deposed() const { return deposed_; }
  core::Controller* controller() { return controller_.get(); }
  persist::Persistence* persistence() { return persistence_.get(); }
  net::HarmonyTcpServer* server() { return server_.get(); }
  StandbyReplicator* replicator() { return replicator_.get(); }

 private:
  Status start_primary(uint64_t lease_term);
  Status start_standby();
  Status promote_self(uint64_t lease_term);
  // Lease heartbeats for a primary run on their own thread: renewal
  // latency must never sit behind serving latency, or one long drain
  // batch (a register storm, a heavy reevaluation) blows the TTL and a
  // standby promotes over a live primary. The thread only touches the
  // lease file (flock'd per call) and renew_deposed_; the fencing
  // reaction stays on the poll thread.
  void start_renewal();
  void stop_renewal();
  // needs_reset(): drop every layer and re-mirror from an empty dir.
  Status rebuild_standby();
  void teardown();
  void publish_status();
  std::string advertise_address() const;
  std::string standby_hint() const;

  HaNodeConfig config_;
  LeaseFile lease_;
  Role role_ = Role::kStandby;
  uint64_t term_ = 0;
  uint16_t port_ = 0;
  bool deposed_ = false;
  int64_t last_lease_check_ms_ = 0;
  std::atomic<bool> stopping_{false};

  std::thread renew_thread_;
  std::mutex renew_mutex_;
  std::condition_variable renew_cv_;
  bool renew_stop_ = false;  // guarded by renew_mutex_
  std::atomic<bool> renew_deposed_{false};

  // Declaration order is teardown order in reverse: the replicator dies
  // first (it writes through persistence), then the server (it reads
  // controller + persistence), then the source, then persistence, then
  // the controller.
  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<persist::Persistence> persistence_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<net::HarmonyTcpServer> server_;
  std::unique_ptr<StandbyReplicator> replicator_;

  metric::Counter* failovers_total_ =
      &metric::telemetry_counter("replica.failovers_total");
};

}  // namespace harmony::replica
