// Page-level LRU buffer pool — the SHORE-storage-manager stand-in for
// the server side. The paper's Figure 7 commentary attributes one
// client's advantage to "cooperative caching effects on the server
// since all clients are accessing the same relations": all clients
// share this pool, so pages warmed by one client's queries make every
// later query cheaper.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "db/tuple.h"

namespace harmony::db {

class BufferPool {
 public:
  // capacity_pages of tuples_per_page tuples each (8 KB pages of
  // 208-byte tuples by default).
  explicit BufferPool(size_t capacity_pages, size_t tuples_per_page = 39);

  size_t capacity_pages() const { return capacity_; }
  size_t tuples_per_page() const { return tuples_per_page_; }
  size_t resident_pages() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  double hit_rate() const;

  struct Touch {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // Touches the page holding row `row` of `table`; faults it in on a
  // miss (evicting LRU pages).
  bool touch(int table, RowId row);
  // Touches every page covering the given rows; returns the aggregate.
  Touch touch_rows(int table, const std::vector<RowId>& rows);

  void clear();

 private:
  using PageKey = uint64_t;  // table << 48 | page number
  PageKey key(int table, RowId row) const {
    return (static_cast<uint64_t>(table) << 48) |
           (static_cast<uint64_t>(row) / tuples_per_page_);
  }

  size_t capacity_;
  size_t tuples_per_page_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::list<PageKey> lru_;  // front = most recent
  std::unordered_map<PageKey, std::list<PageKey>::iterator> entries_;
};

}  // namespace harmony::db
