// The harmonized client-server database of §6: clients issue randomly
// perturbed Wisconsin join queries in a closed loop; each query really
// executes in the DbEngine, and its measured work is charged to the
// simulated cluster (server/client CPU tasks, server->client
// transfers). Between queries — the natural reconfiguration point the
// paper describes — the client polls its Harmony variables and switches
// between query shipping and data shipping.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "apps/sim_context.h"
#include "client/client.h"
#include "common/rng.h"
#include "db/engine.h"

namespace harmony::apps {

struct DbClientConfig {
  std::string client_host;       // where this client runs
  std::string server_host = "server";
  int instance = 1;              // application-supplied instance hint
  uint64_t seed = 1;
  double think_time_s = 0.0;     // delay between queries
  double request_mb = 0.01;      // client -> server query message
  db::CostModel costs;           // work -> reference-seconds calibration
};

// The Figure 3 bundle with amounts matching what the simulated client
// actually does (measured from DbEngine work counters at 100k rows).
std::string db_client_bundle_script(const DbClientConfig& config);

class DbClientApp {
 public:
  DbClientApp(SimContext ctx, db::DbEngine* engine, DbClientConfig config);

  // Registers with Harmony and starts the query loop.
  Status start();
  // Finish the current query, then harmony_end (releases resources and
  // triggers controller re-evaluation).
  void stop();
  bool stopped() const { return stop_requested_ && !query_in_flight_; }

  const std::string& metric_name() const { return metric_name_; }
  uint64_t queries_completed() const { return queries_completed_; }
  db::Placement current_placement() const { return placement_; }
  const db::BucketCache& cache() const { return cache_; }
  core::InstanceId instance_id() const { return client_->instance_id(); }

 private:
  void poll_configuration();
  void issue_query();
  void finish_query(double started_at);

  SimContext ctx_;
  db::DbEngine* engine_;
  DbClientConfig config_;
  // Transport must outlive the client: the client's destructor calls
  // harmony_end() through it.
  std::unique_ptr<client::InProcTransport> transport_;
  std::unique_ptr<client::HarmonyClient> client_;
  Rng rng_;
  db::BucketCache cache_{17.0};
  db::Placement placement_ = db::Placement::kQueryShipping;
  cluster::NodeId client_node_ = cluster::kInvalidNode;
  cluster::NodeId server_node_ = cluster::kInvalidNode;
  std::string metric_name_;
  uint64_t queries_completed_ = 0;
  bool stop_requested_ = false;
  bool query_in_flight_ = false;
};

}  // namespace harmony::apps
