// Matches application node/link requirements onto cluster nodes,
// reserving their memory and recording one placement (process) per
// matched requirement. Under the classic policies candidates are
// ordered least-loaded first — "as nodes and links are matched, we
// decrease the available resources" (§4.1) — with the configured policy
// breaking ties: the paper's simple first-fit by default; best-fit and
// worst-fit exist for the fragmentation ablation study.
//
// The vector policies treat placement as multi-capacity bin packing
// (Stillwell et al., "Resource Allocation using Virtual Clusters"):
// each node is a bin with two packed dimensions — exclusively reserved
// memory and time-shared CPU load — and candidates are ordered by the
// weighted norm of the node's utilization vector *after* hosting the
// requirement. kVectorBestFit packs tight (highest post-placement
// utilization first), consolidating load so large contiguous holes stay
// open for wide options; kVectorWorstFit spreads (lowest first). Both
// place requirements in decreasing-demand order (best-fit decreasing).
#pragma once

#include <string>
#include <vector>

#include "cluster/pool.h"
#include "cluster/topology.h"
#include "common/result.h"

namespace harmony::cluster {

struct NodeRequirement {
  std::string role;            // option-namespace name ("client", "worker")
  int index = 0;               // replica index within the role
  std::string hostname_glob = "*";
  std::string os;              // empty = any
  double memory_mb = 0.0;      // reserved exclusively when matched
};

// Connectivity requirement between two placed requirements (indices into
// the requirement vector). Bandwidth is a minimum path bandwidth; 0
// means "any connectivity".
struct LinkRequirement {
  size_t from = 0;
  size_t to = 0;
  double min_bandwidth_mbps = 0.0;
};

enum class MatchPolicy {
  kFirstFit,
  kBestFit,
  kWorstFit,
  kVectorBestFit,
  kVectorWorstFit,
};

const char* match_policy_name(MatchPolicy policy);

// Weights for the multi-capacity utilization norm used by the vector
// policies. A node's score is
//   memory_weight * (reserved + demand) / total_memory
//   + load_weight * (effective_load + 1) / (speed * reference_load)
// where reference_load is how many unit-speed processes count as a
// "full" CPU bin — time-shared load has no hard capacity, so the norm
// needs a reference scale to mix it with the hard memory dimension.
struct DimensionNorm {
  double memory_weight = 1.0;
  double load_weight = 1.0;
  double reference_load = 4.0;
};

struct Allocation {
  struct Entry {
    NodeRequirement requirement;
    NodeId node = kInvalidNode;
  };
  std::vector<Entry> entries;

  // Node placed for (role, index), or kInvalidNode.
  NodeId find(const std::string& role, int index = 0) const;
  // All nodes assigned to a role, in replica order.
  std::vector<NodeId> nodes_for(const std::string& role) const;
  bool empty() const { return entries.empty(); }
  // True when both allocations place the same (role, index) on the same
  // node — i.e. no migration happened.
  bool same_placement(const Allocation& other) const;
};

class Matcher {
 public:
  explicit Matcher(MatchPolicy policy = MatchPolicy::kFirstFit,
                   DimensionNorm norm = {})
      : policy_(policy), norm_(norm) {}

  MatchPolicy policy() const { return policy_; }
  const DimensionNorm& norm() const { return norm_; }

  // Finds a placement satisfying every requirement and link constraint,
  // reserving memory in the pool. On failure nothing is reserved.
  // Replicas of the same role are placed on distinct nodes (the paper's
  // "replicate" semantics); different roles may share a node if memory
  // allows.
  Result<Allocation> match(const std::vector<NodeRequirement>& requirements,
                           const std::vector<LinkRequirement>& links,
                           ResourceView& pool) const;

  // Releases the memory held by a previous successful match.
  static Status release(const Allocation& allocation, ResourceView& pool);

 private:
  MatchPolicy policy_;
  DimensionNorm norm_;
};

}  // namespace harmony::cluster
