file(REMOVE_RECURSE
  "CMakeFiles/core_console_test.dir/core_console_test.cc.o"
  "CMakeFiles/core_console_test.dir/core_console_test.cc.o.d"
  "core_console_test"
  "core_console_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_console_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
