// Append-only write-ahead journal for controller events. Record framing
// mirrors the wire framing layer's 4-byte big-endian length prefix and
// adds a CRC32C over the payload:
//
//   [u32 payload length][u32 crc32c(payload)][payload bytes]
//
// Appends are buffered in memory and flushed with one write(2) per
// controller epoch (commit); fsync is batched separately so the decision
// path never waits on disk latency unless configured to. Replay stops at
// the first torn or checksum-corrupt record and can truncate the file
// there, so a crash mid-write costs at most the unsynced tail — never
// the ability to start up.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace harmony::persist {

// Sanity bound matching net::kMaxFrameBytes; larger prefixes are
// treated as corruption.
inline constexpr uint32_t kMaxRecordBytes = 16u << 20;

// Encodes one record: length + crc + payload.
std::string encode_record(std::string_view payload);

struct ReplayStats {
  uint64_t records = 0;      // valid records delivered to the handler
  uint64_t valid_bytes = 0;  // file offset just past the last valid record
  bool truncated = false;    // a torn or corrupt tail was detected
};

class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&& other) noexcept;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Opens `path` for appending, creating it if needed.
  static Result<Journal> open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Buffers one record; no I/O until commit().
  void append(std::string_view payload);
  // Buffers bytes that are already framed (length+crc+payload) — the
  // replication path, where a standby mirrors the primary's journal
  // byte-for-byte from streamed record batches.
  void append_raw(std::string_view framed);
  size_t pending_bytes() const { return pending_.size(); }
  // Buffered-but-uncommitted bytes; the replication tap captures them
  // just before commit so the streamed bytes equal the file bytes.
  const std::string& pending() const { return pending_; }

  // Writes every buffered record with one write(2); fsyncs when `sync`.
  Status commit(bool sync);
  // fsyncs previously written bytes (group commit tail). Safe to call
  // from a thread other than the appender — fsync(2) of an fd that is
  // concurrently written or truncated is well-defined, and no other
  // journal state is touched.
  Status sync();
  // Empties the file (after a snapshot made its content redundant).
  Status reset();

  uint64_t appended_records() const { return appended_records_; }
  uint64_t committed_bytes() const { return committed_bytes_; }
  uint64_t commits() const { return commits_; }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

  // Reads every valid record of the file at `path` in order, stopping
  // at the first torn or CRC-corrupt record (or a handler error, which
  // aborts the replay). With `repair`, the file is truncated at the
  // last valid boundary so subsequent appends restart cleanly. A
  // missing file replays zero records.
  static Result<ReplayStats> replay(
      const std::string& path,
      const std::function<Status(const std::string& payload)>& handler,
      bool repair);

 private:
  void close();

  int fd_ = -1;
  std::string path_;
  std::string pending_;
  uint64_t appended_records_ = 0;
  uint64_t committed_bytes_ = 0;
  uint64_t commits_ = 0;
  // Atomic: sync() may run on a background group-commit thread while
  // the appender reads the counter.
  std::atomic<uint64_t> syncs_{0};
};

}  // namespace harmony::persist
