// Flow-level network model with max-min fair bandwidth sharing.
// Each transfer is routed along the topology's widest path; concurrent
// flows sharing a link split its capacity max-min fairly (progressive
// filling). Path latency is charged once, before data starts flowing.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/topology.h"
#include "common/result.h"
#include "sim/engine.h"

namespace harmony::sim {

using FlowId = uint64_t;

class NetworkModel {
 public:
  // local_bandwidth_mbps bounds same-node "transfers" (memory copies);
  // the default approximates a fast local bus.
  NetworkModel(SimEngine* engine, const cluster::Topology* topology,
               double local_bandwidth_mbps = 8000.0);

  // Starts a transfer of `megabytes` from -> to; on_done fires when the
  // last byte arrives. Fails if the nodes are disconnected.
  Result<FlowId> transfer(cluster::NodeId from, cluster::NodeId to,
                          double megabytes, std::function<void()> on_done);
  Status cancel(FlowId id);

  int active_flows() const { return static_cast<int>(flows_.size()); }
  // Current fair-share rate of a flow in MB/s (tests / diagnostics).
  Result<double> current_rate(FlowId id) const;

 private:
  struct Flow {
    std::vector<size_t> links;  // empty for local transfers
    double remaining_mb;
    double rate_mbs = 0.0;  // current max-min share
    bool started = false;   // false while the latency phase runs
    std::function<void()> on_done;
  };

  // Advances all remaining_mb to now(), recomputes max-min rates, and
  // schedules the next completion.
  void update(double now);
  void recompute_rates();
  void schedule_next_completion();
  void on_completion_event();

  SimEngine* engine_;
  const cluster::Topology* topology_;
  double local_rate_mbs_;
  std::unordered_map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  double last_update_ = 0.0;
  EventId completion_event_ = 0;
};

}  // namespace harmony::sim
