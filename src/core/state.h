// Controller-side state: application instances, their bundles, current
// option choices and allocations. The optimizer mutates this state
// (only when committing a winning plan; candidates are evaluated on a
// PlanOverlay); the controller owns it and publishes it into the
// namespace.
//
// Dirty-set tracking: every committed mutation of live state bumps a
// monotonically increasing version and stamps the touched nodes. Each
// bundle remembers the version at which it was last fully evaluated;
// the incremental optimizer skips bundles whose relevant node set is
// untouched since then (see Optimizer::reevaluate).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/matcher.h"
#include "cluster/pool.h"
#include "cluster/topology.h"
#include "rsl/spec.h"

namespace harmony::core {

using InstanceId = uint64_t;

// A concrete setting of one tuning option: the option name plus values
// for each `variable` tag it declares (e.g. workerNodes = 4), plus the
// memory grant factor the controller chose for open-ended (">=")
// memory constraints — §3.5: "Harmony can then decide to allocate
// additional memory resources at the client in order to reduce
// bandwidth requirements."
struct OptionChoice {
  std::string option;
  std::map<std::string, double> variables;
  double memory_grant = 1.0;  // multiplier on >=-constraint minimums

  bool operator==(const OptionChoice& other) const = default;
  std::string to_string() const;
};

// Enumerates every concrete choice an option spec admits (the cartesian
// product of its variable value lists; one entry when it has none).
std::vector<OptionChoice> enumerate_choices(const rsl::OptionSpec& option);
// All choices across a bundle's options, bundle definition order.
std::vector<OptionChoice> enumerate_choices(const rsl::BundleSpec& bundle);

struct BundleState {
  rsl::BundleSpec spec;
  OptionChoice choice;            // valid once `configured`
  cluster::Allocation allocation;
  double last_switch_time = -1e300;
  bool configured = false;

  // --- incremental planning bookkeeping ----------------------------------
  // SystemState::version at the last completed (non-granularity-gated)
  // optimization of this bundle; 0 = never evaluated / forced dirty.
  uint64_t evaluated_version = 0;
  // Nodes any option of this bundle could ever be placed on (hostname
  // glob + OS filters only; memory and online status are dynamic and
  // tracked through node versions). Cached lazily — the topology is
  // fixed once the cluster is finalized.
  mutable std::vector<cluster::NodeId> admissible_nodes;
  mutable bool admissible_cached = false;
  // Static admissible set for this bundle on the given topology.
  const std::vector<cluster::NodeId>& admissible(
      const cluster::Topology& topology) const;
};

struct InstanceState {
  InstanceId id = 0;
  std::string application;
  double arrival_time = 0.0;
  // The RSL text this instance registered with (or a bundle_to_script
  // reconstruction for typed-API registrations). The durability layer
  // journals and snapshots it so recovery can re-parse the exact spec.
  std::string script;
  std::vector<BundleState> bundles;

  BundleState* find_bundle(const std::string& name);
  const BundleState* find_bundle(const std::string& name) const;
  // Namespace root for this instance, e.g. "DBclient.66".
  std::string path() const;
};

// The world the optimizer reasons about. Topology is fixed for the run;
// the pool and instances evolve.
//
// Topology ownership: a standalone controller builds and owns its
// topology (mutable until the cluster is finalized). A domain
// controller instead *adopts* a finalized topology shared by every
// domain of a DomainRouter — immutable by contract — and allocates its
// pool and version arrays only over the node scope it owns, so domain
// create/merge/split never does O(cluster) work.
struct SystemState {
  SystemState()
      : owned_topology_(std::make_shared<cluster::Topology>()),
        topology_(owned_topology_) {}

  const cluster::Topology& topology() const { return *topology_; }
  // Build-phase mutation (add_node / add_link). Asserts on adopted
  // (shared, immutable) topologies.
  cluster::Topology& mutable_topology();
  std::shared_ptr<const cluster::Topology> shared_topology() const {
    return topology_;
  }
  bool owns_topology() const { return owned_topology_ != nullptr; }
  // Replace the build-phase topology with a shared, already-finalized
  // one. Must precede init_pool(); the previous owned topology (which
  // must still be empty) is dropped.
  void adopt_topology(std::shared_ptr<const cluster::Topology> topology);

  std::unique_ptr<cluster::ResourcePool> pool;
  std::vector<InstanceState> instances;

  // --- dirty-set tracking -------------------------------------------------
  // Bumped on every committed mutation of live state (allocation
  // commit/release, external load report, node online flip).
  uint64_t version = 1;
  // Per-node version of the last *structural* change (allocation
  // commit/release, online flip), indexed by pool slot (== NodeId for
  // a full-cluster pool); sized by init_pool().
  std::vector<uint64_t> node_version;
  // Per-node version of the last external-load report. Load moves no
  // allocations — it only shifts contention-dependent predictions — so
  // it is tracked separately and consulted only for bundles whose
  // performance models actually read per-node load (see
  // Optimizer::can_skip and core::model_reads).
  std::vector<uint64_t> node_load_version;

  // Full-cluster pool when `scope` is empty; otherwise dense state only
  // for the scoped nodes (a domain footprint).
  void init_pool(std::vector<cluster::NodeId> scope = {});
  // Grow a scoped pool (and the version arrays beside it) to cover
  // `nodes`, preserving per-node state and version stamps. No-op on a
  // full-cluster pool.
  void extend_scope(const std::vector<cluster::NodeId>& nodes);

  InstanceState* find_instance(InstanceId id);
  const InstanceState* find_instance(InstanceId id) const;

  // Marks a node (or every node of an allocation / the whole cluster)
  // as structurally changed at a fresh version.
  void touch_node(cluster::NodeId node);
  void touch_allocation(const cluster::Allocation& allocation);
  void touch_all();
  // Marks a node's external load as changed at a fresh version.
  void touch_node_load(cluster::NodeId node);
  // Highest node version across a node set (0 for an empty set).
  uint64_t max_node_version(const std::vector<cluster::NodeId>& nodes) const;
  uint64_t max_node_load_version(
      const std::vector<cluster::NodeId>& nodes) const;

  // Planned tasks per node, derived from every configured allocation.
  // Diagnostics / console / offline probes only: the decision path
  // reads contention straight off the pool through LoadView instead of
  // materializing this map.
  std::map<cluster::NodeId, int> node_load() const;

 private:
  std::shared_ptr<cluster::Topology> owned_topology_;  // null once adopted
  std::shared_ptr<const cluster::Topology> topology_;  // always set
};

// Speculative view for candidate evaluation: a PoolOverlay over the
// live pool with the bundle-under-optimization's current allocation
// released. Candidates are matched and predicted against this view;
// live SystemState is untouched until the optimizer commits the winner
// (or never, when the plan is discarded).
//
// Contention reads go straight through the overlay: once a candidate
// is installed on it (between mark() and rewind()), effective_load at
// each allocated node equals what SystemState::node_load() would
// report with the candidate committed — so prediction wraps the
// overlay in a LoadView and never materializes a load map.
class PlanOverlay {
 public:
  // `bundle` may be null (plan over the full system, releasing nothing).
  PlanOverlay(const SystemState& state, const BundleState* bundle);

  cluster::PoolOverlay& pool() { return overlay_; }
  const cluster::PoolOverlay& pool() const { return overlay_; }

 private:
  cluster::PoolOverlay overlay_;
};

}  // namespace harmony::core
