// Journal record framing, CRC32C, torn-write repair and reset.
#include "persist/journal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "persist/crc32c.h"

namespace harmony::persist {
namespace {

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "journal_test_" +
            std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> replay_all(bool repair = false,
                                      bool* truncated = nullptr) {
    std::vector<std::string> payloads;
    auto stats = Journal::replay(
        path_,
        [&](const std::string& payload) {
          payloads.push_back(payload);
          return Status::Ok();
        },
        repair);
    EXPECT_TRUE(stats.ok()) << stats.error().to_string();
    if (truncated != nullptr) *truncated = stats->truncated;
    return payloads;
  }

  long file_size() {
    std::ifstream in(path_, std::ios::binary | std::ios::ate);
    return in.good() ? static_cast<long>(in.tellg()) : -1;
  }

  void append_raw(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
};

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC32C check value.
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c(""), 0u);
  EXPECT_NE(crc32c("a"), crc32c("b"));
}

TEST_F(JournalTest, MissingFileReplaysEmpty) {
  bool truncated = true;
  auto payloads = replay_all(/*repair=*/false, &truncated);
  EXPECT_TRUE(payloads.empty());
  EXPECT_FALSE(truncated);
}

TEST_F(JournalTest, AppendCommitReplayRoundTrip) {
  auto journal = Journal::open(path_);
  ASSERT_TRUE(journal.ok());
  journal->append("one");
  journal->append("");
  journal->append(std::string("bin\0ary{}\n", 10));
  EXPECT_EQ(journal->appended_records(), 3u);
  ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  EXPECT_EQ(journal->pending_bytes(), 0u);

  auto payloads = replay_all();
  ASSERT_EQ(payloads.size(), 3u);
  EXPECT_EQ(payloads[0], "one");
  EXPECT_EQ(payloads[1], "");
  EXPECT_EQ(payloads[2], std::string("bin\0ary{}\n", 10));
}

TEST_F(JournalTest, NothingOnDiskUntilCommit) {
  auto journal = Journal::open(path_);
  ASSERT_TRUE(journal.ok());
  journal->append("buffered");
  EXPECT_EQ(file_size(), 0);
  ASSERT_TRUE(journal->commit(/*sync=*/false).ok());
  EXPECT_GT(file_size(), 0);
}

TEST_F(JournalTest, TornTailIsTruncatedAtLastValidRecord) {
  {
    auto journal = Journal::open(path_);
    ASSERT_TRUE(journal.ok());
    journal->append("alpha");
    journal->append("beta");
    ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  }
  const long intact = file_size();
  // A crash mid-write leaves half a record: full header, partial body.
  std::string torn = encode_record("gamma-never-finished");
  append_raw(torn.substr(0, torn.size() - 7));

  bool truncated = false;
  auto payloads = replay_all(/*repair=*/true, &truncated);
  EXPECT_TRUE(truncated);
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[1], "beta");
  // Repair removed the torn bytes; the next replay is clean.
  EXPECT_EQ(file_size(), intact);
  truncated = true;
  payloads = replay_all(/*repair=*/false, &truncated);
  EXPECT_EQ(payloads.size(), 2u);
  EXPECT_FALSE(truncated);
}

TEST_F(JournalTest, CorruptCrcStopsReplayWithoutAbort) {
  {
    auto journal = Journal::open(path_);
    ASSERT_TRUE(journal.ok());
    journal->append("first");
    journal->append("second");
    ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  }
  // Flip one payload byte of the second record.
  std::fstream file(path_, std::ios::binary | std::ios::in | std::ios::out);
  const long second_payload = 8 + 5 + 8;  // header+{first} then header
  file.seekp(second_payload);
  file.put('X');
  file.close();

  bool truncated = false;
  auto payloads = replay_all(/*repair=*/true, &truncated);
  EXPECT_TRUE(truncated);
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "first");
  EXPECT_EQ(file_size(), 8 + 5);
}

TEST_F(JournalTest, AbsurdLengthPrefixTreatedAsCorruption) {
  {
    auto journal = Journal::open(path_);
    ASSERT_TRUE(journal.ok());
    journal->append("good");
    ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  }
  append_raw(std::string("\xFF\xFF\xFF\xFF\x00\x00\x00\x00", 8));
  bool truncated = false;
  auto payloads = replay_all(/*repair=*/false, &truncated);
  EXPECT_TRUE(truncated);
  ASSERT_EQ(payloads.size(), 1u);
}

TEST_F(JournalTest, ResetEmptiesTheFile) {
  auto journal = Journal::open(path_);
  ASSERT_TRUE(journal.ok());
  journal->append("soon gone");
  ASSERT_TRUE(journal->commit(/*sync=*/false).ok());
  journal->append("pending is dropped too");
  ASSERT_TRUE(journal->reset().ok());
  EXPECT_EQ(file_size(), 0);
  EXPECT_EQ(journal->pending_bytes(), 0u);
  // Appends after a reset land at the start of the file.
  journal->append("fresh");
  ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  auto payloads = replay_all();
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "fresh");
}

TEST_F(JournalTest, HandlerErrorAbortsReplay) {
  {
    auto journal = Journal::open(path_);
    ASSERT_TRUE(journal.ok());
    journal->append("one");
    journal->append("two");
    ASSERT_TRUE(journal->commit(/*sync=*/true).ok());
  }
  int seen = 0;
  auto stats = Journal::replay(
      path_,
      [&](const std::string&) {
        ++seen;
        return Status(ErrorCode::kCorruption, "stop");
      },
      /*repair=*/false);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, ErrorCode::kCorruption);
  EXPECT_EQ(seen, 1);
}

}  // namespace
}  // namespace harmony::persist
