// End-to-end coverage for the {METRICS} wire verb and the telemetry it
// exposes: scrapes must succeed mid-swarm with counters that are
// consistent with the traffic, and — because shards answer the verb
// themselves — must keep working even when the controller thread never
// drains a single mailbox event.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "metric/telemetry.h"
#include "rsl/value.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/tcp.h"
#include "net/tcp_transport.h"

namespace harmony::net {
namespace {

constexpr int kGroupNodes = 8;

std::string swarm_cluster_script() {
  std::string script;
  for (int i = 0; i < kGroupNodes; ++i) {
    script += str_format(
        "harmonyNode grp-%02d {speed 1.0} {memory 256} {os linux}\n", i);
  }
  return script;
}

std::string swarm_bundle(int i) {
  return str_format(
      "harmonyBundle Swarm:%d place {\n"
      "  {fast {node work {hostname grp-%02d} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {1.0}}}\n"
      "  {slow {node work {hostname grp-%02d} {seconds 0.5} {memory 4}}\n"
      "        {performance expr {2.0}}}\n"
      "}\n",
      i, i % kGroupNodes, i % kGroupNodes);
}

// Minimal blocking protocol client for raw verbs.
struct RawClient {
  Fd fd;
  FrameBuffer inbound;

  Status connect(uint16_t port) {
    auto connected = connect_to("localhost", port);
    if (!connected.ok()) {
      return Status(connected.error().code, connected.error().message);
    }
    fd = std::move(connected).value();
    return Status::Ok();
  }

  Result<Message> call(const Message& request) {
    auto sent = write_all(fd, encode_frame(request.encode()));
    if (!sent.ok()) return Err<Message>(sent.error().code, sent.error().message);
    while (true) {
      auto frame = inbound.next_frame();
      if (!frame.ok()) {
        return Err<Message>(frame.error().code, frame.error().message);
      }
      if (frame.value().has_value()) {
        auto message = Message::decode(*frame.value());
        if (!message.ok()) return message;
        if (message.value().verb == "UPDATE") continue;
        return message;
      }
      char buffer[4096];
      auto n = read_some(fd, buffer, sizeof(buffer));
      if (!n.ok()) return Err<Message>(n.error().code, n.error().message);
      if (n.value() == 0) continue;
      inbound.feed(std::string_view(buffer, n.value()));
    }
  }
};

class MetricsTest : public ::testing::Test {
 protected:
  void start_server(ServerConfig config, bool run_controller) {
    core::ControllerConfig controller_config;
    controller_config.optimizer.initial_policy =
        core::OptimizerConfig::InitialPolicy::kFirstFeasible;
    controller_config.optimizer.reevaluate_on_arrival = false;
    controller_config.record_objective_metric = false;
    controller_ = std::make_unique<core::Controller>(controller_config);
    ASSERT_TRUE(controller_->add_nodes_script(swarm_cluster_script()).ok());
    ASSERT_TRUE(controller_->finalize_cluster().ok());
    server_ = std::make_unique<HarmonyTcpServer>(controller_.get(),
                                                 /*port=*/0, config);
    auto bound = server_->start();
    ASSERT_TRUE(bound.ok()) << bound.error().to_string();
    port_ = bound.value();
    if (run_controller) {
      server_thread_ = std::thread([this] { server_->run(); });
    }
  }

  // Same shape, but the decision core is a partitioned DomainRouter:
  // every pinned swarm bundle lands in its own optimization domain.
  void start_router_server(ServerConfig config) {
    core::DomainRouterConfig router_config;
    router_config.workers = 2;
    router_config.controller.optimizer.initial_policy =
        core::OptimizerConfig::InitialPolicy::kFirstFeasible;
    router_config.controller.optimizer.reevaluate_on_arrival = false;
    router_config.controller.record_objective_metric = false;
    router_ = std::make_unique<core::DomainRouter>(router_config);
    ASSERT_TRUE(router_->add_nodes_script(swarm_cluster_script()).ok());
    ASSERT_TRUE(router_->finalize_cluster().ok());
    server_ = std::make_unique<HarmonyTcpServer>(router_.get(),
                                                 /*port=*/0, config);
    auto bound = server_->start();
    ASSERT_TRUE(bound.ok()) << bound.error().to_string();
    port_ = bound.value();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_thread_.joinable()) {
      server_->stop();
      server_thread_.join();
    }
    server_.reset();  // joins shards even when run() was never called
  }

  template <typename Predicate>
  bool wait_for(Predicate predicate, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
  }

  std::unique_ptr<core::Controller> controller_;
  std::unique_ptr<core::DomainRouter> router_;
  std::unique_ptr<HarmonyTcpServer> server_;
  std::thread server_thread_;
  uint16_t port_ = 0;
};

TEST_F(MetricsTest, ScrapeMidSwarmIsConsistentWithTraffic) {
  // Instruments are process-global; deltas against these baselines keep
  // the test independent of suite order.
  const uint64_t accepts0 =
      metric::telemetry_counter("net.accepts_total").value();
  const uint64_t frames_in0 =
      metric::telemetry_counter("net.frames_in_total").value();
  const uint64_t frames_out0 =
      metric::telemetry_counter("net.frames_out_total").value();
  const uint64_t epochs0 =
      metric::telemetry_counter("controller.epochs_total").value();
  const uint64_t parks0 =
      metric::telemetry_counter("net.session_parks_total").value();

  ServerConfig config;
  config.io_shards = 2;
  start_server(config, /*run_controller=*/true);

  constexpr int kClients = 16;
  constexpr int kRounds = 4;
  std::vector<std::unique_ptr<TcpTransport>> swarm;
  std::vector<core::InstanceId> ids;
  uint64_t requests_sent = 0;
  for (int i = 0; i < kClients; ++i) {
    auto transport = std::make_unique<TcpTransport>();
    ASSERT_TRUE(transport->connect("localhost", port_).ok());
    auto id = transport->register_app(swarm_bundle(i));
    ASSERT_TRUE(id.ok()) << id.error().to_string();
    ++requests_sent;
    ids.push_back(id.value());
    swarm.push_back(std::move(transport));
  }

  TcpTransport driver;
  ASSERT_TRUE(driver.connect("localhost", port_).ok());
  for (int round = 0; round < kRounds; ++round) {
    for (core::InstanceId id : ids) {
      ASSERT_TRUE(driver
                      .set_option(id, "place",
                                  (round % 2 == 0) ? "slow" : "fast")
                      .ok());
      ++requests_sent;
    }
  }

  // Scrape over the wire while the swarm is connected and configured.
  RawClient scraper;
  ASSERT_TRUE(scraper.connect(port_).ok());
  auto reply = scraper.call(Message{"METRICS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  ASSERT_EQ(reply.value().args.size(), 1u);
  const std::string& prom = reply.value().args[0];
  EXPECT_NE(prom.find("harmony_net_accepts_total"), std::string::npos);
  EXPECT_NE(prom.find("harmony_net_frames_in_total"), std::string::npos);
  EXPECT_NE(prom.find("harmony_controller_epochs_total"), std::string::npos);
  EXPECT_NE(prom.find("harmony_controller_epoch_us_count"), std::string::npos);

  // Counter consistency with what this test actually did.
  const uint64_t accepts =
      metric::telemetry_counter("net.accepts_total").value() - accepts0;
  EXPECT_GE(accepts, uint64_t{kClients} + 2);  // swarm + driver + scraper
  const uint64_t frames_in =
      metric::telemetry_counter("net.frames_in_total").value() - frames_in0;
  EXPECT_GE(frames_in, requests_sent + 1);  // + the METRICS scrape itself
  const uint64_t frames_out =
      metric::telemetry_counter("net.frames_out_total").value() - frames_out0;
  // Every request got a reply, every steering round pushed an UPDATE.
  EXPECT_GE(frames_out, requests_sent + uint64_t{kClients} * kRounds);
  const uint64_t epochs =
      metric::telemetry_counter("controller.epochs_total").value() - epochs0;
  EXPECT_GE(epochs, uint64_t{kClients});  // each REGISTER commits an epoch
  // Nothing parked here: the park counter and the parked gauge agree
  // with the server's own view.
  EXPECT_EQ(metric::telemetry_counter("net.session_parks_total").value(),
            parks0);
  EXPECT_EQ(server_->parked_session_count(), 0u);
  // The connections gauge is refreshed by the controller tick.
  EXPECT_TRUE(wait_for([this] {
    return metric::telemetry_gauge("net.connections").value() ==
           static_cast<int64_t>(server_->connection_count());
  }));

  // A second scrape sees monotonically advancing counters.
  auto reply2 = scraper.call(Message{"METRICS", {"prom"}});
  ASSERT_TRUE(reply2.ok());
  ASSERT_EQ(reply2.value().verb, "OK");
  EXPECT_GE(metric::telemetry_counter("net.frames_in_total").value(),
            frames_in0 + frames_in + 1);
}

TEST_F(MetricsTest, ScrapeNeverBlocksOnController) {
  // The controller thread never runs: no mailbox drain, no epochs. The
  // shards answer METRICS on their own, so a scrape must still succeed
  // even while decoded messages sit in the mailbox forever.
  ServerConfig config;
  config.io_shards = 2;
  start_server(config, /*run_controller=*/false);

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());
  auto reply = client.call(Message{"METRICS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().verb, "OK");

  // Queue a REGISTER the controller will never see, then scrape again:
  // the reply proves the scrape path is independent of the mailbox.
  auto sent = write_all(
      client.fd,
      encode_frame(Message{"REGISTER", {swarm_bundle(0), "2"}}.encode()));
  ASSERT_TRUE(sent.ok());
  auto reply2 = client.call(Message{"METRICS", {"json"}});
  ASSERT_TRUE(reply2.ok()) << reply2.error().to_string();
  ASSERT_EQ(reply2.value().verb, "OK");
  EXPECT_NE(reply2.value().args[0].find("\"counters\""), std::string::npos);
  EXPECT_EQ(controller_->live_instances(), 0u);  // REGISTER never dispatched
}

TEST_F(MetricsTest, FormatsAndErrors) {
  ServerConfig config;
  config.io_shards = 2;
  start_server(config, /*run_controller=*/true);

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());

  auto json = client.call(Message{"METRICS", {"json"}});
  ASSERT_TRUE(json.ok());
  ASSERT_EQ(json.value().verb, "OK");
  EXPECT_NE(json.value().args[0].find("\"histograms\""), std::string::npos);

  auto trace = client.call(Message{"METRICS", {"trace"}});
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace.value().verb, "OK");
  EXPECT_NE(trace.value().args[0].find("\"traceEvents\""), std::string::npos);

  auto bad = client.call(Message{"METRICS", {"xml"}});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().verb, "ERR");

  auto extra = client.call(Message{"METRICS", {"prom", "extra"}});
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(extra.value().verb, "ERR");
}

TEST_F(MetricsTest, DomainsVerbExposesPartitionedCore) {
  ServerConfig config;
  config.io_shards = 2;
  start_router_server(config);

  // Three apps pinned to three different hosts: three independent
  // optimization domains behind one server.
  std::vector<std::unique_ptr<TcpTransport>> swarm;
  for (int i = 0; i < 3; ++i) {
    auto transport = std::make_unique<TcpTransport>();
    ASSERT_TRUE(transport->connect("localhost", port_).ok());
    auto id = transport->register_app(swarm_bundle(i));
    ASSERT_TRUE(id.ok()) << id.error().to_string();
    swarm.push_back(std::move(transport));
  }

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());
  auto reply = client.call(Message{"DOMAINS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  ASSERT_EQ(reply.value().args.size(), 1u);
  auto rows = rsl::list_parse(reply.value().args[0]);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  for (const std::string& row : rows.value()) {
    auto fields = rsl::list_parse(row);
    ASSERT_TRUE(fields.ok());
    // {id worker {members} epochs last_ms {passes moves improvement}}
    ASSERT_EQ(fields.value().size(), 6u);
    EXPECT_NE(fields.value()[2].find("Swarm."), std::string::npos);
    long long epochs = 0;
    ASSERT_TRUE(parse_int64(fields.value()[3], &epochs));
    EXPECT_GE(epochs, 1);  // at least the registration decision
    auto solver = rsl::list_parse(fields.value()[5]);
    ASSERT_TRUE(solver.ok());
    ASSERT_EQ(solver.value().size(), 3u);
    long long passes = -1;
    ASSERT_TRUE(parse_int64(solver.value()[0], &passes));
    EXPECT_EQ(passes, 0);  // solver disabled by default
  }

  // Steering still works through the routed dispatch path, and the
  // DOMAINS snapshot keeps pace (epoch counters advance).
  TcpTransport driver;
  ASSERT_TRUE(driver.connect("localhost", port_).ok());
  ASSERT_TRUE(driver.set_option(1, "place", "slow").ok());
  auto after = client.call(Message{"DOMAINS", {}});
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().verb, "OK");

  auto extra = client.call(Message{"DOMAINS", {"verbose"}});
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(extra.value().verb, "ERR");
}

TEST_F(MetricsTest, DomainsVerbWithoutRouterIsNotFound) {
  ServerConfig config;
  config.io_shards = 2;
  start_server(config, /*run_controller=*/true);

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());
  auto reply = client.call(Message{"DOMAINS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  EXPECT_EQ(reply.value().verb, "ERR");
  ASSERT_EQ(reply.value().args.size(), 2u);
  EXPECT_EQ(reply.value().args[0], error_code_name(ErrorCode::kNotFound));
}

TEST_F(MetricsTest, RoutedSingleThreadModeServesProtocol) {
  // The legacy poll loop with a partitioned core behind it: dispatch,
  // variable updates (pumped from worker threads) and the DOMAINS
  // fallback in handle_message all work without shards.
  ServerConfig config;
  config.io_shards = 0;
  start_router_server(config);

  TcpTransport app;
  ASSERT_TRUE(app.connect("localhost", port_).ok());
  auto id = app.register_app(swarm_bundle(0));
  ASSERT_TRUE(id.ok()) << id.error().to_string();

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());
  auto reply = client.call(Message{"DOMAINS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  auto rows = rsl::list_parse(reply.value().args[0]);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value().size(), 1u);
}

TEST_F(MetricsTest, SingleThreadModeAnswersMetrics) {
  ServerConfig config;
  config.io_shards = 0;  // legacy poll(2) loop: handle_message path
  start_server(config, /*run_controller=*/true);

  TcpTransport app;
  ASSERT_TRUE(app.connect("localhost", port_).ok());
  ASSERT_TRUE(app.register_app(swarm_bundle(0)).ok());

  RawClient client;
  ASSERT_TRUE(client.connect(port_).ok());
  auto reply = client.call(Message{"METRICS", {}});
  ASSERT_TRUE(reply.ok()) << reply.error().to_string();
  ASSERT_EQ(reply.value().verb, "OK");
  EXPECT_NE(reply.value().args[0].find("harmony_controller_epochs_total"),
            std::string::npos);
}

}  // namespace
}  // namespace harmony::net
