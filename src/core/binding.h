// Instantiates an option spec under a concrete choice: evaluates
// replicate counts and memory minimums into matcher requirements and
// maps link endpoints to requirement indices. Resource *amounts*
// (seconds, megabytes) are not evaluated here — they may depend on the
// resulting allocation (e.g. client.memory) and are computed by the
// predictor afterwards.
#pragma once

#include <vector>

#include "cluster/matcher.h"
#include "core/state.h"
#include "rsl/expr.h"
#include "rsl/spec.h"

namespace harmony::core {

struct BoundOption {
  std::vector<cluster::NodeRequirement> node_requirements;
  std::vector<cluster::LinkRequirement> link_requirements;
  // Parallel to link_requirements: the spec link it came from.
  std::vector<const rsl::LinkReq*> link_specs;
};

// `names` resolves expression identifiers that are not choice variables
// (typically a Namespace-backed context). Choice variables take
// precedence and are available both bare and as $vars.
Result<BoundOption> bind_option(const rsl::OptionSpec& option,
                                const OptionChoice& choice,
                                const rsl::ExprContext& names);

// Expression context layering choice variables over `names`; also used
// by the predictor when evaluating seconds / megabytes expressions.
rsl::ExprContext choice_context(const OptionChoice& choice,
                                const rsl::ExprContext& names);

}  // namespace harmony::core
