# Empty dependencies file for abl_optimizer.
# This may be replaced when dependencies are built.
