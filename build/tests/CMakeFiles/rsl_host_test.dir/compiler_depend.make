# Empty compiler generated dependencies file for rsl_host_test.
# This may be replaced when dependencies are built.
