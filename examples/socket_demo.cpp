// Multi-process Harmony, as in the paper's prototype (Figure 6): "a
// Harmony process [that] is a server listening on a well-known port"
// and application processes that connect over TCP, export bundles, and
// poll their Harmony variables.
//
// Run with no arguments and it orchestrates everything itself: forks a
// server process, then three database-client processes that join one
// after another; the third arrival flips everyone from query shipping
// to data shipping.
//
// The server journals its state (registrations, decisions, client
// sessions) to a write-ahead log by default, so restarting it recovers
// every running application and lets clients RESUME their sessions;
// pass --no-persist to run purely in memory.
//
//   ./build/examples/socket_demo                         # orchestrated demo
//   ./build/examples/socket_demo server P [--no-persist] # server on port P
//   ./build/examples/socket_demo client P N              # one client process
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "client/client.h"
#include "common/strings.h"
#include "core/controller.h"
#include "net/server.h"
#include "net/tcp_transport.h"
#include "persist/persistence.h"

using namespace harmony;

namespace {

constexpr uint16_t kDefaultPort = 18223;

std::string client_bundle(int instance) {
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS {node server {hostname server} {seconds 18} {memory 20}}\n"
      "      {node client {hostname ws%d} {seconds 0.1} {memory 2}}\n"
      "      {link client server 0.05}}\n"
      "  {DS {node server {hostname server} {seconds 2} {memory 20}}\n"
      "      {node client {hostname ws%d} {memory >=17} {seconds 16.2}}\n"
      "      {link client server 2.5}}\n"
      "}\n",
      instance, instance, instance);
}

std::string persist_dir(uint16_t port) {
  return str_format("/tmp/harmony_socket_demo_%u", port);
}

void clean_persist_dir(uint16_t port) {
  const std::string dir = persist_dir(port);
  std::remove((dir + "/journal.wal").c_str());
  std::remove((dir + "/snapshot.hsn").c_str());
  std::remove((dir + "/snapshot.tmp").c_str());
  ::rmdir(dir.c_str());
}

int run_server(uint16_t port, bool persist) {
  core::Controller controller;
  std::unique_ptr<persist::Persistence> persistence;
  if (persist) {
    persist::PersistConfig config;
    config.dir = persist_dir(port);
    auto opened = persist::Persistence::open(config, controller);
    if (!opened.ok()) {
      std::fprintf(stderr, "[server] persistence: %s\n",
                   opened.error().to_string().c_str());
      return 1;
    }
    persistence = std::move(opened).value();
    if (persistence->recovery().recovered) {
      std::printf("[server] recovered %zu application(s) from %s\n",
                  controller.live_instances(), config.dir.c_str());
    }
  }
  if (!controller.cluster_finalized()) {
    std::string cluster;
    for (int i = 1; i <= 3; ++i) {
      cluster += str_format(
          "harmonyNode ws%d {speed 1.0} {memory 64} {link server 320 0.05}\n",
          i);
    }
    cluster += "harmonyNode server {speed 2.25} {memory 512}\n";
    if (!controller.add_nodes_script(cluster).ok() ||
        !controller.finalize_cluster().ok()) {
      std::fprintf(stderr, "[server] cluster setup failed\n");
      return 1;
    }
  }
  net::HarmonyTcpServer server(&controller, port);
  if (persistence) server.set_persistence(persistence.get());
  auto bound = server.start();
  if (!bound.ok()) {
    std::fprintf(stderr, "[server] %s\n", bound.error().to_string().c_str());
    return 1;
  }
  std::printf("[server] harmony listening on port %u%s\n", bound.value(),
              persistence ? " (durable)" : "");
  std::fflush(stdout);
  // Serve until clients have come and gone (idle exit keeps the demo
  // self-terminating).
  server.run(/*until_idle_ms=*/4000);
  if (persistence) (void)persistence->flush();
  std::printf("[server] idle, shutting down; %llu reconfigurations total\n",
              static_cast<unsigned long long>(controller.reconfigurations()));
  return 0;
}

int run_client(uint16_t port, int instance) {
  net::TcpTransport transport;
  // The server may still be starting; retry briefly.
  Status connected(ErrorCode::kTransport, "never tried");
  for (int attempt = 0; attempt < 50; ++attempt) {
    connected = transport.connect("localhost", port);
    if (connected.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (!connected.ok()) {
    std::fprintf(stderr, "[client %d] cannot reach harmony: %s\n", instance,
                 connected.to_string().c_str());
    return 1;
  }
  client::HarmonyClient client(&transport);
  (void)client.startup(str_format("DBclient-%d", instance));
  (void)client.bundle_setup(client_bundle(instance));
  const std::string* placement = client.add_variable("where", "QS");
  if (!client.wait_for_update().ok()) {
    std::fprintf(stderr, "[client %d] registration failed\n", instance);
    return 1;
  }
  (void)transport.pump();
  client.poll_updates();
  std::printf("[client %d] joined; harmony says: run %s\n", instance,
              placement->c_str());
  std::fflush(stdout);

  // Simulated query loop: between "queries" the client polls its
  // variables, the natural reconfiguration point.
  std::string last = *placement;
  for (int query = 0; query < 30; ++query) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    (void)transport.pump();
    client.poll_updates();
    if (*placement != last) {
      std::printf("[client %d] reconfigured: %s -> %s\n", instance,
                  last.c_str(), placement->c_str());
      std::fflush(stdout);
      last = *placement;
    }
  }
  std::printf("[client %d] done (final placement %s)\n", instance,
              placement->c_str());
  (void)client.end();
  return 0;
}

int orchestrate(const char* self) {
  uint16_t port = kDefaultPort;
  // Each orchestrated run is a fresh world; a journal left by an
  // earlier run would be recovered instead.
  clean_persist_dir(port);
  std::printf("forking 1 harmony server + 3 client processes...\n\n");
  std::fflush(stdout);
  std::vector<pid_t> children;
  pid_t server = fork();
  if (server == 0) {
    execl(self, self, "server", std::to_string(port).c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  children.push_back(server);
  for (int i = 1; i <= 3; ++i) {
    // Staggered arrivals; the third one triggers the switch.
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    pid_t child = fork();
    if (child == 0) {
      execl(self, self, "client", std::to_string(port).c_str(),
            std::to_string(i).c_str(), static_cast<char*>(nullptr));
      _exit(127);
    }
    children.push_back(child);
  }
  int failures = 0;
  for (pid_t child : children) {
    int status = 0;
    waitpid(child, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) ++failures;
  }
  std::printf("\ndemo complete (%d process failures)\n", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "server") {
    bool persist = true;
    for (int i = 3; i < argc; ++i) {
      if (std::string(argv[i]) == "--no-persist") persist = false;
    }
    return run_server(static_cast<uint16_t>(std::atoi(argv[2])), persist);
  }
  if (argc >= 4 && std::string(argv[1]) == "client") {
    return run_client(static_cast<uint16_t>(std::atoi(argv[2])),
                      std::atoi(argv[3]));
  }
  return orchestrate(argv[0]);
}
