// One I/O shard of the sharded network front end: an edge-triggered
// epoll loop on its own thread, owning a slice of the accepted
// connections. The shard does everything that does not touch controller
// state — accept, framing, parse, partial writes, slow-consumer
// cutoff — and forwards decoded messages to the controller thread
// through the bounded mailbox. The controller answers by posting
// ready-to-send bytes to the shard's command queue (one batch per
// connection per drain cycle, flushed with one writev).
//
// Shard 0 owns the listening socket and deals accepted connections
// round-robin across all shards; a socket destined for a sibling is
// handed over through that shard's command queue, so each fd is only
// ever touched by the one thread that owns it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "metric/telemetry.h"
#include "net/framing.h"
#include "net/mailbox.h"
#include "net/tcp.h"

namespace harmony::net {

// Outbound bytes a connection still owes the wire, kept as the chunks
// the controller shipped (one chunk = one coalesced epoch of frames)
// and flushed with scatter-gather writev — no copy into a flat buffer,
// no per-frame write(2).
class OutboundRing {
 public:
  void append(std::string chunk);
  bool empty() const { return chunks_.empty(); }
  size_t bytes() const { return bytes_; }
  // Writes as much as the socket accepts. Returns true when fully
  // drained, false when the socket would block; transport errors
  // propagate.
  Result<bool> flush(const Fd& fd);

 private:
  std::deque<std::string> chunks_;
  size_t head_ = 0;  // consumed prefix of chunks_.front()
  size_t bytes_ = 0;
};

class IoShard;

struct ShardOptions {
  int index = 0;
  size_t high_water_bytes = 8u << 20;
  int sndbuf_bytes = 0;  // 0 = kernel default
  Mailbox* mailbox = nullptr;
  // Shared across shards: live-connection gauge, connection id
  // generator, round-robin accept cursor, and the shard roster for
  // accept handoff. The roster must be fully populated before any
  // shard thread starts.
  std::atomic<size_t>* connection_count = nullptr;
  std::atomic<uint64_t>* next_conn_id = nullptr;
  std::atomic<uint64_t>* accept_cursor = nullptr;
  const std::vector<std::unique_ptr<IoShard>>* peers = nullptr;
};

class IoShard {
 public:
  explicit IoShard(const ShardOptions& options);
  ~IoShard();
  IoShard(const IoShard&) = delete;
  IoShard& operator=(const IoShard&) = delete;

  // Spawns the shard thread. `listener` may be invalid (only shard 0
  // accepts).
  Status start(Fd listener);
  void request_stop();
  void join();
  void wake();

  // Called from the controller thread: queue one coalesced batch of
  // frames for `conn`. Takes effect at the next wake().
  void post_send(uint64_t conn, std::string data);

  // Called from the accepting shard's thread: hand over an accepted
  // socket (ownership of `raw_fd` transfers).
  void post_adopt(uint64_t conn, int raw_fd);

 private:
  struct Conn {
    Fd fd;
    FrameBuffer inbound;
    OutboundRing outbound;
    bool want_write = false;
  };
  struct Command {
    enum class Kind { kSend, kAdopt };
    Kind kind = Kind::kSend;
    uint64_t conn = 0;
    std::string data;  // kSend
    int fd = -1;       // kAdopt (owned until drained)
  };

  void loop();
  void drain_commands();
  void drain_wakeups();
  void accept_pending();
  void adopt(uint64_t id, Fd fd);
  // Returns false when the connection was closed.
  bool read_conn(uint64_t id, Conn& conn);
  bool flush_conn(uint64_t id, Conn& conn);
  bool enqueue_output(uint64_t id, Conn& conn, std::string data);
  void set_write_interest(uint64_t id, Conn& conn, bool want);
  void close_conn(uint64_t id, bool overflow);
  void shed_pending_connection();
  void pause_listener();
  void resume_listener_if_paused();

  ShardOptions options_;
  // Shared process-global instruments, resolved once; recording from
  // the shard thread is one relaxed add into a per-thread padded cell.
  metric::Counter* accepts_total_;
  metric::Counter* frames_in_total_;
  metric::Counter* frames_out_total_;
  Fd epoll_;
  Fd wakeup_;  // eventfd: command queue / stop notifications
  Fd listener_;
  // EMFILE headroom: closing this reserve fd frees one slot so a
  // pending connection can be accepted and shed instead of rotting in
  // the backlog.
  Fd reserve_;
  bool listener_paused_ = false;
  std::map<uint64_t, Conn> conns_;
  std::thread thread_;
  std::atomic<bool> stop_ = false;

  std::mutex command_mutex_;
  std::vector<Command> commands_;  // guarded by command_mutex_
};

}  // namespace harmony::net
