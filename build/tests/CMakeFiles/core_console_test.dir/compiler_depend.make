# Empty compiler generated dependencies file for core_console_test.
# This may be replaced when dependencies are built.
