#include "core/perf_model.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

rsl::BundleSpec parse(const std::string& options) {
  auto r = rsl::parse_bundle("App", "b", options);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().message);
  return r.value();
}

struct Fixture {
  cluster::Topology topo;
  std::map<cluster::NodeId, int> load;
  rsl::BundleSpec bundle;
  OptionChoice choice;
  cluster::Allocation allocation;

  Fixture() {
    // server (speed 2), client0/client1 (speed 1); 100 Mbps links.
    EXPECT_TRUE(topo.add_node("server", 2.0, 512).ok());
    EXPECT_TRUE(topo.add_node("client0", 1.0, 64).ok());
    EXPECT_TRUE(topo.add_node("client1", 1.0, 64).ok());
    EXPECT_TRUE(topo.add_link(0, 1, 100).ok());
    EXPECT_TRUE(topo.add_link(0, 2, 100).ok());
  }

  PredictionInput input() const {
    PredictionInput in;
    in.option = &bundle.options[0];
    in.choice = &choice;
    in.allocation = &allocation;
    in.topology = &topo;
    in.node_load = &load;
    return in;
  }
};

TEST(PredictorModelSelection, Precedence) {
  auto def = parse("{o {node n {seconds 1}}}");
  EXPECT_EQ(Predictor::model_for(def.options[0]), Predictor::Model::kDefault);
  auto pts = parse("{o {node n {seconds 1}} {performance {{1 10} {2 5}}}}");
  EXPECT_EQ(Predictor::model_for(pts.options[0]), Predictor::Model::kPoints);
  auto script = parse("{o {node n {seconds 1}} {performance script {return 5}} "
                      "{performance {{1 10} {2 5}}}}");
  EXPECT_EQ(Predictor::model_for(script.options[0]), Predictor::Model::kScript);
}

TEST(DefaultModel, CpuOnlySingleNode) {
  Fixture f;
  f.bundle = parse("{QS {node server {hostname server} {seconds 9} {memory 20}}}");
  f.choice = {"QS", {}};
  f.allocation.entries.push_back({{"server", 0, "server", "", 20}, 0});
  f.load[0] = 1;
  Predictor predictor;
  auto t = predictor.predict(f.input());
  ASSERT_TRUE(t.ok()) << (t.ok() ? "" : t.error().message);
  EXPECT_DOUBLE_EQ(t.value(), 4.5) << "9 ref-seconds on a speed-2 node";
}

TEST(DefaultModel, ContentionScalesCpu) {
  Fixture f;
  f.bundle = parse("{QS {node server {hostname server} {seconds 9} {memory 20}}}");
  f.choice = {"QS", {}};
  f.allocation.entries.push_back({{"server", 0, "server", "", 20}, 0});
  f.load[0] = 3;  // three co-located jobs
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 13.5);
}

TEST(DefaultModel, CpuIsMaxAcrossRolesPlusLinkTime) {
  Fixture f;
  f.bundle = parse(
      "{QS {node server {hostname server} {seconds 9} {memory 20}}"
      " {node client {seconds 1} {memory 2}}"
      " {link client server 10}}");
  f.choice = {"QS", {}};
  f.allocation.entries.push_back({{"server", 0, "server", "", 20}, 0});
  f.allocation.entries.push_back({{"client", 0, "*", "", 2}, 1});
  f.load[0] = 1;
  f.load[1] = 1;
  Predictor predictor;
  // cpu = max(9/2, 1/1) = 4.5; link = 10 MB * 8 / 100 Mbps = 0.8 s.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 5.3);
}

TEST(DefaultModel, SameNodeLinkUsesLocalRate) {
  Fixture f;
  f.bundle = parse(
      "{o {node a {seconds 1} {memory 1}} {node b {seconds 1} {memory 1}}"
      " {link a b 100}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"a", 0, "*", "", 1}, 1});
  f.allocation.entries.push_back({{"b", 0, "*", "", 1}, 1});
  f.load[1] = 2;
  Predictor predictor(8000.0);
  // cpu = 1 * 2 (load 2) = 2; link local: 100 MB * 8 / 8000 = 0.1 s.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 2.1);
}

TEST(DefaultModel, CommunicationUsesWeakestPair) {
  Fixture f;
  f.bundle = parse(
      "{o {node w {seconds 4} {memory 1} {replicate 2}} {communication 50}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"w", 0, "*", "", 1}, 1});
  f.allocation.entries.push_back({{"w", 1, "*", "", 1}, 2});
  f.load[1] = f.load[2] = 1;
  Predictor predictor;
  // client0-client1 widest path via server: bottleneck 100 Mbps.
  // cpu = 4; comm = 50 * 8 / 100 = 4.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 8.0);
}

TEST(DefaultModel, ExpressionSecondsUseChoiceVariables) {
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {2}} "
      "{node worker {seconds {1200.0 / workerNodes}} {memory 16} "
      "{replicate {workerNodes}}}}");
  f.choice = {"var", {{"workerNodes", 2}}};
  f.allocation.entries.push_back({{"worker", 0, "*", "", 16}, 1});
  f.allocation.entries.push_back({{"worker", 1, "*", "", 16}, 2});
  f.load[1] = f.load[2] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict_default(f.input()).value(), 600.0);
}

TEST(DefaultModel, RoleMemoryResolvesFromAllocation) {
  // The paper's memory-parameterized DS bandwidth: more client memory,
  // less data shipped.
  Fixture f;
  f.bundle = parse(
      "{DS {node server {hostname server} {seconds 1} {memory 20}}"
      " {node client {memory >=17} {seconds 9}}"
      " {link client server {61 - (client.memory > 24 ? 24 : client.memory)}}}");
  f.choice = {"DS", {}};
  Predictor predictor;

  f.allocation.entries.push_back({{"server", 0, "server", "", 20}, 0});
  f.allocation.entries.push_back({{"client", 0, "*", "", 17}, 1});
  f.load[0] = f.load[1] = 1;
  // cpu = max(1/2, 9) = 9; link = (61-17)*8/100 = 3.52.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 12.52);

  f.allocation.entries[1].requirement.memory_mb = 32;  // generous grant
  // link = (61-24)*8/100 = 2.96.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 11.96);
}

TEST(PointsModel, InterpolatesAtVariableValue) {
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {4}} {node w {seconds 1} {replicate "
      "{workerNodes}}} {performance {{1 1250} {2 640} {4 340} {8 255}}}}");
  f.choice = {"var", {{"workerNodes", 4}}};
  for (int i = 0; i < 4; ++i) {
    f.allocation.entries.push_back({{"w", i, "*", "", 0}, 0});
  }
  // Dedicated nodes.
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 340.0);
}

TEST(PointsModel, ContentionReducesEffectiveNodes) {
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {8}} {node w {seconds 1} {replicate "
      "{workerNodes}}} {performance {{1 1250} {2 640} {4 340} {8 255}}}}");
  f.choice = {"var", {{"workerNodes", 8}}};
  for (int i = 0; i < 8; ++i) {
    cluster::NodeId node = i % 3;
    f.allocation.entries.push_back({{"w", i, "*", "", 0}, node});
    f.load[node] = 2;  // every hosting node shared with another job
  }
  Predictor predictor;
  // effective = 8 * (1/2) = 4 -> interpolate at workerNodes * 0.5 = 4.
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 340.0);
}

TEST(DefaultModel, LogPOccupancyChargesEndpointCpus) {
  // §3.4's refinement: protocol processing consumes endpoint cycles.
  Fixture f;
  f.bundle = parse(
      "{o {node a {hostname client0} {seconds 1} {memory 1}}"
      " {node b {hostname client1} {seconds 1} {memory 1}}"
      " {link a b 100}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"a", 0, "client0", "", 1}, 1});
  f.allocation.entries.push_back({{"b", 0, "client1", "", 1}, 2});
  f.load[1] = f.load[2] = 1;
  Predictor plain;
  // cpu = 1; wire = 100 MB * 8 / 100 Mbps = 8 s.
  EXPECT_DOUBLE_EQ(plain.predict(f.input()).value(), 9.0);
  Predictor logp;
  logp.set_comm_occupancy(0.05);  // 50 ms of CPU per MB at each end
  // each endpoint gains 100 * 0.05 = 5 s of CPU: cpu = 6, total 14.
  EXPECT_DOUBLE_EQ(logp.predict(f.input()).value(), 14.0);
}

TEST(DefaultModel, LogPOccupancySpreadsAllPairsTraffic) {
  Fixture f;
  f.bundle = parse(
      "{o {node w {seconds 4} {memory 1} {replicate 2}} {communication 50}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"w", 0, "*", "", 1}, 1});
  f.allocation.entries.push_back({{"w", 1, "*", "", 1}, 2});
  f.load[1] = f.load[2] = 1;
  Predictor logp;
  logp.set_comm_occupancy(0.02);
  // wire: 50*8/100 = 4; occupancy per worker: 2*50*0.02/2 = 1 -> cpu 5.
  EXPECT_DOUBLE_EQ(logp.predict(f.input()).value(), 9.0);
}

// --- critical-path model (§4.2's inter-process dependency citation) ----------

TEST(DagModel, DiamondCriticalPath) {
  Fixture f;
  // setup -> {left 10s, right 4s} -> merge 2s: critical path 1+10+2 = 13.
  f.bundle = parse(
      "{o {node n {hostname client0} {seconds 1}} {performance dag {"
      "{setup 1} "
      "{left 10 {setup}} "
      "{right 4 {setup}} "
      "{merge 2 {left right}}}}}");
  EXPECT_EQ(Predictor::model_for(f.bundle.options[0]), Predictor::Model::kDag);
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "client0", "", 0}, 1});
  f.load[1] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 13.0);
}

TEST(DagModel, IndependentRootsTakeTheLongest) {
  Fixture f;
  f.bundle = parse(
      "{o {node n {hostname client0} {seconds 1}} {performance dag {"
      "{a 5} {b 9} {c 3}}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "client0", "", 0}, 1});
  f.load[1] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 9.0);
}

TEST(DagModel, DurationsMayBeExpressions) {
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {4}} {node w {seconds 1} {replicate "
      "{workerNodes}}} {performance dag {"
      "{scatter 10} "
      "{compute {1200.0 / workerNodes} {scatter}} "
      "{gather 10 {compute}}}}}");
  f.choice = {"var", {{"workerNodes", 4}}};
  for (int i = 0; i < 4; ++i) {
    f.allocation.entries.push_back({{"w", i, "*", "", 0}, 1});
  }
  f.load[1] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 320.0);
}

TEST(DagModel, ContentionAndSpeedScaleThePath) {
  Fixture f;
  f.bundle = parse(
      "{o {node n {hostname server} {seconds 1}} "
      "{performance dag {{work 10}}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "server", "", 0}, 0});
  Predictor predictor;
  f.load[0] = 1;  // dedicated speed-2 server: twice as fast
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 5.0);
  f.load[0] = 4;  // four co-located tasks
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 20.0);
}

TEST(DagModel, CycleIsAnError) {
  Fixture f;
  f.bundle = parse(
      "{o {node n {seconds 1}} {performance dag {"
      "{a 1 {b}} {b 1 {a}}}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  auto r = predictor.predict(f.input());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cycle"), std::string::npos);
}

TEST(DagModel, UnknownDependencyIsAnError) {
  Fixture f;
  f.bundle = parse(
      "{o {node n {seconds 1}} {performance dag {{a 1 {ghost}}}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  auto r = predictor.predict(f.input());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("ghost"), std::string::npos);
}

TEST(DagModel, ParseRejections) {
  EXPECT_FALSE(rsl::parse_bundle("A", "b",
                                 "{o {performance dag {}}}").ok());
  EXPECT_FALSE(rsl::parse_bundle("A", "b",
                                 "{o {performance dag {{a}}}}").ok());
  EXPECT_FALSE(rsl::parse_bundle(
                   "A", "b", "{o {performance dag {{a 1} {a 2}}}}").ok())
      << "duplicate task names";
}

TEST(ScriptModel, EvaluatesWithVariables) {
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {4}} {node w {seconds 1} {replicate "
      "{workerNodes}}} {performance script {expr {1200.0 / $workerNodes + "
      "0.5 * $workerNodes * $workerNodes}}}}");
  f.choice = {"var", {{"workerNodes", 4}}};
  for (int i = 0; i < 4; ++i) {
    f.allocation.entries.push_back({{"w", i, "*", "", 0}, 0});
  }
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 308.0);
}

TEST(ExprModel, EvaluatesWithVariablesAndAllocation) {
  // The §3 "explicit expression" form of the performance tag.
  Fixture f;
  f.bundle = parse(
      "{var {variable workerNodes {4}} {node w {seconds 1} {replicate "
      "{workerNodes}}} {performance expr {1200.0 / workerNodes + "
      "0.5 * workerNodes * workerNodes}}}");
  EXPECT_EQ(Predictor::model_for(f.bundle.options[0]),
            Predictor::Model::kExpr);
  f.choice = {"var", {{"workerNodes", 4}}};
  for (int i = 0; i < 4; ++i) {
    f.allocation.entries.push_back({{"w", i, "*", "", 0}, 0});
  }
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 308.0);
}

TEST(ExprModel, CanReferenceAllocationDerivedNames) {
  Fixture f;
  f.bundle = parse(
      "{o {node client {memory 32} {seconds 1}} "
      "{performance expr {100 - client.memory}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"client", 0, "*", "", 32}, 1});
  f.load[1] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 68.0);
}

TEST(ExprModel, ScriptTakesPrecedenceOverExpr) {
  Fixture f;
  f.bundle = parse(
      "{o {node n {seconds 1}} {performance expr {111}} "
      "{performance script {return 222}}}");
  EXPECT_EQ(Predictor::model_for(f.bundle.options[0]),
            Predictor::Model::kScript);
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_DOUBLE_EQ(predictor.predict(f.input()).value(), 222.0);
}

TEST(ExprModel, BadExpressionIsError) {
  Fixture f;
  f.bundle = parse("{o {node n {seconds 1}} {performance expr {1 +}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_FALSE(predictor.predict(f.input()).ok());
}

TEST(ScriptModel, NonNumericResultIsError) {
  Fixture f;
  f.bundle = parse("{o {node n {seconds 1}} {performance script {return abc}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  EXPECT_FALSE(predictor.predict(f.input()).ok());
}

TEST(DefaultModel, BadExpressionSurfacesError) {
  Fixture f;
  f.bundle = parse("{o {node n {seconds {undefined.name + 1}}}}");
  f.choice = {"o", {}};
  f.allocation.entries.push_back({{"n", 0, "*", "", 0}, 0});
  f.load[0] = 1;
  Predictor predictor;
  auto r = predictor.predict(f.input());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("undefined.name"), std::string::npos);
}

}  // namespace
}  // namespace harmony::core
