#include "cluster/matcher.h"

#include <algorithm>

#include "common/strings.h"

namespace harmony::cluster {

const char* match_policy_name(MatchPolicy policy) {
  switch (policy) {
    case MatchPolicy::kFirstFit: return "first-fit";
    case MatchPolicy::kBestFit: return "best-fit";
    case MatchPolicy::kWorstFit: return "worst-fit";
    case MatchPolicy::kVectorBestFit: return "vector-best-fit";
    case MatchPolicy::kVectorWorstFit: return "vector-worst-fit";
  }
  return "unknown";
}

NodeId Allocation::find(const std::string& role, int index) const {
  for (const auto& entry : entries) {
    if (entry.requirement.role == role && entry.requirement.index == index) {
      return entry.node;
    }
  }
  return kInvalidNode;
}

std::vector<NodeId> Allocation::nodes_for(const std::string& role) const {
  std::vector<std::pair<int, NodeId>> hits;
  for (const auto& entry : entries) {
    if (entry.requirement.role == role) {
      hits.emplace_back(entry.requirement.index, entry.node);
    }
  }
  std::sort(hits.begin(), hits.end());
  std::vector<NodeId> nodes;
  nodes.reserve(hits.size());
  for (const auto& [index, node] : hits) nodes.push_back(node);
  return nodes;
}

bool Allocation::same_placement(const Allocation& other) const {
  if (entries.size() != other.entries.size()) return false;
  for (const auto& entry : entries) {
    if (other.find(entry.requirement.role, entry.requirement.index) !=
        entry.node) {
      return false;
    }
  }
  return true;
}

namespace {

// Backtracking placement. Clusters are small (the paper's testbed was an
// SP-2 partition), so exhaustive backtracking with policy-ordered
// candidates is affordable and strictly more capable than pure greedy:
// it still *prefers* the policy's choice but can recover from dead ends.
class Search {
 public:
  Search(const std::vector<NodeRequirement>& requirements,
         const std::vector<LinkRequirement>& links, ResourceView& pool,
         MatchPolicy policy, const DimensionNorm& norm)
      : requirements_(requirements),
        links_(links),
        pool_(pool),
        policy_(policy),
        norm_(norm),
        placed_(requirements.size(), kInvalidNode),
        order_(requirements.size()) {
    for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
    if (policy_ == MatchPolicy::kVectorBestFit ||
        policy_ == MatchPolicy::kVectorWorstFit) {
      // Best-fit *decreasing*: place the largest demands first so small
      // ones fill the remaining gaps. Stable on ties to stay
      // deterministic.
      std::stable_sort(order_.begin(), order_.end(), [&](size_t a, size_t b) {
        return requirements_[a].memory_mb > requirements_[b].memory_mb;
      });
    }
  }

  bool run() { return place(0); }

  Allocation take_allocation() {
    Allocation allocation;
    for (size_t i = 0; i < requirements_.size(); ++i) {
      allocation.entries.push_back({requirements_[i], placed_[i]});
    }
    return allocation;
  }

 private:
  bool node_admissible(const NodeRequirement& req, const NodeInfo& node) const {
    if (!glob_match(req.hostname_glob, node.hostname)) return false;
    if (!req.os.empty() && node.os != req.os) return false;
    return true;
  }

  bool links_satisfied(size_t placed_index) const {
    const Topology& topo = pool_.topology();
    for (const auto& link : links_) {
      if (link.from >= placed_.size() || link.to >= placed_.size()) continue;
      NodeId a = placed_[link.from];
      NodeId b = placed_[link.to];
      if (a == kInvalidNode || b == kInvalidNode) continue;
      // Only re-check constraints involving the node just placed.
      if (link.from != placed_index && link.to != placed_index) continue;
      if (!topo.connected(a, b)) return false;
      if (link.min_bandwidth_mbps > 0 &&
          topo.path_bandwidth(a, b) < link.min_bandwidth_mbps) {
        return false;
      }
    }
    return true;
  }

  bool role_conflict(size_t req_index, NodeId candidate) const {
    const auto& req = requirements_[req_index];
    // Placement order may be a permutation of requirement order, so any
    // already-placed replica of the role conflicts, not just earlier
    // indices.
    for (size_t i = 0; i < requirements_.size(); ++i) {
      if (i == req_index) continue;
      if (requirements_[i].role == req.role && placed_[i] == candidate) {
        return true;  // replicas of a role need distinct nodes
      }
    }
    return false;
  }

  // Weighted utilization of `node` after hosting `req`: the vector
  // bin-packing score. Memory is a hard capacity; load is time-shared,
  // normalized by speed * reference_load.
  double vector_score(const NodeRequirement& req, const NodeInfo& node) const {
    double total = pool_.total_memory(node.id);
    double used = total - pool_.available_memory(node.id) + req.memory_mb;
    double memory_term = total > 0 ? used / total : 0.0;
    double speed = node.speed > 0 ? node.speed : 1.0;
    double reference = norm_.reference_load > 0 ? norm_.reference_load : 1.0;
    double load_term = (pool_.effective_load(node.id) + 1.0) /
                       (speed * reference);
    return norm_.memory_weight * memory_term + norm_.load_weight * load_term;
  }

  std::vector<NodeId> candidates(const NodeRequirement& req) const {
    std::vector<NodeId> out;
    std::vector<std::pair<double, NodeId>> scored;
    // A scoped pool (domain controller) covers a superset of every
    // member bundle's admissible nodes, and scope order is topology
    // order — so iterating the scope filters to the same candidate
    // list, in the same order, as a full-cluster scan.
    const Topology& topo = pool_.topology();
    const NodeScope* scope = pool_.scope();
    const size_t limit = scope ? scope->size() : topo.node_count();
    for (size_t i = 0; i < limit; ++i) {
      const NodeInfo& node =
          topo.node(scope ? scope->node_at(i) : static_cast<NodeId>(i));
      if (!pool_.is_online(node.id)) continue;
      if (!node_admissible(req, node)) continue;
      if (pool_.available_memory(node.id) + 1e-9 < req.memory_mb) continue;
      out.push_back(node.id);
      if (policy_ == MatchPolicy::kVectorBestFit ||
          policy_ == MatchPolicy::kVectorWorstFit) {
        scored.emplace_back(vector_score(req, node), node.id);
      }
    }
    // Vector policies order by post-placement utilization norm; classic
    // policies go least-loaded first with the policy breaking ties.
    switch (policy_) {
      case MatchPolicy::kVectorBestFit:
        // Tightest pack first; ties stay in topology order.
        std::stable_sort(scored.begin(), scored.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });
        break;
      case MatchPolicy::kVectorWorstFit:
        std::stable_sort(scored.begin(), scored.end(),
                         [](const auto& a, const auto& b) {
                           return a.first < b.first;
                         });
        break;
      default:
        break;
    }
    if (!scored.empty()) {
      out.clear();
      for (const auto& [score, id] : scored) out.push_back(id);
      return out;
    }
    switch (policy_) {
      case MatchPolicy::kFirstFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          return pool_.effective_load(a) < pool_.effective_load(b);
        });
        break;  // ties stay in topology order
      case MatchPolicy::kBestFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          if (pool_.effective_load(a) != pool_.effective_load(b)) {
            return pool_.effective_load(a) < pool_.effective_load(b);
          }
          return pool_.available_memory(a) < pool_.available_memory(b);
        });
        break;
      case MatchPolicy::kWorstFit:
        std::stable_sort(out.begin(), out.end(), [&](NodeId a, NodeId b) {
          if (pool_.effective_load(a) != pool_.effective_load(b)) {
            return pool_.effective_load(a) < pool_.effective_load(b);
          }
          return pool_.available_memory(a) > pool_.available_memory(b);
        });
        break;
      default:
        break;  // vector policies handled above
    }
    return out;
  }

  bool place(size_t pos) {
    if (pos == requirements_.size()) return true;
    size_t index = order_[pos];
    const auto& req = requirements_[index];
    for (NodeId candidate : candidates(req)) {
      if (role_conflict(index, candidate)) continue;
      if (!pool_.reserve_memory(candidate, req.memory_mb).ok()) continue;
      pool_.add_process(candidate);
      placed_[index] = candidate;
      if (links_satisfied(index) && place(pos + 1)) return true;
      placed_[index] = kInvalidNode;
      auto removed = pool_.remove_process(candidate);
      HARMONY_ASSERT(removed.ok());
      auto status = pool_.release_memory(candidate, req.memory_mb);
      HARMONY_ASSERT(status.ok());
    }
    return false;
  }

  const std::vector<NodeRequirement>& requirements_;
  const std::vector<LinkRequirement>& links_;
  ResourceView& pool_;
  MatchPolicy policy_;
  DimensionNorm norm_;
  std::vector<NodeId> placed_;
  std::vector<size_t> order_;
};

}  // namespace

Result<Allocation> Matcher::match(
    const std::vector<NodeRequirement>& requirements,
    const std::vector<LinkRequirement>& links, ResourceView& pool) const {
  for (const auto& link : links) {
    if (link.from >= requirements.size() || link.to >= requirements.size()) {
      return Err<Allocation>(ErrorCode::kInvalidArgument,
                             "link requirement references missing node");
    }
  }
  for (const auto& req : requirements) {
    if (req.memory_mb < 0) {
      return Err<Allocation>(ErrorCode::kInvalidArgument,
                             "negative memory requirement for role " + req.role);
    }
  }
  Search search(requirements, links, pool, policy_, norm_);
  if (!search.run()) {
    return Err<Allocation>(
        ErrorCode::kNoMatch,
        str_format("no placement for %zu requirements under %s",
                   requirements.size(), match_policy_name(policy_)));
  }
  return search.take_allocation();
}

Status Matcher::release(const Allocation& allocation, ResourceView& pool) {
  for (const auto& entry : allocation.entries) {
    auto status = pool.release_memory(entry.node, entry.requirement.memory_mb);
    if (!status.ok()) return status;
    status = pool.remove_process(entry.node);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace harmony::cluster
