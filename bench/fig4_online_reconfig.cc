// Figure 4 reproduction — "Online reconfiguration: (a) performance of a
// parallel application and (b) the eight-processor configurations
// chosen by Harmony as new jobs arrive. Note the configuration of five
// nodes (rather than six) in the first time frame, and the subsequent
// configurations that optimize for average efficiency by choosing equal
// partitions for multiple instances of the parallel application."
//
// Timeline on an 8-node partition:
//   t=0     Bag #1 arrives               -> 8 workers
//   t=400   rigid 3-node job arrives     -> Bag #1 reconfigures to 5
//   ~t=1000 rigid job finishes           -> Bag #1 expands back to 8
//   t=1400  Bag #2 arrives               -> equal effective shares (4+4)
#include <cstdio>
#include <memory>

#include "apps/bag_app.h"
#include "apps/scenarios.h"
#include "apps/simple_app.h"
#include "common/strings.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

constexpr double kEnd = 2800.0;

// Allocated workers and the processor-sharing-effective share of a bag
// instance under the current controller state.
double effective_share(const core::Controller& controller,
                       core::InstanceId id) {
  const auto* bundle = controller.bundle_state(id, "parallelism");
  if (bundle == nullptr || !bundle->configured) return 0;
  auto load = controller.state().node_load();
  double effective = 0;
  for (const auto& entry : bundle->allocation.entries) {
    int l = load.count(entry.node) ? load.at(entry.node) : 1;
    effective += 1.0 / std::max(1, l);
  }
  return effective;
}

int run() {
  std::printf("=== Figure 4: online reconfiguration of a variable-parallelism "
              "application ===\n");
  std::printf("cluster: 8 worker nodes, 320 Mbps switch\n\n");

  SimHarness harness;
  if (!harness.controller().add_nodes_script(worker_cluster_script(8)).ok() ||
      !harness.finalize().ok()) {
    std::fprintf(stderr, "cluster setup failed\n");
    return 1;
  }
  auto& sim = harness.engine();

  BagConfig bag1_config;
  bag1_config.instance = 1;
  bag1_config.seed = 11;
  BagApp bag1(harness.context(), bag1_config);

  SimpleConfig rigid_config;
  rigid_config.workers = 3;
  rigid_config.max_iterations = 2;  // occupies its nodes for ~600 s
  SimpleApp rigid(harness.context(), rigid_config);

  BagConfig bag2_config;
  bag2_config.instance = 2;
  bag2_config.seed = 22;
  BagApp bag2(harness.context(), bag2_config);

  if (!bag1.start().ok()) return 1;
  sim.schedule(400, [&] {
    if (!rigid.start().ok()) std::fprintf(stderr, "rigid job failed\n");
  });
  sim.schedule(1400, [&] {
    if (!bag2.start().ok()) std::fprintf(stderr, "bag2 failed\n");
  });

  // Sample configurations every 50 s for panel (b).
  std::printf("--- (b) configurations chosen by Harmony ---\n");
  std::printf("time_s  bag1_workers  bag1_effective  rigid  bag2_workers  "
              "bag2_effective\n");
  std::function<void()> sample = [&] {
    double b1 = 0, b2 = 0;
    int w1 = 0, w2 = 0, r = 0;
    if (!bag1.finished() && bag1.instance_id() != 0) {
      w1 = bag1.current_workers();
      b1 = effective_share(harness.controller(), bag1.instance_id());
    }
    if (!bag2.finished() && bag2.instance_id() != 0) {
      w2 = bag2.current_workers();
      b2 = effective_share(harness.controller(), bag2.instance_id());
    }
    if (!rigid.finished() && rigid.instance_id() != 0) {
      r = static_cast<int>(rigid.nodes().size());
    }
    std::printf("%6.0f  %12d  %14.1f  %5d  %12d  %14.1f\n", sim.now(), w1, b1,
                r, w2, b2);
    if (sim.now() + 50 <= kEnd) sim.schedule(50, sample);
  };
  sample();
  sim.run_until(kEnd);
  bag1.stop();
  bag2.stop();
  sim.run_until(kEnd + 800);

  // --- panel (a): bag iteration times over time ---
  std::printf("\n--- (a) bag #1 iteration completion times ---\n");
  std::printf("end_time_s  iteration_time_s\n");
  const auto* iterations = harness.metrics().find("bag.1.iteration_time");
  if (iterations == nullptr) return 1;
  for (const auto& sample_point : iterations->samples()) {
    std::printf("%10.1f  %16.1f\n", sample_point.time, sample_point.value);
  }

  // --- shape summary vs the paper ---
  const auto* workers = harness.metrics().find("bag.1.workers");
  bool saw8 = false, saw5 = false, back_to_8 = false, equal_share = false;
  double first = workers->samples().front().value;
  for (size_t i = 0; i < workers->samples().size(); ++i) {
    double w = workers->samples()[i].value;
    if (w == 8 && !saw5) saw8 = true;
    if (w == 5) saw5 = true;
    if (saw5 && w == 8) back_to_8 = true;
  }
  // Equal shares while both bags run: compare mean iteration times in
  // the overlap window.
  const auto* iter2 = harness.metrics().find("bag.2.iteration_time");
  if (iter2 != nullptr && !iter2->empty()) {
    auto s1 = iterations->stats_between(1700, kEnd);
    auto s2 = iter2->stats_between(1700, kEnd);
    if (s1.count() > 0 && s2.count() > 0) {
      equal_share = std::abs(s1.mean() - s2.mean()) < 0.2 * s1.mean();
      std::printf("\nco-resident bag iteration times: bag1=%.0f s, bag2=%.0f s "
                  "(equal shares: %s)\n",
                  s1.mean(), s2.mean(), equal_share ? "yes" : "no");
    }
  }
  std::printf("\nshape summary:\n");
  std::printf("  alone -> 8 workers:              %s  (first=%g)\n",
              first == 8 ? "YES" : "NO", first);
  std::printf("  rigid job -> 5 workers (not 6):  %s   [paper: five rather "
              "than six]\n", saw5 ? "YES" : "NO");
  std::printf("  rigid gone -> back to 8:         %s\n",
              back_to_8 ? "YES" : "NO");
  std::printf("  two instances -> equal shares:   %s   [paper: equal "
              "partitions, not large+small]\n",
              equal_share ? "YES" : "NO");
  bool shape_holds = saw8 && saw5 && back_to_8 && equal_share && first == 8;
  std::printf("  shape holds: %s\n", shape_holds ? "YES" : "NO");
  return shape_holds ? 0 : 1;
}

}  // namespace

int main() { return run(); }
