
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/framing.cc" "src/net/CMakeFiles/harmony_net.dir/framing.cc.o" "gcc" "src/net/CMakeFiles/harmony_net.dir/framing.cc.o.d"
  "/root/repo/src/net/protocol.cc" "src/net/CMakeFiles/harmony_net.dir/protocol.cc.o" "gcc" "src/net/CMakeFiles/harmony_net.dir/protocol.cc.o.d"
  "/root/repo/src/net/server.cc" "src/net/CMakeFiles/harmony_net.dir/server.cc.o" "gcc" "src/net/CMakeFiles/harmony_net.dir/server.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/harmony_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/harmony_net.dir/tcp.cc.o.d"
  "/root/repo/src/net/tcp_transport.cc" "src/net/CMakeFiles/harmony_net.dir/tcp_transport.cc.o" "gcc" "src/net/CMakeFiles/harmony_net.dir/tcp_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rsl/CMakeFiles/harmony_rsl.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/harmony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/harmony_client.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/harmony_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/metric/CMakeFiles/harmony_metric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
