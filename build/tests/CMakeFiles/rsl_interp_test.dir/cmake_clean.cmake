file(REMOVE_RECURSE
  "CMakeFiles/rsl_interp_test.dir/rsl_interp_test.cc.o"
  "CMakeFiles/rsl_interp_test.dir/rsl_interp_test.cc.o.d"
  "rsl_interp_test"
  "rsl_interp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
