#include "core/namespace.h"

#include <gtest/gtest.h>

namespace harmony::core {
namespace {

TEST(Namespace, SetAndGetNumbers) {
  Namespace ns;
  ASSERT_TRUE(ns.set("DBclient.66.where.DS.client.memory", 24).ok());
  auto v = ns.get("DBclient.66.where.DS.client.memory");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v.value(), 24);
  EXPECT_FALSE(ns.get("DBclient.66.where.QS.client.memory").ok());
}

TEST(Namespace, SetAndGetStrings) {
  Namespace ns;
  ASSERT_TRUE(ns.set_string("DBclient.66.where.option", "DS").ok());
  EXPECT_EQ(ns.get_string("DBclient.66.where.option").value(), "DS");
}

TEST(Namespace, NumbersReadableAsStrings) {
  Namespace ns;
  ASSERT_TRUE(ns.set("x.y", 4).ok());
  EXPECT_EQ(ns.get_string("x.y").value(), "4");
}

TEST(Namespace, SetOverwritesAcrossTypes) {
  Namespace ns;
  ASSERT_TRUE(ns.set("k", 1).ok());
  ASSERT_TRUE(ns.set_string("k", "text").ok());
  EXPECT_FALSE(ns.get("k").ok());
  EXPECT_EQ(ns.get_string("k").value(), "text");
  ASSERT_TRUE(ns.set("k", 2).ok());
  EXPECT_DOUBLE_EQ(ns.get("k").value(), 2);
}

TEST(Namespace, MalformedPathsRejected) {
  Namespace ns;
  EXPECT_FALSE(ns.set("", 1).ok());
  EXPECT_FALSE(ns.set(".leading", 1).ok());
  EXPECT_FALSE(ns.set("trailing.", 1).ok());
  EXPECT_FALSE(ns.set("double..dot", 1).ok());
}

TEST(Namespace, EraseSubtree) {
  Namespace ns;
  ASSERT_TRUE(ns.set("app.1.b.x", 1).ok());
  ASSERT_TRUE(ns.set("app.1.b.y", 2).ok());
  ASSERT_TRUE(ns.set_string("app.1.opt", "QS").ok());
  ASSERT_TRUE(ns.set("app.10.b.x", 3).ok());
  ns.erase("app.1");
  EXPECT_FALSE(ns.has("app.1.b.x"));
  EXPECT_FALSE(ns.has("app.1.opt"));
  EXPECT_TRUE(ns.has("app.10.b.x")) << "app.10 is not a child of app.1";
}

TEST(Namespace, EraseExactLeaf) {
  Namespace ns;
  ASSERT_TRUE(ns.set("a.b", 1).ok());
  ASSERT_TRUE(ns.set("a.bc", 2).ok());
  ns.erase("a.b");
  EXPECT_FALSE(ns.has("a.b"));
  EXPECT_TRUE(ns.has("a.bc"));
}

TEST(Namespace, EraseAbsentIsNoop) {
  Namespace ns;
  ns.erase("ghost");
  EXPECT_EQ(ns.size(), 0u);
}

TEST(Namespace, ListChildren) {
  Namespace ns;
  ASSERT_TRUE(ns.set("DBclient.66.where.DS.client.memory", 24).ok());
  ASSERT_TRUE(ns.set("DBclient.66.where.DS.server.memory", 20).ok());
  ASSERT_TRUE(ns.set_string("DBclient.66.where.option", "DS").ok());
  ASSERT_TRUE(ns.set("Bag.2.parallelism.workerNodes", 4).ok());
  EXPECT_EQ(ns.list(""), (std::vector<std::string>{"Bag", "DBclient"}));
  EXPECT_EQ(ns.list("DBclient.66.where.DS"),
            (std::vector<std::string>{"client", "server"}));
  EXPECT_EQ(ns.list("DBclient.66.where"),
            (std::vector<std::string>{"DS", "option"}));
  EXPECT_TRUE(ns.list("nothing.here").empty());
}

TEST(Namespace, Leaves) {
  Namespace ns;
  ASSERT_TRUE(ns.set("a.x", 1).ok());
  ASSERT_TRUE(ns.set("a.y", 2).ok());
  ASSERT_TRUE(ns.set("b", 3).ok());
  EXPECT_EQ(ns.leaves("a"), (std::vector<std::string>{"a.x", "a.y"}));
  EXPECT_EQ(ns.leaves().size(), 3u);
}

TEST(Namespace, ExprContextResolvesAbsolute) {
  Namespace ns;
  ASSERT_TRUE(ns.set("Bag.2.parallelism.workerNodes", 4).ok());
  auto ctx = ns.expr_context();
  double out = 0;
  ASSERT_TRUE(ctx.name_lookup("Bag.2.parallelism.workerNodes", &out));
  EXPECT_DOUBLE_EQ(out, 4);
  EXPECT_FALSE(ctx.name_lookup("missing.name", &out));
}

TEST(Namespace, ExprContextResolvesRelativeToBase) {
  // The paper's example: within option DS of bundle where of
  // DBclient.66, "client.memory" names the allocated client memory.
  Namespace ns;
  ASSERT_TRUE(ns.set("DBclient.66.where.DS.client.memory", 24).ok());
  auto ctx = ns.expr_context("DBclient.66.where.DS");
  double out = 0;
  ASSERT_TRUE(ctx.name_lookup("client.memory", &out));
  EXPECT_DOUBLE_EQ(out, 24);
  // Absolute fallback still works under a base.
  ASSERT_TRUE(ns.set("global.knob", 7).ok());
  ASSERT_TRUE(ctx.name_lookup("global.knob", &out));
  EXPECT_DOUBLE_EQ(out, 7);
}

TEST(Namespace, ExprContextEvaluatesPaperExpression) {
  Namespace ns;
  ASSERT_TRUE(ns.set("DBclient.66.where.DS.client.memory", 32).ok());
  auto ctx = ns.expr_context("DBclient.66.where.DS");
  auto result = rsl::expr_eval_number(
      "61 - (client.memory > 24 ? 24 : client.memory)", ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result.value(), 37.0);
}

}  // namespace
}  // namespace harmony::core
