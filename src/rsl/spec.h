// Typed intermediate representation of RSL specifications. The
// `harmonyBundle` and `harmonyNode` commands parse the paper's list
// syntax into these structures; the adaptation controller consumes them.
//
// Bundle syntax (Figures 2-3 of the paper):
//   harmonyBundle App:inst bundleName {
//     {OPT
//       {node ROLE {hostname PAT} {os OS} {seconds EXPR} {memory CONSTR}
//                  {replicate EXPR}}
//       {link ROLE1 ROLE2 EXPR}
//       {communication EXPR}
//       {variable NAME {v1 v2 ...}}
//       {performance {{x y} ...}}            ;# piecewise-linear points
//       {performance script {BODY}}          ;# or a TCL model script
//       {granularity SECONDS}
//       {friction SECONDS}}
//     ...
//   }
//
// Node advertisement (Table 1's harmonyNode / speed tags):
//   harmonyNode HOST {speed S} {memory MB} {os OS} {link PEER MBPS ?LAT_MS?}
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include <memory>

#include "common/result.h"
#include "rsl/expr.h"
#include "rsl/program.h"

namespace harmony::rsl {

// Numeric constraint: "32" (exact requirement treated as minimum),
// ">=17", "<=8", ">4", "<4", or "*" (any).
struct Constraint {
  enum class Op { kAny, kEq, kGe, kLe, kGt, kLt };
  Op op = Op::kAny;
  double value = 0;

  static Result<Constraint> parse(std::string_view text);
  bool satisfied_by(double x) const;
  // Smallest amount that satisfies the constraint (used for initial
  // allocation before the controller considers giving more).
  double minimum() const;
  std::string to_string() const;
};

// Unevaluated RSL expression; evaluated at decision time against the
// controller's namespace + the option's variables. Constant-ness and
// the literal value are determined once at construction; the first
// non-literal eval() compiles the text to bytecode (rsl::Program) and
// caches it. Expressions the compiler rejects ([script] substitution,
// syntax errors) keep the per-call tree-walk, which reproduces the
// tree-walk's error behavior by construction.
class Expr {
 public:
  Expr() = default;
  // Implicit by design: specs assign parsed text directly.
  Expr(std::string text);         // NOLINT
  Expr(const char* text) : Expr(std::string(text)) {}  // NOLINT

  const std::string& text() const { return text_; }
  bool empty() const { return text_.empty(); }
  // True iff the whole text is a numeric literal ("42", "3.5") — NOT
  // whether it folds to a constant; callers rely on the narrow meaning.
  bool is_constant() const { return literal_; }
  // Evaluates with the given context; literals short-circuit.
  Result<double> eval(const ExprContext& ctx) const;
  // Convenience for expressions that must be constant.
  Result<double> eval_constant() const;

  // Compiled form, or nullptr when the expression is empty or not
  // compilable. Lazily built on first use; copies share the program.
  const Program* program() const;
  // True when the expression's namespace read set is fully known:
  // empty/literal expressions read nothing, compiled programs report
  // names()/vars(). False only for uncompilable expressions, whose
  // reads the planner must treat as "could be anything".
  bool reads_known() const {
    return text_.empty() || literal_ || program() != nullptr;
  }

 private:
  std::string text_;
  bool literal_ = false;
  double literal_value_ = 0;
  // Lazy compile state; mutable because compilation is a pure cache of
  // the immutable text (single-threaded controller).
  mutable std::shared_ptr<const Program> program_;
  mutable bool compile_attempted_ = false;
};

struct NodeReq {
  std::string role;           // name within the option namespace
  std::string hostname = "*"; // glob pattern; "*" = any host
  std::string os;             // empty = any
  Expr seconds;               // total CPU seconds on the reference machine
  Constraint memory;          // MB
  Expr replicate;             // instance count (default 1)
};

struct LinkReq {
  std::string from;
  std::string to;
  Expr megabytes;  // total data transferred over the life of the job
};

struct VariableSpec {
  std::string name;
  std::vector<double> values;  // the mutually exclusive settings
};

struct PerfPoint {
  double x = 0;  // e.g. number of worker nodes
  double y = 0;  // predicted response time (seconds)
};

struct OptionSpec {
  std::string name;
  std::vector<NodeReq> nodes;
  std::vector<LinkReq> links;
  Expr communication;  // total MB, all-pairs; empty when absent
  std::vector<VariableSpec> variables;
  std::vector<PerfPoint> performance_points;
  std::string performance_script;  // TCL body; receives allocation vars
  // §3: "An explicit specification might include either an expression
  // or a function" — the expression form: {performance expr {...}}.
  Expr performance_expr;
  // §4.2: "we might use the critical path notion to take inter-process
  // dependencies into account" — a task DAG whose longest path is the
  // predicted response: {performance dag {{name seconds {deps}} ...}}.
  // Durations may be expressions over the option's variables.
  struct DagTask {
    std::string name;
    Expr seconds;
    std::vector<std::string> deps;
  };
  std::vector<DagTask> performance_dag;
  double granularity_s = 0;  // min seconds between option switches
  double friction_s = 0;     // one-time cost of switching to this option
  // Deadline/period resource model ({deadline S} / {period S} /
  // {tardiness W}): a deadline turns predicted lateness into a
  // tardiness penalty in the objective; a period is the implicit
  // deadline of a periodic (interactive) app when no explicit deadline
  // is given. tardiness_weight scales the penalty into the objective's
  // common currency.
  double deadline_s = 0;
  double period_s = 0;
  double tardiness_weight = 1.0;
  // Effective deadline: explicit deadline wins, else the period; 0
  // means the option carries no deadline at all.
  double effective_deadline_s() const {
    return deadline_s > 0 ? deadline_s : period_s;
  }
};

struct BundleSpec {
  std::string application;  // "DBclient"
  std::string instance;     // application-supplied instance hint ("1")
  std::string bundle;       // "where"
  std::vector<OptionSpec> options;

  const OptionSpec* find_option(std::string_view name) const;
};

struct LinkAd {
  std::string peer;
  double bandwidth_mbps = 0;
  double latency_ms = 0;
};

struct NodeAd {
  std::string name;     // hostname
  double speed = 1.0;   // relative to the 400 MHz Pentium II reference
  double memory_mb = 0;
  std::string os;
  std::vector<LinkAd> links;
};

// Parses "App:inst" into application + instance (instance defaults to "0").
Result<std::pair<std::string, std::string>> parse_app_instance(
    std::string_view text);

// Serializes a BundleSpec back into a single harmonyBundle command that
// parse_bundle() accepts. Round-trip property (exercised by
// rsl_roundtrip_test): parsing the emitted script yields a spec whose
// own serialization is byte-identical. The durability subsystem uses
// this to journal/snapshot applications registered through the typed
// API, where no original script text exists.
std::string bundle_to_script(const BundleSpec& bundle);

// Parses the body of a harmonyBundle command (the options list).
Result<BundleSpec> parse_bundle(std::string_view app_instance,
                                std::string_view bundle_name,
                                std::string_view options_list);

// Parses harmonyNode arguments (name + tag lists).
Result<NodeAd> parse_node_ad(const std::vector<std::string>& argv);

}  // namespace harmony::rsl
