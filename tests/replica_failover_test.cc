// Multi-process failover: two HaNode processes share a lease file, a
// client drives decisions through the pair, and the parent SIGKILLs the
// primary mid-sequence. Asserts the standby promotes within the lease
// window, the client's v2 session RESUMEs transparently (no surfaced
// error, no duplicated REGISTER), no acked registration is lost, and
// the survivor's decision fingerprint is bit-identical to an unkilled
// single-process reference controller driven through the same ops.
//
// Determinism across processes: every controller runs with a constant-0
// time source (the standby replays the primary's event times, which are
// therefore also 0), so decision state depends only on the op sequence.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "metric/telemetry.h"
#include "net/framing.h"
#include "net/protocol.h"
#include "net/tcp.h"
#include "net/tcp_transport.h"
#include "replica/node.h"
#include "test_scenarios.h"

namespace harmony::replica {
namespace {

volatile std::sig_atomic_t g_terminate = 0;
void on_sigterm(int) { g_terminate = 1; }

Status bootstrap_cluster(core::Controller& controller) {
  Status added =
      controller.add_nodes_script(harmony::testing::sp2_cluster_script(4));
  if (!added.ok()) return added;
  return controller.finalize_cluster();
}

// Child process body: run one HA node until SIGTERM, then dump the
// controller fingerprint (if this node ever owned a controller role
// with state) and exit without running gtest/atexit machinery.
[[noreturn]] void run_node(const std::string& base, const std::string& name,
                           uint16_t port, uint16_t peer_port) {
  std::signal(SIGTERM, on_sigterm);
  metric::set_telemetry_enabled(true);
  HaNodeConfig config;
  config.data_dir = base + "/" + name;
  config.lease_path = base + "/lease";
  config.port = port;
  config.peers = {{"127.0.0.1", peer_port}};
  config.node_id = name;
  config.lease_ttl_ms = 1000;
  config.lease_renew_ms = 200;
  config.bootstrap = bootstrap_cluster;
  config.time_source = [] { return 0.0; };
  config.persist.snapshot_every_epochs = 4;
  config.persist.snapshot_min_journal_bytes = 0;
  config.persist.fsync_every_epochs = 2;
  config.standby.ack_interval_ms = 20;
  config.standby.poll_interval_ms = 10;
  config.standby.initial_backoff_ms = 25;
  config.standby.max_backoff_ms = 200;
  HaNode node(config);
  Status started = node.start();
  if (!started.ok()) {
    std::fprintf(stderr, "node %s failed to start: %s\n", name.c_str(),
                 started.to_string().c_str());
    std::_Exit(2);
  }
  while (g_terminate == 0) {
    (void)node.poll(10);
  }
  if (node.controller() != nullptr) {
    std::ofstream out(base + "/" + name + ".fp",
                      std::ios::binary | std::ios::trunc);
    out << harmony::testing::fingerprint(*node.controller());
  }
  std::_Exit(0);
}

// Reaps (SIGKILL + waitpid) a child that an early ASSERT left running.
struct ChildGuard {
  pid_t pid = -1;
  ~ChildGuard() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
  void disarm() { pid = -1; }
};

// One short-lived raw-socket request/response against a node, bypassing
// the client transport (works against standbys, which refuse decision
// verbs but answer STATUS/METRICS).
Result<net::Message> probe(uint16_t port, const net::Message& request) {
  Result<net::Fd> fd = net::connect_to("127.0.0.1", port);
  if (!fd.ok()) return fd.error();
  Status sent = net::write_all(fd.value(), net::encode_frame(request.encode()));
  if (!sent.ok()) return sent.error();
  net::FrameBuffer frames;
  char buffer[16384];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    Result<size_t> n = net::read_some(fd.value(), buffer, sizeof buffer);
    if (!n.ok()) return n.error();
    if (n.value() == 0) {
      return Error{ErrorCode::kClosed, "peer closed during probe"};
    }
    frames.feed(std::string_view(buffer, n.value()));
    Result<std::optional<std::string>> frame = frames.next_frame();
    if (!frame.ok()) return frame.error();
    if (frame.value().has_value()) {
      return net::Message::decode(*frame.value());
    }
  }
  return Error{ErrorCode::kTimeout, "probe timed out"};
}

Result<net::Message> probe_status(uint16_t port) {
  return probe(port, net::Message{"STATUS", {}});
}

// Polls {STATUS} until the node reports `role`; returns the matching
// reply, or the last reply/error seen when the deadline passes.
Result<net::Message> wait_for_role(uint16_t port, const std::string& role,
                                   int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  Result<net::Message> last = Error{ErrorCode::kTimeout, "no probe attempted"};
  while (std::chrono::steady_clock::now() < deadline) {
    last = probe_status(port);
    if (last.ok() && last.value().verb == "OK" && !last.value().args.empty() &&
        last.value().args[0] == role) {
      return last;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return last;
}

// First numeric value following `name` in a metrics dump, or -1.
double metric_value(const std::string& text, const std::string& name) {
  size_t at = text.find(name);
  if (at == std::string::npos) return -1;
  at += name.size();
  while (at < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[at])) == 0 &&
          text[at] != '-' && text[at] != '+')) {
    ++at;
  }
  if (at >= text.size()) return -1;
  return std::strtod(text.c_str() + at, nullptr);
}

// Waits until the primary reports at least one attached replication
// subscriber: from then on every OK the client sees is semi-sync
// covered by the standby's mirror.
bool wait_for_subscriber(uint16_t port, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    Result<net::Message> reply =
        probe(port, net::Message{"METRICS", {"json"}});
    if (reply.ok() && reply.value().verb == "OK" &&
        !reply.value().args.empty() &&
        metric_value(reply.value().args[0], "replica.subscribers") >= 1) {
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

uint64_t parse_term(const net::Message& status) {
  if (status.args.size() < 2) return 0;
  return std::strtoull(status.args[1].c_str(), nullptr, 10);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(ReplicaFailoverTest, KillNinePrimaryPromotesStandbyAndResumesClients) {
  const std::string base =
      ::testing::TempDir() + "failover_" + std::to_string(::getpid());
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);

  // Reserve two distinct ports before either child binds.
  uint16_t port_a = 0;
  uint16_t port_b = 0;
  {
    Result<net::Fd> listener_a = net::listen_on(0);
    Result<net::Fd> listener_b = net::listen_on(0);
    ASSERT_TRUE(listener_a.ok());
    ASSERT_TRUE(listener_b.ok());
    Result<uint16_t> bound_a = net::local_port(listener_a.value());
    Result<uint16_t> bound_b = net::local_port(listener_b.value());
    ASSERT_TRUE(bound_a.ok());
    ASSERT_TRUE(bound_b.ok());
    port_a = bound_a.value();
    port_b = bound_b.value();
  }

  // Fork before creating any transports/threads in the parent.
  std::fflush(nullptr);
  ChildGuard guard_a;
  guard_a.pid = ::fork();
  ASSERT_NE(guard_a.pid, -1);
  if (guard_a.pid == 0) run_node(base, "alpha", port_a, port_b);

  Result<net::Message> status_a = wait_for_role(port_a, "primary", 10000);
  ASSERT_TRUE(status_a.ok()) << status_a.error().to_string();
  ASSERT_EQ(status_a.value().args[0], "primary");

  std::fflush(nullptr);
  ChildGuard guard_b;
  guard_b.pid = ::fork();
  ASSERT_NE(guard_b.pid, -1);
  if (guard_b.pid == 0) run_node(base, "beta", port_b, port_a);

  Result<net::Message> status_b = wait_for_role(port_b, "standby", 10000);
  ASSERT_TRUE(status_b.ok()) << status_b.error().to_string();
  ASSERT_EQ(status_b.value().args[0], "standby");
  // Semi-sync gate: acked decisions are on the standby from here on.
  ASSERT_TRUE(wait_for_subscriber(port_a, 10000));

  net::TcpTransport transport;
  net::ReconnectPolicy policy;
  policy.max_attempts = 60;
  policy.initial_backoff_ms = 25;
  policy.max_backoff_ms = 200;
  policy.jitter_seed = 42;
  transport.set_reconnect_policy(policy);
  ASSERT_TRUE(
      transport.connect({{"127.0.0.1", port_a}, {"127.0.0.1", port_b}}).ok());

  Result<core::InstanceId> id1 =
      transport.register_app(harmony::testing::simple_bundle(2));
  ASSERT_TRUE(id1.ok()) << id1.error().to_string();
  EXPECT_FALSE(transport.session_token().empty());
  Result<core::InstanceId> id2 =
      transport.register_app(harmony::testing::db_client_bundle("sp2-00", 1));
  ASSERT_TRUE(id2.ok()) << id2.error().to_string();
  ASSERT_TRUE(transport.report_load("sp2-01", 3).ok());
  // A malleable app resized in flight: the RSZ event replicates to the
  // standby like any other decision (granularity holds the steered
  // degree through the promotion-time reevaluate), so the resized
  // degree must survive the failover.
  Result<core::InstanceId> bag_id =
      transport.register_app(harmony::testing::bag_bundle("1 2 3 4", 10000));
  ASSERT_TRUE(bag_id.ok()) << bag_id.error().to_string();
  ASSERT_TRUE(transport.resize(bag_id.value(), "parallelism", 2).ok());

  // kill -9 the primary: no goodbye, no journal flush beyond what the
  // standby already acked.
  ASSERT_EQ(::kill(guard_a.pid, SIGKILL), 0);
  int wait_status = 0;
  ASSERT_EQ(::waitpid(guard_a.pid, &wait_status, 0), guard_a.pid);
  guard_a.disarm();
  const auto killed_at = std::chrono::steady_clock::now();

  // The next decision rides through reconnect + RESUME against the
  // standby-turned-primary; its latency is the client-observed outage.
  Result<core::InstanceId> id3 =
      transport.register_app(harmony::testing::db_client_bundle("sp2-01", 2));
  ASSERT_TRUE(id3.ok()) << id3.error().to_string();
  // The resumed session reads the latest degree from the survivor.
  Result<std::string> degree =
      transport.get_variable(bag_id.value(), "parallelism.workerNodes");
  ASSERT_TRUE(degree.ok()) << degree.error().to_string();
  EXPECT_EQ(degree.value(), "2");
  const int64_t outage_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - killed_at)
          .count();
  // Lease TTL (1000ms) + expiry-check cadence + promotion + client
  // backoff, with generous sanitizer headroom.
  EXPECT_LT(outage_ms, 6000) << "failover took " << outage_ms << "ms";
  ::testing::Test::RecordProperty("failover_outage_ms",
                                  std::to_string(outage_ms));

  ASSERT_TRUE(transport.report_load("sp2-01", 0).ok());
  Result<core::InstanceId> id4 =
      transport.register_app(harmony::testing::bag_bundle());
  ASSERT_TRUE(id4.ok()) << id4.error().to_string();
  ASSERT_TRUE(transport.request_reevaluation().ok());

  // Continuous ids across the failover: nothing acked was lost (id3
  // would be lower) and nothing was double-applied by the retry (id3/4
  // would skip).
  EXPECT_EQ(id2.value(), id1.value() + 1);
  EXPECT_EQ(bag_id.value(), id2.value() + 1);
  EXPECT_EQ(id3.value(), bag_id.value() + 1);
  EXPECT_EQ(id4.value(), id3.value() + 1);

  status_b = probe_status(port_b);
  ASSERT_TRUE(status_b.ok()) << status_b.error().to_string();
  EXPECT_EQ(status_b.value().args[0], "primary");
  // Promotion fenced the dead primary's term.
  EXPECT_GE(parse_term(status_b.value()), 2u);

  // Unkilled single-process reference: the same op sequence, with the
  // promotion-time verification reevaluate() mirrored in its place.
  core::Controller reference;
  reference.set_time_source([] { return 0.0; });
  ASSERT_TRUE(bootstrap_cluster(reference).ok());
  Result<core::InstanceId> r1 =
      reference.register_script(harmony::testing::simple_bundle(2));
  ASSERT_TRUE(r1.ok());
  Result<core::InstanceId> r2 =
      reference.register_script(harmony::testing::db_client_bundle("sp2-00", 1));
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(reference.report_external_load("sp2-01", 3).ok());
  Result<core::InstanceId> rbag =
      reference.register_script(harmony::testing::bag_bundle("1 2 3 4", 10000));
  ASSERT_TRUE(rbag.ok());
  ASSERT_TRUE(reference.resize(rbag.value(), "parallelism", 2).ok());
  ASSERT_TRUE(reference.reevaluate().ok());
  Result<core::InstanceId> r3 =
      reference.register_script(harmony::testing::db_client_bundle("sp2-01", 2));
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(reference.report_external_load("sp2-01", 0).ok());
  Result<core::InstanceId> r4 =
      reference.register_script(harmony::testing::bag_bundle());
  ASSERT_TRUE(r4.ok());
  ASSERT_TRUE(reference.reevaluate().ok());
  EXPECT_EQ(r4.value(), id4.value());

  // Graceful stop of the survivor; it dumps its fingerprint on the way
  // out, which must match the reference bit for bit.
  ASSERT_EQ(::kill(guard_b.pid, SIGTERM), 0);
  ASSERT_EQ(::waitpid(guard_b.pid, &wait_status, 0), guard_b.pid);
  guard_b.disarm();
  ASSERT_TRUE(WIFEXITED(wait_status));
  ASSERT_EQ(WEXITSTATUS(wait_status), 0);

  const std::string survivor = read_file(base + "/beta.fp");
  ASSERT_FALSE(survivor.empty());
  EXPECT_EQ(survivor, harmony::testing::fingerprint(reference));

  std::filesystem::remove_all(base);
}

}  // namespace
}  // namespace harmony::replica
