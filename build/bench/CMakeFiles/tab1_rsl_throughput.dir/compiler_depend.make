# Empty compiler generated dependencies file for tab1_rsl_throughput.
# This may be replaced when dependencies are built.
