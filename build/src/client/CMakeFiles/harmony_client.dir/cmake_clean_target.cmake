file(REMOVE_RECURSE
  "libharmony_client.a"
)
