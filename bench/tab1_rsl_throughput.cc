// Table 1 validation + RSL microbenchmarks. Table 1 lists the primary
// RSL tags (harmonyBundle, node, link, communication, performance,
// granularity, variable, harmonyNode, speed); this binary first proves
// each tag parses AND acts semantically, then measures the cost of the
// operations the paper argues are cheap enough ("updates in Harmony are
// on the order of seconds not micro-seconds"): bundle parsing,
// expression evaluation, and interpreter scripts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "rsl/expr.h"
#include "rsl/interp.h"
#include "rsl/rsl.h"
#include "rsl/spec.h"

namespace {

using namespace harmony;
using namespace harmony::rsl;

const char* kFullBundle = R"(harmonyBundle DBclient:1 where {
  {QS
    {node server {hostname harmony.cs.umd.edu} {seconds 42} {memory 20}}
    {node client {hostname *} {os linux} {seconds 1} {memory 2}}
    {link client server 10}}
  {DS
    {node server {hostname harmony.cs.umd.edu} {seconds 1} {memory 20}}
    {node client {hostname *} {os linux} {memory >=17} {seconds 9}}
    {link client server {61 - (client.memory > 24 ? 24 : client.memory)}}
    {communication {0.5 * workerNodes * workerNodes}}
    {variable workerNodes {1 2 4 8}}
    {performance {{1 1250} {2 640} {4 340} {8 255}}}
    {granularity 10}
    {friction 5}}
})";

const char* kNodeAd =
    "harmonyNode sp2-01 {speed 1.25} {memory 256} {os aix} "
    "{link sp2-02 320 0.05}";

// --- Table 1 tag validation (runs once before the benchmarks) ----------

bool validate_table1() {
  bool ok = true;
  auto expect = [&](bool cond, const char* tag) {
    std::printf("  %-14s %s\n", tag, cond ? "OK" : "FAILED");
    ok = ok && cond;
  };

  RslHost host;
  BundleSpec bundle;
  NodeAd node_ad;
  host.on_bundle([&](const BundleSpec& b) {
    bundle = b;
    return Status::Ok();
  });
  host.on_node([&](const NodeAd& n) {
    node_ad = n;
    return Status::Ok();
  });
  Interp interp;
  host.register_with(interp);
  bool parsed = interp.eval(kFullBundle).ok() && interp.eval(kNodeAd).ok();
  std::printf("Table 1 tag validation:\n");
  expect(parsed, "(parse)");
  expect(bundle.application == "DBclient" && bundle.options.size() == 2,
         "harmonyBundle");
  const OptionSpec* ds = bundle.find_option("DS");
  expect(ds != nullptr && ds->nodes.size() == 2 &&
             ds->nodes[1].memory.op == Constraint::Op::kGe,
         "node");
  expect(ds != nullptr && ds->links.size() == 1 &&
             !ds->links[0].megabytes.is_constant(),
         "link");
  expect(ds != nullptr && !ds->communication.empty(), "communication");
  expect(ds != nullptr && ds->performance_points.size() == 4, "performance");
  expect(ds != nullptr && ds->granularity_s == 10, "granularity");
  expect(ds != nullptr && ds->variables.size() == 1 &&
             ds->variables[0].values.size() == 4,
         "variable");
  expect(node_ad.name == "sp2-01" && node_ad.links.size() == 1, "harmonyNode");
  expect(node_ad.speed == 1.25, "speed");
  std::printf("\n");
  return ok;
}

// --- microbenchmarks -----------------------------------------------------

void BM_ParseBundle(benchmark::State& state) {
  RslHost host;
  size_t options = 0;
  host.on_bundle([&](const BundleSpec& b) {
    options += b.options.size();
    return Status::Ok();
  });
  for (auto _ : state) {
    Interp interp;
    host.register_with(interp);
    auto r = interp.eval(kFullBundle);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParseBundle);

void BM_ParseNodeAd(benchmark::State& state) {
  RslHost host;
  for (auto _ : state) {
    Interp interp;
    host.register_with(interp);
    auto r = interp.eval(kNodeAd);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_ParseNodeAd);

void BM_ExprPaperBandwidth(benchmark::State& state) {
  ExprContext ctx;
  ctx.name_lookup = [](const std::string& name, double* out) {
    if (name != "client.memory") return false;
    *out = 32;
    return true;
  };
  for (auto _ : state) {
    auto r = expr_eval_number(
        "61 - (client.memory > 24 ? 24 : client.memory)", ctx);
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_ExprPaperBandwidth);

void BM_ExprArithmetic(benchmark::State& state) {
  ExprContext ctx;
  for (auto _ : state) {
    auto r = expr_eval_number("0.5 * 8 * 8 + sqrt(1200.0 / 4) - min(3, 7)",
                              ctx);
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_ExprArithmetic);

void BM_InterpPerformanceScript(benchmark::State& state) {
  Interp interp;
  auto defined = interp.eval(
      "proc model {w} {return [expr {1200.0 / $w + 0.5 * $w * $w}]}");
  HARMONY_ASSERT(defined.ok());
  for (auto _ : state) {
    auto r = interp.eval("model 8");
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_InterpPerformanceScript);

void BM_InterpLoop(benchmark::State& state) {
  for (auto _ : state) {
    Interp interp;
    auto r = interp.eval(
        "set sum 0\nfor {set i 0} {$i < 100} {incr i} {incr sum $i}\nset sum");
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_InterpLoop);

}  // namespace

int main(int argc, char** argv) {
  if (!validate_table1()) return 1;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
