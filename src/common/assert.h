// Internal invariant checking. HARMONY_ASSERT fires in all build types:
// a violated invariant in the controller or simulator means any further
// results are meaningless, so we fail fast rather than compile it out.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace harmony {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "HARMONY_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace harmony

#define HARMONY_ASSERT(expr)                                          \
  do {                                                                \
    if (!(expr)) ::harmony::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HARMONY_ASSERT_MSG(expr, msg)                                 \
  do {                                                                \
    if (!(expr)) ::harmony::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
