// Ablation A6 — the objective function is a policy choice (§4.2: "In
// the future we plan to investigate other objective functions. The
// requirement... is that it be a single variable that represents the
// overall behavior of the system"). The same workload is configured
// under mean-completion-time (the paper's default), makespan, and
// throughput; the chosen configurations differ in characteristic ways.
#include <cstdio>

#include "apps/bag_app.h"
#include "apps/scenarios.h"
#include "apps/simple_app.h"
#include "common/strings.h"
#include "core/controller.h"

namespace {

using namespace harmony;
using namespace harmony::apps;

struct Outcome {
  double bag_workers = 0;
  double bag_predicted = 0;
  double simple_predicted = 0;
  double objective = 0;
  bool ok = true;
};

Outcome run_with_objective(const std::string& objective) {
  Outcome outcome;
  core::ControllerConfig config;
  config.objective = objective;
  core::Controller controller(config);
  if (!controller.add_nodes_script(worker_cluster_script(8)).ok() ||
      !controller.finalize_cluster().ok()) {
    outcome.ok = false;
    return outcome;
  }
  // A rigid 2-node job first, then the variable-parallelism bag app.
  SimpleConfig rigid;
  rigid.workers = 2;
  auto simple_id = controller.register_script(simple_bundle_script(rigid));
  BagConfig bag;
  auto bag_id = controller.register_script(bag_bundle_script(bag).value());
  if (!simple_id.ok() || !bag_id.ok()) {
    outcome.ok = false;
    return outcome;
  }
  const auto* bundle = controller.bundle_state(bag_id.value(), "parallelism");
  outcome.bag_workers = bundle->choice.variables.at("workerNodes");
  auto predictions = controller.predictions();
  if (predictions.ok()) {
    for (const auto& [id, seconds] : predictions.value()) {
      if (id == bag_id.value()) outcome.bag_predicted = seconds;
      if (id == simple_id.value()) outcome.simple_predicted = seconds;
    }
  }
  auto value = controller.objective_value();
  outcome.objective = value.ok() ? value.value() : -1;
  return outcome;
}

int run() {
  std::printf("=== Ablation A6: objective functions choose different "
              "configurations ===\n");
  std::printf("workload: a rigid 2-node job + the bag-of-tasks app on 8 "
              "nodes\n\n");
  std::printf("objective              bag_workers  bag_pred_s  rigid_pred_s  "
              "objective_value\n");
  bool ok = true;
  double mean_workers = 0, makespan_workers = 0;
  for (const char* objective : {"mean", "makespan", "throughput"}) {
    auto outcome = run_with_objective(objective);
    ok = ok && outcome.ok;
    std::printf("%-21s  %11.0f  %10.1f  %12.1f  %15.3f\n", objective,
                outcome.bag_workers, outcome.bag_predicted,
                outcome.simple_predicted, outcome.objective);
    if (std::string(objective) == "mean") mean_workers = outcome.bag_workers;
    if (std::string(objective) == "makespan") {
      makespan_workers = outcome.bag_workers;
    }
  }
  std::printf(
      "\nsummary: mean completion time (and throughput) drive the bag app\n"
      "onto every free node; makespan stops as soon as the rigid 300 s job\n"
      "dominates the maximum — extra nodes no longer move the objective, so\n"
      "the greedy pass keeps the first width that reaches the plateau.\n"
      "\"A measure of goodness for each application scaled into a common\n"
      "currency\" (§4.2) is a policy decision with visible consequences.\n");
  return ok && mean_workers > makespan_workers ? 0 : 1;
}

}  // namespace

int main() { return run(); }
