// Transport abstraction between the client runtime library and the
// Harmony server: the prototype connects over a well-known TCP port
// (net/tcp_transport); tests and the simulator link the controller in
// process (InProcTransport).
#pragma once

#include <functional>
#include <string>

#include "common/result.h"
#include "core/state.h"

namespace harmony::client {

class Transport {
 public:
  using UpdateHandler = std::function<void(const std::string& name,
                                           const std::string& value)>;
  virtual ~Transport() = default;

  // Registers an application (a script of harmonyBundle commands);
  // returns the Harmony-assigned instance id.
  virtual Result<core::InstanceId> register_app(const std::string& script) = 0;
  virtual Status unregister(core::InstanceId id) = 0;
  // Installs the update push channel for an instance.
  virtual Status subscribe(core::InstanceId id, UpdateHandler handler) = 0;
  // Pull-style variable read.
  virtual Result<std::string> get_variable(core::InstanceId id,
                                           const std::string& name) = 0;
};

}  // namespace harmony::client

namespace harmony::core {
class Controller;
}

namespace harmony::client {

class InProcTransport : public Transport {
 public:
  explicit InProcTransport(core::Controller* controller)
      : controller_(controller) {}

  Result<core::InstanceId> register_app(const std::string& script) override;
  Status unregister(core::InstanceId id) override;
  Status subscribe(core::InstanceId id, UpdateHandler handler) override;
  Result<std::string> get_variable(core::InstanceId id,
                                   const std::string& name) override;

 private:
  core::Controller* controller_;
};

}  // namespace harmony::client
