// Shared scenario builders for core/controller tests and benches: the
// paper's SP-2-like cluster, the Figure 2 applications (Simple, Bag) and
// the Figure 3 client-server database bundles.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/controller.h"
#include "core/domain.h"
#include "rsl/spec.h"

namespace harmony::testing {

// Serializes everything a decision can influence, at full precision:
// per-bundle configuration, choice variables, memory grants, switch
// times, placements, the reconfiguration counter and the objective.
// Two controllers with equal fingerprints have made identical decision
// sequences. Used by the incremental-vs-full differential test and by
// the crash-recovery tests (recovered state must fingerprint-match the
// pre-crash controller).
inline void fingerprint_instance(const core::InstanceState& instance,
                                 std::string& out) {
  out += str_format("i%llu:%s\n",
                    static_cast<unsigned long long>(instance.id),
                    instance.application.c_str());
  for (const auto& bundle : instance.bundles) {
    out += str_format(" b=%s cfg=%d", bundle.spec.bundle.c_str(),
                      bundle.configured ? 1 : 0);
    if (bundle.configured) {
      out += " choice=" + bundle.choice.option;
      for (const auto& [name, value] : bundle.choice.variables) {
        out += str_format(" %s=%.17g", name.c_str(), value);
      }
      out += str_format(" grant=%.17g switched=%.17g",
                        bundle.choice.memory_grant,
                        bundle.last_switch_time);
      for (const auto& entry : bundle.allocation.entries) {
        out += str_format(" [%s.%d@%u mem=%.17g]",
                          entry.requirement.role.c_str(),
                          entry.requirement.index, entry.node,
                          entry.requirement.memory_mb);
      }
    }
    out += '\n';
  }
}

inline std::string fingerprint(const core::Controller& controller) {
  std::string out;
  for (const auto& instance : controller.state().instances) {
    fingerprint_instance(instance, out);
  }
  out += str_format("reconfigs=%llu\n",
                    static_cast<unsigned long long>(
                        controller.reconfigurations()));
  auto objective = controller.objective_value();
  out += objective.ok() ? str_format("objective=%.17g\n", objective.value())
                        : ("objective_err=" + objective.error().message + "\n");
  return out;
}

// Router fingerprint in the same format: instances across all domains
// in global id order, reconfigurations including retired domains, and
// the merged objective — directly comparable against a single-domain
// reference controller's fingerprint.
inline std::string fingerprint(const core::DomainRouter& router) {
  std::vector<const core::InstanceState*> instances;
  for (const core::Controller* controller : router.domain_controllers()) {
    for (const auto& instance : controller->state().instances) {
      instances.push_back(&instance);
    }
  }
  std::sort(instances.begin(), instances.end(),
            [](const core::InstanceState* a, const core::InstanceState* b) {
              return a->id < b->id;
            });
  std::string out;
  for (const core::InstanceState* instance : instances) {
    fingerprint_instance(*instance, out);
  }
  out += str_format("reconfigs=%llu\n",
                    static_cast<unsigned long long>(
                        router.reconfigurations()));
  auto objective = router.objective_value();
  out += objective.ok() ? str_format("objective=%.17g\n", objective.value())
                        : ("objective_err=" + objective.error().message + "\n");
  return out;
}

// n worker nodes "sp2-XX" (speed 1, 64 MB) plus one server host
// "server" (speed 2, 512 MB), full switch at `mbps` (default 320, the
// paper's high performance switch).
inline std::string sp2_cluster_script(int n, double worker_memory_mb = 64,
                                      double mbps = 320) {
  std::string script;
  for (int i = 0; i < n; ++i) {
    script += str_format("harmonyNode sp2-%02d {speed 1.0} {memory %g} {os aix}",
                         i, worker_memory_mb);
    for (int j = 0; j < i; ++j) {
      script += str_format(" {link sp2-%02d %g 0.05}", j, mbps);
    }
    script += " {link server " + format_number(mbps) + " 0.05}\n";
  }
  script += "harmonyNode server {speed 2.0} {memory 512} {os aix}\n";
  return script;
}

// Figure 2(a): generic parallel application on `workers` dedicated
// nodes. Default model (no performance tag).
inline std::string simple_bundle(int workers = 4, double seconds = 300,
                                 double memory = 32) {
  return str_format(
      "harmonyBundle Simple:1 config {\n"
      "  {fixed\n"
      "    {node worker {seconds %g} {memory %g} {replicate %d}}\n"
      "    {communication 10}}\n"
      "}\n",
      seconds, memory, workers);
}

// Figure 2(b): bag-of-tasks with variable parallelism and the paper's
// speedup curve as an explicit performance model.
inline std::string bag_bundle(const std::string& workers = "1 2 3 4 5 6 7 8",
                              double granularity = 0) {
  return str_format(
      "harmonyBundle Bag:1 parallelism {\n"
      "  {var\n"
      "    {variable workerNodes {%s}}\n"
      "    {node worker {seconds {1200.0 / workerNodes}} {memory 16}\n"
      "          {replicate {workerNodes}}}\n"
      "    {communication {0.5 * workerNodes * workerNodes}}\n"
      "    {performance {{1 1250} {2 640} {3 450} {4 340} {5 290} {6 270} "
      "{7 260} {8 255}}}\n"
      "    {granularity %g}}\n"
      "}\n",
      workers.c_str(), granularity);
}

// `groups` isolated node groups of `per_group` hosts named <prefix>-NN.
// The switch is a full mesh — links never partition the namespace, only
// admissible node sets do — so cross-group bundles stay expressible.
// The workhorse cluster of the partitioned-decision-core tests and the
// multi-tenant bench.
inline std::string grouped_cluster_script(
    const std::vector<std::string>& groups, int per_group) {
  std::vector<std::string> hosts;
  for (const auto& group : groups) {
    for (int i = 0; i < per_group; ++i) {
      hosts.push_back(str_format("%s-%02d", group.c_str(), i));
    }
  }
  std::string script;
  for (size_t i = 0; i < hosts.size(); ++i) {
    script += str_format("harmonyNode %s {speed 1.0} {memory 64} {os aix}",
                         hosts[i].c_str());
    for (size_t j = 0; j < i; ++j) {
      script += str_format(" {link %s 320 0.05}", hosts[j].c_str());
    }
    script += "\n";
  }
  return script;
}

// Two-option application confined to one group's nodes by hostname
// glob; the group pin is what makes its optimization domain independent
// of every other group's.
inline std::string pinned_group_bundle(const std::string& group, int tag) {
  return str_format(
      "harmonyBundle App%s:%d layout {\n"
      "  {wide\n"
      "    {node worker {hostname %s-*} {seconds 240} {memory 24} "
      "{replicate 2}}\n"
      "    {communication 10}}\n"
      "  {narrow\n"
      "    {node worker {hostname %s-*} {seconds 420} {memory 12}}\n"
      "    {communication 2}}\n"
      "}\n",
      group.c_str(), tag, group.c_str(), group.c_str());
}

// An application whose admissible set spans two groups — registering it
// merges their optimization domains; its departure splits them again.
inline std::string bridge_bundle(const std::string& group_a,
                                 const std::string& group_b, int tag) {
  return str_format(
      "harmonyBundle Bridge:%d where {\n"
      "  {span\n"
      "    {node left {hostname %s-*} {seconds 60} {memory 16}}\n"
      "    {node right {hostname %s-*} {seconds 60} {memory 16}}\n"
      "    {link left right 8}}\n"
      "}\n",
      tag, group_a.c_str(), group_b.c_str());
}

// Figure 3: hybrid client-server database bundle. Numbers follow the
// paper's structure (QS loads the server, DS loads the client; DS moves
// more data) with magnitudes chosen so the QS->DS crossover falls at
// three clients on the sp2 cluster, as in Figure 7.
//
// The paper's DS link expression is OCR-garbled in our source
// ("44 + (client.memory > 24 ? 24 : client.memory) - 17"); §3.5 states
// the intent — more client memory reduces bandwidth — so we use the
// decreasing form 61 - min(client.memory, 24).
inline std::string db_client_bundle(const std::string& client_host,
                                    int instance = 1) {
  return str_format(
      "harmonyBundle DBclient:%d where {\n"
      "  {QS\n"
      "    {node server {hostname server} {seconds 9} {memory 20}}\n"
      "    {node client {hostname %s} {seconds 1} {memory 2}}\n"
      "    {link client server 10}}\n"
      "  {DS\n"
      "    {node server {hostname server} {seconds 1} {memory 20}}\n"
      "    {node client {hostname %s} {memory >=17} {seconds 9}}\n"
      "    {link client server {61 - (client.memory > 24 ? 24 : "
      "client.memory)}}}\n"
      "}\n",
      instance, client_host.c_str(), client_host.c_str());
}

// ---------------------------------------------------------------------------
// Synthetic swarm: `groups` isolated groups, each one server host
// "gNNNN-srv" (speed 2) plus `clients_per_group` client hosts
// "gNNNN-cMM" (speed 1), fully linked within the group at `mbps`.
// Hostname pins confine every application to its group, so the
// partitioned router carves one optimization domain per group; with
// the defaults that is 250 domains x 9 nodes x 40 apps = 10k bundles.
//
// Two application shapes exercise the two solver levers:
//   SwarmDB  — memory-grant lever. Option "rich" has an open-ended
//              client memory constraint (>=17, grant levels 1/2/3 give
//              17/34/51 MB) with a convex transfer curve: more client
//              cache, less data moved. Option "lean" needs no client
//              memory but ships the full 96 MB.
//   SwarmPar — placement lever: "wide" (2 replicas, 6 MB each, chatty)
//              vs "narrow" (1 node, 3 MB).
//
// `packing_stress` sets client memory to 170 MB and makes every app a
// SwarmDB. Greedy arrival then wedges each client node at grants
// {51, 51, 51, 17} + one lean: per-bundle argmin never reduces an
// earlier grant, but trading (51, 17) for (34, 34) on the same node is
// feasible (68 = 68 MB) and strictly cheaper (89.1 -> 77.0 MB moved),
// so an anytime solver provably beats greedy here. Without
// packing_stress client memory is generous, greedy already reaches the
// optimum, and a correct solver must change nothing.
struct SwarmConfig {
  int groups = 250;
  int clients_per_group = 8;
  int apps_per_group = 40;
  double client_memory_mb = 512;  // generous; packing_stress uses 170
  double server_memory_mb = 256;
  double mbps = 10;  // slow wire: transfer dominates, 0.8 s/MB
  uint64_t seed = 1;
  bool packing_stress = false;
};

inline std::string swarm_group_name(int group) {
  return str_format("g%04d", group);
}

inline std::string swarm_cluster_script(const SwarmConfig& config) {
  const double client_memory =
      config.packing_stress ? 170.0 : config.client_memory_mb;
  std::string script;
  for (int g = 0; g < config.groups; ++g) {
    const std::string group = swarm_group_name(g);
    script += str_format("harmonyNode %s-srv {speed 2.0} {memory %g} {os aix}\n",
                         group.c_str(), config.server_memory_mb);
    for (int c = 0; c < config.clients_per_group; ++c) {
      script += str_format("harmonyNode %s-c%02d {speed 1.0} {memory %g} {os aix}",
                           group.c_str(), c, client_memory);
      script += str_format(" {link %s-srv %g 0.1}", group.c_str(), config.mbps);
      // In-group client mesh: replicated options ({communication})
      // need client-client connectivity to be predictable.
      for (int j = 0; j < c; ++j) {
        script += str_format(" {link %s-c%02d %g 0.1}", group.c_str(), j,
                             config.mbps);
      }
      script += "\n";
    }
  }
  return script;
}

// Grant levels {1, 2, 3} on the >=17 constraint give client.memory of
// 17/34/51; the transfer curve (77 - min(client.memory, 60))^2 / 48
// then moves 75 / 38.5 / 14.1 MB — convex, so mid grants stay useful
// when full grants no longer fit. "lean" moves a flat 96 MB.
inline std::string swarm_db_bundle(int group, int tag) {
  const std::string g = swarm_group_name(group);
  return str_format(
      "harmonyBundle SwarmDB:%d cache {\n"
      "  {rich\n"
      "    {node server {hostname %s-srv} {seconds 0.2} {memory 4}}\n"
      "    {node client {hostname %s-c*} {memory >=17} {seconds 2}}\n"
      "    {link client server {(77 - (client.memory > 60 ? 60 : "
      "client.memory)) * (77 - (client.memory > 60 ? 60 : client.memory)) "
      "/ 48}}\n"
      "    {friction 0.5}}\n"
      "  {lean\n"
      "    {node server {hostname %s-srv} {seconds 0.2} {memory 4}}\n"
      "    {node client {hostname %s-c*} {seconds 2}}\n"
      "    {link client server 96}\n"
      "    {friction 0.5}}\n"
      "}\n",
      tag, g.c_str(), g.c_str(), g.c_str(), g.c_str());
}

inline std::string swarm_par_bundle(int group, int tag) {
  const std::string g = swarm_group_name(group);
  return str_format(
      "harmonyBundle SwarmPar:%d layout {\n"
      "  {wide\n"
      "    {node worker {hostname %s-c*} {seconds 4} {memory 6} "
      "{replicate 2}}\n"
      "    {communication 4}\n"
      "    {friction 0.5}}\n"
      "  {narrow\n"
      "    {node worker {hostname %s-c*} {seconds 9} {memory 3}}\n"
      "    {friction 0.5}}\n"
      "}\n",
      tag, g.c_str(), g.c_str());
}

// All application scripts in deterministic registration order (group
// major, app minor; tags are 1-based global ids). packing_stress makes
// every app a SwarmDB; otherwise a seeded 2:1 DB/Par mix.
inline std::vector<std::string> swarm_app_scripts(const SwarmConfig& config) {
  Rng rng(config.seed);
  std::vector<std::string> scripts;
  scripts.reserve(static_cast<size_t>(config.groups) * config.apps_per_group);
  for (int g = 0; g < config.groups; ++g) {
    for (int a = 0; a < config.apps_per_group; ++a) {
      const int tag = g * config.apps_per_group + a + 1;
      const bool db = config.packing_stress || rng.next_below(3) < 2;
      scripts.push_back(db ? swarm_db_bundle(g, tag)
                           : swarm_par_bundle(g, tag));
    }
  }
  return scripts;
}

}  // namespace harmony::testing
