// Loopback integration: a real Harmony TCP server on an ephemeral port,
// driven by HarmonyClient over TcpTransport — the prototype's
// architecture (Figure 6) end to end.
#include "net/server.h"

#include <gtest/gtest.h>

#include <csignal>
#include <sys/time.h>

#include <chrono>
#include <thread>

#include "apps/scenarios.h"
#include "client/client.h"
#include "net/tcp_transport.h"

namespace harmony::net {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        controller_.add_nodes_script(apps::db_cluster_script(3)).ok());
    ASSERT_TRUE(controller_.finalize_cluster().ok());
    server_ = std::make_unique<HarmonyTcpServer>(&controller_, 0);
    auto port = server_->start();
    ASSERT_TRUE(port.ok()) << port.ok();
    port_ = port.value();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    shutdown_server();
    server_.reset();
  }

  // Stops the poll loop; afterwards the controller is safe to inspect
  // from the test thread.
  void shutdown_server() {
    if (server_thread_.joinable()) {
      server_->stop();
      server_thread_.join();
    }
  }

  std::string client_bundle(int i) {
    return str_format(
        "harmonyBundle DBclient:%d where {\n"
        "  {QS {node server {hostname server} {seconds 18} {memory 20}}\n"
        "      {node client {hostname sp2-%02d} {seconds 0.1} {memory 2}}\n"
        "      {link client server 0.05}}\n"
        "  {DS {node server {hostname server} {seconds 2} {memory 20}}\n"
        "      {node client {hostname sp2-%02d} {memory >=17} {seconds 16.2}}\n"
        "      {link client server 2.5}}\n"
        "}\n",
        i, i - 1, i - 1);
  }

  core::Controller controller_;
  std::unique_ptr<HarmonyTcpServer> server_;
  std::thread server_thread_;
  uint16_t port_ = 0;
};

TEST_F(ServerTest, RegisterOverTcp) {
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  ASSERT_TRUE(id.ok()) << (id.ok() ? "" : id.error().to_string());
  EXPECT_GT(id.value(), 0u);
  auto option = transport.get_variable(id.value(), "where.option");
  ASSERT_TRUE(option.ok());
  EXPECT_EQ(option.value(), "QS");
  ASSERT_TRUE(transport.unregister(id.value()).ok());
}

TEST_F(ServerTest, FullClientLibraryOverTcp) {
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  client::HarmonyClient client(&transport);
  ASSERT_TRUE(client.startup("tcp-demo").ok());
  ASSERT_TRUE(client.bundle_setup(client_bundle(1)).ok());
  const std::string* option = client.add_variable("where", "unset");
  ASSERT_TRUE(client.wait_for_update().ok());
  ASSERT_TRUE(transport.pump().ok());
  client.poll_updates();
  EXPECT_EQ(*option, "QS");
  EXPECT_EQ(client.var("where.server.node"), "server");
  ASSERT_TRUE(client.end().ok());
}

TEST_F(ServerTest, ThreeClientsTriggerSwitchOverTcp) {
  // Three separate connections, as three separate client processes
  // would make.
  std::vector<std::unique_ptr<TcpTransport>> transports;
  std::vector<core::InstanceId> ids;
  for (int i = 1; i <= 3; ++i) {
    transports.push_back(std::make_unique<TcpTransport>());
    ASSERT_TRUE(transports.back()->connect("localhost", port_).ok());
    auto id = transports.back()->register_app(client_bundle(i));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // The third registration flips everyone to data shipping.
  for (int i = 0; i < 3; ++i) {
    auto option = transports[i]->get_variable(ids[i], "where.option");
    ASSERT_TRUE(option.ok());
    EXPECT_EQ(option.value(), "DS") << "client " << i + 1;
  }
  // Pushed updates arrive on the first clients' connections.
  bool saw_ds_update = false;
  ASSERT_TRUE(transports[0]
                  ->subscribe(ids[0],
                              [&](const std::string& name,
                                  const std::string& value) {
                                if (name == "where" && value == "DS") {
                                  saw_ds_update = true;
                                }
                              })
                  .ok());
  ASSERT_TRUE(transports[0]->pump().ok());
  EXPECT_TRUE(saw_ds_update);
}

TEST_F(ServerTest, DisconnectImpliesEnd) {
  // TcpTransport registers with protocol v2, so a hangup first parks
  // the session; a zero grace window makes the park expire on the next
  // poll tick, synthesizing the DEPART.
  server_->set_session_grace_ms(0);
  {
    TcpTransport transport;
    ASSERT_TRUE(transport.connect("localhost", port_).ok());
    auto id = transport.register_app(client_bundle(1));
    ASSERT_TRUE(id.ok());
    EXPECT_FALSE(transport.session_token().empty());
    // Transport (and socket) drop here without END.
  }
  // Give the poll loop time to notice the hangup, then stop it so the
  // controller can be inspected race-free.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  shutdown_server();
  EXPECT_EQ(controller_.live_instances(), 0u);
  EXPECT_EQ(server_->parked_session_count(), 0u);
}

TEST_F(ServerTest, ErrorsComeBackAsErrFrames) {
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto bad = transport.register_app("harmonyBundle Broken:1 b {{o {bogus}}}");
  ASSERT_FALSE(bad.ok());
  auto missing = transport.get_variable(9999, "x");
  ASSERT_FALSE(missing.ok());
  // The connection survives errors.
  auto id = transport.register_app(client_bundle(1));
  EXPECT_TRUE(id.ok());
}

TEST_F(ServerTest, GarbageFrameDropsConnectionOnly) {
  // Raw socket: an oversized length prefix is a protocol violation; the
  // server must drop that connection and keep serving others.
  auto raw = connect_to("localhost", port_);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(write_all(raw.value(), std::string("\xFF\xFF\xFF\xFF", 4)).ok());
  // A healthy client still works afterwards.
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  EXPECT_TRUE(id.ok());
  // The violating connection is gone: reads on it hit EOF eventually.
  ASSERT_TRUE(set_nonblocking(raw.value(), false).ok());
  char buffer[16];
  auto n = read_some(raw.value(), buffer, sizeof(buffer));
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.error().code, ErrorCode::kClosed);
}

TEST_F(ServerTest, UnparseableMessageGetsErrReply) {
  auto raw = connect_to("localhost", port_);
  ASSERT_TRUE(raw.ok());
  // Well-framed but not a valid TCL list.
  ASSERT_TRUE(write_all(raw.value(), encode_frame("{unbalanced")).ok());
  FrameBuffer inbound;
  char buffer[512];
  for (int spin = 0; spin < 100; ++spin) {
    auto n = read_some(raw.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    inbound.feed(std::string_view(buffer, n.value()));
    auto frame = inbound.next_frame();
    ASSERT_TRUE(frame.ok());
    if (frame.value().has_value()) {
      auto message = Message::decode(*frame.value());
      ASSERT_TRUE(message.ok());
      EXPECT_EQ(message.value().verb, "ERR");
      return;
    }
  }
  FAIL() << "no ERR reply arrived";
}

TEST_F(ServerTest, UnknownVerbGetsErrReply) {
  auto raw = connect_to("localhost", port_);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(
      write_all(raw.value(), encode_frame(Message{"FLY", {}}.encode())).ok());
  FrameBuffer inbound;
  char buffer[512];
  for (int spin = 0; spin < 100; ++spin) {
    auto n = read_some(raw.value(), buffer, sizeof(buffer));
    ASSERT_TRUE(n.ok());
    inbound.feed(std::string_view(buffer, n.value()));
    auto frame = inbound.next_frame();
    ASSERT_TRUE(frame.ok());
    if (frame.value().has_value()) {
      auto message = Message::decode(*frame.value());
      ASSERT_TRUE(message.ok());
      EXPECT_EQ(message.value().verb, "ERR");
      EXPECT_NE(message.value().args[1].find("unknown verb"),
                std::string::npos);
      return;
    }
  }
  FAIL() << "no ERR reply arrived";
}

TEST_F(ServerTest, ReevaluateVerb) {
  TcpTransport transport;
  ASSERT_TRUE(transport.connect("localhost", port_).ok());
  auto id = transport.register_app(client_bundle(1));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(transport.request_reevaluation().ok());
}

// Regression: run(until_idle_ms) used to count every no-progress poll
// return as a full 50 ms of idleness. A poll interrupted by a signal
// (EINTR) returns immediately, so under a 10 ms interval timer the old
// accounting exited a 400 ms idle window after ~80 ms of wall time.
// Idle time must be measured on a monotonic clock.
TEST(ServerIdleTest, IdleWindowSurvivesSignalInterruptions) {
  core::Controller controller;
  HarmonyTcpServer server(&controller, 0);
  ASSERT_TRUE(server.start().ok());

  // 10 ms interval timer with a no-op handler and no SA_RESTART: every
  // tick interrupts poll() with EINTR.
  struct sigaction action = {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous_action;
  ASSERT_EQ(sigaction(SIGALRM, &action, &previous_action), 0);
  itimerval timer = {};
  timer.it_interval.tv_usec = 10000;
  timer.it_value.tv_usec = 10000;
  itimerval previous_timer;
  ASSERT_EQ(setitimer(ITIMER_REAL, &timer, &previous_timer), 0);

  const auto start = std::chrono::steady_clock::now();
  server.run(/*until_idle_ms=*/400);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  setitimer(ITIMER_REAL, &previous_timer, nullptr);
  sigaction(SIGALRM, &previous_action, nullptr);

  EXPECT_GE(elapsed.count(), 350) << "idle window cut short by signals";
  EXPECT_LT(elapsed.count(), 5000);
}

}  // namespace
}  // namespace harmony::net
