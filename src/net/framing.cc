#include "net/framing.h"

namespace harmony::net {

std::string encode_frame(std::string_view payload) {
  HARMONY_ASSERT(payload.size() <= kMaxFrameBytes);
  uint32_t length = static_cast<uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((length >> 24) & 0xFF));
  out.push_back(static_cast<char>((length >> 16) & 0xFF));
  out.push_back(static_cast<char>((length >> 8) & 0xFF));
  out.push_back(static_cast<char>(length & 0xFF));
  out.append(payload);
  return out;
}

void FrameBuffer::feed(std::string_view bytes) {
  if (head_ == buffer_.size()) {
    // Everything consumed: recycle the allocation without moving bytes.
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= kCompactThreshold || head_ > buffer_.size() / 2) {
    compact();
  }
  buffer_.append(bytes);
}

void FrameBuffer::compact() {
  buffer_.erase(0, head_);
  head_ = 0;
}

Result<std::optional<std::string>> FrameBuffer::next_frame() {
  size_t avail = buffer_.size() - head_;
  if (avail < 4) return std::optional<std::string>{};
  const uint8_t* p = reinterpret_cast<const uint8_t*>(buffer_.data()) + head_;
  uint32_t length = (static_cast<uint32_t>(p[0]) << 24) |
                    (static_cast<uint32_t>(p[1]) << 16) |
                    (static_cast<uint32_t>(p[2]) << 8) |
                    static_cast<uint32_t>(p[3]);
  if (length > kMaxFrameBytes) {
    return Err<std::optional<std::string>>(ErrorCode::kProtocol,
                                           "frame length exceeds limit");
  }
  if (avail < 4 + static_cast<size_t>(length)) {
    return std::optional<std::string>{};
  }
  // Advance the consumed-offset cursor instead of erasing the head:
  // a read burst carrying many small frames is O(total bytes), not
  // O(frames * buffered bytes). feed() compacts once the dead prefix
  // is worth reclaiming.
  std::string payload = buffer_.substr(head_ + 4, length);
  head_ += 4 + static_cast<size_t>(length);
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  }
  return std::optional<std::string>{std::move(payload)};
}

}  // namespace harmony::net
