#include "metric/metric.h"

#include <gtest/gtest.h>

namespace harmony::metric {
namespace {

TEST(TimeSeries, StoresSamplesInOrder) {
  TimeSeries ts;
  ts.add(0.0, 1.0);
  ts.add(1.0, 2.0);
  ts.add(1.0, 3.0);  // equal times allowed
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.last_value(), 3.0);
  EXPECT_DOUBLE_EQ(ts.last_time(), 1.0);
}

TEST(TimeSeries, StatsBetween) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) ts.add(i, i * 10.0);
  auto stats = ts.stats_between(3.0, 5.0);
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), 40.0);
  auto all = ts.stats_between(-100, 100);
  EXPECT_EQ(all.count(), 11u);
  auto none = ts.stats_between(20, 30);
  EXPECT_EQ(none.count(), 0u);
}

TEST(TimeSeries, StatsWindowTrailing) {
  TimeSeries ts;
  for (int i = 0; i <= 10; ++i) ts.add(i, i * 1.0);
  auto stats = ts.stats_window(2.0);
  EXPECT_EQ(stats.count(), 3u);  // t = 8, 9, 10
  EXPECT_DOUBLE_EQ(stats.mean(), 9.0);
}

TEST(TimeSeries, MeanOfAll) {
  TimeSeries ts;
  ts.add(0, 10);
  ts.add(1, 20);
  EXPECT_DOUBLE_EQ(ts.mean(), 15.0);
  TimeSeries empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
}

TEST(MetricRegistry, RecordAndLookup) {
  MetricRegistry reg;
  reg.record("app.response_time", 1.0, 9.5);
  reg.record("app.response_time", 2.0, 10.5);
  ASSERT_TRUE(reg.has("app.response_time"));
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_EQ(reg.find("nope"), nullptr);
  const TimeSeries* ts = reg.find("app.response_time");
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->mean(), 10.0);
}

TEST(MetricRegistry, ObserversNotified) {
  MetricRegistry reg;
  std::vector<std::string> seen;
  reg.subscribe([&](const std::string& name, double t, double v) {
    seen.push_back(name + "@" + std::to_string(static_cast<int>(t)) + "=" +
                   std::to_string(static_cast<int>(v)));
  });
  reg.record("x", 1, 10);
  reg.record("y", 2, 20);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "x@1=10");
  EXPECT_EQ(seen[1], "y@2=20");
}

TEST(MetricRegistry, NamesSorted) {
  MetricRegistry reg;
  reg.record("b", 0, 1);
  reg.record("a", 0, 1);
  reg.record("c", 0, 1);
  EXPECT_EQ(reg.names(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MetricRegistry, CsvExport) {
  MetricRegistry reg;
  reg.record("m", 0.5, 1.25);
  std::string csv = reg.export_csv("m");
  EXPECT_NE(csv.find("time,value"), std::string::npos);
  // format_number emits shortest round-trip text, not fixed precision.
  EXPECT_NE(csv.find("0.5,1.25"), std::string::npos);
  EXPECT_EQ(reg.export_csv("absent"), "");
}

TEST(MetricRegistry, SeriesCreatesOnDemand) {
  MetricRegistry reg;
  reg.series("fresh").add(0, 1);
  EXPECT_TRUE(reg.has("fresh"));
}

TEST(TimeSeries, RetentionBoundsStoredSamples) {
  TimeSeries ts;
  ts.set_retention(8);
  for (int i = 0; i < 100; ++i) ts.add(i, i * 1.0);
  // Retained window never exceeds the configured bound...
  EXPECT_LE(ts.size(), 8u);
  // ...but the all-time aggregates still cover every sample.
  EXPECT_EQ(ts.total_count(), 100u);
  EXPECT_DOUBLE_EQ(ts.total_stats().mean(), 49.5);
  EXPECT_DOUBLE_EQ(ts.mean(), 49.5);
  EXPECT_DOUBLE_EQ(ts.total_stats().max(), 99.0);
  // The retained tail is the newest samples, still in order.
  EXPECT_DOUBLE_EQ(ts.last_value(), 99.0);
  EXPECT_DOUBLE_EQ(ts.samples().front().value,
                   100.0 - static_cast<double>(ts.size()));
  EXPECT_FALSE(ts.empty());
}

TEST(TimeSeries, RetentionEvictsInBlocks) {
  TimeSeries ts;
  ts.set_retention(16);
  for (int i = 0; i < 16; ++i) ts.add(i, 1.0);
  EXPECT_EQ(ts.size(), 16u);
  // The 17th add folds the oldest half into the evicted aggregate in
  // one block, so adds stay amortized O(1).
  ts.add(16, 1.0);
  EXPECT_EQ(ts.size(), 9u);
  EXPECT_EQ(ts.total_count(), 17u);
}

}  // namespace
}  // namespace harmony::metric
