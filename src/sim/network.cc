#include "sim/network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.h"

namespace harmony::sim {

namespace {
constexpr double kEps = 1e-9;
// Mbps (megabits/s) -> MB/s (megabytes/s).
double mbps_to_mbs(double mbps) { return mbps / 8.0; }
}  // namespace

NetworkModel::NetworkModel(SimEngine* engine,
                           const cluster::Topology* topology,
                           double local_bandwidth_mbps)
    : engine_(engine),
      topology_(topology),
      local_rate_mbs_(mbps_to_mbs(local_bandwidth_mbps)) {
  HARMONY_ASSERT(engine != nullptr && topology != nullptr);
  HARMONY_ASSERT(local_bandwidth_mbps > 0);
}

Result<FlowId> NetworkModel::transfer(cluster::NodeId from,
                                      cluster::NodeId to, double megabytes,
                                      std::function<void()> on_done) {
  if (megabytes < 0) {
    return Err<FlowId>(ErrorCode::kInvalidArgument, "negative transfer size");
  }
  std::vector<size_t> path;
  double latency_s = 0.0;
  if (from != to) {
    if (!topology_->connected(from, to)) {
      return Err<FlowId>(ErrorCode::kNoMatch, "nodes are disconnected");
    }
    path = topology_->path_links(from, to);
    latency_s = topology_->path_latency(from, to) / 1000.0;
  }
  update(engine_->now());
  FlowId id = next_id_++;
  Flow flow;
  flow.links = std::move(path);
  flow.remaining_mb = megabytes;
  flow.on_done = std::move(on_done);
  flow.started = latency_s <= 0.0;
  flows_[id] = std::move(flow);
  if (latency_s > 0.0) {
    engine_->schedule(latency_s, [this, id] {
      auto it = flows_.find(id);
      if (it == flows_.end()) return;  // cancelled during latency phase
      update(engine_->now());
      it->second.started = true;
      recompute_rates();
      schedule_next_completion();
    });
  }
  recompute_rates();
  schedule_next_completion();
  return id;
}

Status NetworkModel::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Status(ErrorCode::kNotFound, "no such flow");
  update(engine_->now());
  flows_.erase(it);
  recompute_rates();
  schedule_next_completion();
  return Status::Ok();
}

Result<double> NetworkModel::current_rate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) return Err<double>(ErrorCode::kNotFound, "no such flow");
  return it->second.rate_mbs;
}

void NetworkModel::update(double now) {
  double elapsed = now - last_update_;
  if (elapsed > 0) {
    for (auto& [id, flow] : flows_) {
      if (!flow.started) continue;
      flow.remaining_mb =
          std::max(0.0, flow.remaining_mb - flow.rate_mbs * elapsed);
    }
  }
  last_update_ = now;
}

// Progressive filling: repeatedly find the most constrained link, give
// its flows their fair share, freeze them, and subtract the capacity.
void NetworkModel::recompute_rates() {
  // Local flows always run at the local rate.
  std::vector<FlowId> active;
  for (auto& [id, flow] : flows_) {
    if (!flow.started) {
      flow.rate_mbs = 0.0;
      continue;
    }
    if (flow.links.empty()) {
      flow.rate_mbs = local_rate_mbs_;
      continue;
    }
    flow.rate_mbs = 0.0;
    active.push_back(id);
  }
  if (active.empty()) return;
  std::sort(active.begin(), active.end());  // deterministic fill order

  std::unordered_map<size_t, double> capacity;   // link -> remaining MB/s
  std::unordered_map<size_t, int> load;          // link -> unfrozen flows
  for (FlowId id : active) {
    for (size_t link : flows_[id].links) {
      capacity.emplace(link, mbps_to_mbs(topology_->links()[link].bandwidth_mbps));
      ++load[link];
    }
  }
  std::unordered_map<FlowId, bool> frozen;
  size_t remaining = active.size();
  while (remaining > 0) {
    // Most constrained link: minimal capacity / load.
    double min_share = std::numeric_limits<double>::infinity();
    size_t min_link = SIZE_MAX;
    for (const auto& [link, flows_on_link] : load) {
      if (flows_on_link <= 0) continue;
      double share = capacity[link] / flows_on_link;
      if (share < min_share) {
        min_share = share;
        min_link = link;
      }
    }
    if (min_link == SIZE_MAX) break;  // all remaining flows unconstrained
    for (FlowId id : active) {
      if (frozen[id]) continue;
      auto& flow = flows_[id];
      bool uses = std::find(flow.links.begin(), flow.links.end(), min_link) !=
                  flow.links.end();
      if (!uses) continue;
      flow.rate_mbs = min_share;
      frozen[id] = true;
      --remaining;
      for (size_t link : flow.links) {
        capacity[link] -= min_share;
        --load[link];
      }
    }
    load.erase(min_link);
  }
}

void NetworkModel::schedule_next_completion() {
  if (completion_event_ != 0) {
    engine_->cancel(completion_event_);
    completion_event_ = 0;
  }
  double min_delay = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (!flow.started) continue;
    if (flow.remaining_mb <= kEps) {
      min_delay = 0.0;
      break;
    }
    if (flow.rate_mbs <= 0) continue;
    min_delay = std::min(min_delay, flow.remaining_mb / flow.rate_mbs);
  }
  if (!std::isfinite(min_delay)) return;
  completion_event_ =
      engine_->schedule(min_delay, [this] { on_completion_event(); });
}

void NetworkModel::on_completion_event() {
  completion_event_ = 0;
  update(engine_->now());
  // Complete in FlowId order so callback sequence is deterministic.
  std::vector<FlowId> done;
  for (const auto& [id, flow] : flows_) {
    if (flow.started && flow.remaining_mb <= kEps) done.push_back(id);
  }
  std::sort(done.begin(), done.end());
  std::vector<std::function<void()>> callbacks;
  for (FlowId id : done) {
    callbacks.push_back(std::move(flows_[id].on_done));
    flows_.erase(id);
  }
  recompute_rates();
  schedule_next_completion();
  for (auto& fn : callbacks) {
    if (fn) fn();
  }
}

}  // namespace harmony::sim
