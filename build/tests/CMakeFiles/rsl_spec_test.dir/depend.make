# Empty dependencies file for rsl_spec_test.
# This may be replaced when dependencies are built.
