// Microbenchmarks of the simulation substrate: event engine throughput,
// processor-sharing CPU model, max-min network model, and the database
// engine's query pipeline. Establishes that the simulator — not the
// modeled system — is never the experiment bottleneck.
#include <benchmark/benchmark.h>

#include "cluster/topology.h"
#include "db/engine.h"
#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace {

using namespace harmony;

void BM_EngineScheduleAndRun(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::SimEngine engine;
    long long sum = 0;
    for (int i = 0; i < events; ++i) {
      engine.schedule((i * 37) % 101, [&sum, i] { sum += i; });
    }
    engine.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EngineScheduleAndRun)->Arg(1000)->Arg(10000);

void BM_CpuProcessorSharing(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  cluster::Topology topo;
  (void)topo.add_node("n", 1.0, 64).value();
  for (auto _ : state) {
    sim::SimEngine engine;
    sim::CpuModel cpu(&engine, &topo);
    int completed = 0;
    for (int i = 0; i < tasks; ++i) {
      cpu.submit(0, 1.0 + (i % 7) * 0.25, [&completed] { ++completed; });
    }
    engine.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * tasks);
}
BENCHMARK(BM_CpuProcessorSharing)->Arg(100)->Arg(1000);

void BM_NetworkMaxMinFairness(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  cluster::Topology topo;
  for (int i = 0; i < 8; ++i) {
    (void)topo.add_node("n" + std::to_string(i), 1.0, 64).value();
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      auto linked = topo.add_link(i, j, 320, 0.05);
      HARMONY_ASSERT(linked.ok());
    }
  }
  for (auto _ : state) {
    sim::SimEngine engine;
    sim::NetworkModel net(&engine, &topo);
    int completed = 0;
    for (int i = 0; i < flows; ++i) {
      auto flow = net.transfer(i % 8, (i + 3) % 8, 1.0 + (i % 5),
                               [&completed] { ++completed; });
      HARMONY_ASSERT(flow.ok());
    }
    engine.run();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_NetworkMaxMinFairness)->Arg(16)->Arg(128);

void BM_DbBenchmarkQuery(benchmark::State& state) {
  db::DbEngine engine(static_cast<size_t>(state.range(0)), 42);
  int bucket = 0;
  for (auto _ : state) {
    db::BenchmarkQuery query;
    query.left_ten_percent = bucket % 10;
    query.right_ten_percent = (bucket + 3) % 10;
    ++bucket;
    auto profile = engine.execute(query, db::Placement::kQueryShipping);
    benchmark::DoNotOptimize(profile.work.result_rows);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DbBenchmarkQuery)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
