#include "net/framing.h"

#include <gtest/gtest.h>

#include <chrono>

#include "net/protocol.h"

namespace harmony::net {
namespace {

TEST(Framing, EncodeDecodeRoundTrip) {
  FrameBuffer buffer;
  buffer.feed(encode_frame("hello"));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), "hello");
  // Buffer drained.
  auto next = buffer.next_frame();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value().has_value());
  EXPECT_EQ(buffer.buffered_bytes(), 0u);
}

TEST(Framing, EmptyPayload) {
  FrameBuffer buffer;
  buffer.feed(encode_frame(""));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), "");
}

TEST(Framing, PartialDelivery) {
  std::string wire = encode_frame("split across reads");
  FrameBuffer buffer;
  for (size_t i = 0; i < wire.size(); ++i) {
    buffer.feed(std::string_view(&wire[i], 1));
    auto frame = buffer.next_frame();
    ASSERT_TRUE(frame.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(frame.value().has_value()) << "byte " << i;
    } else {
      ASSERT_TRUE(frame.value().has_value());
      EXPECT_EQ(*frame.value(), "split across reads");
    }
  }
}

TEST(Framing, MultipleFramesInOneChunk) {
  FrameBuffer buffer;
  buffer.feed(encode_frame("one") + encode_frame("two") + encode_frame("three"));
  for (const char* expected : {"one", "two", "three"}) {
    auto frame = buffer.next_frame();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value().has_value());
    EXPECT_EQ(*frame.value(), expected);
  }
}

TEST(Framing, BinaryPayloadSurvives) {
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  FrameBuffer buffer;
  buffer.feed(encode_frame(payload));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), payload);
}

TEST(Framing, ManySmallFramesAreNotQuadratic) {
  // next_frame() used to erase the consumed prefix per frame, making a
  // burst of N buffered frames O(N^2) in copied bytes. The consumed-
  // offset cursor makes the same burst linear; the wall bound below
  // fails by a wide margin if the erase ever comes back (the quadratic
  // version takes minutes at this count).
  constexpr int kFrames = 200000;
  std::string wire;
  for (int i = 0; i < kFrames; ++i) {
    wire += encode_frame("m" + std::to_string(i));
  }
  FrameBuffer buffer;
  const auto start = std::chrono::steady_clock::now();
  buffer.feed(wire);
  for (int i = 0; i < kFrames; ++i) {
    auto frame = buffer.next_frame();
    ASSERT_TRUE(frame.ok());
    ASSERT_TRUE(frame.value().has_value()) << "frame " << i;
    EXPECT_EQ(*frame.value(), "m" + std::to_string(i));
  }
  EXPECT_EQ(buffer.buffered_bytes(), 0u);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            10);
}

TEST(Framing, CompactionPreservesPartialFrame) {
  // Drive the buffer past the compaction threshold with a partial frame
  // pending: the shift-down must keep the unconsumed tail intact.
  FrameBuffer buffer;
  std::string big(70 * 1024, 'x');  // beyond the 64 KiB threshold
  buffer.feed(encode_frame(big));
  ASSERT_TRUE(buffer.next_frame().value().has_value());
  // Head now points past 70 KiB of consumed bytes. Feed a frame split
  // in two: the first feed triggers compaction mid-frame.
  std::string wire = encode_frame("after compaction");
  buffer.feed(wire.substr(0, 5));
  auto partial = buffer.next_frame();
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial.value().has_value());
  buffer.feed(wire.substr(5));
  auto frame = buffer.next_frame();
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), "after compaction");
}

TEST(Framing, OversizedLengthIsProtocolError) {
  FrameBuffer buffer;
  buffer.feed(std::string("\xFF\xFF\xFF\xFF", 4));
  auto frame = buffer.next_frame();
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, ErrorCode::kProtocol);
}

TEST(Protocol, MessageRoundTrip) {
  Message message{"REGISTER", {"harmonyBundle A:1 b {...}", "second arg"}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().verb, "REGISTER");
  EXPECT_EQ(decoded.value().args, message.args);
}

TEST(Protocol, ArgsWithSpecialCharacters) {
  Message message{"UPDATE",
                  {"where.client.nodes", "sp2-00 sp2-01 {odd host}"}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().args[1], "sp2-00 sp2-01 {odd host}");
}

TEST(Protocol, BundleScriptSurvivesRoundTrip) {
  const std::string script = R"(harmonyBundle DBclient:1 where {
  {QS {node server {hostname server} {seconds 18} {memory 20}}}
})";
  Message message{"REGISTER", {script}};
  auto decoded = Message::decode(message.encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().args[0], script);
}

TEST(Protocol, HelperConstructors) {
  auto ok = Message::ok({"42"});
  EXPECT_EQ(ok.verb, "OK");
  auto err = Message::err(ErrorCode::kNoMatch, "nothing fits");
  EXPECT_EQ(err.verb, "ERR");
  EXPECT_EQ(err.args[0], "no_match");
  auto update = Message::update("where", "DS");
  EXPECT_EQ(update.verb, "UPDATE");
  EXPECT_EQ(update.args, (std::vector<std::string>{"where", "DS"}));
}

TEST(Protocol, MalformedRejected) {
  EXPECT_FALSE(Message::decode("").ok());
  EXPECT_FALSE(Message::decode("{unbalanced").ok());
}

}  // namespace
}  // namespace harmony::net
