#include "core/perf_model.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/assert.h"
#include "common/stats.h"
#include "common/strings.h"
#include "core/binding.h"
#include "rsl/interp.h"

namespace harmony::core {

Predictor::Model Predictor::model_for(const rsl::OptionSpec& option) {
  if (!option.performance_script.empty()) return Model::kScript;
  if (!option.performance_expr.empty()) return Model::kExpr;
  if (!option.performance_dag.empty()) return Model::kDag;
  if (!option.performance_points.empty()) return Model::kPoints;
  return Model::kDefault;
}

const char* Predictor::model_name(Model model) {
  switch (model) {
    case Model::kScript: return "script";
    case Model::kExpr: return "expr";
    case Model::kDag: return "critical-path";
    case Model::kPoints: return "points";
    case Model::kDefault: return "default";
  }
  return "unknown";
}

Result<double> Predictor::predict(const PredictionInput& input) const {
  HARMONY_ASSERT(input.option && input.choice && input.allocation &&
                 input.topology && input.node_load.valid());
  switch (model_for(*input.option)) {
    case Model::kScript: return predict_script(input);
    case Model::kExpr: return predict_expr(input);
    case Model::kDag: return predict_dag(input);
    case Model::kPoints: return predict_points(input);
    case Model::kDefault: return predict_default(input);
  }
  return Err<double>(ErrorCode::kInvalidArgument, "unreachable");
}

// Critical-path model: the longest dependency chain through the task
// DAG, scaled like the default model's CPU term (slowest node's
// contention-adjusted rate).
Result<double> Predictor::predict_dag(const PredictionInput& input) const {
  rsl::ExprContext ctx = full_context(input);
  const auto& dag = input.option->performance_dag;

  std::map<std::string, size_t> index;
  for (size_t i = 0; i < dag.size(); ++i) index[dag[i].name] = i;

  std::vector<double> durations(dag.size());
  for (size_t i = 0; i < dag.size(); ++i) {
    auto seconds = dag[i].seconds.eval(ctx);
    if (!seconds.ok()) {
      return Err<double>(seconds.error().code,
                         "dag task " + dag[i].name + ": " +
                             seconds.error().message);
    }
    if (seconds.value() < 0) {
      return Err<double>(ErrorCode::kInvalidArgument,
                         "dag task " + dag[i].name + ": negative duration");
    }
    durations[i] = seconds.value();
  }

  // Longest finish time via DFS with cycle detection.
  enum class Mark { kUnvisited, kInProgress, kDone };
  std::vector<Mark> marks(dag.size(), Mark::kUnvisited);
  std::vector<double> finish(dag.size(), 0.0);
  std::function<Status(size_t)> visit = [&](size_t i) -> Status {
    if (marks[i] == Mark::kDone) return Status::Ok();
    if (marks[i] == Mark::kInProgress) {
      return Status(ErrorCode::kInvalidArgument,
                    "dag cycle through task " + dag[i].name);
    }
    marks[i] = Mark::kInProgress;
    double start = 0.0;
    for (const auto& dep : dag[i].deps) {
      auto it = index.find(dep);
      if (it == index.end()) {
        return Status(ErrorCode::kInvalidArgument,
                      "dag task " + dag[i].name + ": unknown dependency " +
                          dep);
      }
      auto status = visit(it->second);
      if (!status.ok()) return status;
      start = std::max(start, finish[it->second]);
    }
    finish[i] = start + durations[i];
    marks[i] = Mark::kDone;
    return Status::Ok();
  };
  double critical_path = 0.0;
  for (size_t i = 0; i < dag.size(); ++i) {
    auto status = visit(i);
    if (!status.ok()) return Err<double>(status.error().code, status.error().message);
    critical_path = std::max(critical_path, finish[i]);
  }

  // Scale reference seconds by the slowest allocated node's effective
  // rate (co-located load / speed); dedicated fast nodes shorten the
  // path, shared or slow ones stretch it.
  double scale = input.allocation->entries.empty() ? 1.0 : 0.0;
  for (const auto& entry : input.allocation->entries) {
    double speed = input.topology->node(entry.node).speed;
    int load = std::max(1, input.node_load.at(entry.node));
    scale = std::max(scale, static_cast<double>(load) / speed);
  }
  return critical_path * scale;
}

Result<double> Predictor::predict_expr(const PredictionInput& input) const {
  rsl::ExprContext ctx = full_context(input);
  auto value = input.option->performance_expr.eval(ctx);
  if (!value.ok()) {
    return Err<double>(value.error().code,
                       "performance expr: " + value.error().message);
  }
  return value.value();
}

rsl::ExprContext Predictor::full_context(const PredictionInput& input) const {
  // Layer: choice variables > role-derived names > namespace.
  std::map<std::string, double> derived;
  std::map<std::string, int> role_counts;
  for (const auto& entry : input.allocation->entries) {
    const auto& role = entry.requirement.role;
    ++role_counts[role];
    if (entry.requirement.index == 0) {
      derived[role + ".memory"] = entry.requirement.memory_mb;
      derived[role + ".speed"] = input.topology->node(entry.node).speed;
    }
  }
  int total_nodes = 0;
  for (const auto& [role, count] : role_counts) {
    derived[role + ".count"] = count;
    total_nodes += count;
  }
  derived["allocated.nodes"] = total_nodes;

  rsl::ExprContext base = input.names;
  rsl::ExprContext with_derived;
  with_derived.name_lookup = [derived, base](const std::string& name,
                                             double* out) {
    auto it = derived.find(name);
    if (it != derived.end()) {
      *out = it->second;
      return true;
    }
    return base.name_lookup ? base.name_lookup(name, out) : false;
  };
  with_derived.var_lookup = base.var_lookup;
  with_derived.cmd_eval = base.cmd_eval;
  return choice_context(*input.choice, with_derived);
}

Result<double> Predictor::predict_default(const PredictionInput& input) const {
  rsl::ExprContext ctx = full_context(input);
  const auto& topo = *input.topology;

  // Per-replica CPU seconds by role.
  std::map<std::string, double> role_seconds;
  for (const auto& node : input.option->nodes) {
    auto seconds = node.seconds.eval(ctx);
    if (!seconds.ok()) {
      return Err<double>(seconds.error().code,
                         "seconds for role " + node.role + ": " +
                             seconds.error().message);
    }
    role_seconds[node.role] = seconds.value();
  }

  // Network component: explicit links plus the all-pairs
  // `communication` requirement. Computed before the CPU component so
  // the LogP-style occupancy can charge endpoint CPUs.
  auto transfer_seconds = [&](double megabytes, double bandwidth_mbps) {
    if (megabytes <= 0) return 0.0;
    if (bandwidth_mbps <= 0) return std::numeric_limits<double>::infinity();
    return megabytes * 8.0 / bandwidth_mbps;
  };
  double comm = 0.0;
  // Extra per-replica CPU seconds from protocol processing / copying,
  // keyed by (role, replica index).
  std::map<std::pair<std::string, int>, double> occupancy;
  for (const auto& link : input.option->links) {
    auto megabytes = link.megabytes.eval(ctx);
    if (!megabytes.ok()) {
      return Err<double>(megabytes.error().code,
                         "link " + link.from + "-" + link.to + ": " +
                             megabytes.error().message);
    }
    cluster::NodeId a = input.allocation->find(link.from, 0);
    cluster::NodeId b = input.allocation->find(link.to, 0);
    if (a == cluster::kInvalidNode || b == cluster::kInvalidNode) {
      return Err<double>(ErrorCode::kInvalidArgument,
                         "link endpoint not allocated: " + link.from + "-" +
                             link.to);
    }
    double bw = a == b ? local_mbps_ : topo.path_bandwidth(a, b);
    comm += transfer_seconds(megabytes.value(), bw);
    if (comm_occupancy_s_per_mb_ > 0) {
      occupancy[{link.from, 0}] += megabytes.value() * comm_occupancy_s_per_mb_;
      occupancy[{link.to, 0}] += megabytes.value() * comm_occupancy_s_per_mb_;
    }
  }
  if (!input.option->communication.empty()) {
    auto megabytes = input.option->communication.eval(ctx);
    if (!megabytes.ok()) {
      return Err<double>(megabytes.error().code,
                         "communication: " + megabytes.error().message);
    }
    // All-pairs traffic bound by the weakest pairwise path.
    double min_bw = local_mbps_;
    const auto& entries = input.allocation->entries;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        if (entries[i].node == entries[j].node) continue;
        min_bw = std::min(min_bw,
                          topo.path_bandwidth(entries[i].node, entries[j].node));
      }
    }
    comm += transfer_seconds(megabytes.value(), min_bw);
    if (comm_occupancy_s_per_mb_ > 0 && !entries.empty()) {
      // "cycles on all worker processes would need to be parameterized
      // based on the amount of communication" — every byte is sent once
      // and received once, spread over the participants.
      double per_entry = 2.0 * megabytes.value() * comm_occupancy_s_per_mb_ /
                         static_cast<double>(entries.size());
      for (const auto& entry : entries) {
        occupancy[{entry.requirement.role, entry.requirement.index}] +=
            per_entry;
      }
    }
  }

  // CPU component: slowest constituent process under processor sharing,
  // including any communication occupancy charged to it.
  double cpu = 0.0;
  for (const auto& entry : input.allocation->entries) {
    auto it = role_seconds.find(entry.requirement.role);
    if (it == role_seconds.end()) continue;
    double seconds = it->second;
    auto occ = occupancy.find({entry.requirement.role, entry.requirement.index});
    if (occ != occupancy.end()) seconds += occ->second;
    double speed = topo.node(entry.node).speed;
    int load = std::max(1, input.node_load.at(entry.node));
    cpu = std::max(cpu, seconds / speed * load);
  }
  double total = cpu + comm;
  if (!std::isfinite(total)) {
    return Err<double>(ErrorCode::kInvalidArgument,
                       "prediction diverged (disconnected nodes?)");
  }
  return total;
}

Result<double> Predictor::predict_points(const PredictionInput& input) const {
  // The supplied curve assumes dedicated nodes. Under processor sharing
  // a node hosting `load` planned tasks contributes 1/load of a node,
  // so interpolate at the *effective* node count. With no co-location
  // this reduces to the literal variable value / replica count.
  double effective = 0.0;
  const size_t allocated = input.allocation->entries.size();
  for (const auto& entry : input.allocation->entries) {
    int load = std::max(1, input.node_load.at(entry.node));
    effective += 1.0 / load;
  }
  double x;
  if (input.choice->variables.size() == 1 && allocated > 0) {
    // Scale the tuning variable by the contention factor so curves
    // keyed on a variable (workerNodes) see effective workers.
    x = input.choice->variables.begin()->second * (effective / allocated);
  } else {
    x = effective;
  }
  std::vector<std::pair<double, double>> points;
  points.reserve(input.option->performance_points.size());
  for (const auto& p : input.option->performance_points) {
    points.emplace_back(p.x, p.y);
  }
  return piecewise_linear(points, x);
}

std::optional<double> PredictionCache::lookup(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void PredictionCache::insert(const std::string& key, double value) {
  if (entries_.size() >= max_entries_) entries_.clear();  // crude bound
  entries_[key] = value;
}

void PredictionCache::invalidate() {
  if (entries_.empty()) return;
  entries_.clear();
  ++stats_.invalidations;
}

ModelReads model_reads(const rsl::OptionSpec& option) {
  ModelReads reads;
  switch (Predictor::model_for(option)) {
    case Predictor::Model::kScript:
      // A TCL model script can read anything it likes.
      reads.known = false;
      return reads;
    case Predictor::Model::kExpr:
      // predict_expr never consults per-node contention; its whole
      // input beyond the choice/allocation is the expression's reads.
      reads.uses_load = false;
      reads.exprs.push_back(&option.performance_expr);
      break;
    case Predictor::Model::kDag:
      for (const auto& task : option.performance_dag) {
        reads.exprs.push_back(&task.seconds);
      }
      break;
    case Predictor::Model::kPoints:
      break;  // pure function of choice, allocation and load
    case Predictor::Model::kDefault:
      for (const auto& node : option.nodes) {
        reads.exprs.push_back(&node.seconds);
      }
      for (const auto& link : option.links) {
        reads.exprs.push_back(&link.megabytes);
      }
      if (!option.communication.empty()) {
        reads.exprs.push_back(&option.communication);
      }
      break;
  }
  for (const rsl::Expr* expr : reads.exprs) {
    if (!expr->reads_known()) {
      reads.known = false;
      break;
    }
  }
  return reads;
}

std::string prediction_cache_key(InstanceId instance,
                                 const std::string& bundle,
                                 const OptionChoice& choice,
                                 const cluster::Allocation& allocation,
                                 const LoadView& load,
                                 const ModelReads& reads,
                                 const rsl::ExprContext& names) {
  HARMONY_ASSERT_MSG(reads.known, "unknown read sets must bypass the cache");
  std::string key;
  key.reserve(64 + allocation.entries.size() * 16);
  key += str_format("%llu", static_cast<unsigned long long>(instance));
  key += '.';
  key += bundle;
  key += '|';
  // Full-precision serialization: %.17g round-trips doubles exactly, so
  // distinct choices can never alias to one cache entry.
  key += choice.option;
  for (const auto& [name, value] : choice.variables) {
    key += str_format(";%s=%.17g", name.c_str(), value);
  }
  key += str_format(";m%.17g", choice.memory_grant);
  for (const auto& entry : allocation.entries) {
    key += str_format("|%s.%d@%u*%.17g", entry.requirement.role.c_str(),
                      entry.requirement.index, entry.node,
                      entry.requirement.memory_mb);
    if (reads.uses_load) {
      // Models clamp absent / sub-1 loads to 1, so key on the clamped
      // value to maximize hits without changing observable inputs.
      key += str_format(":%d", std::max(1, load.at(entry.node)));
    }
  }
  // Current value of everything the model's expressions read through
  // the namespace context. Strings are length-prefixed so values can
  // never alias across name boundaries.
  auto append_name = [&](const std::string& name) {
    key += "|n:";
    key += name;
    key += '=';
    double number = 0;
    if (names.name_lookup && names.name_lookup(name, &number)) {
      key += str_format("%.17g", number);
      return;
    }
    // Bare names fall back to interpreter variables at eval time;
    // mirror that here so a string-valued hit is still keyed.
    std::string text;
    if (names.var_lookup && names.var_lookup(name, &text)) {
      key += str_format("s%zu:", text.size());
      key += text;
      return;
    }
    key += '?';
  };
  auto append_var = [&](const std::string& name) {
    key += "|v:";
    key += name;
    key += '=';
    std::string text;
    if (names.var_lookup && names.var_lookup(name, &text)) {
      key += str_format("%zu:", text.size());
      key += text;
    } else {
      key += '?';
    }
  };
  // Read sets are tiny; linear dedup beats hashing here.
  std::vector<const std::string*> seen_names;
  std::vector<const std::string*> seen_vars;
  auto once = [](std::vector<const std::string*>& seen,
                 const std::string& name) {
    for (const std::string* s : seen) {
      if (*s == name) return false;
    }
    seen.push_back(&name);
    return true;
  };
  for (const rsl::Expr* expr : reads.exprs) {
    const rsl::Program* program = expr->program();
    if (program == nullptr) continue;  // empty or literal: reads nothing
    for (const auto& name : program->names()) {
      if (once(seen_names, name)) append_name(name);
    }
    for (const auto& name : program->vars()) {
      if (once(seen_vars, name)) append_var(name);
    }
  }
  return key;
}

Result<double> Predictor::predict_script(const PredictionInput& input) const {
  rsl::Interp interp;
  rsl::ExprContext ctx = full_context(input);
  interp.set_name_resolver(ctx.name_lookup);
  for (const auto& [name, value] : input.choice->variables) {
    interp.set_global(name, format_number(value));
  }
  interp.set_global("allocatedNodes",
                    str_format("%zu", input.allocation->entries.size()));
  auto result = interp.eval(input.option->performance_script);
  if (!result.ok()) {
    return Err<double>(result.error().code,
                       "performance script: " + result.error().message);
  }
  double seconds = 0;
  if (!parse_double(result.value(), &seconds)) {
    return Err<double>(ErrorCode::kEvalError,
                       "performance script returned non-numeric: \"" +
                           result.value() + "\"");
  }
  return seconds;
}

}  // namespace harmony::core
