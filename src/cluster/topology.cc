#include "cluster/topology.h"

#include <algorithm>
#include <queue>

#include "common/assert.h"
#include "common/strings.h"

namespace harmony::cluster {

Result<NodeId> Topology::add_node(std::string hostname, double speed,
                                  double memory_mb, std::string os) {
  if (hostname.empty()) {
    return Err<NodeId>(ErrorCode::kInvalidArgument, "hostname must not be empty");
  }
  if (speed <= 0) {
    return Err<NodeId>(ErrorCode::kInvalidArgument,
                       "node speed must be positive: " + hostname);
  }
  if (memory_mb < 0) {
    return Err<NodeId>(ErrorCode::kInvalidArgument,
                       "node memory must be non-negative: " + hostname);
  }
  if (by_hostname_.count(hostname)) {
    return Err<NodeId>(ErrorCode::kAlreadyExists,
                       "duplicate hostname: " + hostname);
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  by_hostname_[hostname] = id;
  nodes_.push_back(NodeInfo{id, std::move(hostname), std::move(os), speed,
                            memory_mb});
  adjacency_.emplace_back();
  return id;
}

Status Topology::add_link(NodeId a, NodeId b, double bandwidth_mbps,
                          double latency_ms) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status(ErrorCode::kNotFound, "link endpoint does not exist");
  }
  if (a == b) {
    return Status(ErrorCode::kInvalidArgument, "self-links are implicit");
  }
  if (bandwidth_mbps <= 0) {
    return Status(ErrorCode::kInvalidArgument, "bandwidth must be positive");
  }
  if (latency_ms < 0) {
    return Status(ErrorCode::kInvalidArgument, "latency must be non-negative");
  }
  // Replace an existing link in place.
  for (size_t idx : adjacency_[a]) {
    LinkInfo& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) {
      l.bandwidth_mbps = bandwidth_mbps;
      l.latency_ms = latency_ms;
      return Status::Ok();
    }
  }
  links_.push_back(LinkInfo{a, b, bandwidth_mbps, latency_ms});
  adjacency_[a].push_back(links_.size() - 1);
  adjacency_[b].push_back(links_.size() - 1);
  return Status::Ok();
}

const NodeInfo& Topology::node(NodeId id) const {
  HARMONY_ASSERT(id < nodes_.size());
  return nodes_[id];
}

Result<NodeId> Topology::find_by_hostname(const std::string& hostname) const {
  auto it = by_hostname_.find(hostname);
  if (it == by_hostname_.end()) {
    return Err<NodeId>(ErrorCode::kNotFound, "no such host: " + hostname);
  }
  return it->second;
}

std::vector<NodeId> Topology::match_nodes(const std::string& hostname_glob,
                                          const std::string& os) const {
  std::vector<NodeId> out;
  auto admit = [&](const NodeInfo& node) {
    if (!os.empty() && node.os != os) return;
    out.push_back(node.id);
  };
  size_t star = hostname_glob.find_first_of("*?[");
  // No wildcard at all: an exact hostname lookup.
  if (star == std::string::npos) {
    auto it = by_hostname_.find(hostname_glob);
    if (it != by_hostname_.end()) admit(nodes_[it->second]);
    return out;
  }
  // "prefix*": every hostname in [prefix, prefix+1) of the ordered map.
  if (star + 1 == hostname_glob.size() &&
      hostname_glob[star] == '*') {
    std::string prefix = hostname_glob.substr(0, star);
    for (auto it = by_hostname_.lower_bound(prefix);
         it != by_hostname_.end() && starts_with(it->first, prefix); ++it) {
      admit(nodes_[it->second]);
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  for (const NodeInfo& node : nodes_) {
    if (glob_match(hostname_glob, node.hostname)) admit(node);
  }
  return out;
}

const LinkInfo* Topology::link(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) return nullptr;
  for (size_t idx : adjacency_[a]) {
    const LinkInfo& l = links_[idx];
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
  }
  return nullptr;
}

double Topology::path_bandwidth(NodeId a, NodeId b) const {
  if (a == b) return std::numeric_limits<double>::infinity();
  return widest_path(a, b).bandwidth;
}

double Topology::path_latency(NodeId a, NodeId b) const {
  if (a == b) return 0.0;
  return widest_path(a, b).latency;
}

std::vector<size_t> Topology::path_links(NodeId a, NodeId b) const {
  if (a == b) return {};
  return widest_path(a, b).links;
}

// Dijkstra variant maximizing the bottleneck bandwidth; ties broken by
// lower total latency.
Topology::PathResult Topology::widest_path(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size()) return {};
  std::vector<double> best_bw(nodes_.size(), 0.0);
  std::vector<double> best_lat(nodes_.size(),
                               std::numeric_limits<double>::infinity());
  std::vector<size_t> via_link(nodes_.size(), SIZE_MAX);
  std::vector<NodeId> via_node(nodes_.size(), kInvalidNode);
  using Entry = std::tuple<double, double, NodeId>;  // -bw, lat, node
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  best_bw[a] = std::numeric_limits<double>::infinity();
  best_lat[a] = 0.0;
  queue.emplace(-best_bw[a], 0.0, a);
  while (!queue.empty()) {
    auto [neg_bw, lat, u] = queue.top();
    queue.pop();
    double bw = -neg_bw;
    if (bw < best_bw[u] || (bw == best_bw[u] && lat > best_lat[u])) continue;
    if (u == b) break;
    for (size_t idx : adjacency_[u]) {
      const LinkInfo& l = links_[idx];
      NodeId v = l.a == u ? l.b : l.a;
      double nbw = std::min(bw, l.bandwidth_mbps);
      double nlat = lat + l.latency_ms;
      if (nbw > best_bw[v] || (nbw == best_bw[v] && nlat < best_lat[v])) {
        best_bw[v] = nbw;
        best_lat[v] = nlat;
        via_link[v] = idx;
        via_node[v] = u;
        queue.emplace(-nbw, nlat, v);
      }
    }
  }
  if (best_bw[b] == 0.0) return {};
  PathResult result;
  result.bandwidth = best_bw[b];
  result.latency = best_lat[b];
  for (NodeId cur = b; cur != a; cur = via_node[cur]) {
    HARMONY_ASSERT(via_link[cur] != SIZE_MAX);
    result.links.push_back(via_link[cur]);
  }
  std::reverse(result.links.begin(), result.links.end());
  return result;
}

}  // namespace harmony::cluster
