#include "sim/cpu.h"

#include <algorithm>
#include <limits>

#include "common/assert.h"

namespace harmony::sim {

namespace {
constexpr double kEps = 1e-9;
}

CpuModel::CpuModel(SimEngine* engine, const cluster::Topology* topology)
    : engine_(engine), topology_(topology) {
  HARMONY_ASSERT(engine != nullptr && topology != nullptr);
  nodes_.resize(topology->node_count());
}

double CpuModel::rate_per_task(cluster::NodeId node) const {
  const auto& state = nodes_[node];
  if (state.tasks.empty()) return 0.0;
  return topology_->node(node).speed /
         static_cast<double>(state.tasks.size());
}

TaskId CpuModel::submit(cluster::NodeId node, double work_ref_seconds,
                        std::function<void()> on_done) {
  HARMONY_ASSERT(node < nodes_.size());
  HARMONY_ASSERT_MSG(work_ref_seconds >= 0, "negative work");
  sync(node);
  TaskId id = next_id_++;
  tasks_[id] = Task{node, std::max(work_ref_seconds, 0.0), std::move(on_done)};
  nodes_[node].tasks.push_back(id);
  reschedule(node);
  return id;
}

Status CpuModel::cancel(TaskId id) {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Status(ErrorCode::kNotFound, "no such task");
  cluster::NodeId node = it->second.node;
  sync(node);
  auto& list = nodes_[node].tasks;
  list.erase(std::remove(list.begin(), list.end(), id), list.end());
  tasks_.erase(it);
  reschedule(node);
  return Status::Ok();
}

int CpuModel::active_on(cluster::NodeId node) const {
  HARMONY_ASSERT(node < nodes_.size());
  return static_cast<int>(nodes_[node].tasks.size());
}

Result<double> CpuModel::remaining(TaskId id) const {
  auto it = tasks_.find(id);
  if (it == tasks_.end()) return Err<double>(ErrorCode::kNotFound, "no such task");
  // Account for progress since the node's last sync without mutating.
  const auto& state = nodes_[it->second.node];
  double elapsed = engine_->now() - state.last_update;
  double progressed = elapsed * rate_per_task(it->second.node);
  return std::max(0.0, it->second.remaining - progressed);
}

void CpuModel::sync(cluster::NodeId node) {
  auto& state = nodes_[node];
  double elapsed = engine_->now() - state.last_update;
  if (elapsed > 0 && !state.tasks.empty()) {
    double progress = elapsed * rate_per_task(node);
    for (TaskId id : state.tasks) {
      auto& task = tasks_.at(id);
      task.remaining = std::max(0.0, task.remaining - progress);
    }
  }
  state.last_update = engine_->now();
}

void CpuModel::reschedule(cluster::NodeId node) {
  auto& state = nodes_[node];
  if (state.completion_event != 0) {
    engine_->cancel(state.completion_event);
    state.completion_event = 0;
  }
  if (state.tasks.empty()) return;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (TaskId id : state.tasks) {
    min_remaining = std::min(min_remaining, tasks_.at(id).remaining);
  }
  double rate = rate_per_task(node);
  HARMONY_ASSERT(rate > 0);
  double delay = min_remaining / rate;
  state.completion_event =
      engine_->schedule(delay, [this, node] { complete(node); });
}

void CpuModel::complete(cluster::NodeId node) {
  auto& state = nodes_[node];
  state.completion_event = 0;
  sync(node);
  // Collect every task that is done (simultaneous completions fire in
  // submission order).
  std::vector<TaskId> done;
  for (TaskId id : state.tasks) {
    if (tasks_.at(id).remaining <= kEps) done.push_back(id);
  }
  for (TaskId id : done) {
    auto& list = state.tasks;
    list.erase(std::remove(list.begin(), list.end(), id), list.end());
  }
  // Detach callbacks before invoking: a callback may submit new work.
  std::vector<std::function<void()>> callbacks;
  for (TaskId id : done) {
    callbacks.push_back(std::move(tasks_.at(id).on_done));
    tasks_.erase(id);
  }
  reschedule(node);
  for (auto& fn : callbacks) {
    if (fn) fn();
  }
}

}  // namespace harmony::sim
