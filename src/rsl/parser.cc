#include "rsl/parser.h"

#include <cctype>

#include "common/strings.h"

namespace harmony::rsl {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\r'; }

bool is_var_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == ':';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<std::vector<ParsedCommand>> run() {
    std::vector<ParsedCommand> commands;
    while (pos_ < text_.size()) {
      skip_command_separators();
      if (pos_ >= text_.size()) break;
      if (peek() == '#') {
        skip_comment();
        continue;
      }
      ParsedCommand cmd;
      cmd.line = line_;
      while (pos_ < text_.size() && !at_command_end()) {
        skip_inline_space();
        if (pos_ >= text_.size() || at_command_end()) break;
        auto word = parse_word();
        if (!word.ok()) return Err<std::vector<ParsedCommand>>(
            word.error().code, word.error().message);
        cmd.words.push_back(std::move(word).value());
      }
      if (!cmd.words.empty()) commands.push_back(std::move(cmd));
    }
    return commands;
  }

 private:
  char peek() const { return text_[pos_]; }

  void advance() {
    if (text_[pos_] == '\n') ++line_;
    ++pos_;
  }

  bool at_command_end() const {
    return text_[pos_] == '\n' || text_[pos_] == ';';
  }

  void skip_inline_space() {
    while (pos_ < text_.size()) {
      if (is_space(peek())) {
        advance();
      } else if (peek() == '\\' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '\n') {
        advance();  // backslash-newline is a word separator
        advance();
      } else {
        break;
      }
    }
  }

  void skip_command_separators() {
    while (pos_ < text_.size() &&
           (is_space(peek()) || peek() == '\n' || peek() == ';')) {
      advance();
    }
  }

  void skip_comment() {
    while (pos_ < text_.size() && peek() != '\n') advance();
  }

  Error error_here(const std::string& message) const {
    return Error{ErrorCode::kParseError,
                 str_format("line %d: %s", line_, message.c_str())};
  }

  Result<Word> parse_word() {
    Word word;
    word.line = line_;
    if (peek() == '{') return parse_braced_word();
    if (peek() == '"') return parse_quoted_word();
    return parse_bare_word();
  }

  Result<Word> parse_braced_word() {
    Word word;
    word.kind = WordKind::kBraced;
    word.line = line_;
    int depth = 1;
    advance();  // opening brace
    size_t start = pos_;
    while (pos_ < text_.size() && depth > 0) {
      if (peek() == '\\' && pos_ + 1 < text_.size()) {
        advance();
        advance();
        continue;
      }
      if (peek() == '{') ++depth;
      if (peek() == '}') --depth;
      if (depth > 0) advance();
    }
    if (depth != 0) return Err<Word>(ErrorCode::kParseError,
                                     error_here("unbalanced braces").message);
    word.literal.assign(text_.substr(start, pos_ - start));
    advance();  // closing brace
    if (pos_ < text_.size() && !is_space(peek()) && !at_command_end()) {
      return Err<Word>(ErrorCode::kParseError,
                       error_here("extra characters after close-brace").message);
    }
    return word;
  }

  Result<Word> parse_quoted_word() {
    Word word;
    word.kind = WordKind::kSimple;
    word.line = line_;
    advance();  // opening quote
    std::string literal;
    while (pos_ < text_.size() && peek() != '"') {
      if (auto status = consume_substitutable_char(&word, &literal, true);
          !status.ok()) {
        return Err<Word>(status.error().code, status.error().message);
      }
    }
    if (pos_ >= text_.size()) {
      return Err<Word>(ErrorCode::kParseError,
                       error_here("unterminated quote").message);
    }
    advance();  // closing quote
    flush_literal(&word, &literal);
    if (word.segments.empty()) {
      word.segments.push_back({SegKind::kLiteral, ""});
    }
    return word;
  }

  Result<Word> parse_bare_word() {
    Word word;
    word.kind = WordKind::kSimple;
    word.line = line_;
    std::string literal;
    while (pos_ < text_.size() && !is_space(peek()) && !at_command_end()) {
      if (peek() == '\\' && pos_ + 1 < text_.size() &&
          text_[pos_ + 1] == '\n') {
        break;  // line continuation ends the word
      }
      if (auto status = consume_substitutable_char(&word, &literal, false);
          !status.ok()) {
        return Err<Word>(status.error().code, status.error().message);
      }
    }
    flush_literal(&word, &literal);
    if (word.segments.empty()) {
      word.segments.push_back({SegKind::kLiteral, ""});
    }
    return word;
  }

  // Handles one character of a simple word: literal text, backslash
  // escape, $variable, or [command].
  Status consume_substitutable_char(Word* word, std::string* literal,
                                    bool in_quotes) {
    char c = peek();
    if (c == '\\') {
      advance();
      if (pos_ >= text_.size()) {
        literal->push_back('\\');
        return Status::Ok();
      }
      char esc = peek();
      advance();
      switch (esc) {
        case 'n': literal->push_back('\n'); break;
        case 't': literal->push_back('\t'); break;
        case 'r': literal->push_back('\r'); break;
        case '\n': literal->push_back(' '); break;
        default: literal->push_back(esc); break;
      }
      return Status::Ok();
    }
    if (c == '$') {
      advance();
      if (pos_ < text_.size() && peek() == '{') {
        advance();
        size_t start = pos_;
        while (pos_ < text_.size() && peek() != '}') advance();
        if (pos_ >= text_.size()) {
          return Status(ErrorCode::kParseError,
                        error_here("unterminated ${").message);
        }
        std::string name(text_.substr(start, pos_ - start));
        advance();  // closing }
        flush_literal(word, literal);
        word->segments.push_back({SegKind::kVariable, std::move(name)});
        return Status::Ok();
      }
      size_t start = pos_;
      while (pos_ < text_.size() && is_var_char(peek())) advance();
      if (pos_ == start) {
        literal->push_back('$');  // lone dollar is literal
        return Status::Ok();
      }
      flush_literal(word, literal);
      word->segments.push_back(
          {SegKind::kVariable, std::string(text_.substr(start, pos_ - start))});
      return Status::Ok();
    }
    if (c == '[') {
      advance();
      int depth = 1;
      size_t start = pos_;
      while (pos_ < text_.size() && depth > 0) {
        if (peek() == '\\' && pos_ + 1 < text_.size()) {
          advance();
          advance();
          continue;
        }
        if (peek() == '[') ++depth;
        if (peek() == ']') --depth;
        if (depth > 0) advance();
      }
      if (depth != 0) {
        return Status(ErrorCode::kParseError,
                      error_here("unbalanced brackets").message);
      }
      flush_literal(word, literal);
      word->segments.push_back(
          {SegKind::kCommand, std::string(text_.substr(start, pos_ - start))});
      advance();  // closing ]
      return Status::Ok();
    }
    (void)in_quotes;
    literal->push_back(c);
    advance();
    return Status::Ok();
  }

  static void flush_literal(Word* word, std::string* literal) {
    if (!literal->empty()) {
      word->segments.push_back({SegKind::kLiteral, std::move(*literal)});
      literal->clear();
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::vector<ParsedCommand>> parse_script(std::string_view script) {
  return Parser(script).run();
}

}  // namespace harmony::rsl
