#include "core/console.h"

#include <gtest/gtest.h>

#include "rsl/value.h"
#include "test_scenarios.h"

namespace harmony::core {
namespace {

using harmony::testing::db_client_bundle;
using harmony::testing::sp2_cluster_script;

class ConsoleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(controller_.add_nodes_script(sp2_cluster_script(4)).ok());
    ASSERT_TRUE(controller_.finalize_cluster().ok());
    register_console(interp_, controller_);
    auto id = controller_.register_script(db_client_bundle("sp2-00", 1));
    ASSERT_TRUE(id.ok());
    id_ = id.value();
  }

  std::string eval(const std::string& script) {
    auto r = interp_.eval(script);
    EXPECT_TRUE(r.ok()) << script << ": "
                        << (r.ok() ? "" : r.error().to_string());
    return r.ok() ? r.value() : "";
  }

  Controller controller_;
  rsl::Interp interp_;
  InstanceId id_ = 0;
};

TEST_F(ConsoleTest, Instances) {
  EXPECT_EQ(eval("harmonyInstances"),
            "DBclient." + std::to_string(id_));
}

TEST_F(ConsoleTest, Bundles) {
  EXPECT_EQ(eval("harmonyBundles DBclient." + std::to_string(id_)), "where");
  // Bare numeric id also resolves.
  EXPECT_EQ(eval("harmonyBundles " + std::to_string(id_)), "where");
}

TEST_F(ConsoleTest, OptionAndObjective) {
  std::string name = "DBclient." + std::to_string(id_);
  EXPECT_EQ(eval("harmonyOption " + name + " where"), "QS");
  double objective = 0;
  ASSERT_TRUE(parse_double(eval("harmonyObjective"), &objective));
  EXPECT_NEAR(objective, 4.75, 0.01);
}

TEST_F(ConsoleTest, PredictReturnsRows) {
  auto rows = rsl::list_parse(eval("harmonyPredict")).value();
  ASSERT_EQ(rows.size(), 1u);
  auto row = rsl::list_parse(rows[0]).value();
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "DBclient." + std::to_string(id_));
}

TEST_F(ConsoleTest, NodesReport) {
  auto rows = rsl::list_parse(eval("harmonyNodes")).value();
  ASSERT_EQ(rows.size(), 5u);  // 4 workers + server
  auto server_row = rsl::list_parse(rows.back()).value();
  EXPECT_EQ(server_row[0], "server");
  EXPECT_EQ(server_row[1], "2");
  // 512 total - 20 reserved by the QS server role.
  EXPECT_EQ(server_row[2], "492");
  EXPECT_EQ(server_row[3], "1");
}

TEST_F(ConsoleTest, NameReadsNamespace) {
  std::string path =
      "DBclient." + std::to_string(id_) + ".where.option";
  EXPECT_EQ(eval("harmonyName " + path), "QS");
  EXPECT_FALSE(interp_.eval("harmonyName no.such.path").ok());
}

TEST_F(ConsoleTest, SetOptionSteersTheSystem) {
  std::string name = "DBclient." + std::to_string(id_);
  EXPECT_EQ(eval("harmonySetOption " + name + " where DS"), "DS");
  EXPECT_EQ(eval("harmonyOption " + name + " where"), "DS");
  // The namespace moved too.
  EXPECT_EQ(eval("harmonyName " + name + ".where.option"), "DS");
  // A subsequent re-evaluation may flip it back (QS is better for one
  // client) — that is the policy loop working.
  eval("harmonyReevaluate");
  EXPECT_EQ(eval("harmonyOption " + name + " where"), "QS");
}

TEST_F(ConsoleTest, SetOptionValidation) {
  std::string name = "DBclient." + std::to_string(id_);
  EXPECT_FALSE(interp_.eval("harmonySetOption " + name + " where Bogus").ok());
  EXPECT_FALSE(interp_.eval("harmonySetOption " + name + " ghost QS").ok());
  EXPECT_FALSE(interp_.eval("harmonySetOption Ghost.99 where QS").ok());
  // Unchanged after failures.
  EXPECT_EQ(eval("harmonyOption " + name + " where"), "QS");
}

TEST_F(ConsoleTest, SetOptionWithVariables) {
  // A bag-style bundle where steering sets the variable too.
  auto bag = controller_.register_script(harmony::testing::bag_bundle("1 2 4"));
  ASSERT_TRUE(bag.ok());
  std::string name = "Bag." + std::to_string(bag.value());
  EXPECT_EQ(eval("harmonySetOption " + name + " parallelism var workerNodes 2"),
            "var workerNodes=2");
  auto option = rsl::list_parse(
      eval("harmonyOption " + name + " parallelism")).value();
  EXPECT_EQ(option, (std::vector<std::string>{"var", "workerNodes", "2"}));
}

TEST_F(ConsoleTest, NodeStateCommand) {
  EXPECT_EQ(eval("harmonyNodeState sp2-03 offline"), "offline");
  // The nodes report still lists it (topology is fixed); the pool
  // shows one fewer online node.
  EXPECT_EQ(controller_.state().pool->online_count(), 4u);
  EXPECT_EQ(eval("harmonyNodeState sp2-03 online"), "online");
  EXPECT_EQ(controller_.state().pool->online_count(), 5u);
  EXPECT_FALSE(interp_.eval("harmonyNodeState ghost offline").ok());
  EXPECT_FALSE(interp_.eval("harmonyNodeState sp2-03 sideways").ok());
}

TEST_F(ConsoleTest, ExternalLoadCommand) {
  eval("harmonyExternalLoad server 3");
  auto server = controller_.topology().find_by_hostname("server").value();
  EXPECT_EQ(controller_.state().pool->external_load(server), 3);
  // The nodes report includes the external tasks in the load column.
  auto rows = rsl::list_parse(eval("harmonyNodes")).value();
  auto server_row = rsl::list_parse(rows.back()).value();
  EXPECT_EQ(server_row[3], "4") << "1 placement + 3 external";
  EXPECT_FALSE(interp_.eval("harmonyExternalLoad server many").ok());
  EXPECT_FALSE(interp_.eval("harmonyExternalLoad ghost 1").ok());
}

TEST_F(ConsoleTest, PolicyScriptComposition) {
  // A policy written in TCL: if the objective is above a threshold,
  // force data shipping. (The RSL is a real language; policies compose
  // from the same commands.)
  ASSERT_TRUE(controller_.register_script(db_client_bundle("sp2-01", 2)).ok());
  ASSERT_TRUE(controller_.register_script(db_client_bundle("sp2-02", 3)).ok());
  eval(R"(
proc forceDsWhenSlow {threshold} {
  if {[harmonyObjective] > $threshold} {
    foreach app [harmonyInstances] {
      harmonySetOption $app where DS
    }
    return forced
  }
  return ok
}
)");
  // Three clients under the default arrival optimization are already
  // DS; steer them to QS first to create a bad state.
  auto apps = rsl::list_parse(eval("harmonyInstances")).value();
  for (const auto& app : apps) {
    eval("harmonySetOption " + app + " where QS");
  }
  double slow = 0;
  ASSERT_TRUE(parse_double(eval("harmonyObjective"), &slow));
  EXPECT_GT(slow, 12.0);
  EXPECT_EQ(eval("forceDsWhenSlow 12"), "forced");
  double fast = 0;
  ASSERT_TRUE(parse_double(eval("harmonyObjective"), &fast));
  EXPECT_LT(fast, slow);
}

TEST_F(ConsoleTest, DomainsCommand) {
  // Without a published router the command reports, not crashes.
  EXPECT_FALSE(interp_.eval("harmonyDomains").ok());

  DomainRouter router;
  ASSERT_TRUE(router.add_nodes_script(sp2_cluster_script(4)).ok());
  ASSERT_TRUE(router.finalize_cluster().ok());
  ASSERT_TRUE(router.register_script(db_client_bundle("sp2-00", 1)).ok());
  publish_domain_router(&router);
  auto rows = rsl::list_parse(eval("harmonyDomains")).value();
  ASSERT_EQ(rows.size(), 1u);
  auto fields = rsl::list_parse(rows[0]).value();
  // {id worker {members} epochs last_ms {passes moves improvement}}
  ASSERT_EQ(fields.size(), 6u);
  EXPECT_EQ(fields[0], "1");
  EXPECT_EQ(fields[2], "DBclient.1");
  publish_domain_router(nullptr);
}

}  // namespace
}  // namespace harmony::core
