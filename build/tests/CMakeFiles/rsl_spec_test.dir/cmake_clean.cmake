file(REMOVE_RECURSE
  "CMakeFiles/rsl_spec_test.dir/rsl_spec_test.cc.o"
  "CMakeFiles/rsl_spec_test.dir/rsl_spec_test.cc.o.d"
  "rsl_spec_test"
  "rsl_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsl_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
