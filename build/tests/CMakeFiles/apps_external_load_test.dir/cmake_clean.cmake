file(REMOVE_RECURSE
  "CMakeFiles/apps_external_load_test.dir/apps_external_load_test.cc.o"
  "CMakeFiles/apps_external_load_test.dir/apps_external_load_test.cc.o.d"
  "apps_external_load_test"
  "apps_external_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_external_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
