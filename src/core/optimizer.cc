#include "core/optimizer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"
#include "core/binding.h"
#include "metric/telemetry.h"

namespace harmony::core {

// Tightest effective deadline declared across an instance's configured
// options, with that option's tardiness weight. False when no option
// declares one — the common case, which keeps the decision path on the
// plain evaluate() and therefore bit-identical to a deadline-free
// build.
bool instance_deadline(const InstanceState& instance, double* deadline_s,
                       double* weight) {
  bool found = false;
  for (const auto& bundle : instance.bundles) {
    if (!bundle.configured) continue;
    const rsl::OptionSpec* option =
        bundle.spec.find_option(bundle.choice.option);
    if (option == nullptr) continue;
    const double d = option->effective_deadline_s();
    if (d <= 0) continue;
    if (!found || d < *deadline_s) {
      *deadline_s = d;
      *weight = option->tardiness_weight;
    }
    found = true;
  }
  return found;
}

Optimizer::Optimizer(const Predictor* predictor, const Objective* objective,
                     OptimizerConfig config)
    : predictor_(predictor), objective_(objective), config_(config) {
  HARMONY_ASSERT(predictor != nullptr && objective != nullptr);
  if (config_.solver.enabled()) {
    solver_ = std::make_unique<Solver>(*this, config_.solver);
  }
}

void Optimizer::set_names(rsl::ExprContext names) {
  names_ = std::move(names);
  // No invalidation: cache keys embed the value of every name a model
  // reads through this context (prediction_cache_key), so entries
  // built against content that since changed can no longer be hit.
}

void Optimizer::set_config(OptimizerConfig config) {
  config_ = config;
  cache_.invalidate();
  force_full_pass_ = true;
  solver_ = config_.solver.enabled()
                ? std::make_unique<Solver>(*this, config_.solver)
                : nullptr;
}

Result<double> Optimizer::predict_cached(
    InstanceId instance, const BundleState& bundle,
    const rsl::OptionSpec& option, const OptionChoice& choice,
    const cluster::Allocation& allocation, const LoadView& load,
    const cluster::Topology& topology) const {
  PredictionInput input;
  input.option = &option;
  input.choice = &choice;
  input.allocation = &allocation;
  input.topology = &topology;
  input.node_load = load;
  input.names = names_;
  if (!config_.memoize_predictions) {
    ++predictor_calls_;
    return predictor_->predict(input);
  }
  // Unknown read sets — script models (which may also shell out through
  // cmd_eval) and expressions the compiler rejected — could observe
  // anything; never memoize them.
  const ModelReads reads = model_reads(option);
  if (!reads.known) {
    ++predictor_calls_;
    return predictor_->predict(input);
  }
  std::string key =
      prediction_cache_key(instance, bundle.spec.bundle, choice, allocation,
                           load, reads, names_);
  if (auto hit = cache_.lookup(key)) return *hit;
  ++predictor_calls_;
  auto predicted = predictor_->predict(input);
  if (predicted.ok()) cache_.insert(key, predicted.value());
  return predicted;
}

Result<std::vector<std::pair<InstanceId, double>>> Optimizer::predict_all(
    const SystemState& state) const {
  std::vector<std::pair<InstanceId, double>> out;
  // Contention is read straight off the live pool (effective_load ==
  // planned processes + external load, exactly node_load()'s value at
  // every allocated node) — no O(cluster) map materialization.
  std::map<cluster::NodeId, int> fallback;
  LoadView load(static_cast<const cluster::ResourceView*>(state.pool.get()));
  if (state.pool == nullptr) {
    fallback = state.node_load();
    load = LoadView(&fallback);
  }
  for (const auto& instance : state.instances) {
    double total = 0.0;
    bool any = false;
    for (const auto& bundle : instance.bundles) {
      if (!bundle.configured) continue;
      const rsl::OptionSpec* option =
          bundle.spec.find_option(bundle.choice.option);
      if (option == nullptr) {
        return Err<std::vector<std::pair<InstanceId, double>>>(
            ErrorCode::kNotFound,
            "configured option vanished: " + bundle.choice.option);
      }
      auto predicted =
          predict_cached(instance.id, bundle, *option, bundle.choice,
                         bundle.allocation, load, state.topology());
      if (!predicted.ok()) {
        return Err<std::vector<std::pair<InstanceId, double>>>(
            predicted.error().code, predicted.error().message);
      }
      total += predicted.value();
      any = true;
    }
    if (any) out.emplace_back(instance.id, total);
  }
  return out;
}

Result<double> Optimizer::objective_value(const SystemState& state) const {
  auto predictions = predict_all(state);
  if (!predictions.ok()) {
    return Err<double>(predictions.error().code, predictions.error().message);
  }
  std::vector<double> times;
  std::vector<DeadlineTerm> terms;
  times.reserve(predictions.value().size());
  for (const auto& [id, t] : predictions.value()) {
    times.push_back(t);
    const InstanceState* inst = state.find_instance(id);
    double deadline = 0, weight = 1;
    if (inst != nullptr && instance_deadline(*inst, &deadline, &weight)) {
      terms.push_back({t, deadline, weight});
    }
  }
  return objective_->evaluate_with_deadlines(times, terms);
}

Result<cluster::Allocation> Optimizer::try_install_on(
    cluster::ResourceView& view, BundleState& bundle,
    const OptionChoice& choice) const {
  const rsl::OptionSpec* option = bundle.spec.find_option(choice.option);
  if (option == nullptr) {
    return Err<cluster::Allocation>(ErrorCode::kNotFound,
                                    "no such option: " + choice.option);
  }
  auto bound = bind_option(*option, choice, names_);
  if (!bound.ok()) {
    return Err<cluster::Allocation>(bound.error().code, bound.error().message);
  }
  cluster::Matcher matcher(config_.match_policy);
  return matcher.match(bound.value().node_requirements,
                       bound.value().link_requirements, view);
}

Result<cluster::Allocation> Optimizer::try_install(
    SystemState& state, BundleState& bundle,
    const OptionChoice& choice) const {
  return try_install_on(*state.pool, bundle, choice);
}

Result<double> Optimizer::plan_objective(
    const SystemState& state, const InstanceState& instance,
    const BundleState& bundle, const OptionChoice& candidate,
    const cluster::Allocation& allocation, const PlanOverlay& plan,
    const OptionChoice* previous) const {
  // The candidate is installed on the plan overlay at this point
  // (between mark() and rewind() in optimize_bundle), so the overlay's
  // effective_load at every node equals load_with(allocation) — read it
  // in place instead of copying a base map per candidate.
  LoadView load(static_cast<const cluster::ResourceView*>(&plan.pool()));
  std::vector<double> times;
  std::vector<DeadlineTerm> terms;
  times.reserve(state.instances.size());
  for (const auto& other : state.instances) {
    double total = 0.0;
    bool any = false;
    double inst_deadline = 0, inst_weight = 1;
    bool has_deadline = false;
    for (const auto& ob : other.bundles) {
      const bool is_target = &ob == &bundle;
      if (!is_target && !ob.configured) continue;
      const OptionChoice& choice = is_target ? candidate : ob.choice;
      const cluster::Allocation& alloc = is_target ? allocation : ob.allocation;
      const rsl::OptionSpec* option = ob.spec.find_option(choice.option);
      if (option == nullptr) {
        return Err<double>(ErrorCode::kNotFound,
                           "configured option vanished: " + choice.option);
      }
      auto predicted = predict_cached(other.id, ob, *option, choice, alloc,
                                      load, state.topology());
      if (!predicted.ok()) {
        return Err<double>(predicted.error().code, predicted.error().message);
      }
      total += predicted.value();
      any = true;
      // The candidate's option stands in for the target bundle, so its
      // deadline (not the incumbent's) is the one being priced.
      const double d = option->effective_deadline_s();
      if (d > 0 && (!has_deadline || d < inst_deadline)) {
        inst_deadline = d;
        inst_weight = option->tardiness_weight;
        has_deadline = true;
      }
    }
    if (!any) continue;
    // Frictional cost of switching away from the current option.
    if (config_.respect_friction && previous != nullptr &&
        other.id == instance.id && !(candidate == *previous)) {
      const rsl::OptionSpec* opt = bundle.spec.find_option(candidate.option);
      if (opt != nullptr) total += opt->friction_s;
    }
    times.push_back(total);
    if (has_deadline) terms.push_back({total, inst_deadline, inst_weight});
  }
  return objective_->evaluate_with_deadlines(times, terms);
}

std::vector<OptionChoice> expand_option_choices(
    const rsl::BundleSpec& spec, const std::vector<double>& grant_levels) {
  std::vector<double> levels = grant_levels;
  if (levels.empty()) levels = {1.0};
  std::vector<OptionChoice> candidates;
  for (const OptionChoice& base : enumerate_choices(spec)) {
    bool open_ended = false;
    if (const rsl::OptionSpec* option = spec.find_option(base.option)) {
      for (const auto& node : option->nodes) {
        if (node.memory.op == rsl::Constraint::Op::kGe) open_ended = true;
      }
    }
    for (double level : levels) {
      OptionChoice candidate = base;
      candidate.memory_grant = level;
      candidates.push_back(std::move(candidate));
      if (!open_ended) break;  // further levels would be identical
    }
  }
  return candidates;
}

Result<Decision> Optimizer::optimize_bundle(SystemState& state,
                                            InstanceState& instance,
                                            BundleState& bundle, double now,
                                            bool require_feasible) {
  // Granularity gate: hold the current option until its window elapses.
  // The gate leaves evaluated_version alone — a gated bundle stays
  // dirty, so the pass after the window expires re-evaluates it.
  if (bundle.configured && config_.respect_granularity) {
    const rsl::OptionSpec* current =
        bundle.spec.find_option(bundle.choice.option);
    if (current != nullptr && current->granularity_s > 0 &&
        now - bundle.last_switch_time < current->granularity_s) {
      return Decision{instance.id, bundle.spec.bundle, bundle.choice, false};
    }
  }

  const bool had_config = bundle.configured;
  const OptionChoice previous_choice = bundle.choice;
  const cluster::Allocation previous_allocation = bundle.allocation;

  // Candidates are matched and predicted against a speculative plan:
  // the live pool is never mutated during the search, so an aborted or
  // losing evaluation has nothing to roll back.
  PlanOverlay plan(state, &bundle);

  struct Best {
    OptionChoice choice;
    double objective;
  };
  std::optional<Best> best;

  // Expand option choices with the configured memory grant levels (only
  // meaningful for options that declare >= memory constraints; a
  // too-generous grant simply fails to match and is skipped). Shared
  // with the solver so both search the same candidate space.
  std::vector<OptionChoice> candidates =
      expand_option_choices(bundle.spec, config_.memory_grant_levels);

  for (const OptionChoice& candidate : candidates) {
    auto mark = plan.pool().mark();
    auto allocation = try_install_on(plan.pool(), bundle, candidate);
    if (!allocation.ok()) continue;  // infeasible; matcher left no residue
    ++candidates_evaluated_;
    auto evaluated =
        plan_objective(state, instance, bundle, candidate, allocation.value(),
                       plan, had_config ? &previous_choice : nullptr);
    plan.pool().rewind(mark);
    double objective = evaluated.ok()
                           ? evaluated.value()
                           : std::numeric_limits<double>::infinity();
    if (std::isfinite(objective) && (!best || objective < best->objective)) {
      best = Best{candidate, objective};
    }
  }

  if (!best) {
    if (had_config) {
      // Nothing feasible (or every candidate predicted non-finite):
      // keep the previous configuration. Re-match it on the live pool —
      // the matcher is deterministic, so this reproduces the historical
      // restore path bit-for-bit, including the silent migration it can
      // produce when a candidate trial succeeded but predictions
      // errored.
      auto released =
          cluster::Matcher::release(bundle.allocation, *state.pool);
      HARMONY_ASSERT_MSG(released.ok(), "releasing current allocation failed");
      auto restored = try_install(state, bundle, previous_choice);
      HARMONY_ASSERT_MSG(restored.ok(), "restoring previous allocation failed");
      bundle.choice = previous_choice;
      bundle.allocation = std::move(restored).value();
      bundle.configured = true;
      if (!bundle.allocation.same_placement(previous_allocation)) {
        state.touch_allocation(previous_allocation);
        state.touch_allocation(bundle.allocation);
      }
      bundle.evaluated_version = state.version;
      return Decision{instance.id, bundle.spec.bundle, bundle.choice, false};
    }
    if (require_feasible) {
      return Err<Decision>(ErrorCode::kNoMatch,
                           str_format("no feasible option for %s.%s",
                                      instance.path().c_str(),
                                      bundle.spec.bundle.c_str()));
    }
    bundle.evaluated_version = state.version;
    return Decision{instance.id, bundle.spec.bundle, OptionChoice{}, false};
  }

  // Commit the winner to live state: release the previous allocation
  // and re-match the winning choice on the real pool. The matcher is
  // deterministic and the pool-minus-this-bundle it sees is exactly the
  // overlay state the winner was evaluated under, so the committed
  // allocation equals the planned one.
  if (had_config) {
    auto released = cluster::Matcher::release(bundle.allocation, *state.pool);
    HARMONY_ASSERT_MSG(released.ok(), "releasing current allocation failed");
    bundle.configured = false;
    bundle.allocation = {};
  }
  auto allocation = try_install(state, bundle, best->choice);
  HARMONY_ASSERT_MSG(allocation.ok(), "re-matching the winner failed");
  bundle.choice = best->choice;
  bundle.allocation = std::move(allocation).value();
  bundle.configured = true;
  // A migration (same option, different nodes) is a reconfiguration
  // too: the application must learn its new node assignment.
  bool changed = !had_config || !(best->choice == previous_choice) ||
                 !bundle.allocation.same_placement(previous_allocation);
  if (changed) {
    bundle.last_switch_time = now;
    state.touch_allocation(previous_allocation);
    state.touch_allocation(bundle.allocation);
  }
  bundle.evaluated_version = state.version;
  HLOG_DEBUG("optimizer") << instance.path() << "." << bundle.spec.bundle
                          << " -> " << bundle.choice.to_string()
                          << (changed ? " (changed)" : " (kept)");
  return Decision{instance.id, bundle.spec.bundle, bundle.choice, changed};
}

namespace {

// Whether any candidate option of the bundle feeds per-node contention
// into its performance model.
bool any_candidate_reads_load(const rsl::BundleSpec& spec) {
  for (const auto& option : spec.options) {
    if (model_reads(option).uses_load) return true;
  }
  return false;
}

// Whether the bundle's *configured* option's model reads contention
// (the model plan_objective uses for non-target bundles).
bool configured_model_reads_load(const BundleState& bundle) {
  const rsl::OptionSpec* option = bundle.spec.find_option(bundle.choice.option);
  return option == nullptr || model_reads(*option).uses_load;
}

}  // namespace

bool Optimizer::can_skip(const SystemState& state,
                         const BundleState& bundle) const {
  if (bundle.evaluated_version == 0) return false;
  const uint64_t threshold = bundle.evaluated_version;
  if (!objective_->separable()) {
    // Non-separable objectives (makespan) couple every bundle's choice
    // to every instance's absolute time: any change anywhere can flip
    // the argmin. Skip only when the whole system is untouched.
    return state.version <= threshold;
  }
  // Separable objectives: untouched instances contribute a constant to
  // every candidate's score, so the argmin is unchanged unless
  //   (a) a node this bundle could be placed on changed (feasibility or
  //       contention on its own candidates), or
  //   (b) an instance sharing those nodes changed elsewhere — its time
  //       varies across this bundle's candidates, so a shift in its
  //       other inputs is not constant across them.
  // External-load reports are tracked separately (node_load_version):
  // they move no allocations and shift only contention-dependent
  // predictions, so they dirty a bundle only through models whose read
  // sets actually include the per-node load.
  const auto& admissible = bundle.admissible(state.topology());
  if (state.max_node_version(admissible) > threshold) return false;
  if (any_candidate_reads_load(bundle.spec) &&
      state.max_node_load_version(admissible) > threshold) {
    return false;
  }
  std::unordered_set<cluster::NodeId> admissible_set(admissible.begin(),
                                                     admissible.end());
  for (const auto& other : state.instances) {
    bool colocated = false;
    for (const auto& ob : other.bundles) {
      if (!ob.configured) continue;
      for (const auto& entry : ob.allocation.entries) {
        if (admissible_set.count(entry.node)) {
          colocated = true;
          break;
        }
      }
      if (colocated) break;
    }
    if (!colocated) continue;
    for (const auto& ob : other.bundles) {
      if (!ob.configured) continue;
      const bool ob_reads_load = configured_model_reads_load(ob);
      for (const auto& entry : ob.allocation.entries) {
        const size_t slot = state.pool ? state.pool->slot_of(entry.node)
                                       : cluster::NodeScope::kNoSlot;
        if (slot < state.node_version.size() &&
            state.node_version[slot] > threshold) {
          return false;
        }
        if (ob_reads_load && slot < state.node_load_version.size() &&
            state.node_load_version[slot] > threshold) {
          return false;
        }
      }
    }
  }
  return true;
}

Result<std::vector<Decision>> Optimizer::reevaluate_pass(SystemState& state,
                                                         double now,
                                                         InstanceId exclude) {
  const bool allow_skip = config_.incremental && !force_full_pass_;
  std::vector<Decision> decisions;
  for (auto& instance : state.instances) {
    if (instance.id == exclude) continue;
    for (auto& bundle : instance.bundles) {
      if (allow_skip && can_skip(state, bundle)) {
        ++bundles_skipped_;
        // Report the held decision so callers see the same decision
        // list a full pass would produce.
        decisions.push_back(Decision{
            instance.id, bundle.spec.bundle,
            bundle.configured ? bundle.choice : OptionChoice{}, false});
        continue;
      }
      ++bundles_evaluated_;
      auto decision = optimize_bundle(state, instance, bundle, now,
                                      /*require_feasible=*/false);
      if (!decision.ok()) {
        return Err<std::vector<Decision>>(decision.error().code,
                                          decision.error().message);
      }
      decisions.push_back(std::move(decision).value());
    }
  }
  force_full_pass_ = false;
  return decisions;
}

std::vector<std::vector<Solver::Previous>> Optimizer::snapshot_previous(
    const SystemState& state) const {
  std::vector<std::vector<Solver::Previous>> previous;
  previous.reserve(state.instances.size());
  for (const auto& instance : state.instances) {
    std::vector<Solver::Previous> bundles;
    bundles.reserve(instance.bundles.size());
    for (const auto& bundle : instance.bundles) {
      bundles.push_back(Solver::Previous{bundle.configured, bundle.choice});
    }
    previous.push_back(std::move(bundles));
  }
  return previous;
}

void Optimizer::run_solver(
    SystemState& state, double now,
    std::chrono::steady_clock::time_point deadline,
    const std::vector<std::vector<Solver::Previous>>& previous,
    std::vector<Decision>& decisions) {
  auto status = solver_->improve(state, now, deadline, previous, decisions);
  if (!status.ok()) {
    // Anytime contract: any solver failure leaves the greedy plan
    // standing; never propagate.
    HLOG_WARN("optimizer") << "solver pass failed (greedy plan stands): "
                           << status.error().message;
  }
}

Result<std::vector<Decision>> Optimizer::on_arrival(SystemState& state,
                                                    InstanceId id,
                                                    double now) {
  if (config_.mode == OptimizerConfig::Mode::kExhaustive) {
    return exhaustive(state, now);
  }
  InstanceState* arrived = state.find_instance(id);
  if (arrived == nullptr) {
    return Err<std::vector<Decision>>(ErrorCode::kNotFound,
                                      "no such instance");
  }
  // The solver budget covers the whole decision (greedy pass included),
  // so decision latency stays bounded by budget_ms. Friction baselines
  // are snapshotted before greedy mutates anything.
  const bool solve = solver_ != nullptr && config_.reevaluate_on_arrival;
  std::chrono::steady_clock::time_point deadline{};
  std::vector<std::vector<Solver::Previous>> previous;
  if (solve) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<int64_t>(
                   config_.solver.budget_ms * 1000.0));
    previous = snapshot_previous(state);
  }
  std::vector<Decision> decisions;
  // 1. Configure the new application's bundles, definition order.
  for (auto& bundle : arrived->bundles) {
    ++bundles_evaluated_;
    auto decision =
        config_.initial_policy == OptimizerConfig::InitialPolicy::kFirstFeasible
            ? configure_first_feasible(state, *arrived, bundle, now)
            : optimize_bundle(state, *arrived, bundle, now,
                              /*require_feasible=*/true);
    if (!decision.ok()) {
      return Err<std::vector<Decision>>(decision.error().code,
                                        decision.error().message);
    }
    decisions.push_back(std::move(decision).value());
  }
  if (!config_.reevaluate_on_arrival) return decisions;
  // 2. Re-evaluate existing applications.
  auto rest = reevaluate_pass(state, now, id);
  if (!rest.ok()) {
    return Err<std::vector<Decision>>(rest.error().code, rest.error().message);
  }
  decisions.insert(decisions.end(), rest.value().begin(), rest.value().end());
  // 3. Anytime improvement over the greedy plan (when enabled).
  if (solve) run_solver(state, now, deadline, previous, decisions);
  return decisions;
}

Result<std::vector<Decision>> Optimizer::reevaluate(SystemState& state,
                                                    double now) {
  if (config_.mode == OptimizerConfig::Mode::kExhaustive) {
    return exhaustive(state, now);
  }
  const bool solve = solver_ != nullptr;
  std::chrono::steady_clock::time_point deadline{};
  std::vector<std::vector<Solver::Previous>> previous;
  if (solve) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(static_cast<int64_t>(
                   config_.solver.budget_ms * 1000.0));
    previous = snapshot_previous(state);
  }
  auto decisions = reevaluate_pass(state, now, /*exclude=*/0);
  if (!decisions.ok()) return decisions;
  if (solve) run_solver(state, now, deadline, previous, decisions.value());
  return decisions;
}

Result<Decision> Optimizer::apply_choice(SystemState& state, InstanceId id,
                                         const std::string& bundle_name,
                                         const OptionChoice& choice,
                                         double now) {
  InstanceState* instance = state.find_instance(id);
  if (instance == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound, "no such instance");
  }
  BundleState* bundle = instance->find_bundle(bundle_name);
  if (bundle == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound,
                         "no such bundle: " + bundle_name);
  }
  if (bundle->spec.find_option(choice.option) == nullptr) {
    return Err<Decision>(ErrorCode::kNotFound,
                         "no such option: " + choice.option);
  }
  const bool had_config = bundle->configured;
  const OptionChoice previous = bundle->choice;
  const cluster::Allocation previous_allocation = bundle->allocation;
  if (had_config) {
    if (choice == previous) {
      return Decision{id, bundle_name, previous, false};
    }
    auto released = cluster::Matcher::release(bundle->allocation, *state.pool);
    HARMONY_ASSERT(released.ok());
    bundle->configured = false;
    bundle->allocation = {};
  }
  auto allocation = try_install(state, *bundle, choice);
  if (!allocation.ok()) {
    if (had_config) {
      auto restored = try_install(state, *bundle, previous);
      HARMONY_ASSERT_MSG(restored.ok(), "restoring previous allocation failed");
      bundle->choice = previous;
      bundle->allocation = std::move(restored).value();
      bundle->configured = true;
      if (!bundle->allocation.same_placement(previous_allocation)) {
        state.touch_allocation(previous_allocation);
        state.touch_allocation(bundle->allocation);
      }
    }
    return Err<Decision>(allocation.error().code, allocation.error().message);
  }
  bundle->choice = choice;
  bundle->allocation = std::move(allocation).value();
  bundle->configured = true;
  bundle->last_switch_time = now;
  state.touch_allocation(previous_allocation);
  state.touch_allocation(bundle->allocation);
  // A steered choice is not an argmin; force re-evaluation next pass.
  bundle->evaluated_version = 0;
  return Decision{id, bundle_name, choice, true};
}

Result<Decision> Optimizer::configure_first_feasible(SystemState& state,
                                                     InstanceState& instance,
                                                     BundleState& bundle,
                                                     double now) {
  HARMONY_ASSERT(!bundle.configured);
  for (const OptionChoice& candidate : enumerate_choices(bundle.spec)) {
    auto allocation = try_install(state, bundle, candidate);
    if (!allocation.ok()) continue;
    ++candidates_evaluated_;
    bundle.choice = candidate;
    bundle.allocation = std::move(allocation).value();
    bundle.configured = true;
    bundle.last_switch_time = now;
    state.touch_allocation(bundle.allocation);
    // First-feasible is not an argmin; stay dirty so the next
    // re-evaluation pass optimizes it properly.
    bundle.evaluated_version = 0;
    return Decision{instance.id, bundle.spec.bundle, bundle.choice, true};
  }
  return Err<Decision>(ErrorCode::kNoMatch,
                       str_format("no feasible option for %s.%s",
                                  instance.path().c_str(),
                                  bundle.spec.bundle.c_str()));
}

// Joint search over the full cartesian space of (instance, bundle)
// choices. Exponential; exists as the quality baseline for ablation A1.
// Memory grant levels are not expanded here — the joint space is large
// enough already, and the greedy pass is the production path.
Result<std::vector<Decision>> Optimizer::exhaustive(SystemState& state,
                                                    double now) {
  struct Slot {
    InstanceState* instance;
    BundleState* bundle;
    std::vector<OptionChoice> choices;
    OptionChoice previous;
    bool had_config;
  };
  std::vector<Slot> slots;
  size_t combinations = 1;
  for (auto& instance : state.instances) {
    for (auto& bundle : instance.bundles) {
      Slot slot;
      slot.instance = &instance;
      slot.bundle = &bundle;
      slot.choices = enumerate_choices(bundle.spec);
      slot.previous = bundle.choice;
      slot.had_config = bundle.configured;
      if (slot.choices.empty()) continue;
      // Saturating multiply: combinations stays at limit + 1 once the
      // space is known to exceed the cap, so choices^slots cannot
      // overflow size_t.
      const size_t n = slot.choices.size();
      combinations = combinations <= config_.exhaustive_limit / n
                         ? combinations * n
                         : config_.exhaustive_limit + 1;
      if (combinations > config_.exhaustive_limit &&
          !config_.exhaustive_truncate) {
        return Err<std::vector<Decision>>(
            ErrorCode::kCapacity,
            str_format("exhaustive search space exceeds limit (%zu)",
                       config_.exhaustive_limit));
      }
      slots.push_back(std::move(slot));
    }
  }
  // With exhaustive_truncate set, a capped space is searched as a
  // deterministic prefix of exhaustive_limit combinations and the
  // truncation is counted — the row is no longer truly exhaustive.
  const bool capped = combinations > config_.exhaustive_limit;

  // Release everything; try each combination from scratch.
  for (auto& slot : slots) {
    if (slot.bundle->configured) {
      auto released =
          cluster::Matcher::release(slot.bundle->allocation, *state.pool);
      HARMONY_ASSERT(released.ok());
      slot.bundle->configured = false;
      slot.bundle->allocation = {};
    }
  }

  std::vector<size_t> index(slots.size(), 0);
  std::optional<std::vector<size_t>> best_index;
  double best_objective = std::numeric_limits<double>::infinity();

  auto try_combination = [&]() -> bool {
    size_t installed = 0;
    bool feasible = true;
    for (size_t i = 0; i < slots.size(); ++i) {
      auto allocation =
          try_install(state, *slots[i].bundle, slots[i].choices[index[i]]);
      if (!allocation.ok()) {
        feasible = false;
        break;
      }
      slots[i].bundle->choice = slots[i].choices[index[i]];
      slots[i].bundle->allocation = std::move(allocation).value();
      slots[i].bundle->configured = true;
      ++installed;
    }
    double objective = std::numeric_limits<double>::infinity();
    if (feasible) {
      ++candidates_evaluated_;
      auto predictions = predict_all(state);
      if (predictions.ok()) {
        std::vector<double> times;
        std::vector<DeadlineTerm> terms;
        for (auto& [id, t] : predictions.value()) {
          times.push_back(t);
          const InstanceState* inst = state.find_instance(id);
          double deadline = 0, weight = 1;
          if (inst != nullptr &&
              instance_deadline(*inst, &deadline, &weight)) {
            terms.push_back({t, deadline, weight});
          }
        }
        objective = objective_->evaluate_with_deadlines(times, terms);
      }
    }
    for (size_t i = installed; i-- > 0;) {
      auto released =
          cluster::Matcher::release(slots[i].bundle->allocation, *state.pool);
      HARMONY_ASSERT(released.ok());
      slots[i].bundle->configured = false;
      slots[i].bundle->allocation = {};
    }
    if (std::isfinite(objective) && objective < best_objective) {
      best_objective = objective;
      best_index = index;
    }
    // Advance the odometer.
    for (size_t i = 0; i < slots.size(); ++i) {
      if (++index[i] < slots[i].choices.size()) return true;
      index[i] = 0;
    }
    return false;
  };
  if (!slots.empty()) {
    size_t evaluated = 0;
    while (try_combination()) {
      if (capped && ++evaluated >= config_.exhaustive_limit) break;
    }
    if (capped) {
      ++exhaustive_truncations_;
      metric::telemetry_counter("optimizer.exhaustive_truncated_total")
          .increment();
    }
  }

  if (!best_index) {
    return Err<std::vector<Decision>>(ErrorCode::kNoMatch,
                                      "no feasible joint configuration");
  }
  std::vector<Decision> decisions;
  for (size_t i = 0; i < slots.size(); ++i) {
    const OptionChoice& winner = slots[i].choices[(*best_index)[i]];
    auto allocation = try_install(state, *slots[i].bundle, winner);
    HARMONY_ASSERT_MSG(allocation.ok(), "re-matching joint winner failed");
    slots[i].bundle->choice = winner;
    slots[i].bundle->allocation = std::move(allocation).value();
    slots[i].bundle->configured = true;
    bool changed = !slots[i].had_config || !(winner == slots[i].previous);
    if (changed) slots[i].bundle->last_switch_time = now;
    // A joint search invalidates the greedy bookkeeping wholesale: the
    // configurations were not produced by per-bundle argmins.
    slots[i].bundle->evaluated_version = 0;
    decisions.push_back(Decision{slots[i].instance->id,
                                 slots[i].bundle->spec.bundle, winner,
                                 changed});
  }
  state.touch_all();
  force_full_pass_ = true;
  return decisions;
}

}  // namespace harmony::core
